"""Fig. 11: ablations on the PIM module.

(a) unbounded PIM-op buffer: removes the back-pressure that throttles
    the strict models, so Naive (fastest issue) wins slightly and all
    differences shrink (paper: within ~6%).
(b) zero PIM logic latency: with execution free, PIM-op *management* is
    the dominant cost and the more relaxed models pull ahead.
"""

from harness import ALL_MODELS, SCOPE_SWEEP, normalized, once, ycsb_sweep

from repro.analysis.report import format_series


def test_fig11a_unbounded_buffer(benchmark):
    def sweep():
        return ycsb_sweep(
            ALL_MODELS, variant="unbounded",
            config_fn=lambda cfg: cfg.with_pim(buffer_capacity=None),
        )

    results = once(benchmark, sweep)
    rel = normalized(results)
    print()
    print(format_series("scopes", SCOPE_SWEEP, rel,
                        title="Fig. 11a: unbounded PIM buffer "
                              "(normalized to Naive)"))
    top = -1
    # with no buffer limit, naive's fast issue uncovers the most PIM
    # parallelism: no model beats it meaningfully (paper: <6% band)
    for model in ("atomic", "store", "scope", "scope-relaxed"):
        assert rel[model][top] >= 0.94, model
    # every model is within a modest band of naive
    for model in ("atomic", "store", "scope", "scope-relaxed"):
        assert rel[model][top] < 1.35, model


def test_fig11b_zero_logic(benchmark):
    def sweep():
        return ycsb_sweep(
            ALL_MODELS, variant="zero-logic",
            config_fn=lambda cfg: cfg.with_pim(zero_logic=True),
        )

    results = once(benchmark, sweep)
    rel = normalized(results)
    print()
    print(format_series("scopes", SCOPE_SWEEP, rel,
                        title="Fig. 11b: zero PIM execution latency "
                              "(normalized to Naive)"))
    top = -1
    # with execution free, management dominates: the relaxed models
    # (faster issue) beat the strict ones (paper Fig. 11b)
    strict = min(rel["atomic"][top], rel["store"][top])
    relaxed = min(rel["scope"][top], rel["scope-relaxed"][top])
    assert relaxed <= strict
    # the relaxed models stay close to naive; the strict models pay for
    # per-op ACK serialization, which the miniature's unscaled network
    # latencies amplify relative to the paper (see EXPERIMENTS.md)
    for model in ("scope", "scope-relaxed"):
        assert rel[model][top] < 1.35, model
    for model in ("atomic", "store"):
        assert rel[model][top] < 2.2, model
