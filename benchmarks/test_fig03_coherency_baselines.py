"""Fig. 3: Naive vs Uncacheable vs Software-Flush as the data set grows.

The paper's shape: the uncacheable approach degrades steeply with record
count (to 2.57x the naive run time at 32M records) because the growing
result reads lose the cache entirely; the software-flush approach stays
a modest constant factor (~1.09x).
"""

from harness import SCOPE_SWEEP, RECORDS_PER_SWEEP_SCOPE, normalized, once, run_ycsb

from repro.analysis.report import format_series
from repro.core.models import ConsistencyModel

BASELINES = [ConsistencyModel.NAIVE, ConsistencyModel.UNCACHEABLE,
             ConsistencyModel.SW_FLUSH]


def test_fig3_coherency_baselines(benchmark):
    def sweep():
        return {
            m.value: [run_ycsb(m, n) for n in SCOPE_SWEEP]
            for m in BASELINES
        }

    results = once(benchmark, sweep)
    rel = normalized(results)
    records = [n * RECORDS_PER_SWEEP_SCOPE for n in SCOPE_SWEEP]
    print()
    print(format_series("records", records, rel,
                        title="Fig. 3: run time normalized to Naive"))

    unc = rel["uncacheable"]
    swf = rel["sw-flush"]
    # uncacheable is substantially slower than naive at every size and
    # by a large factor at the top of the sweep (paper: 2.57x)
    assert all(u > 1.2 for u in unc)
    assert max(unc) > 1.7
    # software flush stays a modest factor (paper: ~1.09x)
    assert all(s < 1.45 for s in swf)
    # uncacheable is always the worst of the three
    assert all(u > s for u, s in zip(unc, swf))
