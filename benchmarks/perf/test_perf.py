"""Tracked event-kernel performance benchmarks.

Runs the *quick* pinned configurations (see ``repro.api.perf``), asserts
run-to-run determinism, and checks the results against the digests
pinned in ``BENCH_kernel.json`` -- the digest comparison is machine
independent, so any change to what the simulator computes fails here
even on hardware with very different throughput.

Absolute events/sec regression gating is machine dependent and
therefore opt-in: set ``REPRO_PERF_STRICT=1`` (the CI workflow does) to
fail when throughput drops more than 30% below the checked-in baseline.
"""

import json
import os

import pytest

from repro.api import perf

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_kernel.json")


#: The scaled-up pinned points (tracked since the timing-wheel PR).
SCALED_CONFIGS = ("ycsb-c-8core", "tpch-q6-sf2")


@pytest.fixture(scope="module")
def quick_record():
    """One shared measurement of the quick configs (determinism is
    asserted inside run_config: a divergent repeat raises)."""
    return perf.run_suite(perf.QUICK_CONFIGS, repeats=2)


@pytest.fixture(scope="module")
def scaled_record():
    """One shared measurement of the scaled configs (8 cores / 2x TPC-H
    scale) -- the digest pins results at sizes the quick smoke misses."""
    return perf.run_suite(SCALED_CONFIGS, repeats=2)


@pytest.fixture(scope="module")
def mshr_record():
    """ycsb-c with the MSHR knobs explicitly on: same simulation as the
    pinned ycsb-c, plus MshrFile bookkeeping and mshr_* stats."""
    return perf.run_suite(("ycsb-c-mshr8",), repeats=2)


@pytest.fixture(scope="module")
def openloop_record():
    """ycsb-c driven open-loop near the knee: the admission-queue path
    (ARRIVE markers, arrival catch-up, settle) plus traffic stats."""
    return perf.run_suite(("ycsb-c-openloop",), repeats=2)


@pytest.fixture(scope="module")
def bench_file():
    with open(BENCH_PATH) as fh:
        return json.load(fh)


def test_quick_configs_measure_sane_throughput(quick_record):
    for name, cur in quick_record["configs"].items():
        assert cur["events"] > 1000, name
        assert cur["run_time"] > 0, name
        assert cur["events_per_sec"] > 0, name


def test_results_match_checked_in_digests(quick_record, bench_file):
    """The simulation results of the pinned configs are pinned too:
    a kernel change that alters any statistic, run time or event count
    shows up as a digest mismatch (machine independent)."""
    for name, cur in quick_record["configs"].items():
        base = bench_file["configs"][name]
        assert cur["stats_sha256"] == base["stats_sha256"], (
            f"{name}: simulation results diverged from BENCH_kernel.json"
        )
        assert cur["events"] == base["events"], name
        assert cur["run_time"] == base["run_time"], name


def test_scaled_configs_match_checked_in_digests(scaled_record, bench_file):
    """The scaled-up pinned points (8-core YCSB-C, 2x-scale TPC-H Q6)
    are digest-pinned like the seed-sized ones."""
    for name, cur in scaled_record["configs"].items():
        base = bench_file["configs"][name]
        assert cur["stats_sha256"] == base["stats_sha256"], (
            f"{name}: simulation results diverged from BENCH_kernel.json"
        )
        assert cur["events"] == base["events"], name
        assert cur["run_time"] == base["run_time"], name


def test_optimized_kernel_reproduces_baseline_results(bench_file):
    """BENCH_kernel.json records the seed (heap-only) kernel's digests;
    they must equal the current kernel's (byte-identical results)."""
    for name, base in bench_file["baseline"]["configs"].items():
        cur = bench_file["configs"][name]
        assert cur["stats_sha256"] == base["stats_sha256"], name
        assert cur["events"] == base["events"], name
        assert cur["run_time"] == base["run_time"], name


def test_recorded_speedup_meets_target(bench_file):
    """The trajectory's acceptance bars, as measured interleaved on one
    machine and recorded at optimization time: the PR 2 hot-path
    overhaul's >=2x on YCSB-C vs the seed kernel, extended by the
    timing-wheel PR to >=2.4x cumulative (>=1.25x vs the PR 2 kernel,
    recorded in the description)."""
    assert bench_file["configs"]["ycsb-c"]["speedup_vs_baseline"] >= 2.4
    for name in SCALED_CONFIGS:
        assert bench_file["configs"][name]["speedup_vs_baseline"] >= 2.0, name


def test_mshr_config_matches_checked_in_digest(mshr_record, bench_file):
    """The explicit-MSHR twin is digest-pinned like every other config;
    its *simulated* behavior must equal the silent-default ycsb-c (same
    run time and event count -- the 8/64 entries and coalescing knobs
    reproduce the legacy hierarchy), with only the mshr_* stats added."""
    cur = mshr_record["configs"]["ycsb-c-mshr8"]
    base = bench_file["configs"]["ycsb-c-mshr8"]
    assert cur["stats_sha256"] == base["stats_sha256"], (
        "ycsb-c-mshr8: simulation results diverged from BENCH_kernel.json"
    )
    twin = bench_file["configs"]["ycsb-c"]
    assert cur["events"] == twin["events"]
    assert cur["run_time"] == twin["run_time"]
    assert cur["stats_sha256"] != twin["stats_sha256"]  # mshr_* stats only


def test_mshr_bookkeeping_overhead_is_bounded(quick_record, mshr_record):
    """Hit-path overhead gate: with the MSHR stats on, ycsb-c must keep
    at least 80% of the silent-default throughput.  Both sides are
    measured in this very session (best of the same repeat count), so
    the ratio is machine-independent unlike the absolute ev/s gates."""
    silent = quick_record["configs"]["ycsb-c"]["events_per_sec"]
    explicit = mshr_record["configs"]["ycsb-c-mshr8"]["events_per_sec"]
    assert explicit >= 0.8 * silent, (
        f"MSHR bookkeeping costs more than 20% of the hit path: "
        f"{explicit:,} ev/s vs {silent:,} ev/s silent-default"
    )


def test_openloop_config_matches_checked_in_digest(openloop_record,
                                                   bench_file):
    """The open-loop twin of ycsb-c is digest-pinned like every other
    config.  Unlike the MSHR twin it simulates *different* behavior
    (arrivals pace the requests, so run time and event count differ from
    closed-loop ycsb-c), but the digest pins the whole traffic stats
    group: latency percentiles, queue depths and admission accounting
    cannot drift silently."""
    cur = openloop_record["configs"]["ycsb-c-openloop"]
    base = bench_file["configs"]["ycsb-c-openloop"]
    assert cur["stats_sha256"] == base["stats_sha256"], (
        "ycsb-c-openloop: simulation results diverged from "
        "BENCH_kernel.json"
    )
    assert cur["events"] == base["events"]
    assert cur["run_time"] == base["run_time"]


@pytest.mark.skipif(os.environ.get("REPRO_PERF_STRICT") != "1",
                    reason="machine-dependent; set REPRO_PERF_STRICT=1")
def test_events_per_sec_has_not_regressed(quick_record, bench_file):
    failures = perf.check_against_baseline(quick_record, bench_file,
                                           tolerance=0.30)
    assert not failures, failures
