"""Table III: YCSB workload parameters."""

from harness import once

from repro.analysis.report import format_table
from repro.workloads.ycsb import YcsbParams, YcsbWorkload


def test_table3_ycsb_workload(benchmark):
    params = YcsbParams(num_records=32_000, num_ops=1000, seed=7)

    def build():
        return YcsbWorkload(params).operations()

    ops = once(benchmark, build)
    scans = sum(1 for o in ops if o[0] == "scan")
    inserts = len(ops) - scans
    lengths = [op[2] - op[1] for op in ops if op[0] == "scan"]
    rows = [
        ["Number of operations", len(ops)],
        ["Scan operation percentage", f"{100 * scans / len(ops):.1f}%"],
        ["Insert operation percentage", f"{100 * inserts / len(ops):.1f}%"],
        ["Fields per record", params.num_fields],
        ["Field length", f"{params.field_bytes} B"],
        ["Records in scan results", f"uniform, observed 1..{max(lengths)}"],
        ["Scan base record", "Zipfian"],
    ]
    print()
    print(format_table(["Parameter", "Value"], rows,
                       title="Table III: YCSB workload"))
    assert len(ops) == 1000
    assert 0.92 < scans / len(ops) < 0.98
    assert max(lengths) <= params.max_scan_records
