"""Fig. 7: YCSB run time across the consistency models.

(a) absolute run time, (b) normalized to the Naive baseline.  The paper's
shape: all four proposed models stay within a few percent of Naive
(at most ~6% overhead at low scope counts), improve relative to Naive as
the scope count grows and the PIM module's buffer back-pressure throttles
everyone, and the scope model -- which interleaves PIM ops from different
scopes -- is the best performer at high scope counts.
"""

from harness import ALL_MODELS, SCOPE_SWEEP, normalized, once, ycsb_sweep

from repro.analysis.report import format_series
from repro.core.models import ConsistencyModel


def test_fig7_ycsb_run_time(benchmark):
    results = once(benchmark, lambda: ycsb_sweep(ALL_MODELS))
    absolute = {name: [r.run_time for r in series]
                for name, series in results.items()}
    rel = normalized(results)
    print()
    print(format_series("scopes", SCOPE_SWEEP, absolute,
                        title="Fig. 7a: absolute run time [cycles]"))
    print()
    print(format_series("scopes", SCOPE_SWEEP, rel,
                        title="Fig. 7b: run time normalized to Naive"))

    # (1) correctness never costs more than a bounded overhead
    for model in ("atomic", "store", "scope", "scope-relaxed"):
        assert max(rel[model]) < 1.30, model
    # (2) at the top of the sweep, the models match or beat Naive
    top = -1
    for model in ("atomic", "store", "scope"):
        assert rel[model][top] <= 1.05, (model, rel[model])
    # (3) the scope model is the best proposed model at high scope count
    proposed_at_top = {m: rel[m][top]
                       for m in ("atomic", "store", "scope", "scope-relaxed")}
    assert min(proposed_at_top, key=proposed_at_top.get) == "scope"
    # (4) absolute run time grows with the data set
    for series in absolute.values():
        assert series[-1] > series[0]
    # (5) the proposed models stay correct throughout; naive does not
    for model in ("atomic", "store", "scope", "scope-relaxed"):
        assert all(r.stale_reads == 0 for r in results[model]), model
    assert any(r.stale_reads > 0 for r in results["naive"])
