"""Table I: consistency model definitions and implementations."""

from harness import once

from repro.analysis.report import format_table
from repro.core.models import ConsistencyModel, properties_of


def test_table1_model_definitions(benchmark):
    def build():
        rows = [properties_of(m).table_row()
                for m in ConsistencyModel if m.is_proposed]
        return rows

    rows = once(benchmark, build)
    print()
    print(format_table(list(rows[0].keys()), [list(r.values()) for r in rows],
                       title="Table I: consistency model definitions"))
    assert [r["Model"] for r in rows] == ["atomic", "store", "scope",
                                          "scope-relaxed"]
    assert rows[3]["Scope Buffer & SBV"] == "All caches"
