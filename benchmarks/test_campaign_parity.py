"""The paper-grid campaign and the figure harness share specs.

The campaign subsystem promises that a figure benchmark's single points
and the registered campaigns expand to hash-identical Experiment specs,
so they share the Runner's spec-hash cache and EXPERIMENTS.md reports
exactly what the figure benchmarks measured.  This test gates that
equality: if either side's scaling constants drift, it fails.
"""

from harness import ALL_MODELS, SCOPE_SWEEP, tpch_experiment, ycsb_experiment

from repro.api.sweep import get_campaign


def test_paper_grid_covers_the_harness_ycsb_sweep_spec_for_spec():
    grid_hashes = {p.experiment.spec_hash()
                   for p in get_campaign("paper-grid").points()}
    for model in ALL_MODELS:
        for num_scopes in SCOPE_SWEEP:
            assert ycsb_experiment(model, num_scopes).spec_hash() \
                in grid_hashes, (model, num_scopes)


def test_paper_grid_covers_the_harness_tpch_points():
    grid_hashes = {p.experiment.spec_hash()
                   for p in get_campaign("paper-grid").points()}
    for model in ALL_MODELS:
        assert tpch_experiment(model, "q6").spec_hash() in grid_hashes, model
