"""Fig. 10: system statistics for the YCSB sweep.

(a) mean PIM-module buffer length at op arrival -- fills up as the scope
    count grows (back-pressure regime);
(b) mean unique scopes in the buffer -- highest for the scope model,
    whose non-FIFO write buffer interleaves scopes;
(c) mean LLC scan latency -- far below the number of LLC sets thanks to
    the scope buffer (hits count as zero) and the SBV;
(d) mean SBV skipped-set ratio -- the scan visits only a small subset of
    sets.
"""

from harness import ALL_MODELS, PROPOSED_MODELS, SCOPE_SWEEP, once, ycsb_sweep

from repro.analysis.report import format_series
from repro.sim.config import SystemConfig


def test_fig10_system_statistics(benchmark):
    results = once(benchmark, lambda: ycsb_sweep(ALL_MODELS))

    buffer_len = {n: [r.pim_buffer_mean_len for r in s]
                  for n, s in results.items()}
    unique = {n: [r.pim_unique_scopes for r in s] for n, s in results.items()}
    scan = {n: [r.llc_scan_latency for r in s]
            for n, s in results.items() if n not in ("naive", "sw-flush")}
    skip = {n: [r.sbv_skip_ratio for r in s]
            for n, s in results.items() if n not in ("naive", "sw-flush")}

    print()
    print(format_series("scopes", SCOPE_SWEEP, buffer_len,
                        title="Fig. 10a: mean PIM buffer length at arrival"))
    print()
    print(format_series("scopes", SCOPE_SWEEP, unique,
                        title="Fig. 10b: mean unique scopes in PIM buffer"))
    print()
    print(format_series("scopes", SCOPE_SWEEP, scan,
                        title="Fig. 10c: mean LLC scan latency [cycles]"))
    print()
    print(format_series("scopes", SCOPE_SWEEP, skip,
                        title="Fig. 10d: mean SBV skipped-set ratio"))

    cap = SystemConfig.scaled_default().pim.buffer_capacity
    # (a) the buffer saturates at high scope counts for the unthrottled
    # baselines (paper: naive fills the buffer first)
    assert buffer_len["naive"][-1] > 0.6 * cap
    # (b) the scope model keeps the most unique scopes in the buffer
    top = -1
    assert unique["scope"][top] >= max(
        unique[m.value][top] for m in PROPOSED_MODELS) - 1e-9
    # (c) scans are far cheaper than the full set count (paper: ~38 of 2048)
    num_sets = SystemConfig.scaled_default().llc.num_sets
    for name, series in scan.items():
        assert all(s < num_sets / 4 for s in series), name
    # (d) the SBV skips the vast majority of sets (paper: ~94%)
    for name, series in skip.items():
        assert all(s > 0.85 for s in series), name
