"""Table II: the evaluated system configuration."""

from harness import once

from repro.analysis.report import format_table
from repro.sim.config import SystemConfig


def test_table2_system_configuration(benchmark):
    cfg = once(benchmark, SystemConfig.paper_default)
    rows = [
        ["Processor cores", f"{cfg.cores.num_cores} cores, OoO, "
                            f"{cfg.cores.freq_ghz} GHz"],
        ["L1 cache", f"private, {cfg.l1.size_bytes >> 10} KB, "
                     f"{cfg.l1.line_bytes} B lines, {cfg.l1.ways}-way"],
        ["L2 (LLC)", f"shared, {cfg.llc.size_bytes >> 20} MB, "
                     f"{cfg.llc.line_bytes} B lines, {cfg.llc.ways}-way"],
        ["L1 scope buffer", f"{cfg.l1_scope_buffer.sets} sets, "
                            f"{cfg.l1_scope_buffer.ways}-way"],
        ["L2 scope buffer", f"{cfg.llc_scope_buffer.sets} sets, "
                            f"{cfg.llc_scope_buffer.ways}-way"],
        ["Scope", f"{cfg.scope_bytes >> 20} MB huge page"],
        ["Max records per scope", f"{cfg.records_per_scope >> 10}K"],
        ["Coherency protocol", "MESI (directory at the inclusive LLC)"],
    ]
    print()
    print(format_table(["Parameter", "Value"], rows,
                       title="Table II: system configuration"))
    assert cfg.llc.num_sets == 2048
    assert cfg.records_per_scope == 32 << 10
