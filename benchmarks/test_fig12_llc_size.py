"""Fig. 12: sensitivity to LLC size (the paper's 8 MB vs 2 MB LLC).

A 4x larger LLC means 4x the sets: scans get longer (Fig. 12b) even
though the SBV gets relatively more effective (Fig. 12c), degrading run
time slightly relative to the small-LLC system.
"""

from dataclasses import replace

from harness import PROPOSED_MODELS, SCOPE_SWEEP, once, run_ycsb, ycsb_sweep

from repro.analysis.report import format_series
from repro.sim.config import CacheConfig


def _big_llc(cfg):
    return replace(cfg, llc=CacheConfig(
        size_bytes=cfg.llc.size_bytes * 4,
        ways=cfg.llc.ways,
        hit_latency=cfg.llc.hit_latency,
    ))


def test_fig12_llc_size(benchmark):
    def sweep():
        big = ycsb_sweep(PROPOSED_MODELS, variant="8mb-llc", config_fn=_big_llc)
        small = ycsb_sweep(PROPOSED_MODELS)
        return big, small

    big, small = once(benchmark, sweep)
    scan_big = {n: [r.llc_scan_latency for r in s] for n, s in big.items()}
    scan_small = {n: [r.llc_scan_latency for r in s] for n, s in small.items()}
    skip_big = {n: [r.sbv_skip_ratio for r in s] for n, s in big.items()}
    rel = {
        n: [b.run_time / s.run_time for b, s in zip(big[n], small[n])]
        for n in big
    }
    print()
    print(format_series("scopes", SCOPE_SWEEP, rel,
                        title="Fig. 12a: run time, 4x LLC vs base LLC"))
    print()
    print(format_series("scopes", SCOPE_SWEEP, scan_big,
                        title="Fig. 12b: mean LLC scan latency, 4x LLC"))
    print()
    print(format_series("scopes", SCOPE_SWEEP, skip_big,
                        title="Fig. 12c: SBV skipped-set ratio, 4x LLC"))

    small_sets = small["atomic"][0].config.llc.num_sets
    big_sets = big["atomic"][0].config.llc.num_sets
    assert big_sets == 4 * small_sets
    for name in scan_big:
        # (b) scans never get cheaper on the bigger LLC (the paper's
        # absolute growth, ~38 -> ~85 cycles, needs paper-scale set
        # pressure; the miniature's SBV-marked set count is unchanged)
        assert scan_big[name][-1] >= scan_small[name][-1]
        # (c) the skip ratio improves with more sets (paper: 0.94 -> 0.98)
        assert skip_big[name][-1] > 0.9
        assert skip_big[name][-1] > small["atomic"][-1].sbv_skip_ratio - 0.02
        # (a) and the bigger LLC does not make runs dramatically faster --
        # the scan cost offsets the capacity (paper: slight degradation)
        assert rel[name][-1] > 0.9
