"""Ablation: what do the scope buffer and the SBV actually buy?

Section IV motivates both structures: without them every PIM op must
scan every cache set, blocking the LLC for (num_sets x scan cycles) at a
time. This bench runs the same YCSB point under the atomic model with
(a) both structures, (b) no scope buffer, (c) no SBV, (d) neither, and
reports the mean LLC scan latency and run time.
"""

from dataclasses import replace

from harness import once, run_ycsb

from repro.analysis.report import format_table
from repro.core.models import ConsistencyModel

SCOPES = 16

VARIANTS = [
    ("scope buffer + SBV", True, True),
    ("no scope buffer", False, True),
    ("no SBV", True, False),
    ("neither", False, False),
]


def test_ablation_scope_hardware(benchmark):
    def sweep():
        return {
            name: run_ycsb(
                ConsistencyModel.ATOMIC, SCOPES, variant=f"ablation:{name}",
                config_fn=lambda cfg, sb=sb, sbv=sbv: replace(
                    cfg, scope_buffer_enabled=sb, sbv_enabled=sbv),
            )
            for name, sb, sbv in VARIANTS
        }

    results = once(benchmark, sweep)
    base = results["scope buffer + SBV"]
    rows = [
        [name, r.llc_scan_latency, r.run_time, r.run_time / base.run_time,
         r.stale_reads]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["variant", "mean scan latency", "run time", "vs full HW", "stale"],
        rows, title="Ablation: Section IV coherency hardware"))

    full = base.llc_scan_latency
    no_sb = results["no scope buffer"].llc_scan_latency
    no_sbv = results["no SBV"].llc_scan_latency
    neither = results["neither"].llc_scan_latency
    num_sets = base.config.llc.num_sets
    # without the scope buffer, every PIM op pays a scan (no zero-cost hits)
    assert no_sb > full
    # without the SBV, each scan visits every set
    assert no_sbv > full
    assert neither >= num_sets  # full scans of all sets, every miss
    # correctness is unaffected: the structures are a performance feature
    assert all(r.stale_reads == 0 for r in results.values())
    # and the full hardware is the fastest configuration
    assert all(r.run_time >= base.run_time * 0.98 for r in results.values())
