"""Shared infrastructure for the per-figure benchmarks.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down workload size (see EXPERIMENTS.md for the scaling rationale)
and prints the same rows/series the paper plots.  Simulation results are
memoized per (model, workload, variant) within the pytest session, since
several figures share the same sweep (Figs. 7, 9 and 10 all come from the
YCSB scope-count sweep).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.models import ConsistencyModel
from repro.sim.config import SystemConfig
from repro.system.simulation import SimulationResult, run_workload
from repro.workloads.tpch import TpchWorkload
from repro.workloads.ycsb import YcsbParams, YcsbWorkload

#: Model order used in every figure.
ALL_MODELS = [
    ConsistencyModel.NAIVE,
    ConsistencyModel.SW_FLUSH,
    ConsistencyModel.ATOMIC,
    ConsistencyModel.STORE,
    ConsistencyModel.SCOPE,
    ConsistencyModel.SCOPE_RELAXED,
]

PROPOSED_MODELS = [m for m in ALL_MODELS if m.is_proposed]

#: YCSB sweep: scaled scope counts standing in for the paper's 4..977.
SCOPE_SWEEP = [4, 8, 16, 32, 48]

#: Records per scope in the scaled configuration.
RECORDS_PER_SWEEP_SCOPE = 2000

#: Operations per YCSB run (the paper uses 1000; scaled for wall-clock).
YCSB_OPS = 30

_cache: Dict[Tuple, SimulationResult] = {}


def ycsb_params(num_scopes: int, threads: int = 4) -> YcsbParams:
    return YcsbParams(
        num_records=num_scopes * RECORDS_PER_SWEEP_SCOPE,
        num_ops=YCSB_OPS,
        threads=threads,
        seed=7,
    )


def run_ycsb(
    model: ConsistencyModel,
    num_scopes: int,
    variant: str = "base",
    config_fn: Optional[Callable[[SystemConfig], SystemConfig]] = None,
    threads: int = 4,
) -> SimulationResult:
    """One memoized YCSB simulation point."""
    key = ("ycsb", model, num_scopes, variant, threads)
    if key not in _cache:
        cfg = SystemConfig.scaled_default(model=model, num_scopes=num_scopes)
        if threads != 4:
            from dataclasses import replace
            cfg = replace(cfg, cores=replace(cfg.cores, num_cores=2 * threads))
        if config_fn is not None:
            cfg = config_fn(cfg)
        workload = YcsbWorkload(ycsb_params(num_scopes, threads))
        _cache[key] = run_workload(cfg, workload, max_events=200_000_000)
    return _cache[key]


def run_tpch(model: ConsistencyModel, query: str,
             scale: float = 1 / 64, runs: int = 2) -> SimulationResult:
    """One memoized TPC-H query simulation."""
    key = ("tpch", model, query, scale, runs)
    if key not in _cache:
        workload = TpchWorkload(query, scale=scale, runs=runs)
        cfg = SystemConfig.scaled_default(
            model=model, num_scopes=workload.scaled_scopes())
        _cache[key] = run_workload(cfg, workload, max_events=200_000_000)
    return _cache[key]


def ycsb_sweep(models: List[ConsistencyModel], variant: str = "base",
               config_fn=None, threads: int = 4,
               scopes: Optional[List[int]] = None) -> Dict[str, List[SimulationResult]]:
    scopes = scopes or SCOPE_SWEEP
    return {
        model.value: [run_ycsb(model, n, variant, config_fn, threads)
                      for n in scopes]
        for model in models
    }


def normalized(results: Dict[str, List[SimulationResult]],
               baseline: str = "naive") -> Dict[str, List[float]]:
    """Run times normalized to the baseline series (the paper's y-axis)."""
    base = [r.run_time for r in results[baseline]]
    return {
        name: [r.run_time / b for r, b in zip(series, base)]
        for name, series in results.items()
    }


def once(benchmark, fn):
    """Run a whole-figure regeneration exactly once under pytest-benchmark.

    Simulations are deterministic and expensive; statistical repetition
    adds nothing.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
