"""Shared infrastructure for the per-figure benchmarks.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down workload size (see EXPERIMENTS.md for the scaling rationale)
and prints the same rows/series the paper plots.  Simulation points are
declared as :class:`repro.api.Experiment` specs and executed through one
session-wide :class:`repro.api.Runner`, whose spec-hash cache deduplicates
the points several figures share (Figs. 7, 9 and 10 all come from the
YCSB scope-count sweep).  Set ``REPRO_BENCH_JOBS=N`` to fan sweeps over
N worker processes.
"""

from __future__ import annotations

import os
from dataclasses import asdict, replace
from typing import Callable, Dict, List, Optional

from repro.api import Axis, Experiment, Runner, Sweep, backend_for
from repro.api import sweep as campaign_defs
from repro.core.models import ConsistencyModel
from repro.sim.config import SystemConfig
from repro.system.simulation import SimulationResult
from repro.workloads.ycsb import YcsbParams

#: Model order used in every figure (the campaign registry's order).
ALL_MODELS = [ConsistencyModel(name) for name in campaign_defs.SIX_MODELS]

PROPOSED_MODELS = [m for m in ALL_MODELS if m.is_proposed]

#: YCSB sweep: scaled scope counts standing in for the paper's 4..977.
#: Shared with the paper-grid campaign so figure points and campaign
#: points hash identically (see benchmarks/test_campaign_parity.py).
SCOPE_SWEEP = list(campaign_defs.SCOPE_SWEEP)

#: Records per scope in the scaled configuration.
RECORDS_PER_SWEEP_SCOPE = campaign_defs.RECORDS_PER_SCOPE

#: Operations per YCSB run (the paper uses 1000; scaled for wall-clock).
YCSB_OPS = campaign_defs.YCSB_OPS

#: Event budget per simulation point.
MAX_EVENTS = campaign_defs.MAX_EVENTS


#: One Runner per pytest session: its spec-hash cache replaces the old
#: hand-rolled ``(model, workload, variant) -> result`` memo dict.
runner = Runner(backend=backend_for(
    int(os.environ.get("REPRO_BENCH_JOBS", "1") or 1)))


def ycsb_params(num_scopes: int, threads: int = 4) -> YcsbParams:
    return YcsbParams(
        num_records=num_scopes * RECORDS_PER_SWEEP_SCOPE,
        num_ops=YCSB_OPS,
        threads=threads,
        seed=7,
    )


def ycsb_experiment(
    model: ConsistencyModel,
    num_scopes: int,
    variant: str = "base",
    config_fn: Optional[Callable[[SystemConfig], SystemConfig]] = None,
    threads: int = 4,
) -> Experiment:
    """The declarative spec of one YCSB sweep point."""
    cfg = SystemConfig.scaled_default(model=model, num_scopes=num_scopes)
    if threads != 4:
        cfg = replace(cfg, cores=replace(cfg.cores, num_cores=2 * threads))
    if config_fn is not None:
        cfg = config_fn(cfg)
    return Experiment(
        workload="ycsb",
        config=cfg,
        params=asdict(ycsb_params(num_scopes, threads)),
        variant=variant,
        max_events=MAX_EVENTS,
    )


def tpch_experiment(model: ConsistencyModel, query: str,
                    scale: float = 1 / 64, runs: int = 2) -> Experiment:
    """The declarative spec of one TPC-H query simulation."""
    from repro.workloads.tpch import TpchWorkload
    workload = TpchWorkload(query, scale=scale, runs=runs)
    cfg = SystemConfig.scaled_default(
        model=model, num_scopes=workload.scaled_scopes())
    return Experiment(
        workload="tpch",
        config=cfg,
        params={"query": query, "scale": scale, "runs": runs},
        max_events=MAX_EVENTS,
    )


def run_ycsb(
    model: ConsistencyModel,
    num_scopes: int,
    variant: str = "base",
    config_fn: Optional[Callable[[SystemConfig], SystemConfig]] = None,
    threads: int = 4,
) -> SimulationResult:
    """One YCSB simulation point (cached by spec hash)."""
    return runner.run(ycsb_experiment(model, num_scopes, variant,
                                      config_fn, threads))


def run_tpch(model: ConsistencyModel, query: str,
             scale: float = 1 / 64, runs: int = 2) -> SimulationResult:
    """One TPC-H query simulation (cached by spec hash)."""
    return runner.run(tpch_experiment(model, query, scale, runs))


def ycsb_sweep(models: List[ConsistencyModel], variant: str = "base",
               config_fn=None, threads: int = 4,
               scopes: Optional[List[int]] = None) -> Dict[str, List[SimulationResult]]:
    """The model x scope-count grid, declared as a Sweep.

    The grid expands declaratively (scope count zipped to its derived
    record count, models crossed over them) and dispatches as one Runner
    batch; ``config_fn`` rides along as the sweep's in-process transform
    for the Fig. 11/12 hardware overrides that plain data cannot express.
    The expanded specs are identical to :func:`ycsb_experiment`'s, so
    single figure points and whole sweeps share the spec-hash cache.
    """
    scopes = scopes or SCOPE_SWEEP
    base_config: Dict[str, object] = {"preset": "scaled"}
    if threads != 4:
        base_config["cores"] = {"num_cores": 2 * threads}
    transform = None
    if config_fn is not None:
        transform = lambda exp, coords: replace(  # noqa: E731
            exp, config=config_fn(exp.config))
    sweep = Sweep(
        name=f"ycsb-{variant}",
        base={
            "workload": "ycsb",
            "params": asdict(ycsb_params(0, threads)),
            "config": base_config,
            "variant": variant,
            "max_events": MAX_EVENTS,
        },
        axes=(
            Axis("model", tuple(m.value for m in models)),
            Axis("scopes", tuple(scopes)),
            Axis("records",
                 tuple(RECORDS_PER_SWEEP_SCOPE * n for n in scopes),
                 path="params.num_records", hidden=True),
        ),
        zip_groups=(("scopes", "records"),),
        transform=transform,
    )
    results = runner.run_all(sweep.experiments())
    per_point = iter(results)
    return {
        model.value: [next(per_point) for _ in scopes]
        for model in models
    }


def normalized(results: Dict[str, List[SimulationResult]],
               baseline: str = "naive") -> Dict[str, List[float]]:
    """Run times normalized to the baseline series (the paper's y-axis)."""
    base = [r.run_time for r in results[baseline]]
    return {
        name: [r.run_time / b for r, b in zip(series, base)]
        for name, series in results.items()
    }


def once(benchmark, fn):
    """Run a whole-figure regeneration exactly once under pytest-benchmark.

    Simulations are deterministic and expensive; statistical repetition
    adds nothing.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
