"""Fig. 9: scope buffer hit rate for TPC-H and YCSB.

The paper's shape: the scope buffer is large enough to hold every
concurrently issued scope, so the first PIM op of a scope's burst misses
and the rest hit -- giving the same high hit rate for every model.
"""

from harness import PROPOSED_MODELS, once, run_tpch, run_ycsb, ycsb_params

from repro.analysis.report import format_table

QUERIES = ["q1", "q6", "q11", "q12", "q22"]  # representative subset
YCSB_SCOPES = 16


def test_fig9_scope_buffer_hit_rate(benchmark):
    def sweep():
        rows = []
        for query in QUERIES:
            rows.append([query] + [
                run_tpch(m, query).scope_buffer_hit_rate
                for m in PROPOSED_MODELS
            ])
        rows.append(["YCSB"] + [
            run_ycsb(m, YCSB_SCOPES).scope_buffer_hit_rate
            for m in PROPOSED_MODELS
        ])
        return rows

    rows = once(benchmark, sweep)
    names = [m.value for m in PROPOSED_MODELS]
    print()
    print(format_table(["workload"] + names, rows,
                       title="Fig. 9: scope buffer hit rate"))

    for row in rows:
        rates = row[1:]
        # the hit rate tracks the burst length: with n PIM ops per scope
        # per computation, (n-1)/n hit.  q11-style queries with short
        # bursts sit lower; everything stays well above zero.
        assert all(r >= 0.4 for r in rates), row
        # "the same hit rate for all models" (atomic/store/scope; the
        # scope-relaxed model's extra scope-fence lookups shift it a bit)
        strict = rates[:3]
        assert max(strict) - min(strict) < 0.05, row[0]
    # long-burst workloads (full queries: 12 ops/scope) hit >0.9
    by_name = {row[0]: row[1:] for row in rows}
    assert all(r > 0.85 for r in by_name["q1"])
    # YCSB hit rate matches the (n-1)/n temporal-locality prediction
    params = ycsb_params(YCSB_SCOPES)
    expected = (params.pim_ops_per_scan - 1) / params.pim_ops_per_scan
    ycsb_rates = rows[-1][1:4]
    assert all(abs(r - expected) < 0.08 for r in ycsb_rates)
