"""Fig. 13: eight worker threads on a 16-core host.

More threads load the memory subsystem harder, so the differences
between the models (and against Naive) widen, with the same ordering as
the four-thread sweep.
"""

from harness import ALL_MODELS, normalized, once, ycsb_sweep

from repro.analysis.report import format_series

SCOPES = [8, 16, 32, 64]  # scaled up: similar scopes-per-thread as Fig. 7


def test_fig13_eight_threads(benchmark):
    def sweep():
        return ycsb_sweep(ALL_MODELS, variant="8t", threads=8, scopes=SCOPES)

    results = once(benchmark, sweep)
    rel = normalized(results)
    print()
    print(format_series("scopes", SCOPES, rel,
                        title="Fig. 13: 8 threads / 16 cores "
                              "(normalized to Naive)"))

    top = -1
    # same trends as with 4 threads: the proposed models track naive,
    # with the scope model in front at high scope counts
    for model in ("atomic", "store", "scope", "scope-relaxed"):
        assert rel[model][top] < 1.3, model
    proposed = {m: rel[m][top]
                for m in ("atomic", "store", "scope", "scope-relaxed")}
    assert min(proposed, key=proposed.get) == "scope"
    # correctness still holds with more threads
    for model in ("atomic", "store", "scope", "scope-relaxed"):
        assert all(r.stale_reads == 0 for r in results[model]), model
