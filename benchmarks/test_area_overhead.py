"""Section VI: hardware area overhead of the scope buffer and SBV."""

from harness import once

from repro.analysis.area import AreaModel
from repro.analysis.report import format_table
from repro.sim.config import SystemConfig


def test_area_overhead(benchmark):
    model = AreaModel(SystemConfig.paper_default())
    summary = once(benchmark, model.summary)
    rows = [
        ["LLC only (atomic/store/scope models)",
         f"{summary['llc_overhead']:.4%}", "0.092%"],
        ["All caches (scope-relaxed model)",
         f"{summary['all_caches_overhead']:.4%}", "0.22%"],
    ]
    print()
    print(format_table(["Configuration", "measured", "paper"], rows,
                       title="Hardware overhead (added SRAM bits / cache SRAM bits)"))
    # the abstract's claim: less than 0.22% in every configuration
    assert summary["llc_overhead"] < 0.0022
    assert summary["all_caches_overhead"] < 0.0022
    assert summary["all_caches_overhead"] > summary["llc_overhead"]
