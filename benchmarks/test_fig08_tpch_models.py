"""Fig. 8: TPC-H query run time per consistency model, normalized to Naive.

The paper's shape: most queries show little difference between models;
where a difference is visible (queries with substantial PIM sections:
q1, q2, q6, q12, q19) the scope model leads, and the geometric mean over
all queries stays within a few percent of Naive for every model.
"""

import math

from harness import ALL_MODELS, once, run_tpch

from repro.analysis.report import format_table
from repro.workloads.tpch import TPCH_QUERIES

QUERIES = list(TPCH_QUERIES)


def test_fig8_tpch_normalized_run_time(benchmark):
    def sweep():
        table = {}
        for query in QUERIES:
            naive = run_tpch(ALL_MODELS[0], query).run_time
            table[query] = {
                m.value: run_tpch(m, query).run_time / naive
                for m in ALL_MODELS
            }
        return table

    table = once(benchmark, sweep)
    names = [m.value for m in ALL_MODELS]
    rows = [[q] + [table[q][n] for n in names] for q in QUERIES]
    geo = ["Geo.Mean"] + [
        math.exp(sum(math.log(table[q][n]) for q in QUERIES) / len(QUERIES))
        for n in names
    ]
    print()
    print(format_table(["query"] + names, rows + [geo],
                       title="Fig. 8: TPC-H run time normalized to Naive"))

    geo_by_name = dict(zip(names, geo[1:]))
    # Geomean band.  The paper reports within ~6%; the miniature's fixed
    # network/ACK latencies loom large on the tiny-scope queries (q11 has
    # 4 scopes even at paper scale) and widen the band -- EXPERIMENTS.md.
    for name in ("atomic", "store", "scope", "scope-relaxed"):
        assert geo_by_name[name] < 1.40, (name, geo_by_name[name])
    # the scope model's geomean leads the proposed models (paper: where
    # differences are visible, the scope model has the best run time)
    assert geo_by_name["scope"] == min(
        geo_by_name[n] for n in ("atomic", "store", "scope", "scope-relaxed"))
    # the queries the paper singles out as having substantial PIM
    # sections show the visible difference, in the scope model's favour
    for query in ("q1", "q6", "q12", "q19"):
        assert table[query]["scope"] < table[query]["atomic"], query
        assert table[query]["scope"] < 1.0, query
    # and on the remaining large-scope filter queries the models track
    # naive closely (paper: "little run time difference on most queries")
    for query in ("q3", "q4", "q7", "q10", "q21"):
        for name in ("atomic", "store", "scope"):
            assert abs(table[query][name] - 1.0) < 0.2, (query, name)
