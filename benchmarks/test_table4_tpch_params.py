"""Table IV: TPC-H query summary."""

from harness import once

from repro.analysis.report import format_table
from repro.workloads.tpch import TPCH_QUERIES


def test_table4_tpch_queries(benchmark):
    rows = once(benchmark, lambda: [
        [q, spec.scopes, spec.section]
        for q, spec in TPCH_QUERIES.items()
    ])
    print()
    print(format_table(["Query", "# Scopes", "PIM section"], rows,
                       title="Table IV: TPC-H query summary"))
    assert len(rows) == 19
    assert ["q9"] not in [[r[0]] for r in rows]
    by_name = {r[0]: r for r in rows}
    assert by_name["q1"][1] == 1832 and by_name["q1"][2] == "Full-query"
    assert by_name["q3"][1] == 2336
    assert by_name["q22"][2] == "Full sub-query"
