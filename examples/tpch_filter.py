"""A TPC-H-style analytic filter on bulk-bitwise PIM.

Two halves:
1. the *functional* query: build a lineitem-like relation on crossbars
   and evaluate a compound predicate (quantity < 24 AND discount >= 5)
   entirely in memory with MAGIC microcode -- the PIMDB execution style
   the paper's evaluation assumes;
2. the *timing* run: one Table IV query's PIM section executed under two
   consistency models, showing the per-query behaviour behind Fig. 8.

Run: python examples/tpch_filter.py [query]
"""

import sys

from repro.analysis.report import format_table
from repro.api import Axis, Campaign, Sweep, run_campaign
from repro.core.scope import ScopeMap
from repro.pim.database import PimDatabase
from repro.pim.isa import PimInstruction
from repro.workloads.tpch import TPCH_QUERIES, TpchWorkload, tpch_schema


def functional_filter() -> None:
    print("=== Functional PIM filter (PIMDB style) ===")
    scope_map = ScopeMap(pim_base=1 << 34, scope_bytes=256 << 10, num_scopes=2)
    db = PimDatabase(list(scope_map.scopes()), tpch_schema(),
                     records_per_scope=1024)
    for i in range(800):
        db.insert(i, {
            "quantity": (i * 7) % 50,
            "price": 100 + i,
            "discount": i % 11,
            "shipdate": 19940101 + (i % 365),
        })

    # WHERE quantity < 24 AND discount >= 5 (a q6-like predicate),
    # evaluated as three PIM ops per scope -- the fine-grained ISA the
    # paper describes in Section IV-A.
    total_cycles = 0
    for shard in db.shards:
        _, c1 = shard.execute(PimInstruction.scan_lt("quantity", 24, slot=1))
        _, c2 = shard.execute(PimInstruction.scan_ge("discount", 5, slot=2))
        _, c3 = shard.execute(PimInstruction.combine_and(1, 2, dst=0))
        total_cycles = c1 + c2 + c3
    matches = [
        row for row in range(800)
        if (lambda s, l: s.result_bitmap(0)[l])(*db.shard_of(row))
    ]
    expect = [i for i in range(800) if (i * 7) % 50 < 24 and i % 11 >= 5]
    assert matches == expect, "PIM filter disagrees with the reference!"
    print(f"predicate matched {len(matches)} of 800 rows "
          f"(verified against a Python reference)")
    print(f"PIM section: 3 ops x {total_cycles} array cycles per scope, "
          f"all scopes in parallel\n")


def timing_run(query: str) -> None:
    spec = TPCH_QUERIES[query]
    print(f"=== Timing: {query} ({spec.section}, {spec.scopes} scopes at "
          f"paper scale) ===")
    num_scopes = TpchWorkload(query, scale=1 / 64).scaled_scopes()
    campaign = Campaign(
        name="tpch-timing",
        title=f"TPC-H {query} per consistency model",
        sweeps=(Sweep(
            name="tpch",
            base={
                "workload": "tpch",
                "params": {"query": query, "scale": 1 / 64, "runs": 3},
                "config": {"preset": "scaled", "num_scopes": num_scopes},
                "max_events": 200_000_000,
            },
            axes=(Axis("model", ("naive", "atomic", "scope")),),
        ),),
    )
    results = run_campaign(campaign).results()
    naive_time = results[0].run_time
    rows = [[r.model_name, r.run_time, r.run_time / naive_time,
             r.stale_reads] for r in results]
    print(format_table(["model", "cycles", "vs naive", "stale reads"], rows))


if __name__ == "__main__":
    functional_filter()
    timing_run(sys.argv[1] if len(sys.argv) > 1 else "q6")
