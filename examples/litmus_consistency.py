"""The paper's Fig. 1: why software cache flushes cannot fix PIM coherency.

A thread writes A and B (with fences), flushes both lines, and issues a
PIM op that rewrites the whole scope.  Looks correct -- yet a prefetcher
(or any other thread) touching A *between the flush and the PIM op*
re-caches the stale value, and a reader can then observe the PIM op's
effect on B while still reading the old A.  That observation closes a
happens-before cycle: W(A) -> W(B) -> PIMop -> W(A).

This script model-checks both mechanisms over every interleaving, then
replays the same pattern on the full timing simulator through the
experiment API (the registered ``litmus`` workload): the Naive baseline
reads stale PIM results, the paper's atomic model never does.

Run: python examples/litmus_consistency.py
"""

from repro.api import Experiment, Runner
from repro.core.litmus import (
    LitmusExecutor, fig1_program, fig1_violation, fig1_violation_reachable,
)
from repro.core.ordering import fig1_happens_before


def main() -> None:
    program = fig1_program()
    print("Fig. 1 litmus test")
    print("  T0: W(A)=A0; fence; W(B)=B0; fence; Flush(A); Flush(B); fence; PIMop")
    print("  T1: r1=R(B); r2=R(B); r3=R(A)")
    print("  violation: r1=B0, r2=B1 (PIM result), r3=A0 (stale)")
    print()

    for flush_atomic, label in [(False, "software flush [9,25]"),
                                (True, "atomic flush (this paper)")]:
        executor = LitmusExecutor(program, flush_atomic=flush_atomic)
        outcomes = executor.outcomes()
        reachable = executor.reachable(fig1_violation)
        verdict = "REACHABLE -- broken" if reachable else "impossible -- safe"
        print(f"{label:28s}: {len(outcomes):4d} outcomes, violation {verdict}")

    print()
    print("Happens-before relation when the stale read occurs:")
    hb = fig1_happens_before(stale_read_of_a=True)
    for before, after, label in sorted(hb.edges()):
        print(f"  {before:6s} -> {after:6s}   ({label})")
    cycle = hb.find_cycle()
    print(f"cycle: {' -> '.join(cycle)}")
    print()
    assert fig1_violation_reachable(False) and not fig1_violation_reachable(True)
    print("Conclusion: ordering guarantees require the cache flush to be")
    print("ATOMIC with the PIM op -- which is exactly what the paper's four")
    print("consistency models enforce in hardware (Sections III-V).")
    print()
    timing_replay()


def timing_replay() -> None:
    """The same pattern on the timing stack, via the experiment API."""
    print("Timing-simulator replay (registered 'litmus' workload):")
    runner = Runner()
    for model in ("naive", "atomic"):
        result = runner.run(Experiment.from_dict({
            "workload": "litmus",
            "params": {"rounds": 4, "threads": 2},
            "config": {"preset": "scaled", "model": model, "num_scopes": 2},
        }))
        print(f"  {model:8s}: {result.run_time:6,} cycles, "
              f"{result.stale_reads} stale PIM-result reads")
    print("The abstract machine's reachable violation is a real stale read")
    print("on the cycle-level model; the atomic flush removes it.")


if __name__ == "__main__":
    main()
