"""YCSB short-range scans under all seven coherency/consistency designs.

Reproduces the flavour of Figs. 3 and 7 in one table: for a fixed
database size, run the 95%-scan / 5%-insert YCSB mix (Table III) under
the four proposed consistency models and the three baselines, and report
run time (normalized to Naive) plus correctness.  The whole grid is one
declarative Sweep -- a base experiment template crossed with a model
axis -- executed as a campaign; pass a jobs count to fan it across
worker processes.

Run: python examples/ycsb_scan.py [num_scopes] [jobs]
"""

import sys

from repro.analysis.report import format_table
from repro.api import Axis, Campaign, Sweep, run_campaign
from repro.core.models import ConsistencyModel
from repro.workloads.ycsb import YcsbParams, YcsbWorkload

MODELS = [
    ConsistencyModel.NAIVE,
    ConsistencyModel.SW_FLUSH,
    ConsistencyModel.UNCACHEABLE,
    ConsistencyModel.ATOMIC,
    ConsistencyModel.STORE,
    ConsistencyModel.SCOPE,
    ConsistencyModel.SCOPE_RELAXED,
]


def main(num_scopes: int = 16, jobs: int = 1) -> None:
    params = YcsbParams(num_records=num_scopes * 2000, num_ops=30,
                        threads=4, seed=7)
    workload = YcsbWorkload(params)
    print(f"YCSB: {params.num_records} records over {num_scopes} scopes, "
          f"{params.num_ops} operations, {params.threads} worker threads")
    print(f"scan PIM-op latency (from compiled MAGIC microcode): "
          f"{workload.pim_op_latency():,} host cycles at paper scale\n")

    campaign = Campaign(
        name="ycsb-scan",
        title="YCSB scans under every coherency/consistency design",
        sweeps=(Sweep(
            name="ycsb",
            base={
                "workload": "ycsb",
                "params": workload.params,
                "config": {"preset": "scaled", "num_scopes": num_scopes},
                "max_events": 200_000_000,
            },
            axes=(Axis("model", tuple(m.value for m in MODELS)),),
        ),),
    )
    results = run_campaign(campaign, jobs=jobs).results()

    rows = []
    naive_time = next(r for r in results if r.model_name == "naive").run_time
    for result in results:
        rows.append([
            result.model_name,
            result.run_time,
            result.run_time / naive_time,
            result.stale_reads,
            "yes" if result.stale_reads == 0 else "NO",
            f"{result.pim.buffer_len_at_arrival:.1f}",
            f"{result.pim.unique_scopes_at_arrival:.1f}",
        ])
    print(format_table(
        ["model", "cycles", "vs naive", "stale reads", "correct",
         "PIM buf", "uniq scopes"],
        rows,
        title="YCSB run time and correctness per model",
    ))
    print()
    print("Reading the table:")
    print(" * naive/sw-flush give no ordering guarantee (stale reads possible);")
    print(" * uncacheable is correct but pays for losing the cache (Fig. 3);")
    print(" * the four proposed models are correct at a few percent overhead,")
    print("   and the scope model's PIM-op interleaving leads at scale (Fig. 7).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16,
         int(sys.argv[2]) if len(sys.argv) > 2 else 1)
