"""Quickstart: bulk-bitwise PIM from bits to consistency models.

Three stops:
1. run a *real* bulk-bitwise range scan -- MAGIC NOR microcode executing
   on memristive crossbar arrays;
2. simulate the same kind of workload on the full timing model under the
   paper's strictest (atomic) consistency model;
3. show what goes wrong without one: the naive baseline reads stale PIM
   results.

Run: python examples/quickstart.py
"""

from repro.api import Experiment, Runner
from repro.core.scope import ScopeMap
from repro.pim.database import PimDatabase, RecordSchema
from repro.pim.isa import PimInstruction


def functional_scan() -> None:
    print("=== 1. Functional bulk-bitwise PIM (MAGIC NOR on crossbars) ===")
    scope_map = ScopeMap(pim_base=1 << 34, scope_bytes=128 << 10, num_scopes=4)
    schema = RecordSchema.ycsb(num_fields=2, field_bytes=4)
    db = PimDatabase(list(scope_map.scopes()), schema, records_per_scope=512)

    for key in range(200):
        db.insert(key, {"field0": key * 3, "field1": key + 1000})

    instr = PimInstruction.scan_range("key", 50, 60)
    bitmaps, array_cycles = db.scan(instr)
    rows = db.matching_rows(bitmaps)
    print(f"scan 50 <= key < 60 -> rows {rows}")
    print(f"one PIM op compiled to {array_cycles} MAGIC array cycles "
          f"(~{array_cycles * 10 / 1000:.1f} us at 10 ns/cycle)")

    shard, local = db.shard_of(rows[0])
    print(f"row {rows[0]}: field0={shard.read_field(local, 'field0')} "
          f"field1={shard.read_field(local, 'field1')}")
    print()


def _ycsb_experiment(model: str) -> Experiment:
    """A declarative experiment spec: workload by name, config by preset."""
    return Experiment.from_dict({
        "workload": "ycsb",
        "params": {"num_records": 8000, "num_ops": 20, "threads": 4,
                   "seed": 1},
        "config": {"preset": "scaled", "model": model, "num_scopes": 4},
        "max_events": 50_000_000,
    })


def timing_simulation() -> None:
    print("=== 2. Timing simulation under the atomic consistency model ===")
    result = Runner().run(_ycsb_experiment("atomic"))
    print(f"run time:               {result.run_time:,} cycles")
    print(f"PIM ops executed:       {result.pim.ops_executed:.0f}")
    print(f"scope buffer hit rate:  {result.llc.hit_rate:.2f}")
    print(f"mean LLC scan latency:  {result.llc.scan_latency:.1f} cycles "
          f"(of {result.config.llc.num_sets} sets)")
    print(f"SBV skipped-set ratio:  {result.llc.skipped_set_ratio:.3f}")
    print(f"stale PIM-result reads: {result.stale_reads}")
    print()


def why_consistency_matters() -> None:
    print("=== 3. The same run with no consistency model (Naive) ===")
    result = Runner().run(_ycsb_experiment("naive"))
    print(f"run time:               {result.run_time:,} cycles")
    print(f"stale PIM-result reads: {result.stale_reads}  <-- wrong answers")
    print()
    print("The naive system returns cached pre-PIM data: every 'stale read'")
    print("is a query result the application computed from garbage.")


if __name__ == "__main__":
    functional_scan()
    timing_simulation()
    why_consistency_matters()
