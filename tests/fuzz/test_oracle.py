"""The invariant oracle: must-hold checks pass, controls violate."""

import pytest

from repro.core.models import ConsistencyModel
from repro.fuzz.generate import generate_batch
from repro.fuzz.oracle import (LATTICE, check_coherence, check_lattice,
                               check_program, fingerprints)
from repro.fuzz.program import FuzzOp, build_program

#: The canonical interesting scenario, Fig. 1 shape: one thread caches
#: the line with a pre-PIM load, stores, software-flushes, issues the
#: PIM op, then reads the result back.  The post-PIM load is program-
#: ordered after the PIM, so serving it a stale cached value closes a
#: happens-before cycle.  (A reader on *another* thread with no
#: synchronization may legitimately observe old values -- that is
#: consistency, not a violation.)
FIG1ISH = build_program(
    threads=[
        [FuzzOp("load", 0, 0), FuzzOp("store", 0, 0),
         FuzzOp("flush", 0, 0), FuzzOp("pim", 0), FuzzOp("load", 0, 0)],
    ],
    slots=[1],
)


def test_fixed_seed_batch_has_zero_violations():
    for program in generate_batch(seed=20230101, count=6):
        assert check_program(program) == []


def test_lattice_models_are_ordered_strong_to_weak():
    assert [m.value for m in LATTICE] \
        == ["atomic", "store", "scope", "scope-relaxed"]


def test_controls_violate_on_the_canonical_scenario():
    for control in (ConsistencyModel.NAIVE, ConsistencyModel.SW_FLUSH):
        violations = check_coherence(FIG1ISH, control)
        assert violations, f"{control.value} found no violation"
        assert any(v.invariant == "hb-cycle" for v in violations)


def test_proposed_models_are_clean_on_the_canonical_scenario():
    for model in LATTICE + (ConsistencyModel.UNCACHEABLE,):
        assert check_coherence(FIG1ISH, model) == []


def test_weakened_atomic_flush_is_caught():
    violations = check_coherence(FIG1ISH, ConsistencyModel.ATOMIC,
                                 weaken="no-atomic-flush")
    assert violations
    cycles = [v for v in violations if v.invariant == "hb-cycle"]
    assert cycles and cycles[0].cycle is not None


def test_check_lattice_accepts_generated_programs():
    for program in generate_batch(seed=77, count=3):
        assert check_lattice(program) == []


def test_fingerprints_cover_all_executor_legs_and_are_stable():
    prints = fingerprints(FIG1ISH)
    inorder = {k for k in prints if k.startswith("inorder:")}
    reorder = {k for k in prints if k.startswith("reorder:")}
    # All seven mechanisms in-order, the four proposed under reordering.
    assert len(inorder) == 7 and len(reorder) == 4
    assert prints == fingerprints(FIG1ISH)
    # Naive admits strictly more in-order outcomes than atomic here.
    assert prints["inorder:naive"] != prints["inorder:atomic"]
