"""The fuzz_run orchestration: determinism, corpus, replay, self-test."""

import json

import pytest

from repro.api.store import ResultStore
from repro.fuzz.corpus import FuzzCorpus
from repro.fuzz.harness import fuzz_run, replay_corpus

SEED = 7
PROGRAMS = 3


@pytest.fixture(scope="module")
def banked(tmp_path_factory):
    """One serial fuzz run banked into a store (shared by the tests)."""
    root = tmp_path_factory.mktemp("fuzz-store")
    store = ResultStore(root)
    report = fuzz_run(seed=SEED, programs=PROGRAMS, store=store,
                      corpus_root=store.root)
    return store, report


def test_run_is_clean_and_banks_survivors(banked):
    store, report = banked
    assert report["violations"] == []
    assert report["clean_programs"] == PROGRAMS
    assert report["corpus_added"] == PROGRAMS
    assert len(FuzzCorpus(store.root)) == PROGRAMS
    # Controls demonstrably violate on this batch.
    assert report["controls_cyclic"]["naive"] > 0
    assert report["controls_cyclic"]["sw-flush"] > 0
    # Timing leg: stale reads only on the two baselines.
    stale = report["timing"]["stale_reads"]
    for model in ("atomic", "store", "scope", "scope-relaxed"):
        assert stale[model] == 0
    assert stale["naive"] + stale["sw-flush"] > 0


def test_report_is_byte_identical_across_backends(banked, tmp_path):
    _store, serial_report = banked
    pool_store = ResultStore(tmp_path / "pool-store")
    pool_report = fuzz_run(seed=SEED, programs=PROGRAMS, jobs=2,
                           store=pool_store, corpus_root=pool_store.root)
    as_bytes = lambda r: json.dumps(r, indent=2, sort_keys=True)
    assert as_bytes(serial_report) == as_bytes(pool_report)


def test_replay_passes_then_catches_tampering(banked):
    store, _report = banked
    assert replay_corpus(store.root, store=store)["mismatches"] == {}

    corpus = FuzzCorpus(store.root)
    entry = next(corpus.entries())
    leg = next(iter(entry["fingerprints"]))
    entry["fingerprints"][leg] = "0" * 16
    corpus.add(entry)
    try:
        mismatches = replay_corpus(store.root, store=store,
                                   timing=False)["mismatches"]
        assert entry["digest"] in mismatches
        assert any(leg in line for line in mismatches[entry["digest"]])
    finally:
        # Re-banking the same seed repairs the tampered entry in place.
        report = fuzz_run(seed=SEED, programs=PROGRAMS, store=store,
                          corpus_root=store.root)
        assert report["violations"] == []


def test_weakened_run_produces_shrunk_repros_and_no_corpus(tmp_path):
    store = ResultStore(tmp_path / "weak-store")
    report = fuzz_run(seed=SEED, programs=2, store=store,
                      corpus_root=store.root, timing=False,
                      weaken="no-atomic-flush")
    assert report["violations"], "weakened mechanism went undetected"
    for violation in report["violations"]:
        assert violation["op_count"] <= 8
        assert violation["invariant"] in ("value-conservation", "hb-cycle")
    assert report["corpus_added"] == 0
    corpus = FuzzCorpus(store.root)
    assert len(corpus) == 0
    repros = list(corpus.repros())
    assert repros
    assert all(r["schema"] == "repro-fuzz-repro/1" for r in repros)


def test_unknown_weaken_mode_is_rejected():
    with pytest.raises(ValueError, match="weaken"):
        fuzz_run(seed=1, programs=1, weaken="nonesuch")
