"""Generator determinism and structural validity."""

from repro.fuzz.generate import GeneratorKnobs, generate_batch


def test_same_seed_same_batch():
    a = generate_batch(seed=11, count=12)
    b = generate_batch(seed=11, count=12)
    assert [p.to_dict() for p in a] == [p.to_dict() for p in b]


def test_different_seeds_differ():
    a = {p.digest() for p in generate_batch(seed=1, count=8)}
    b = {p.digest() for p in generate_batch(seed=2, count=8)}
    assert a != b


def test_batch_members_validate_and_are_distinct():
    batch = generate_batch(seed=5, count=16)
    assert len(batch) == 16
    digests = set()
    for program in batch:
        program.validate()  # must not raise
        digests.add(program.digest())
    assert len(digests) == 16


def test_max_ops_bound_drops_loads_to_fit():
    # The budget sheds observer loads, never writer-block structure, so
    # it is exact whenever one scope's writer block fits the budget.
    knobs = GeneratorKnobs(scopes=(1, 1)).bounded(6)
    for program in generate_batch(seed=9, count=10, knobs=knobs):
        assert program.op_count <= 6


def test_every_program_exercises_a_pim_op():
    """A scenario without a PIM op checks nothing interesting."""
    for program in generate_batch(seed=13, count=10):
        assert program.pim_scopes()
