"""Flight-recorder dumps: deterministic capture, corpus persistence.

The contract under test: a flight dump is self-describing -- replaying
the program it embeds reproduces the byte-identical snapshot -- and the
snapshot's ring actually holds the events leading up to the firing
invariant (a stale read observed by a core).
"""

import json

import pytest

from repro.fuzz.corpus import FLIGHT_SCHEMA, FuzzCorpus
from repro.fuzz.generate import GeneratorKnobs, generate_batch
from repro.fuzz.harness import flight_dump
from repro.fuzz.program import FuzzProgram


@pytest.fixture(scope="module")
def staleful_program():
    """A generated program with stale reads under the naive model."""
    for program in generate_batch(0, 16, GeneratorKnobs()):
        dump = flight_dump(program, "naive", seed=0)
        if dump["flight_triggers"]:
            return program
    pytest.skip("no naive stale reads in the probe batch")


def test_dump_is_self_describing_and_snapshots_the_ring(staleful_program):
    dump = flight_dump(staleful_program, "naive", seed=0)
    assert dump["schema"] == FLIGHT_SCHEMA
    assert dump["digest"] == staleful_program.digest()
    assert dump["model"] == "naive"
    assert dump["stale_reads"] > 0
    flight = dump["flight"]
    assert flight["trigger"] == "stale_read"
    assert flight["events"], "snapshot must carry the preceding events"
    # the snapshot stops at the trigger: nothing recorded after it
    assert all(record[0] <= flight["cycle"] for record in flight["events"])


def test_dump_replays_byte_identical(staleful_program):
    first = flight_dump(staleful_program, "naive", seed=0)
    # replay purely from the dump, as a bug triage would
    replayed_program = FuzzProgram.from_dict(first["program"])
    second = flight_dump(replayed_program, first["model"],
                         rounds=first["rounds"], ring=first["ring"],
                         seed=first["seed"])
    assert (json.dumps(first, sort_keys=True)
            == json.dumps(second, sort_keys=True))


def test_clean_model_produces_no_snapshot(staleful_program):
    dump = flight_dump(staleful_program, "atomic", seed=0)
    assert dump["stale_reads"] == 0
    assert dump["flight_triggers"] == 0
    assert dump["flight"] is None


def test_corpus_flight_round_trip(tmp_path, staleful_program):
    corpus = FuzzCorpus(str(tmp_path))
    dump = flight_dump(staleful_program, "naive", seed=0)
    path = corpus.write_flight(dump)
    assert path.endswith(f"{dump['digest']}-naive.json")
    (loaded,) = corpus.flights()
    assert loaded == json.loads(json.dumps(dump))  # JSON round trip
