"""The delta-debugging shrinker: minimal repros stay failing and valid."""

from repro.core.models import ConsistencyModel
from repro.fuzz.generate import generate_batch
from repro.fuzz.oracle import check_coherence
from repro.fuzz.shrink import shrink


def _weakened_fails(program):
    return bool(check_coherence(program, ConsistencyModel.ATOMIC,
                                weaken="no-atomic-flush"))


def test_shrunk_repro_is_small_still_failing_and_valid():
    candidates = [p for p in generate_batch(seed=42, count=4)
                  if _weakened_fails(p)]
    assert candidates, "seed batch produced no weakened violation"
    for program in candidates:
        shrunk, checks = shrink(program, _weakened_fails)
        shrunk.validate()
        assert _weakened_fails(shrunk)
        assert shrunk.op_count <= 8, shrunk.to_dict()
        assert shrunk.op_count <= program.op_count
        assert checks > 0


def test_shrink_is_deterministic():
    program = next(p for p in generate_batch(seed=42, count=4)
                   if _weakened_fails(p))
    a, _ = shrink(program, _weakened_fails)
    b, _ = shrink(program, _weakened_fails)
    assert a.to_dict() == b.to_dict()


def test_shrink_respects_the_check_budget():
    program = next(p for p in generate_batch(seed=42, count=4)
                   if _weakened_fails(p))
    _, checks = shrink(program, _weakened_fails, max_checks=3)
    assert checks <= 3
