"""FuzzProgram structure: validation, serialization, renderings."""

import pytest

from repro.core.models import ConsistencyModel
from repro.fuzz.program import FuzzOp, FuzzProgram, fuzz_address


def _program(threads, slots=(2,), prefetch=1):
    return FuzzProgram(
        threads=tuple(tuple(ops) for ops in threads),
        slots=tuple(slots),
        prefetch_budget=prefetch,
        seed=3,
    )


PIM0 = FuzzOp("pim", 0)
LOAD00 = FuzzOp("load", 0, 0)
STORE00 = FuzzOp("store", 0, 0)


def test_round_trip_preserves_program_and_digest():
    program = _program([[STORE00, FuzzOp("flush", 0, 0), PIM0],
                        [LOAD00, FuzzOp("fence"), FuzzOp("load", 0, 1)]])
    program.validate()
    clone = FuzzProgram.from_dict(program.to_dict())
    assert clone == program
    assert clone.digest() == program.digest()


def test_digest_ignores_seed_but_not_structure():
    a = _program([[PIM0, LOAD00]])
    b = FuzzProgram(threads=a.threads, slots=a.slots,
                    prefetch_budget=a.prefetch_budget, seed=99)
    assert a.digest() == b.digest()
    c = _program([[PIM0, FuzzOp("load", 0, 1)]])
    assert a.digest() != c.digest()


def test_validate_rejects_two_pims_per_scope():
    with pytest.raises(ValueError, match="PIM"):
        _program([[PIM0, PIM0]]).validate()


def test_validate_rejects_foreign_store_to_pim_scope():
    # Thread 1 stores into scope 0, whose PIM op lives on thread 0.
    with pytest.raises(ValueError):
        _program([[PIM0], [STORE00]]).validate()


def test_validate_rejects_store_after_pim():
    with pytest.raises(ValueError):
        _program([[PIM0, STORE00]]).validate()


def test_validate_rejects_duplicate_store_address():
    with pytest.raises(ValueError):
        _program([[STORE00, STORE00, PIM0]]).validate()


def test_validate_rejects_out_of_range_references():
    with pytest.raises(ValueError):
        _program([[FuzzOp("load", 1, 0)]], slots=(1,)).validate()
    with pytest.raises(ValueError):
        _program([[FuzzOp("load", 0, 5)]], slots=(2,)).validate()


def test_store_values_are_unique_and_ordered():
    program = _program(
        [[STORE00, FuzzOp("store", 0, 1), PIM0]], slots=(2,))
    values = program.store_values()
    assert sorted(values.values()) == [1, 2]


def test_renderings_differ_only_where_the_mechanism_does():
    program = _program([[STORE00, FuzzOp("flush", 0, 0), PIM0, LOAD00]])
    program.validate()
    bare = program.rendering(ConsistencyModel.ATOMIC)
    swf = program.rendering(ConsistencyModel.SW_FLUSH)
    relaxed = program.rendering(ConsistencyModel.SCOPE_RELAXED)
    kinds = lambda r: [op.kind.name for op in r.threads[0]]
    assert "FLUSH" not in kinds(bare)
    assert "FLUSH" in kinds(swf)
    assert kinds(relaxed)[kinds(relaxed).index("PIM_OP") + 1] \
        == "SCOPE_FENCE"


def test_fuzz_addresses_are_disjoint_across_scopes():
    seen = set()
    for scope in range(3):
        for index in range(4):
            addr = fuzz_address(scope, index)
            assert addr not in seen
            seen.add(addr)
