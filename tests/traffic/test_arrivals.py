"""Arrival-schedule determinism: the open-loop methodology's bedrock.

Every schedule is a pure function of ``(process, parameters, seed)``:
same seed, same array -- across calls, processes and backends.  The
string-seeded ``random.Random`` hashes through SHA-512, so this holds
across machines too (no ``PYTHONHASHSEED`` dependence).
"""

import pytest

from repro.sim.config import ARRIVAL_KINDS, TrafficConfig
from repro.traffic import arrival_times

OPEN_KINDS = tuple(k for k in ARRIVAL_KINDS if k != "closed")


def _config(kind, **kwargs):
    kwargs.setdefault("offered_load", 0.5)
    return TrafficConfig(arrival=kind, **kwargs)


@pytest.mark.parametrize("kind", OPEN_KINDS)
def test_same_seed_same_schedule(kind):
    a = arrival_times(_config(kind, seed=3), 200)
    b = arrival_times(_config(kind, seed=3), 200)
    assert a == b
    assert len(a) == 200


@pytest.mark.parametrize("kind", OPEN_KINDS)
def test_different_seeds_differ(kind):
    a = arrival_times(_config(kind, seed=3), 200)
    b = arrival_times(_config(kind, seed=4), 200)
    assert a != b


@pytest.mark.parametrize("kind", OPEN_KINDS)
def test_schedules_are_monotonic_nonnegative_ints(kind):
    times = arrival_times(_config(kind), 500)
    assert all(isinstance(t, int) for t in times)
    assert times[0] >= 0
    assert all(b >= a for a, b in zip(times, times[1:]))


def test_processes_produce_distinct_schedules():
    schedules = {kind: tuple(arrival_times(_config(kind), 300))
                 for kind in OPEN_KINDS}
    assert len(set(schedules.values())) == len(OPEN_KINDS)


def test_mean_rate_tracks_offered_load():
    """Poisson inter-arrivals average 1000/offered_load cycles."""
    times = arrival_times(_config("poisson", offered_load=0.5, seed=9),
                          4000)
    mean_gap = times[-1] / (len(times) - 1)
    assert 2000 * 0.8 < mean_gap < 2000 * 1.2


def test_burst_is_burstier_than_poisson():
    """The 2-state MMPP's gap variance exceeds Poisson's at equal load
    (that is its whole point); compare squared coefficients of
    variation, which are scale-free."""

    def cv2(times):
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return var / (mean * mean)

    poisson = arrival_times(_config("poisson", seed=5), 4000)
    burst = arrival_times(_config("burst", seed=5, burstiness=8.0), 4000)
    assert cv2(burst) > cv2(poisson)


def test_ramp_accelerates():
    """Diurnal ramp: the second half of the stream arrives faster than
    the first half (rate climbs from base/peak to base*peak)."""
    times = arrival_times(_config("ramp", seed=2, ramp_peak=4.0), 2000)
    first_half = times[1000] - times[0]
    second_half = times[-1] - times[1000]
    assert second_half < first_half


def test_closed_loop_has_no_schedule():
    with pytest.raises(ValueError):
        arrival_times(TrafficConfig(), 10)


def test_empty_stream_rejected():
    with pytest.raises(ValueError):
        arrival_times(_config("poisson"), 0)
