"""Golden-value tests for :class:`repro.sim.stats.HistogramStat`.

The histogram backs the latency percentiles in EXPERIMENTS.md, so its
arithmetic is pinned here with hand-computed expectations: bucket
boundaries, ceiling-rank percentiles, the max clamp, and exact merging
(the property the Serial-vs-ProcessPool digest parity rests on).
"""

import pytest

from repro.sim.stats import HistogramStat, StatGroup


def _hist(values, name="latency"):
    h = HistogramStat(name)
    for v in values:
        h.record(v)
    return h


def test_small_values_are_exact():
    """Values below 8 occupy unit buckets: percentiles are exact."""
    h = _hist(range(8))  # 0..7
    assert h.percentile(50, 100) == 3   # rank ceil(8*0.50)=4 -> 3
    assert h.percentile(99, 100) == 7
    assert h.percentile(1, 100) == 0    # rank 1 -> smallest sample
    assert h.max == 7 and h.min == 0


def test_bucket_bounds_are_hand_computed():
    # 8..15 still exact (first octave has unit-wide sub-buckets).
    for v in range(8, 16):
        assert HistogramStat._upper_bound(HistogramStat._index(v)) == v
    # 16 and 17 share the first two-wide bucket, reported as 17.
    assert HistogramStat._index(16) == HistogramStat._index(17) == 16
    assert HistogramStat._upper_bound(16) == 17
    # 500 lands in [480, 511].
    i = HistogramStat._index(500)
    assert HistogramStat._index(480) == i
    assert HistogramStat._upper_bound(i) == 511


@pytest.mark.parametrize("value", list(range(1, 300)) + [10 ** 6, 10 ** 9])
def test_relative_error_bounded_at_12_5_percent(value):
    bound = HistogramStat._upper_bound(HistogramStat._index(value))
    assert bound >= value
    assert bound <= value + max(1, value >> 3)


def test_percentiles_of_a_known_distribution():
    h = _hist(range(1, 1001))  # 1..1000
    # rank 500 -> sample 500 -> bucket upper bound 511
    assert h.percentile(50, 100) == 511
    # rank 990 -> sample 990 -> bucket [960,1023], clamped to max=1000
    assert h.percentile(99, 100) == 1000
    assert h.percentile(999, 1000) == 1000
    assert h.max == 1000 and h.min == 1
    assert h.mean == pytest.approx(500.5)


def test_percentile_never_exceeds_observed_max():
    """The top bucket's upper bound can overshoot by the bucket width;
    the clamp keeps every reported percentile <= the exact max."""
    h = _hist([1000])
    assert h.percentile(50, 100) == 1000
    assert h.percentile(999, 1000) == 1000


def test_merge_equals_single_histogram():
    """Merging per-core histograms is exact: same snapshot as one
    histogram that saw every sample (in any order)."""
    samples = [(i * 37) % 4001 for i in range(900)]
    whole = _hist(samples)
    a = _hist(samples[0::3])
    b = _hist(samples[1::3])
    c = _hist(samples[2::3])
    a.merge(b)
    a.merge(c)
    left, right = {}, {}
    whole.snapshot(left)
    a.snapshot(right)
    assert left == right


def test_merge_into_empty_histogram():
    target = HistogramStat("latency")
    target.merge(_hist([5, 900]))
    assert target.count == 2
    assert target.min == 5 and target.max == 900


def test_empty_histogram_snapshot():
    h = HistogramStat("latency")
    out = {}
    h.snapshot(out)
    assert out == {"latency_p50": 0, "latency_p99": 0, "latency_p999": 0,
                   "latency_max": 0, "latency_min": 0, "latency_mean": 0.0,
                   "latency_count": 0}


def test_negative_samples_clamp_to_zero():
    h = _hist([-5])
    assert h.min == 0 and h.max == 0


def test_stat_group_integration():
    g = StatGroup("traffic")
    g.histogram("latency").record(100)
    g.counter("req_offered").add(3)
    out = g.as_dict()
    assert out["latency_count"] == 1
    assert out["latency_p50"] == 100  # [96,103] bucket, clamped to max
    assert out["req_offered"] == 3


def test_snapshot_order_independent():
    """Byte-stability: recording order must not leak into the snapshot
    (ProcessPool shards complete in nondeterministic order)."""
    samples = [7, 7000, 13, 13, 255, 64]
    left, right = {}, {}
    _hist(samples).snapshot(left)
    _hist(list(reversed(samples))).snapshot(right)
    assert left == right
