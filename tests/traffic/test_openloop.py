"""End-to-end open-loop runs: admission accounting and backend parity.

The bounded queue's books must balance exactly (every offered request is
admitted or dropped, every admitted request settles), and an open-loop
experiment must produce byte-identical result payloads on the Serial and
ProcessPool backends -- the digest gate EXPERIMENTS.md relies on.
"""

import pytest

from repro.api.backends import (
    ProcessPoolBackend,
    SerialBackend,
    execute_experiment,
)
from repro.api.experiment import Experiment
from repro.system.simulation import result_digest


def _experiment(model="scope", arrival="poisson", load=0.5, depth=16,
                **traffic):
    config = {"preset": "scaled", "model": model, "num_scopes": 4}
    if arrival != "closed":
        config["traffic"] = dict(
            {"arrival": arrival, "offered_load": load,
             "queue_depth": depth}, **traffic)
    return Experiment.from_dict({
        "workload": "ycsb",
        "params": {"num_ops": 20, "num_records": 2000,
                   "scan_fraction": 1.0, "seed": 11},
        "config": config,
        "variant": "test-openloop",
    })


def test_closed_loop_has_no_traffic_group():
    result = execute_experiment(_experiment(arrival="closed"))
    assert "traffic" not in result.stats
    assert not result.traffic


@pytest.mark.parametrize("arrival", ("poisson", "burst", "ramp"))
def test_admission_books_balance(arrival):
    result = execute_experiment(_experiment(arrival=arrival))
    t = result.traffic
    assert t.req_offered > 0
    assert t.req_offered == t.req_admitted + t.req_dropped
    assert t.req_completed == t.req_admitted
    assert t.latency_count == t.req_completed
    assert 0 < t.latency_p50 <= t.latency_p99 <= t.latency_p999
    assert t.latency_p999 <= t.latency_max


def test_unbounded_queue_never_drops():
    result = execute_experiment(_experiment(load=2.0, depth=None))
    t = result.traffic
    assert t.req_dropped == 0
    assert t.req_admitted == t.req_offered


def test_bounded_queue_sheds_under_overload():
    """~6x capacity with a 2-deep queue: drops must engage, and the
    books must still balance to the request."""
    result = execute_experiment(_experiment(load=2.0, depth=2))
    t = result.traffic
    assert t.req_dropped > 0
    assert t.req_offered == t.req_admitted + t.req_dropped
    assert t.req_completed == t.req_admitted
    assert t.queue_depth_max <= 2


def test_deeper_queue_drops_less():
    shallow = execute_experiment(_experiment(load=2.0, depth=2)).traffic
    deep = execute_experiment(_experiment(load=2.0, depth=8)).traffic
    assert deep.req_dropped < shallow.req_dropped
    assert deep.req_offered == shallow.req_offered


def test_latency_measured_from_arrival_not_issue():
    """Saturating load: queueing delay dominates, so the arrival-to-
    settle p50 must exceed the unloaded (low-load) p50 by a wide margin
    -- the distinction an issue-to-settle clock would erase."""
    light = execute_experiment(_experiment(load=0.05)).traffic
    heavy = execute_experiment(_experiment(load=2.0, depth=None)).traffic
    assert heavy.latency_p50 > 2 * light.latency_p50


def test_open_loop_is_deterministic():
    a = execute_experiment(_experiment())
    b = execute_experiment(_experiment())
    assert result_digest(a.to_dict()) == result_digest(b.to_dict())


def test_serial_and_pool_backends_byte_identical():
    exps = [_experiment(model=m) for m in ("naive", "scope")]
    serial = SerialBackend().run_all(exps)
    pooled = ProcessPoolBackend(jobs=2).run_all(exps)
    for s, p in zip(serial, pooled):
        assert s.stats["traffic"] == p.stats["traffic"]
        assert result_digest(s.to_dict()) == result_digest(p.to_dict())


def test_workload_without_requests_rejected():
    exp = Experiment.from_dict({
        "workload": "litmus",
        "params": {"rounds": 3, "threads": 2},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 4,
                   "traffic": {"arrival": "poisson", "offered_load": 0.5}},
        "variant": "test-openloop",
    })
    with pytest.raises(ValueError, match="admission requests"):
        execute_experiment(exp)
