"""The YCSB Zipfian generator."""

import pytest

from repro.workloads.zipf import ZipfianGenerator


def test_values_in_range():
    gen = ZipfianGenerator(1000, seed=1)
    for _ in range(2000):
        assert 0 <= gen.next() < 1000


def test_deterministic_with_seed():
    a = [ZipfianGenerator(100, seed=42).next() for _ in range(50)]
    b = [ZipfianGenerator(100, seed=42).next() for _ in range(50)]
    assert a == b


def test_popularity_is_skewed():
    """Low ranks dominate: rank 0 should be drawn far more often than
    its uniform share."""
    gen = ZipfianGenerator(1000, seed=7)
    draws = [gen.next() for _ in range(20_000)]
    top = sum(1 for d in draws if d == 0)
    assert top / len(draws) > 0.05  # uniform share would be 0.001


def test_analytic_probability_monotone():
    gen = ZipfianGenerator(100)
    probs = [gen.probability(r) for r in range(100)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))
    assert sum(probs) == pytest.approx(1.0)


def test_probability_bounds():
    gen = ZipfianGenerator(10)
    with pytest.raises(ValueError):
        gen.probability(10)


def test_single_item():
    gen = ZipfianGenerator(1, seed=3)
    assert gen.next() == 0


def test_invalid_items():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
