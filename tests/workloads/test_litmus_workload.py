"""The hand-written Fig. 1 litmus timing workload's validation paths."""

import pytest

from repro.sim.config import SystemConfig
from repro.system.builder import System
from repro.workloads.litmus import LitmusWorkload


def test_compile_requires_one_scope_per_thread():
    workload = LitmusWorkload(rounds=1, threads=4)
    system = System(SystemConfig.scaled_default(num_scopes=2))
    with pytest.raises(ValueError, match="one scope per thread"):
        workload.compile(system)


def test_compile_accepts_exactly_matching_scopes():
    workload = LitmusWorkload(rounds=1, threads=2)
    system = System(SystemConfig.scaled_default(num_scopes=2))
    programs = workload.compile(system)
    assert len(programs) == 2
