"""Workload compilation helpers, cross-validated against the functional DB."""

import pytest

from repro.core.models import ConsistencyModel
from repro.core.scope import ScopeMap
from repro.pim.database import PimDatabase, RecordSchema
from repro.sim.config import SystemConfig
from repro.system.builder import System
from repro.workloads.base import (
    DatabaseLayout,
    PAPER_RECORDS_PER_SCOPE,
    ProgramEmitter,
    partition_scopes,
    scaled_pim_latency,
)

SMAP = ScopeMap(pim_base=1 << 30, scope_bytes=128 << 10, num_scopes=4)
SCHEMA = RecordSchema.ycsb(num_fields=2, field_bytes=4)


def test_layout_matches_functional_database():
    """The address arithmetic used by the timing workloads must agree
    exactly with the functional PIM database's placement."""
    layout = DatabaseLayout(SMAP, SCHEMA, records_per_scope=64)
    db = PimDatabase(list(SMAP.scopes()), SCHEMA, records_per_scope=64)
    for k in range(40):
        db.insert(k, {})
    for row in range(40):
        shard, local = db.shard_of(row)
        assert layout.shard_of(row) == shard.scope.scope_id
        assert layout.local_row(row) == local
        assert layout.record_address(row) == shard.record_address(local)
        assert (layout.record_address(row, "field1")
                == shard.record_address(local, "field1"))
    for sid in range(4):
        assert layout.bitmap_lines(sid) == db.shards[sid].bitmap_line_addresses(0)


def test_layout_rejects_oversized_records():
    with pytest.raises(ValueError):
        DatabaseLayout(SMAP, SCHEMA, records_per_scope=1 << 20)


def test_record_lines_cover_record():
    layout = DatabaseLayout(SMAP, SCHEMA, records_per_scope=64)
    lines = layout.record_lines(5)
    base = layout.record_address(5)
    assert lines[0] <= base
    assert lines[-1] + 64 >= base + SCHEMA.record_bytes


def test_partition_scopes_even_and_disjoint():
    parts = partition_scopes(10, 4)
    assert sorted(x for p in parts for x in p) == list(range(10))
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


def test_scaled_pim_latency():
    system = System(SystemConfig.scaled_default(num_scopes=4))
    rps = system.config.records_per_scope
    assert scaled_pim_latency(16000, system) == round(
        16000 * rps / PAPER_RECORDS_PER_SCOPE)
    paper = System(SystemConfig.paper_default(num_scopes=4))
    assert scaled_pim_latency(16000, paper) == 16000


def _emitter(model):
    system = System(SystemConfig.scaled_default(model=model, num_scopes=4))
    counts = {}
    layout = DatabaseLayout(system.scope_map, SCHEMA,
                            system.config.records_per_scope)
    return ProgramEmitter(system, "t0", counts), layout


def test_pim_group_sw_flush_inserts_flushes():
    em, layout = _emitter(ConsistencyModel.SW_FLUSH)
    em.pim_group(0, 2, sw_flush_lines=layout.bitmap_lines(0))
    from repro.host.program import ThreadOpKind
    assert em.program.count(ThreadOpKind.FLUSH) == len(layout.bitmap_lines(0))
    assert em.program.count(ThreadOpKind.PIM_OP) == 2


def test_pim_group_scope_relaxed_appends_scope_fence():
    em, _ = _emitter(ConsistencyModel.SCOPE_RELAXED)
    em.pim_group(0, 3)
    from repro.host.program import ThreadOpKind
    assert em.program.count(ThreadOpKind.SCOPE_FENCE) == 1
    assert em.program.ops[-1].kind is ThreadOpKind.SCOPE_FENCE


def test_pim_group_tracks_issue_counts():
    em, layout = _emitter(ConsistencyModel.ATOMIC)
    em.pim_group(0, 3)
    em.pim_group(0, 2)
    em.read_result_bitmap(layout, 0)
    assert em.pim_issue_counts[0] == 5
    load = em.program.ops[-1]
    assert load.expect_version == 5


def test_uncacheable_marks_pim_addresses_only():
    em, layout = _emitter(ConsistencyModel.UNCACHEABLE)
    em.load(em.system.scope_map.scope(0).base)  # PIM address
    em.load(0x1000)  # ordinary DRAM
    assert em.program.ops[0].uncacheable
    assert not em.program.ops[1].uncacheable
