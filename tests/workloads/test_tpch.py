"""TPC-H query workloads (Table IV)."""

import pytest

from repro.core.models import ConsistencyModel
from repro.host.program import ThreadOpKind
from repro.sim.config import SystemConfig
from repro.system.builder import System
from repro.workloads.tpch import TPCH_QUERIES, TpchWorkload, tpch_schema


def test_table4_scope_counts():
    """Exact Table IV values."""
    expected = {
        "q1": 1832, "q2": 66, "q3": 2336, "q4": 2290, "q5": 508,
        "q6": 1832, "q7": 1882, "q8": 566, "q10": 2290, "q11": 4,
        "q12": 1832, "q14": 1832, "q15": 1832, "q16": 62, "q17": 62,
        "q19": 1894, "q20": 2294, "q21": 1832, "q22": 46,
    }
    assert {q: s.scopes for q, s in TPCH_QUERIES.items()} == expected


def test_table4_pim_sections():
    full = {q for q, s in TPCH_QUERIES.items() if "Full" in s.section}
    assert full == {"q1", "q6", "q22"}
    assert TPCH_QUERIES["q22"].section == "Full sub-query"


def test_unevaluated_queries_absent():
    """Queries 9, 13 and 18 have no PIM section (Table IV)."""
    for q in ("q9", "q13", "q18"):
        assert q not in TPCH_QUERIES
        with pytest.raises(KeyError):
            TpchWorkload(q)


def test_heavy_filter_queries_have_longer_ops():
    for q in ("q2", "q12", "q19"):
        spec = TPCH_QUERIES[q]
        assert spec.op_latency_factor > 1.0
        assert spec.pim_ops_per_scope > TPCH_QUERIES["q3"].pim_ops_per_scope


def test_light_queries_have_short_ops():
    for q in ("q14", "q15", "q20"):
        spec = TPCH_QUERIES[q]
        assert spec.pim_ops_per_scope == 1
        assert spec.op_latency_factor < 1.0


def test_full_queries_read_few_results():
    assert TPCH_QUERIES["q1"].result_read_fraction < 0.5
    assert TPCH_QUERIES["q3"].result_read_fraction == 1.0


def test_scaled_scopes():
    wl = TpchWorkload("q3", scale=1 / 64)
    assert wl.scaled_scopes() == 37
    tiny = TpchWorkload("q11", scale=1 / 64)
    assert tiny.scaled_scopes() == 4  # floor at one per thread


def test_compile_runs_and_shapes():
    wl = TpchWorkload("q11", scale=1.0, runs=3)
    system = System(SystemConfig.scaled_default(num_scopes=4))
    programs = wl.compile(system)
    assert len(programs) == 4
    pim_ops = sum(p.count(ThreadOpKind.PIM_OP) for p in programs)
    assert pim_ops == 3 * 4 * TPCH_QUERIES["q11"].pim_ops_per_scope


def test_compile_rejects_undersized_system():
    wl = TpchWorkload("q3", scale=1.0)
    system = System(SystemConfig.scaled_default(num_scopes=4))
    with pytest.raises(ValueError):
        wl.compile(system)


def test_latency_override_scales_with_query_factor():
    base_sys = System(SystemConfig.scaled_default(num_scopes=4))
    TpchWorkload("q11", scale=1.0, runs=1).compile(base_sys)
    heavy_sys = System(SystemConfig.scaled_default(num_scopes=8))
    TpchWorkload("q2", scale=1 / 32, runs=1).compile(heavy_sys)
    assert (heavy_sys.pim_op_latency_override
            == pytest.approx(base_sys.pim_op_latency_override * 2.0, rel=0.01))


def test_schema_is_lineitem_like():
    schema = tpch_schema()
    names = [f.name for f in schema.fields]
    assert "quantity" in names and "shipdate" in names
