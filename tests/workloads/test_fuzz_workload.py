"""The litmus-fuzz timing workload: validation and model agreement."""

import pytest

from repro.api.experiment import Experiment
from repro.fuzz.program import FuzzOp, build_program
from repro.sim.config import SystemConfig
from repro.system.builder import System
from repro.workloads.fuzz import FuzzLitmusWorkload

TWO_SCOPE = build_program(
    threads=[
        [FuzzOp("store", 0, 0), FuzzOp("pim", 0)],
        [FuzzOp("load", 0, 0), FuzzOp("pim", 1), FuzzOp("load", 1, 0)],
    ],
    slots=[1, 1],
)


def test_params_round_trip_through_experiment_specs():
    spec = TWO_SCOPE.to_dict()
    experiment = Experiment.from_dict({
        "workload": "litmus-fuzz",
        "params": {"spec": spec, "rounds": 2},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 2},
    })
    thawed = Experiment.from_dict(experiment.to_dict())
    assert thawed.spec_hash() == experiment.spec_hash()
    assert thawed.build_workload().params["spec"] == spec


def test_rejects_bad_spec_and_rounds():
    with pytest.raises(ValueError):
        FuzzLitmusWorkload({"schema": "something-else"})
    with pytest.raises(ValueError):
        FuzzLitmusWorkload(TWO_SCOPE.to_dict(), rounds=0)


def test_compile_rejects_too_few_scopes():
    workload = FuzzLitmusWorkload(TWO_SCOPE.to_dict())
    system = System(SystemConfig.scaled_default(num_scopes=1))
    with pytest.raises(ValueError, match="scopes"):
        workload.compile(system)


def test_compile_emits_one_program_per_thread():
    workload = FuzzLitmusWorkload(TWO_SCOPE.to_dict(), rounds=2)
    system = System(SystemConfig.scaled_default(num_scopes=2))
    programs = workload.compile(system)
    assert len(programs) == len(TWO_SCOPE.threads)


@pytest.mark.parametrize("model,expect_stale", [
    ("naive", True), ("atomic", False), ("scope-relaxed", False),
])
def test_stale_reads_match_the_model_guarantee(model, expect_stale):
    from repro.api.runner import Runner
    from repro.fuzz.harness import timing_experiment
    from repro.fuzz.generate import generate_batch

    program = generate_batch(seed=3, count=1)[0]
    result = Runner().run_all(
        [timing_experiment(program, model)])[0]
    if expect_stale:
        assert result.stale_reads > 0
    else:
        assert result.stale_reads == 0
