"""YCSB short-range-scan workload (Table III)."""

import pytest

from repro.core.models import ConsistencyModel
from repro.host.program import ThreadOpKind
from repro.sim.config import SystemConfig
from repro.system.builder import System
from repro.workloads.ycsb import YcsbParams, YcsbWorkload

PARAMS = YcsbParams(num_records=4000, num_ops=100, threads=4, seed=7)


def test_operation_mix_matches_table3():
    wl = YcsbWorkload(YcsbParams(num_records=4000, num_ops=2000, seed=3))
    ops = wl.operations()
    scans = sum(1 for o in ops if o[0] == "scan")
    assert scans / len(ops) == pytest.approx(0.95, abs=0.02)


def test_operations_deterministic_and_cached():
    wl = YcsbWorkload(PARAMS)
    assert wl.operations() is wl.operations()
    wl2 = YcsbWorkload(PARAMS)
    assert wl.operations() == wl2.operations()


def test_scan_lengths_bounded():
    wl = YcsbWorkload(PARAMS)
    for op in wl.operations():
        if op[0] == "scan":
            _, lo, hi = op
            assert 0 <= lo and hi - lo <= PARAMS.max_scan_records


def test_inserts_use_sequential_rows():
    wl = YcsbWorkload(PARAMS)
    inserted = [op[1] for op in wl.operations() if op[0] == "insert"]
    assert inserted == list(range(4000, 4000 + len(inserted)))


def test_required_scopes():
    wl = YcsbWorkload(PARAMS)
    assert wl.required_scopes(2 << 10) >= 2


def _compile(model, params=PARAMS):
    wl = YcsbWorkload(params)
    system = System(SystemConfig.scaled_default(model=model, num_scopes=4))
    return system, wl.compile(system)


def test_compile_produces_one_program_per_thread():
    _, programs = _compile(ConsistencyModel.ATOMIC)
    assert len(programs) == PARAMS.threads
    assert all(len(p) > 0 for p in programs)


def test_threads_partition_pim_ops_over_scopes():
    _, programs = _compile(ConsistencyModel.ATOMIC)
    scopes_by_thread = [
        {op.scope for op in p.ops if op.kind is ThreadOpKind.PIM_OP}
        for p in programs
    ]
    for a in range(len(scopes_by_thread)):
        for b in range(a + 1, len(scopes_by_thread)):
            assert not scopes_by_thread[a] & scopes_by_thread[b]


def test_flushes_only_under_sw_flush():
    for model in (ConsistencyModel.NAIVE, ConsistencyModel.ATOMIC,
                  ConsistencyModel.SW_FLUSH):
        _, programs = _compile(model)
        flushes = sum(p.count(ThreadOpKind.FLUSH) for p in programs)
        if model is ConsistencyModel.SW_FLUSH:
            assert flushes > 0
        else:
            assert flushes == 0


def test_scope_fences_only_under_scope_relaxed():
    for model in (ConsistencyModel.SCOPE, ConsistencyModel.SCOPE_RELAXED):
        _, programs = _compile(model)
        fences = sum(p.count(ThreadOpKind.SCOPE_FENCE) for p in programs)
        assert (fences > 0) == (model is ConsistencyModel.SCOPE_RELAXED)


def test_result_reads_carry_expectations():
    system, programs = _compile(ConsistencyModel.ATOMIC)
    expected_loads = [
        op for p in programs for op in p.ops
        if op.kind is ThreadOpKind.LOAD and op.expect_version > 0
    ]
    assert expected_loads
    # expectations are monotonically non-decreasing per scope
    per_scope = {}
    for p in programs:
        for op in p.ops:
            if op.kind is ThreadOpKind.LOAD and op.expect_version:
                last = per_scope.get(op.scope, 0)
                assert op.expect_version >= last
                per_scope[op.scope] = op.expect_version


def test_pim_latency_override_set_from_microcode():
    system, _ = _compile(ConsistencyModel.ATOMIC)
    wl = YcsbWorkload(PARAMS)
    assert system.pim_op_latency_override == pytest.approx(
        wl.pim_op_latency() * system.config.records_per_scope / (32 << 10),
        abs=1,
    )


def test_compile_rejects_undersized_system():
    wl = YcsbWorkload(YcsbParams(num_records=1 << 20))
    system = System(SystemConfig.scaled_default(num_scopes=4))
    with pytest.raises(ValueError):
        wl.compile(system)


def test_uncacheable_compile_marks_pim_loads():
    _, programs = _compile(ConsistencyModel.UNCACHEABLE)
    pim_loads = [op for p in programs for op in p.ops
                 if op.kind is ThreadOpKind.LOAD and op.scope is not None]
    assert pim_loads and all(op.uncacheable for op in pim_loads)
