"""Message free-list pool semantics."""

from repro.sim import messages
from repro.sim.messages import Message, MessageType


def setup_function(_fn):
    messages.reset_ids()


def test_constructor_messages_never_enter_the_pool():
    msg = Message(MessageType.LOAD, addr=0x40)
    msg.release()  # no-op: not pool-acquired
    acquired = Message.acquire(MessageType.STORE, addr=0x80)
    assert acquired is not msg


def test_acquire_reuses_released_instances():
    first = Message.acquire(MessageType.LOAD, addr=0x40, version=3)
    first_id = first.op_id
    first.release()
    second = Message.acquire(MessageType.STORE, addr=0x80)
    assert second is first  # recycled
    assert second.mtype is MessageType.STORE
    assert second.addr == 0x80
    assert second.version == 0  # fully re-initialized
    assert second.req is None
    assert second.op_id == first_id + 1  # fresh id, same global sequence


def test_release_is_idempotent():
    msg = Message.acquire(MessageType.LOAD)
    msg.release()
    msg.release()  # double release must not corrupt the pool
    a = Message.acquire(MessageType.LOAD)
    b = Message.acquire(MessageType.LOAD)
    assert a is not b


def test_make_response_draws_from_the_pool():
    req = Message(MessageType.LOAD, addr=0x1000, scope=2, core=1)
    resp = req.make_response(MessageType.LOAD_RESP, version=7)
    assert resp.req is req
    assert (resp.addr, resp.scope, resp.core, resp.version) == (0x1000, 2, 1, 7)
    resp.release()
    recycled = req.make_response(MessageType.STORE_ACK)
    assert recycled is resp


def test_reset_ids_clears_the_pool():
    msg = Message.acquire(MessageType.LOAD)
    msg.release()
    messages.reset_ids()
    assert Message.acquire(MessageType.LOAD) is not msg


def test_op_ids_match_plain_construction_sequence():
    """Pooled acquisition draws from the same id counter as __init__,
    so a pooled run's op_id sequence is identical to an unpooled one."""
    ids = [Message(MessageType.LOAD).op_id for _ in range(2)]
    pooled = Message.acquire(MessageType.LOAD)
    assert pooled.op_id == ids[-1] + 1
