"""Statistics primitives."""

import pytest

from repro.sim.stats import Counter, MeanStat, RatioStat, StatGroup


def test_counter():
    c = Counter("x")
    c.add()
    c.add(4)
    assert c.value == 5
    assert int(c) == 5


def test_mean_stat():
    m = MeanStat("x")
    for v in (2, 4, 9):
        m.sample(v)
    assert m.mean == pytest.approx(5.0)
    assert m.min == 2 and m.max == 9 and m.count == 3


def test_mean_stat_empty_is_zero():
    assert MeanStat("x").mean == 0.0


def test_ratio_stat_record_and_add():
    r = RatioStat("x")
    r.record(True)
    r.record(False)
    r.record(True)
    assert r.ratio == pytest.approx(2 / 3)
    r2 = RatioStat("y")
    r2.add(1900, 2048)
    assert r2.ratio == pytest.approx(1900 / 2048)


def test_ratio_stat_empty_is_zero():
    assert RatioStat("x").ratio == 0.0


def test_stat_group_reuses_and_flattens():
    g = StatGroup("llc")
    g.counter("scans").add(3)
    assert g.counter("scans").value == 3  # same object
    g.mean("lat").sample(10)
    g.ratio("hit").record(True)
    d = g.as_dict()
    assert d["scans"] == 3
    assert d["lat"] == 10
    assert d["lat_count"] == 1
    assert d["hit"] == 1.0


def test_stat_group_type_conflict():
    g = StatGroup("x")
    g.counter("a")
    with pytest.raises(TypeError):
        g.mean("a")


def test_ratio_stat_keeps_integer_counters():
    """Counters stay ints until .ratio is read, so counts beyond float
    precision (2**53) keep accumulating exactly."""
    r = RatioStat("x")
    big = 2 ** 53
    r.add(big, big)
    r.record(True)
    assert isinstance(r.numerator, int)
    assert r.numerator == big + 1  # a float accumulator would drop the +1
    assert r.denominator == big + 1
    assert r.ratio == 1.0


def test_mean_without_extremes_matches_mean_with():
    g = StatGroup("g")
    fast = g.mean("fast", extremes=False)
    slow = g.mean("slow")
    for v in (3, 1, 4, 1, 5):
        fast.sample(v)
        slow.sample(v)
    assert fast.mean == slow.mean
    assert fast.count == slow.count
    assert slow.min == 1 and slow.max == 5
    d = g.as_dict()
    assert d["fast"] == d["slow"]  # identical exported statistics


def test_stat_group_flush_callbacks_sync_before_snapshot():
    g = StatGroup("g")
    counter = g.counter("hits")
    local = {"hits": 0}

    def flush():
        counter.value = local["hits"]

    g.register_flush(flush)
    local["hits"] = 41
    assert g.as_dict()["hits"] == 41
    local["hits"] = 42
    assert g.as_dict()["hits"] == 42  # idempotent re-sync
