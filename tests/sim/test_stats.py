"""Statistics primitives."""

import pytest

from repro.sim.stats import Counter, MeanStat, RatioStat, StatGroup


def test_counter():
    c = Counter("x")
    c.add()
    c.add(4)
    assert c.value == 5
    assert int(c) == 5


def test_mean_stat():
    m = MeanStat("x")
    for v in (2, 4, 9):
        m.sample(v)
    assert m.mean == pytest.approx(5.0)
    assert m.min == 2 and m.max == 9 and m.count == 3


def test_mean_stat_empty_is_zero():
    assert MeanStat("x").mean == 0.0


def test_ratio_stat_record_and_add():
    r = RatioStat("x")
    r.record(True)
    r.record(False)
    r.record(True)
    assert r.ratio == pytest.approx(2 / 3)
    r2 = RatioStat("y")
    r2.add(1900, 2048)
    assert r2.ratio == pytest.approx(1900 / 2048)


def test_ratio_stat_empty_is_zero():
    assert RatioStat("x").ratio == 0.0


def test_stat_group_reuses_and_flattens():
    g = StatGroup("llc")
    g.counter("scans").add(3)
    assert g.counter("scans").value == 3  # same object
    g.mean("lat").sample(10)
    g.ratio("hit").record(True)
    d = g.as_dict()
    assert d["scans"] == 3
    assert d["lat"] == 10
    assert d["lat_count"] == 1
    assert d["hit"] == 1.0


def test_stat_group_type_conflict():
    g = StatGroup("x")
    g.counter("a")
    with pytest.raises(TypeError):
        g.mean("a")
