"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5, order.append, "late")
    sim.schedule(1, order.append, "early")
    sim.schedule(3, order.append, "mid")
    sim.run()
    assert order == ["early", "mid", "late"]
    assert sim.now == 5


def test_same_cycle_events_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(7, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_schedule_during_run():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(2, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 6


def test_schedule_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.schedule_at(10, hits.append, "x")
    sim.run()
    assert sim.now == 10 and hits == ["x"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(3, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    hits = []
    sim.schedule(5, hits.append, "a")
    sim.schedule(50, hits.append, "b")
    sim.run(until=10)
    assert hits == ["a"]
    assert sim.now == 10
    assert sim.pending_events() == 1
    sim.run()
    assert hits == ["a", "b"]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_stop_when_predicate():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(i + 1, hits.append, i)
    sim.run(stop_when=lambda: len(hits) >= 4)
    assert hits == [0, 1, 2, 3]


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, nested)
    sim.run()


# --------------------------------------------------------------------- #
# zero-delay fast-dispatch ring
# --------------------------------------------------------------------- #


def test_zero_delay_events_skip_the_heap():
    sim = Simulator()
    sim.schedule(0, lambda: None)
    sim.call_at_now(lambda: None)
    assert sim.pending_events() == 2
    assert len(sim._queue) == 0  # both went to the dispatch ring
    sim.run()
    assert sim.events_executed == 2
    assert sim.now == 0


def test_ring_events_interleave_with_heap_in_scheduling_order():
    """Same-cycle events run in global scheduling order even when some
    sit in the heap (scheduled earlier with a delay) and some on the
    immediate-dispatch ring (scheduled at the cycle itself)."""
    sim = Simulator()
    order = []

    def runner():
        order.append("runner")
        sim.schedule(0, order.append, "ring")  # after the heap's a, b

    sim.schedule(5, runner)
    sim.schedule(5, order.append, "a")
    sim.schedule(5, order.append, "b")
    sim.run()
    assert order == ["runner", "a", "b", "ring"]


def test_call_at_now_chains_run_before_time_advances():
    sim = Simulator()
    order = []

    def chain(n):
        order.append(n)
        if n < 2:
            sim.call_at_now(chain, n + 1)

    sim.schedule(3, chain, 0)
    sim.schedule(4, order.append, "later")
    sim.run()
    assert order == [0, 1, 2, "later"]
    assert sim.now == 4


def test_ring_respects_until_bound():
    sim = Simulator()
    hits = []
    sim.schedule(0, hits.append, "now")
    sim.schedule(50, hits.append, "later")
    sim.run(until=10)
    assert hits == ["now"]
    assert sim.now == 10


def test_stop_flag_halts_after_current_event():
    sim = Simulator()
    hits = []
    sim.schedule(1, hits.append, "a")
    sim.schedule(2, lambda: (hits.append("stop"), sim.stop()))
    sim.schedule(3, hits.append, "c")
    sim.run()
    assert hits == ["a", "stop"]
    # The flag is consumed: a later run resumes normally.
    sim.run()
    assert hits == ["a", "stop", "c"]


def test_max_events_counts_ring_events():
    sim = Simulator()

    def forever():
        sim.call_at_now(forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=50)
    assert sim.events_executed == 50


def test_reset_ids_restarts_op_id_sequence():
    from repro.sim.messages import Message, MessageType

    sim = Simulator()
    sim.reset_ids()
    first = Message(MessageType.LOAD).op_id
    Message(MessageType.LOAD)
    sim.reset_ids()
    assert Message(MessageType.LOAD).op_id == first
