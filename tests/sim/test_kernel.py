"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    SimulationError,
    Simulator,
    WHEEL_MASK,
    WHEEL_SLOTS,
)


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5, order.append, "late")
    sim.schedule(1, order.append, "early")
    sim.schedule(3, order.append, "mid")
    sim.run()
    assert order == ["early", "mid", "late"]
    assert sim.now == 5


def test_same_cycle_events_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(7, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_schedule_during_run():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(2, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 6


def test_schedule_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.schedule_at(10, hits.append, "x")
    sim.run()
    assert sim.now == 10 and hits == ["x"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(3, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    hits = []
    sim.schedule(5, hits.append, "a")
    sim.schedule(50, hits.append, "b")
    sim.run(until=10)
    assert hits == ["a"]
    assert sim.now == 10
    assert sim.pending_events() == 1
    sim.run()
    assert hits == ["a", "b"]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_stop_when_predicate():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(i + 1, hits.append, i)
    sim.run(stop_when=lambda: len(hits) >= 4)
    assert hits == [0, 1, 2, 3]


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, nested)
    sim.run()


# --------------------------------------------------------------------- #
# zero-delay fast-dispatch ring
# --------------------------------------------------------------------- #


def test_zero_delay_events_skip_the_heap():
    sim = Simulator()
    sim.schedule(0, lambda: None)
    sim.call_at_now(lambda: None)
    assert sim.pending_events() == 2
    assert len(sim._queue) == 0  # both went to the dispatch ring
    sim.run()
    assert sim.events_executed == 2
    assert sim.now == 0


def test_ring_events_interleave_with_heap_in_scheduling_order():
    """Same-cycle events run in global scheduling order even when some
    sit in the heap (scheduled earlier with a delay) and some on the
    immediate-dispatch ring (scheduled at the cycle itself)."""
    sim = Simulator()
    order = []

    def runner():
        order.append("runner")
        sim.schedule(0, order.append, "ring")  # after the heap's a, b

    sim.schedule(5, runner)
    sim.schedule(5, order.append, "a")
    sim.schedule(5, order.append, "b")
    sim.run()
    assert order == ["runner", "a", "b", "ring"]


def test_call_at_now_chains_run_before_time_advances():
    sim = Simulator()
    order = []

    def chain(n):
        order.append(n)
        if n < 2:
            sim.call_at_now(chain, n + 1)

    sim.schedule(3, chain, 0)
    sim.schedule(4, order.append, "later")
    sim.run()
    assert order == [0, 1, 2, "later"]
    assert sim.now == 4


def test_ring_respects_until_bound():
    sim = Simulator()
    hits = []
    sim.schedule(0, hits.append, "now")
    sim.schedule(50, hits.append, "later")
    sim.run(until=10)
    assert hits == ["now"]
    assert sim.now == 10


def test_stop_flag_halts_after_current_event():
    sim = Simulator()
    hits = []
    sim.schedule(1, hits.append, "a")
    sim.schedule(2, lambda: (hits.append("stop"), sim.stop()))
    sim.schedule(3, hits.append, "c")
    sim.run()
    assert hits == ["a", "stop"]
    # The flag is consumed: a later run resumes normally.
    sim.run()
    assert hits == ["a", "stop", "c"]


def test_max_events_counts_ring_events():
    sim = Simulator()

    def forever():
        sim.call_at_now(forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=50)
    assert sim.events_executed == 50


def test_delay_tiers_route_to_wheel_and_heap():
    sim = Simulator()
    sim.schedule(WHEEL_SLOTS - 1, lambda: None)  # largest wheel delay
    assert len(sim._queue) == 0 and sim._wheel_count == 1
    sim.schedule(WHEEL_SLOTS, lambda: None)  # first heap delay
    assert len(sim._queue) == 1 and sim._wheel_count == 1
    assert sim.pending_events() == 2
    sim.run()
    assert sim.now == WHEEL_SLOTS
    assert sim.pending_events() == 0


def test_wheel_rollover_past_horizon():
    """A chain of max-wheel-delay hops wraps every bucket index at least
    twice; order and timestamps must survive the rollover."""
    sim = Simulator()
    ticks = []

    def hop(n):
        ticks.append((n, sim.now))
        if n < 5:
            sim.schedule(WHEEL_SLOTS - 1, hop, n + 1)

    sim.schedule(WHEEL_SLOTS - 1, hop, 0)
    sim.run()
    assert ticks == [(i, (i + 1) * (WHEEL_SLOTS - 1)) for i in range(6)]
    assert sim.now == 6 * (WHEEL_SLOTS - 1)


def test_same_slot_different_cycles_do_not_collide():
    """Two events whose cycles map to the same wheel slot (delay d now,
    delay d again d cycles later) execute at their own cycles."""
    sim = Simulator()
    hits = []
    d = 10

    def first():
        hits.append(sim.now)
        sim.schedule(d, lambda: hits.append(sim.now))

    sim.schedule(d, first)
    sim.run()
    assert hits == [d, 2 * d]


def test_run_until_inside_wheel_horizon():
    """``until`` landing between two wheel entries stops the clock there
    and leaves the later entry pending for the next run."""
    sim = Simulator()
    hits = []
    sim.schedule(5, hits.append, "early")
    sim.schedule(50, hits.append, "late")  # both within the wheel
    sim.run(until=10)
    assert hits == ["early"]
    assert sim.now == 10
    assert sim.pending_events() == 1
    sim.run()
    assert hits == ["early", "late"]
    assert sim.now == 50


def test_schedule_at_current_cycle_rides_the_ring():
    sim = Simulator()
    order = []

    def at_five():
        order.append("event")
        sim.schedule_at(sim.now, order.append, "same-cycle")

    sim.schedule(5, at_five)
    sim.schedule(6, order.append, "next-cycle")
    sim.run()
    assert order == ["event", "same-cycle", "next-cycle"]


def test_wheel_heap_and_ring_interleave_in_scheduling_order():
    """At one cycle, events from all three tiers run in global
    scheduling (sequence) order: the wheel and heap entries -- scheduled
    in earlier cycles -- merge by sequence number, and ring entries
    (created at the cycle itself) come last."""
    sim = Simulator()
    target = WHEEL_SLOTS + 7  # reachable by both heap and wheel delays
    order = []

    def runner():
        order.append("wheel-early")
        sim.schedule(0, order.append, "ring")  # youngest: runs last

    # Scheduled first (lowest seq), lands on the heap (delay > horizon).
    sim.schedule_at(target, order.append, "heap-a")
    # Scheduled second, via the wheel (delay < horizon after advancing).
    sim.schedule(WHEEL_SLOTS - 3, sim.schedule_at, target, runner)
    # Scheduled third, another heap entry at the same cycle.
    sim.schedule_at(target, order.append, "heap-b")
    sim.run()
    # Sequence numbers: heap-a and heap-b drew theirs at cycle 0; the
    # wheel entry drew its own only at cycle WHEEL_SLOTS-3 (when the
    # trampoline called schedule_at), so it is younger than both heap
    # entries; the ring entry, created at `target` itself, is youngest.
    assert order == ["heap-a", "heap-b", "wheel-early", "ring"]
    assert sim.now == target


def test_stop_mid_cycle_preserves_wheel_entries():
    """stop() between two same-cycle wheel events must not lose the
    second one (exercises the run loop's leftover-bucket bookkeeping)."""
    sim = Simulator()
    hits = []
    sim.schedule(3, lambda: (hits.append("a"), sim.stop()))
    sim.schedule(3, hits.append, "b")
    sim.run()
    assert hits == ["a"]
    assert sim.pending_events() == 1
    sim.run()
    assert hits == ["a", "b"]
    assert sim.now == 3


def test_stop_when_sees_live_events_executed():
    """The run loop batches the event counter, but syncs it before
    every stop_when call -- a predicate reading it must see the live
    value, not the start-of-run one."""
    sim = Simulator()
    for i in range(10):
        sim.schedule(i + 1, lambda: None)
    sim.run(stop_when=lambda: sim.events_executed >= 4)
    assert sim.events_executed == 4


def test_pending_events_mid_run_counts_current_bucket():
    """pending_events() called from inside an event must include the
    un-executed remainder of the current cycle's wheel bucket."""
    sim = Simulator()
    seen = []
    sim.schedule(3, lambda: seen.append(sim.pending_events()))
    sim.schedule(3, lambda: None)
    sim.schedule(3, lambda: None)
    sim.run()
    assert seen == [2]


def test_events_executed_is_deterministic_across_runs():
    """The same schedule replayed on a fresh simulator executes the same
    number of events, with service chains coalesced the same way."""

    def build_and_run():
        sim = Simulator()
        hits = []

        def serve(n):
            hits.append(sim.now)
            if n:
                sim.schedule(2, serve, n - 1)
                sim.call_at_now(hits.append, sim.now)

        sim.schedule(1, serve, 20)
        sim.schedule(WHEEL_SLOTS + 5, hits.append, "far")
        sim.run()
        return sim.events_executed, hits

    first_events, first_hits = build_and_run()
    second_events, second_hits = build_and_run()
    assert first_events == second_events
    assert first_hits == second_hits


def test_reset_ids_restarts_op_id_sequence():
    from repro.sim.messages import Message, MessageType

    sim = Simulator()
    sim.reset_ids()
    first = Message(MessageType.LOAD).op_id
    Message(MessageType.LOAD)
    sim.reset_ids()
    assert Message(MessageType.LOAD).op_id == first
