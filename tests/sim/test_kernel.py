"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5, order.append, "late")
    sim.schedule(1, order.append, "early")
    sim.schedule(3, order.append, "mid")
    sim.run()
    assert order == ["early", "mid", "late"]
    assert sim.now == 5


def test_same_cycle_events_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(7, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_schedule_during_run():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(2, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 6


def test_schedule_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.schedule_at(10, hits.append, "x")
    sim.run()
    assert sim.now == 10 and hits == ["x"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(3, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    hits = []
    sim.schedule(5, hits.append, "a")
    sim.schedule(50, hits.append, "b")
    sim.run(until=10)
    assert hits == ["a"]
    assert sim.now == 10
    assert sim.pending_events() == 1
    sim.run()
    assert hits == ["a", "b"]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_stop_when_predicate():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(i + 1, hits.append, i)
    sim.run(stop_when=lambda: len(hits) >= 4)
    assert hits == [0, 1, 2, 3]


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, nested)
    sim.run()
