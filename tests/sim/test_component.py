"""Back-pressure and link behaviour of the pipeline building blocks."""

from repro.sim.component import Component, Link, QueuedComponent, ResponseDispatcher
from repro.sim.kernel import Simulator
from repro.sim.messages import Message, MessageType


def _msg():
    return Message(MessageType.LOAD, addr=0x1000)


class Sink(QueuedComponent):
    """Consumes everything, records arrival times."""

    def __init__(self, sim, capacity=None, service_interval=1):
        super().__init__(sim, "sink", capacity=capacity,
                         service_interval=service_interval)
        self.received = []

    def handle(self, msg):
        self.received.append((self.sim.now, msg))
        return True


class StuckSink(QueuedComponent):
    """Blocks until released (downstream congestion stand-in)."""

    def __init__(self, sim, capacity=2):
        super().__init__(sim, "stuck", capacity=capacity)
        self.release = False
        self.received = []

    def handle(self, msg):
        if not self.release:
            return False
        self.received.append(msg)
        return True


class Producer(Component):
    def __init__(self, sim, target):
        super().__init__(sim, "producer")
        self.target = target
        self.sent = 0
        self.blocked = 0

    def push(self, msg):
        if self.target.offer(msg, self):
            self.sent += 1
        else:
            self.blocked += 1

    def unblock(self):
        self.unblocked = True


def test_queue_serves_at_service_interval():
    sim = Simulator()
    sink = Sink(sim, service_interval=3)
    for _ in range(3):
        assert sink.offer(_msg())
    sim.run()
    times = [t for t, _ in sink.received]
    assert times == [0, 3, 6]


def test_capacity_rejects_and_wakes_sender():
    sim = Simulator()
    sink = StuckSink(sim, capacity=2)
    producer = Producer(sim, sink)
    producer.push(_msg())
    producer.push(_msg())
    producer.push(_msg())  # rejected: queue full
    assert producer.blocked == 1
    sim.run()
    assert sink.occupancy == 2
    sink.release = True
    sink.unblock()
    sim.run()
    assert len(sink.received) == 2
    assert getattr(producer, "unblocked", False)


def test_handle_retry_after_cycles():
    sim = Simulator()

    class SlowSink(QueuedComponent):
        def __init__(self, sim):
            super().__init__(sim, "slow")
            self.attempts = 0
            self.done_at = None

        def handle(self, msg):
            self.attempts += 1
            if self.attempts < 3:
                return 10  # busy; retry later
            self.done_at = self.sim.now
            return True

    sink = SlowSink(sim)
    sink.offer(_msg())
    sim.run()
    assert sink.attempts == 3
    assert sink.done_at == 20


def test_link_adds_latency_and_preserves_fifo():
    sim = Simulator()
    sink = Sink(sim)
    link = Link(sim, "link", sink, latency=7, service_interval=2)
    msgs = [_msg() for _ in range(3)]
    for m in msgs:
        assert link.offer(m)
    sim.run()
    arrived = [m for _, m in sink.received]
    assert arrived == msgs
    # first serviced at t=0, +7 latency; following spaced by bandwidth
    assert [t for t, _ in sink.received] == [7, 9, 11]


def test_link_backpressure_propagates():
    sim = Simulator()
    sink = StuckSink(sim, capacity=1)
    link = Link(sim, "link", sink, latency=1, capacity=2, pipe_capacity=2)

    sent = []

    class RetryingProducer(Component):
        """Offers one message per cycle, retrying on back-pressure."""

        def __init__(self):
            super().__init__(sim, "p")
            self.remaining = 10

        def tick(self):
            if self.remaining and link.offer(_msg(), self):
                self.remaining -= 1
                sent.append(sim.now)
            if self.remaining:
                sim.schedule(1, self.tick)

        def unblock(self):
            sim.schedule(0, self.tick)

    producer = RetryingProducer()
    sim.schedule(0, producer.tick)
    sim.run(until=200)
    # With the sink stuck, the pipeline holds: 1 in the sink queue,
    # 2 in flight, 2 in the link queue -- the producer is blocked.
    assert producer.remaining == 10 - 5
    sink.release = True
    sink.unblock()
    sim.run()
    assert producer.remaining == 0
    assert len(sink.received) == 10


def test_response_dispatcher_routes_by_reply_to():
    sim = Simulator()

    class Receiver:
        def __init__(self):
            self.got = []

        def receive_response(self, msg):
            self.got.append(msg)

    receiver = Receiver()
    dispatcher = ResponseDispatcher(sim, "d")
    msg = Message(MessageType.LOAD_RESP, reply_to=receiver)
    dispatcher.offer(msg)
    assert receiver.got == [msg]


def test_waiting_senders_are_deduplicated():
    """A sender that retries offer() while the queue is full must be
    parked once: a single wake per unblock, in first-parked order."""
    sim = Simulator()
    sink = StuckSink(sim, capacity=1)
    sink.offer(_msg())
    wakes = []

    class CountingProducer(Component):
        def __init__(self, name):
            super().__init__(sim, name)

        def unblock(self):
            wakes.append(self.name)

    first = CountingProducer("first")
    second = CountingProducer("second")
    for _ in range(3):  # repeated rejected offers: parked exactly once
        assert not sink.offer(_msg(), first)
    assert not sink.offer(_msg(), second)
    assert len(sink._waiting_senders) == 2
    sink.release = True
    sink.unblock()
    sim.run()
    assert wakes[:2] == ["first", "second"]  # wake order = park order
