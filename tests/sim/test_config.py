"""Configuration dataclasses: Table II defaults and validation."""

import pytest

from repro.core.models import ConsistencyModel
from repro.sim.config import (
    CacheConfig,
    PimModuleConfig,
    ScopeBufferConfig,
    SystemConfig,
)


def test_table2_defaults():
    """The paper_default configuration is Table II."""
    cfg = SystemConfig.paper_default()
    assert cfg.cores.num_cores == 6
    assert cfg.cores.freq_ghz == 3.6
    assert cfg.l1.size_bytes == 16 << 10
    assert cfg.l1.ways == 4
    assert cfg.l1.line_bytes == 64
    assert cfg.llc.size_bytes == 2 << 20
    assert cfg.llc.ways == 16
    assert cfg.llc.num_sets == 2048
    assert cfg.l1_scope_buffer.sets == 16 and cfg.l1_scope_buffer.ways == 1
    assert cfg.llc_scope_buffer.sets == 64 and cfg.llc_scope_buffer.ways == 4
    assert cfg.scope_bytes == 2 << 20  # 2 MB huge pages
    assert cfg.records_per_scope == 32 << 10  # 32K records per scope


def test_cache_geometry():
    c = CacheConfig(size_bytes=16 << 10, ways=4, line_bytes=64)
    assert c.num_lines == 256
    assert c.num_sets == 64


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, ways=3, line_bytes=64)


def test_with_model_and_with_pim():
    cfg = SystemConfig.paper_default()
    cfg2 = cfg.with_model(ConsistencyModel.SCOPE)
    assert cfg2.model is ConsistencyModel.SCOPE
    assert cfg2.llc == cfg.llc
    cfg3 = cfg.with_pim(buffer_capacity=None, zero_logic=True)
    assert cfg3.pim.buffer_capacity is None
    assert cfg3.pim.zero_logic


def test_pim_effective_latency():
    assert PimModuleConfig(op_latency=100).effective_latency() == 100
    assert PimModuleConfig(op_latency=100, zero_logic=True).effective_latency() == 0


def test_scaled_default_preserves_ratios():
    paper = SystemConfig.paper_default()
    scaled = SystemConfig.scaled_default()
    paper_lines_per_scope = paper.scope_bytes // paper.llc.line_bytes
    scaled_lines_per_scope = scaled.scope_bytes // scaled.llc.line_bytes
    # scope-to-LLC ratio preserved
    assert (paper.scope_bytes / paper.llc.size_bytes
            == scaled.scope_bytes / scaled.llc.size_bytes)
    # records-to-scope-lines ratio preserved
    assert (paper.records_per_scope / paper_lines_per_scope
            == scaled.records_per_scope / scaled_lines_per_scope)


def test_misaligned_pim_base_rejected():
    with pytest.raises(ValueError):
        SystemConfig(pim_base=(1 << 34) + 4096)


def test_scope_buffer_entries():
    sb = ScopeBufferConfig(sets=64, ways=4)
    assert sb.entries == 256


def test_mshr_knobs_default_off_and_roundtrip():
    """mshr_entries=None means the level's legacy file size with no
    stats exported -- the digest-preserving default."""
    from repro.sim.config import config_from_dict, config_to_dict

    cfg = SystemConfig.scaled_default()
    assert cfg.l1.mshr_entries is None and cfg.l1.coalescing
    assert cfg.llc.mshr_entries is None and cfg.llc.coalescing
    assert cfg.memory.dram_burst_len == 1
    tuned = config_from_dict({
        "preset": "scaled",
        "l1": {"mshr_entries": 4, "coalescing": False},
        "llc": {"mshr_entries": 16},
        "memory": {"dram_burst_len": 8},
    })
    clone = config_from_dict(config_to_dict(tuned))
    assert clone.l1.mshr_entries == 4 and not clone.l1.coalescing
    assert clone.llc.mshr_entries == 16 and clone.llc.coalescing
    assert clone.memory.dram_burst_len == 8


def test_mshr_entries_validated():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=4 << 10, ways=4, mshr_entries=0)


def test_dram_burst_len_must_be_power_of_two():
    from repro.sim.config import MemoryConfig

    MemoryConfig(dram_burst_len=4)  # accepted
    for bad in (0, 3, 6):
        with pytest.raises(ValueError):
            MemoryConfig(dram_burst_len=bad)
