"""The inclusive LLC: directory, scan/flush engine, scope buffer, SBV."""

import pytest
from helpers import CaptureSink, DirectDispatcher, ResponseCollector, make_load, make_pim

from repro.memory.l1 import L1Cache
from repro.memory.llc import LastLevelCache
from repro.memory.mesi import MesiState
from repro.sim.config import CacheConfig, ScopeBufferConfig
from repro.sim.messages import Message, MessageType


class Responder:
    """Collects responses routed through a zero-latency dispatcher."""


def _llc(sim, scope_map, mem=None):
    mem = mem or CaptureSink(sim, "mem")
    llc = LastLevelCache(
        sim, "llc",
        CacheConfig(size_bytes=64 << 10, ways=4, hit_latency=2),
        ScopeBufferConfig(sets=8, ways=2),
        scope_map, mem, DirectDispatcher(sim, "resp"),
    )
    return llc, mem


def _l1_for(sim, scope_map, llc, core_id=0):
    l1 = L1Cache(sim, f"l1.{core_id}", core_id,
                 CacheConfig(size_bytes=4 << 10, ways=4, hit_latency=2),
                 scope_map, CaptureSink(sim, "n"))
    llc.l1s.append(l1)
    return l1


def _serve_mem(llc, mem, version=1):
    """Answer every outstanding memory fetch."""
    for fetch in mem.of_type(MessageType.LOAD):
        resp = fetch.make_response(MessageType.LOAD_RESP, version=version)
        llc.receive_response(resp)
    mem.received = [m for m in mem.received if m.mtype is not MessageType.LOAD]


def test_miss_fetch_fill_then_hit(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    llc.offer(make_load(0x1000, reply_to=requester, core=0))
    sim.run()
    assert len(mem.of_type(MessageType.LOAD)) == 1
    _serve_mem(llc, mem, version=9)
    sim.run()
    assert requester.of_type(MessageType.LOAD_RESP)[0].version == 9
    llc.offer(make_load(0x1000, reply_to=requester, core=0))
    sim.run()
    assert len(requester.responses) == 2
    assert llc.stats.as_dict()["hits"] == 1


def test_exclusive_fetch_invalidates_other_sharers(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    l1a = _l1_for(sim, scope_map, llc, 0)
    l1b = _l1_for(sim, scope_map, llc, 1)
    requester = ResponseCollector()
    llc.offer(make_load(0x2000, reply_to=requester, core=0))
    sim.run()
    _serve_mem(llc, mem)
    sim.run()
    # core 0 holds the line in its L1 too
    l1a.array.fill(0x2000, MesiState.SHARED, 1, None, False)
    # core 1 wants it exclusive
    llc.offer(make_load(0x2000, reply_to=requester, core=1, exclusive=True))
    sim.run()
    assert l1a.array.lookup(0x2000, touch=False) is None  # back-invalidated
    assert 1 in llc._dir[0x2000] and 0 not in llc._dir[0x2000]


def test_writeback_updates_version_and_dirty(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    llc.offer(make_load(0x3000, reply_to=requester, core=0))
    sim.run()
    _serve_mem(llc, mem, version=1)
    sim.run()
    llc.offer(Message(MessageType.WRITEBACK, addr=0x3000, core=0, version=5))
    sim.run()
    line = llc.array.lookup(0x3000, touch=False)
    assert line.version == 5 and line.dirty


def test_pim_op_scan_flushes_scope_and_inserts_scope_buffer(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    l1 = _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    scope0 = scope_map.scope(0)
    for off in (0, 64, 128):
        llc.offer(make_load(scope0.base + off, scope=0, reply_to=requester, core=0))
        sim.run()
        _serve_mem(llc, mem, version=1)
        sim.run()
    assert len(llc.array.scope_lines(0)) == 3
    pim = make_pim(0, addr=scope0.base)
    llc.offer(pim)
    sim.run()
    assert pim in mem.received  # forwarded after the scan
    assert not llc.array.scope_lines(0)
    assert llc.scope_buffer.lookup(0, record=False)
    stats = llc.stats.as_dict()
    assert stats["flushed_lines"] == 3
    assert stats["scan_latency"] > 0


def test_scope_buffer_hit_skips_scan(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    scope0 = scope_map.scope(0)
    llc.offer(make_pim(0, addr=scope0.base))
    sim.run()
    scans_after_first = llc.stats.as_dict()["scan_latency_count"]
    llc.offer(make_pim(0, addr=scope0.base))
    sim.run()
    stats = llc.stats.as_dict()
    assert stats["scan_latency_count"] == scans_after_first + 1
    assert stats["hit_rate"] == 0.5  # miss then hit
    # the hit was recorded as a zero-cycle scan (Fig. 10c convention)
    assert llc._scan_latency.min == 0


def test_line_fill_invalidates_scope_buffer_entry(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    scope0 = scope_map.scope(0)
    llc.offer(make_pim(0, addr=scope0.base))
    sim.run()
    assert llc.scope_buffer.lookup(0, record=False)
    llc.offer(make_load(scope0.base, scope=0, reply_to=requester, core=0))
    sim.run()
    _serve_mem(llc, mem)
    sim.run()
    assert not llc.scope_buffer.lookup(0, record=False)


def test_sbv_guides_scan(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    scope0 = scope_map.scope(0)
    llc.offer(make_load(scope0.base, scope=0, reply_to=requester, core=0))
    sim.run()
    _serve_mem(llc, mem)
    sim.run()
    assert llc.sbv.popcount() == 1
    llc.offer(make_pim(0, addr=scope0.base))
    sim.run()
    stats = llc.stats.as_dict()
    # the scan visited 1 of num_sets sets
    assert stats["skipped_set_ratio"] == pytest.approx(
        1 - 1 / llc.array.num_sets)
    assert llc.sbv.popcount() == 0  # flushed line cleared the bit


def test_direct_pim_op_bypasses_everything(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    scope0 = scope_map.scope(0)
    llc.offer(make_load(scope0.base, scope=0, reply_to=requester, core=0))
    sim.run()
    _serve_mem(llc, mem)
    sim.run()
    pim = make_pim(0, addr=scope0.base, direct=True)
    llc.offer(pim)
    sim.run()
    assert pim in mem.received
    assert llc.array.scope_lines(0)  # nothing flushed (naive/SW-flush)
    assert llc.stats.as_dict().get("scan_latency_count", 0) == 0


def test_scope_fence_terminates_with_ack(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    scope0 = scope_map.scope(0)
    fence = Message(MessageType.SCOPE_FENCE, addr=scope0.base, scope=0,
                    reply_to=requester)
    llc.offer(fence)
    sim.run()
    assert requester.of_type(MessageType.SCOPE_FENCE_ACK)
    assert fence not in mem.received  # terminates at the LLC (Fig. 6d)


def test_flush_acks_and_writes_back(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    llc.offer(make_load(0x7000, reply_to=requester, core=0))
    sim.run()
    _serve_mem(llc, mem, version=2)
    sim.run()
    llc.offer(Message(MessageType.WRITEBACK, addr=0x7000, core=0, version=6))
    sim.run()
    flush = Message(MessageType.FLUSH, addr=0x7000, core=0, reply_to=requester)
    llc.offer(flush)
    sim.run()
    assert requester.of_type(MessageType.FLUSH_ACK)
    wbs = mem.of_type(MessageType.WRITEBACK)
    assert wbs and wbs[-1].version == 6
    assert llc.array.lookup(0x7000, touch=False) is None


def test_inclusive_eviction_back_invalidates_l1(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    l1 = _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    # fill one LLC set (4 ways) then one more to force eviction
    stride = llc.array.num_sets * 64
    addrs = [0x8000 + i * stride for i in range(5)]
    for i, addr in enumerate(addrs):
        llc.offer(make_load(addr, reply_to=requester, core=0))
        sim.run()
        if i == 0:
            # core 0's L1 holds the first line while it is still in the LLC
            l1.array.fill(addrs[0], MesiState.SHARED, 1, None, False)
        _serve_mem(llc, mem)
        sim.run()
    # victim of the last fill was the LRU line addrs[0]
    assert llc.array.lookup(addrs[0], touch=False) is None
    assert l1.array.lookup(addrs[0], touch=False) is None  # inclusion held


def test_uncacheable_load_passes_through(sim, scope_map):
    llc, mem = _llc(sim, scope_map)
    _l1_for(sim, scope_map, llc)
    requester = ResponseCollector()
    msg = make_load(scope_map.scope(1).base, scope=1, reply_to=requester,
                    uncacheable=True)
    llc.offer(msg)
    sim.run()
    assert msg in mem.received
    assert llc.array.occupancy() == 0
