"""The MSHR file: coalescing, hit-under-miss, backpressure, races.

Edge cases mirror the reference non-blocking D-cache verification
(synapse32): same-line coalescing while the file is full, a refill
racing a new miss into the same cache set, a dirty victim written back
while refills are outstanding, and stall-only-when-exhausted
backpressure -- plus determinism of the whole subsystem across the
Serial and ProcessPool backends.
"""

import pytest

from helpers import CaptureSink, ResponseCollector, make_load, make_store

from repro.memory.l1 import L1Cache
from repro.memory.mshr import MshrFile
from repro.sim.config import CacheConfig
from repro.sim.messages import Message, MessageType
from repro.sim.stats import StatGroup

#: 4 KiB / 4 ways / 64 B lines -> 16 sets; +0x400 is the same-set stride.
SET_STRIDE = 0x400


def _l1(sim, scope_map, mshr_count=8, coalescing=True, net=None,
        emit_mshr_stats=True):
    net = net or CaptureSink(sim, "net")
    l1 = L1Cache(
        sim, "l1.0", 0,
        CacheConfig(size_bytes=4 << 10, ways=4, hit_latency=2),
        scope_map, net,
        mshr_count=mshr_count,
        coalescing=coalescing,
        emit_mshr_stats=emit_mshr_stats,
    )
    return l1, net


def _fill(l1, fill_req, version=1):
    l1.receive_response(
        fill_req.make_response(MessageType.LOAD_RESP, version=version))


# ---------------------------------------------------------------------- #
# MshrFile unit behavior
# ---------------------------------------------------------------------- #


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        MshrFile(0)


def test_allocate_complete_roundtrip_and_occupancy():
    f = MshrFile(4)
    f.allocate(0x1000, exclusive=False)
    f.allocate(0x2000, exclusive=True)
    assert not f.full
    assert f.get(0x1000) is not None
    # Occupancy sampled after each insertion: 1 then 2.
    assert (f.occupancy_total, f.occupancy_samples) == (3, 2)
    entry = f.complete(0x1000)
    assert entry.line_addr == 0x1000
    assert f.get(0x1000) is None
    assert f.refills == 1
    assert f.complete(0x1000) is None  # raced away: no double count
    assert f.refills == 1


def test_coalesce_marks_exclusive_and_counts():
    f = MshrFile(2)
    entry = f.allocate(0x1000, exclusive=False)
    msg = make_load(0x1000)
    assert f.coalesce(entry, msg, exclusive=True)
    assert entry.exclusive
    assert entry.waiters == [msg]
    assert f.coalesced_misses == 1


def test_coalesce_refused_when_disabled():
    f = MshrFile(2, coalescing=False)
    entry = f.allocate(0x1000, exclusive=False)
    assert not f.coalesce(entry, make_load(0x1000), exclusive=False)
    assert entry.waiters == []
    assert f.coalesced_misses == 0


def test_attach_stats_exports_counters():
    f = MshrFile(2)
    stats = StatGroup("l1.0")
    f.attach_stats(stats)
    entry = f.allocate(0x1000, False)
    f.coalesce(entry, make_load(0x1000), False)
    f.hit_under_miss = 3
    f.complete(0x1000)
    snap = stats.as_dict()
    assert snap["mshr_refills"] == 1
    assert snap["coalesced_misses"] == 1
    assert snap["hit_under_miss"] == 3
    assert snap["mshr_occupancy"] == 1.0


def test_stats_silent_without_attach():
    f = MshrFile(2)
    stats = StatGroup("l1.0")
    f.allocate(0x1000, False)
    assert not any("mshr" in k for k in stats.as_dict())


# ---------------------------------------------------------------------- #
# cache-level edge cases
# ---------------------------------------------------------------------- #


def test_coalescing_works_while_file_is_full(sim, scope_map):
    """A secondary miss needs no free entry: it rides the existing one
    even when every MSHR is allocated."""
    l1, net = _l1(sim, scope_map, mshr_count=2)
    core = ResponseCollector()
    l1.offer(make_load(0x1000, reply_to=core))
    l1.offer(make_load(0x2000, reply_to=core))
    sim.run()
    assert l1.mshr_file.full
    l1.offer(make_load(0x1010, reply_to=core))  # same line as 0x1000
    sim.run()
    assert len(net.of_type(MessageType.LOAD)) == 2  # no third fetch
    assert l1.mshr_file.coalesced_misses == 1
    for req in net.of_type(MessageType.LOAD):
        _fill(l1, req)
    sim.run()
    assert len(core.of_type(MessageType.LOAD_RESP)) == 3


def test_full_file_backpressures_only_new_lines(sim, scope_map):
    """Stall only when exhausted: with every entry busy a miss to a NEW
    line waits, and the moment one refill lands it proceeds."""
    l1, net = _l1(sim, scope_map, mshr_count=2)
    core = ResponseCollector()
    l1.offer(make_load(0x1000, reply_to=core))
    l1.offer(make_load(0x2000, reply_to=core))
    l1.offer(make_load(0x3000, reply_to=core))  # third line: no MSHR free
    sim.run(until=50)  # bounded: the stalled miss retries until a refill
    fetches = net.of_type(MessageType.LOAD)
    assert [m.addr for m in fetches] == [0x1000, 0x2000]
    _fill(l1, fetches[0])
    sim.run()  # retry timer fires, freed entry is claimed
    assert [m.addr for m in net.of_type(MessageType.LOAD)] \
        == [0x1000, 0x2000, 0x3000]
    _fill(l1, net.of_type(MessageType.LOAD)[1])
    _fill(l1, net.of_type(MessageType.LOAD)[2])
    sim.run()
    assert len(core.of_type(MessageType.LOAD_RESP)) == 3


def test_hit_under_miss_is_served_and_counted(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_load(0x1000, reply_to=core))
    sim.run()
    _fill(l1, net.of_type(MessageType.LOAD)[0])
    sim.run()
    l1.offer(make_load(0x2000, reply_to=core))  # miss: occupies an MSHR
    l1.offer(make_load(0x1000, reply_to=core))  # hit while it is in flight
    sim.run()
    assert l1.mshr_file.hit_under_miss == 1
    assert len(core.of_type(MessageType.LOAD_RESP)) == 2  # hit not stalled
    _fill(l1, net.of_type(MessageType.LOAD)[1])
    sim.run()
    assert len(core.of_type(MessageType.LOAD_RESP)) == 3


def test_coalescing_off_blocks_secondary_miss_until_refill(sim, scope_map):
    l1, net = _l1(sim, scope_map, coalescing=False)
    core = ResponseCollector()
    l1.offer(make_load(0x1000, reply_to=core))
    l1.offer(make_load(0x1020, reply_to=core))  # same line: must wait
    sim.run(until=50)  # bounded: the busy line retries until the refill
    assert len(net.of_type(MessageType.LOAD)) == 1
    assert len(core.of_type(MessageType.LOAD_RESP)) == 0
    _fill(l1, net.of_type(MessageType.LOAD)[0])
    sim.run()
    # After the refill the blocked request retries and hits in the array.
    assert len(net.of_type(MessageType.LOAD)) == 1
    assert len(core.of_type(MessageType.LOAD_RESP)) == 2
    assert l1.mshr_file.coalesced_misses == 0


def test_refill_racing_new_miss_to_same_set(sim, scope_map):
    """Two outstanding misses whose lines index the same set; the
    refills land out of order and both waiters settle correctly."""
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_load(0x1000, reply_to=core))
    l1.offer(make_load(0x1000 + SET_STRIDE, reply_to=core))
    sim.run()
    fetches = net.of_type(MessageType.LOAD)
    assert len(fetches) == 2
    _fill(l1, fetches[1], version=9)  # younger fill lands first
    _fill(l1, fetches[0], version=5)
    sim.run()
    versions = {m.addr: m.version for m in core.of_type(MessageType.LOAD_RESP)}
    assert versions == {0x1000: 5, 0x1000 + SET_STRIDE: 9}
    assert l1.array.lookup(0x1000, touch=False) is not None
    assert l1.array.lookup(0x1000 + SET_STRIDE, touch=False) is not None


def test_writeback_during_refill(sim, scope_map):
    """A refill whose victim is dirty emits the writeback while other
    misses are still outstanding."""
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    # Dirty the four ways of one set.
    for way in range(4):
        l1.offer(make_store(0x1000 + way * SET_STRIDE, reply_to=core))
    sim.run()
    for req in net.of_type(MessageType.LOAD):
        _fill(l1, req)
    sim.run()
    assert len(core.of_type(MessageType.STORE_ACK)) == 4
    # Fifth line in the set misses; keep a second miss outstanding too.
    l1.offer(make_load(0x1000 + 4 * SET_STRIDE, reply_to=core))
    l1.offer(make_load(0x5040, reply_to=core))  # different line and set
    sim.run()
    outstanding = len(l1.mshr_file.entries)
    assert outstanding == 2
    fetch = [m for m in net.of_type(MessageType.LOAD)
             if m.addr == 0x1000 + 4 * SET_STRIDE][0]
    _fill(l1, fetch)
    wbs = net.of_type(MessageType.WRITEBACK)
    assert len(wbs) == 1 and wbs[0].addr & ~(SET_STRIDE - 1) in \
        {0x1000 + way * SET_STRIDE for way in range(4)} | {0x1000}
    assert len(l1.mshr_file.entries) == 1  # the other miss still in flight
    sim.run()


def test_refill_past_wheel_horizon_routes_to_heap(sim, scope_map):
    """Regression for the scheduler tiers: an MSHR refill whose response
    latency exceeds the 255-cycle wheel horizon must heap-route (the
    inlined wheel fast path is gated on the latency, not assumed)."""
    net = CaptureSink(sim, "net")
    l1 = L1Cache(
        sim, "l1.0", 0,
        CacheConfig(size_bytes=4 << 10, ways=4, hit_latency=300),
        scope_map, net,
    )
    core = ResponseCollector()
    l1.offer(make_load(0x1000, reply_to=core))
    sim.run()
    fetch = net.of_type(MessageType.LOAD)[0]
    _fill(l1, fetch)
    start = sim.now
    assert sim._wheel_count == 0  # 300-cycle delay must not ride the wheel
    assert len(sim._queue) == 1
    sim.run()
    assert core.of_type(MessageType.LOAD_RESP)
    assert sim.now >= start + 300


# ---------------------------------------------------------------------- #
# whole-system determinism
# ---------------------------------------------------------------------- #


def test_mshr_config_deterministic_across_backends():
    """A non-default MSHR/coalescing/burst configuration produces
    byte-identical results on the Serial and ProcessPool backends."""
    from repro.api import Experiment, ProcessPoolBackend, SerialBackend

    exps = [
        Experiment.from_dict({
            "workload": "ycsb",
            "params": {"num_records": 8000, "num_ops": 8, "threads": 4,
                       "seed": 11},
            "config": {"preset": "scaled", "model": model, "num_scopes": 4,
                       "l1": {"mshr_entries": 4, "coalescing": coalescing},
                       "llc": {"mshr_entries": 16},
                       "memory": {"dram_burst_len": 4}},
            "max_events": 50_000_000,
        })
        for model, coalescing in (("scope", True), ("atomic", False))
    ]
    serial = SerialBackend().run_all(exps)
    pooled = ProcessPoolBackend(jobs=2).run_all(exps)
    for s, p in zip(serial, pooled):
        assert p.run_time == s.run_time
        assert p.events == s.events
        assert p.stats == s.stats
