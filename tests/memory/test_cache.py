"""Set-associative cache array bookkeeping."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.cache import CacheArray
from repro.memory.mesi import MesiState


def _array():
    return CacheArray(num_sets=4, ways=2, line_bytes=64)


def test_line_and_set_mapping():
    a = _array()
    assert a.line_addr(0x1234) == 0x1200
    assert a.set_index(0x1200) == (0x1200 >> 6) % 4


def test_fill_and_lookup():
    a = _array()
    a.fill(0x1000, MesiState.SHARED, version=3, scope=1, pim=True)
    line = a.lookup(0x1010)  # same line
    assert line is not None
    assert line.version == 3 and line.scope == 1 and line.pim


def test_lru_victim():
    a = _array()
    a.fill(0x0000, MesiState.SHARED, 0, None, False)   # set 0
    a.fill(0x0100, MesiState.SHARED, 0, None, False)   # set 0 (4 sets * 64B)
    a.lookup(0x0000)  # touch: 0x0000 is now MRU
    victim = a.victim(0x0200)  # set 0 again
    assert victim.addr == 0x0100


def test_fill_requires_room():
    a = _array()
    a.fill(0x0000, MesiState.SHARED, 0, None, False)
    a.fill(0x0100, MesiState.SHARED, 0, None, False)
    with pytest.raises(RuntimeError):
        a.fill(0x0200, MesiState.SHARED, 0, None, False)
    assert a.victim(0x0200) is not None


def test_remove():
    a = _array()
    a.fill(0x1000, MesiState.MODIFIED, 5, None, False)
    removed = a.remove(0x1000)
    assert removed.version == 5
    assert a.lookup(0x1000) is None
    assert a.remove(0x1000) is None


def test_set_has_pim_line():
    a = _array()
    a.fill(0x0000, MesiState.SHARED, 0, 2, True)
    a.fill(0x0100, MesiState.SHARED, 0, None, False)
    idx = a.set_index(0x0000)
    assert a.set_has_pim_line(idx)
    a.remove(0x0000)
    assert not a.set_has_pim_line(idx)


def test_scope_lines():
    a = _array()
    a.fill(0x0000, MesiState.SHARED, 0, 7, True)
    a.fill(0x0040, MesiState.SHARED, 0, 7, True)
    a.fill(0x0080, MesiState.SHARED, 0, 3, True)
    assert len(a.scope_lines(7)) == 2


def test_dirty_flag_follows_state():
    a = _array()
    line = a.fill(0x0000, MesiState.MODIFIED, 0, None, False)
    assert line.dirty
    line.state = MesiState.SHARED
    assert not line.dirty


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(line_ids):
    """Property: fills with eviction keep occupancy within geometry."""
    a = CacheArray(num_sets=4, ways=2, line_bytes=64)
    for lid in line_ids:
        addr = lid * 64
        if a.lookup(addr) is None:
            victim = a.victim(addr)
            if victim is not None:
                a.remove(victim.addr)
            a.fill(addr, MesiState.SHARED, 0, None, False)
    assert a.occupancy() <= 8
    for index in range(4):
        assert len(a.lines_in_set(index)) <= 2
