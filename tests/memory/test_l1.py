"""Private L1 cache component."""

from helpers import CaptureSink, ResponseCollector, make_load, make_store

from repro.memory.l1 import L1Cache
from repro.memory.mesi import MesiState
from repro.sim.config import CacheConfig, ScopeBufferConfig
from repro.sim.messages import Message, MessageType


def _l1(sim, scope_map, net=None, scope_buffer=False):
    net = net or CaptureSink(sim, "net")
    l1 = L1Cache(
        sim, "l1.0", 0, CacheConfig(size_bytes=4 << 10, ways=4, hit_latency=2),
        scope_map, net,
        scope_buffer_cfg=ScopeBufferConfig(sets=8, ways=1) if scope_buffer else None,
    )
    return l1, net


def _fill_response(l1, fill_req, version=1):
    resp = fill_req.make_response(MessageType.LOAD_RESP, version=version)
    l1.receive_response(resp)


def test_load_miss_fetches_then_hits(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_load(0x1000, reply_to=core))
    sim.run()
    fetches = net.of_type(MessageType.LOAD)
    assert len(fetches) == 1 and fetches[0].addr == 0x1000
    assert not fetches[0].exclusive
    _fill_response(l1, fetches[0], version=4)
    sim.run()
    assert core.of_type(MessageType.LOAD_RESP)[0].version == 4
    # second load: hit, no new fetch
    l1.offer(make_load(0x1008, reply_to=core))
    sim.run()
    assert len(net.of_type(MessageType.LOAD)) == 1
    assert len(core.responses) == 2


def test_secondary_miss_coalesces(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_load(0x1000, reply_to=core))
    l1.offer(make_load(0x1020, reply_to=core))  # same line
    sim.run()
    assert len(net.of_type(MessageType.LOAD)) == 1
    _fill_response(l1, net.of_type(MessageType.LOAD)[0])
    sim.run()
    assert len(core.of_type(MessageType.LOAD_RESP)) == 2


def test_store_miss_fetches_exclusive(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_store(0x2000, reply_to=core))
    sim.run()
    fetch = net.of_type(MessageType.LOAD)[0]
    assert fetch.exclusive
    _fill_response(l1, fetch, version=7)
    sim.run()
    ack = core.of_type(MessageType.STORE_ACK)[0]
    assert ack.version == 8  # store bumped the filled version
    line = l1.array.lookup(0x2000, touch=False)
    assert line.state is MesiState.MODIFIED


def test_store_hit_on_exclusive_completes_locally(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_store(0x2000, reply_to=core))
    sim.run()
    _fill_response(l1, net.of_type(MessageType.LOAD)[0])
    sim.run()
    l1.offer(make_store(0x2000, reply_to=core))
    sim.run()
    assert len(core.of_type(MessageType.STORE_ACK)) == 2
    assert len(net.of_type(MessageType.LOAD)) == 1  # no extra traffic


def test_shared_hit_store_upgrades(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_load(0x3000, reply_to=core))
    sim.run()
    _fill_response(l1, net.of_type(MessageType.LOAD)[0])  # shared fill
    sim.run()
    line = l1.array.lookup(0x3000, touch=False)
    line.state = MesiState.SHARED  # directory granted shared
    l1.offer(make_store(0x3000, reply_to=core))
    sim.run()
    upgrades = [m for m in net.of_type(MessageType.LOAD) if m.exclusive]
    assert len(upgrades) == 1


def test_eviction_writes_back_dirty(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    # fill a whole set (4 ways) with dirty lines, then one more
    set_stride = l1.array.num_sets * 64
    addrs = [0x4000 + i * set_stride for i in range(5)]
    for addr in addrs:
        l1.offer(make_store(addr, reply_to=core))
        sim.run()
        fetch = net.of_type(MessageType.LOAD)[-1]
        _fill_response(l1, fetch)
        sim.run()
    wbs = net.of_type(MessageType.WRITEBACK)
    assert len(wbs) == 1
    assert wbs[0].addr == addrs[0]  # LRU victim


def test_back_invalidate_returns_dirty_version(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_store(0x5000, reply_to=core))
    sim.run()
    _fill_response(l1, net.of_type(MessageType.LOAD)[0], version=3)
    sim.run()
    dirty, version = l1.back_invalidate(0x5000)
    assert dirty and version == 4
    assert l1.array.lookup(0x5000, touch=False) is None
    assert l1.back_invalidate(0x5000) == (False, 0)


def test_flush_removes_line_and_forwards(sim, scope_map):
    l1, net = _l1(sim, scope_map)
    core = ResponseCollector()
    l1.offer(make_load(0x6000, reply_to=core))
    sim.run()
    _fill_response(l1, net.of_type(MessageType.LOAD)[0])
    sim.run()
    flush = Message(MessageType.FLUSH, addr=0x6000, reply_to=core)
    l1.offer(flush)
    sim.run()
    assert l1.array.lookup(0x6000, touch=False) is None
    assert flush in net.of_type(MessageType.FLUSH)


def test_scope_fence_scans_and_flushes_scope(sim, scope_map):
    l1, net = _l1(sim, scope_map, scope_buffer=True)
    core = ResponseCollector()
    scope0 = scope_map.scope(0)
    # cache two lines of scope 0
    for off in (0, 64):
        l1.offer(make_load(scope0.base + off, scope=0, reply_to=core))
        sim.run()
        _fill_response(l1, net.of_type(MessageType.LOAD)[-1])
        sim.run()
    fence = Message(MessageType.SCOPE_FENCE, addr=scope0.base, scope=0,
                    reply_to=core)
    l1.offer(fence)
    sim.run()
    assert not l1.array.scope_lines(0)
    assert fence in net.received  # forwarded toward the LLC
    # scope buffer now remembers the flush: next fence skips the scan
    assert l1.scope_buffer.lookup(0, record=False)


def test_pim_op_passes_through_untouched(sim, scope_map):
    l1, net = _l1(sim, scope_map, scope_buffer=True)
    core = ResponseCollector()
    scope0 = scope_map.scope(0)
    l1.offer(make_load(scope0.base, scope=0, reply_to=core))
    sim.run()
    _fill_response(l1, net.of_type(MessageType.LOAD)[0])
    sim.run()
    pim = Message(MessageType.PIM_OP, addr=scope0.base, scope=0)
    l1.offer(pim)
    sim.run()
    assert pim in net.received
    # scope-relaxed: PIM ops do NOT flush lower levels (Fig. 6c)
    assert l1.array.scope_lines(0)


def test_mshr_exhaustion_retries(sim, scope_map):
    net = CaptureSink(sim, "net")
    from repro.sim.config import CacheConfig
    l1 = L1Cache(sim, "l1.0", 0,
                 CacheConfig(size_bytes=4 << 10, ways=4, hit_latency=2),
                 scope_map, net, mshr_count=2)
    core = ResponseCollector()
    for i in range(3):
        l1.offer(make_load(0x1000 + i * 4096, reply_to=core))
    sim.run(until=50)
    assert len(net.of_type(MessageType.LOAD)) == 2  # third waits
    _fill_response(l1, net.of_type(MessageType.LOAD)[0])
    sim.run()
    assert len(net.of_type(MessageType.LOAD)) == 3
