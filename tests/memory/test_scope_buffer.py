"""The scope buffer (Section IV-A)."""

from repro.memory.scope_buffer import ScopeBuffer


def test_miss_then_hit():
    sb = ScopeBuffer(sets=4, ways=2)
    assert not sb.lookup(5)
    sb.insert(5)
    assert sb.lookup(5)
    assert sb.hit_rate == 0.5


def test_line_fill_invalidates_entry():
    """When a line of a scope enters the cache, the scope's 'flushed'
    witness is gone (Section IV-A)."""
    sb = ScopeBuffer(sets=4, ways=2)
    sb.insert(5)
    sb.invalidate(5)
    assert not sb.lookup(5)


def test_invalidate_absent_scope_is_noop():
    sb = ScopeBuffer(sets=4, ways=2)
    sb.invalidate(9)  # no error
    assert sb.occupancy() == 0


def test_lru_eviction_within_set():
    sb = ScopeBuffer(sets=1, ways=2)
    sb.insert(1)
    sb.insert(2)
    sb.lookup(1)  # 1 becomes MRU
    sb.insert(3)  # evicts 2
    assert sb.lookup(1, record=False)
    assert not sb.lookup(2, record=False)
    assert sb.lookup(3, record=False)
    assert sb.occupancy() == 2


def test_set_indexing_by_scope_id():
    sb = ScopeBuffer(sets=2, ways=1)
    sb.insert(0)  # set 0
    sb.insert(1)  # set 1
    assert sb.lookup(0, record=False) and sb.lookup(1, record=False)
    sb.insert(2)  # set 0, evicts scope 0
    assert not sb.lookup(0, record=False)
    assert sb.lookup(1, record=False)


def test_unrecorded_peek_does_not_move_hit_rate():
    sb = ScopeBuffer(sets=4, ways=2)
    sb.insert(1)
    sb.lookup(1, record=False)
    assert sb.stats.ratio("hit_rate").denominator == 0


def test_storage_bits():
    sb = ScopeBuffer(sets=64, ways=4)
    # 256 entries x (tag + valid + 2-bit LRU)
    assert sb.storage_bits(scope_tag_bits=32) == 256 * (32 + 1 + 2)
