"""Version-tagged memory image."""

from repro.memory.versioned import VersionedMemory


def test_initial_version_zero():
    mem = VersionedMemory()
    assert mem.read(0x1234) == 0


def test_bump_increments():
    mem = VersionedMemory()
    assert mem.bump(0x1000) == 1
    assert mem.bump(0x1008) == 2  # same line
    assert mem.read(0x103F) == 2
    assert mem.read(0x1040) == 0  # next line


def test_write_never_regresses():
    """A stale in-flight writeback must not erase a newer PIM result."""
    mem = VersionedMemory()
    mem.write(0x2000, 5)
    mem.write(0x2000, 3)
    assert mem.read(0x2000) == 5
    mem.write(0x2000, 9)
    assert mem.read(0x2000) == 9


def test_bump_lines():
    mem = VersionedMemory()
    mem.bump_lines([0x0, 0x40, 0x80], version=7)
    assert [mem.read(a) for a in (0x0, 0x40, 0x80)] == [7, 7, 7]
    mem.bump_lines([0x40], version=4)  # older: ignored
    assert mem.read(0x40) == 7


def test_line_granularity():
    mem = VersionedMemory(line_bytes=64)
    assert mem.line_addr(0x12345) == 0x12340
