"""The flush-point vs in-flight-fetch race (first fuzzer-found bug).

Shrunk repro from ``repro-bench fuzz run --seed 99``: thread 0 issues a
bare load of a scope line while thread 1 runs PIM -> (fence) -> load.
Thread 0's fetch is served at memory *before* the PIM op bumps the
version; its fill then lands after the flush scan ran, re-installing the
pre-PIM line -- and thread 1's post-flush load (which must observe the
PIM result under every correctness-guaranteeing model) either hits that
stale line or coalesces onto the stale in-flight MSHR.  The LLC now
stalls the flush point until in-flight same-scope fetches drain.
"""

import pytest

from repro.api import Runner
from repro.fuzz.harness import timing_experiment
from repro.fuzz.program import FuzzOp, build_program

#: The shrunk repro: the racing reader plus the PIM-then-read thread.
RACER = build_program(
    threads=[
        [FuzzOp("load", 0, 0)],
        [FuzzOp("pim", 0), FuzzOp("load", 0, 0)],
    ],
    slots=[1],
)

#: Same race, opposite arrival order: the fence delays thread 1's PIM op
#: past thread 0's fetch at the memory controller, the adversarial
#: interleaving for the models that flush when the PIM op passes the LLC.
RACER_DELAYED = build_program(
    threads=[
        [FuzzOp("load", 0, 0)],
        [FuzzOp("fence"), FuzzOp("pim", 0), FuzzOp("load", 0, 0)],
    ],
    slots=[1],
)


@pytest.mark.parametrize("model", ["atomic", "store", "scope",
                                   "scope-relaxed"])
@pytest.mark.parametrize("program", [RACER, RACER_DELAYED],
                         ids=["pim-first", "fetch-first"])
def test_racing_fetch_never_serves_stale_pim_results(model, program):
    result = Runner().run(timing_experiment(program, model, rounds=2))
    assert result.stale_reads == 0


@pytest.mark.parametrize("model", ["naive", "sw-flush"])
def test_baselines_still_expose_the_race(model):
    """The controls keep their stale window -- the oracle's signal."""
    result = Runner().run(timing_experiment(RACER, model, rounds=2))
    assert result.stale_reads > 0
