"""The memory controller: ACK-at-arrival, dependency rules, routing."""

from helpers import DirectDispatcher, ResponseCollector, make_load, make_pim, make_store

from repro.memory.memory_controller import MemoryController
from repro.memory.versioned import VersionedMemory
from repro.pim.module import PimModule
from repro.sim.config import MemoryConfig, PimModuleConfig
from repro.sim.messages import Message, MessageType


def _mc(sim, buffer_capacity=4, op_latency=100, queue_capacity=8,
        dram_burst_len=1):
    memory = VersionedMemory()
    resp = DirectDispatcher(sim, "resp")
    mc = MemoryController(sim, "mc",
                          MemoryConfig(dram_latency=20, dram_service_interval=2,
                                       queue_capacity=queue_capacity,
                                       dram_burst_len=dram_burst_len),
                          memory, resp)
    module = PimModule(sim, "pim",
                       PimModuleConfig(buffer_capacity=buffer_capacity,
                                       op_latency=op_latency),
                       memory, resp, access_latency=20)
    module.mc = mc
    mc.pim_module = module
    return mc, module, memory


def test_pim_ack_sent_at_arrival(sim):
    """Fig. 6a/6b: the ACK is sent when the op reaches the MC, not when
    it executes."""
    mc, module, _ = _mc(sim, op_latency=10_000)
    requester = ResponseCollector()
    mc.offer(make_pim(0, reply_to=requester))
    assert requester.of_type(MessageType.PIM_ACK)  # immediate


def test_dram_load_roundtrip(sim):
    mc, _, memory = _mc(sim)
    memory.write(0x9000, 3)
    requester = ResponseCollector()
    mc.offer(make_load(0x9000, reply_to=requester))
    sim.run()
    resp = requester.of_type(MessageType.LOAD_RESP)[0]
    assert resp.version == 3


def test_uncacheable_store_bumps_memory(sim):
    mc, _, memory = _mc(sim)
    requester = ResponseCollector()
    mc.offer(make_store(0xA000, reply_to=requester))
    sim.run()
    assert memory.read(0xA000) == 1
    assert requester.of_type(MessageType.STORE_ACK)


def test_same_line_dram_accesses_stay_fifo(sim):
    mc, _, memory = _mc(sim)
    requester = ResponseCollector()
    wb = Message(MessageType.WRITEBACK, addr=0xB000, version=7)
    mc.offer(wb)
    mc.offer(make_load(0xB000, reply_to=requester))
    sim.run()
    # the load observed the writeback's data
    assert requester.of_type(MessageType.LOAD_RESP)[0].version == 7


def test_pim_scope_load_waits_for_pim_execution(sim, scope_map):
    """Reads of a scope's results arrive at the module after its PIM op
    and are served only once the op executed (Section V-A)."""
    mc, module, memory = _mc(sim, op_latency=500)
    scope0 = scope_map.scope(0)
    result_line = scope0.base + 4096
    module.result_lines_fn = lambda s: frozenset({result_line})

    def bump(msg):
        memory.write(result_line, 42)
    module.on_execute = bump

    requester = ResponseCollector()
    mc.offer(make_pim(0, addr=scope0.base, reply_to=requester))
    mc.offer(make_load(result_line, scope=0, reply_to=requester))
    sim.run()
    resp = requester.of_type(MessageType.LOAD_RESP)[0]
    assert resp.version == 42  # saw the post-PIM value
    assert sim.now >= 500


def test_non_result_access_bypasses_execution(sim, scope_map):
    """Record-data reads don't wait for the scope's queued PIM ops."""
    mc, module, memory = _mc(sim, op_latency=100_000)
    scope0 = scope_map.scope(0)
    module.result_lines_fn = lambda s: frozenset({scope0.base + 4096})
    requester = ResponseCollector()
    mc.offer(make_pim(0, addr=scope0.base, reply_to=requester))
    mc.offer(make_load(scope0.base + 64, scope=0, reply_to=requester))
    sim.run(until=1000)
    assert requester.of_type(MessageType.LOAD_RESP)  # long before 100K


def test_module_backpressure_fills_mc_queue(sim, scope_map):
    """When the PIM buffer is full, PIM ops pile up in the MC; when the
    MC queue is full too, offers are rejected (back-pressure to the
    host, Section VII)."""
    mc, module, _ = _mc(sim, buffer_capacity=1, op_latency=100_000,
                        queue_capacity=4)
    requester = ResponseCollector()
    accepted = 0
    for _ in range(10):
        if mc.offer(make_pim(0, reply_to=requester)):
            accepted += 1
        sim.run(until=sim.now + 5)
    # 1 executing + 1 buffered + 4 in the MC queue
    assert accepted == 6
    assert mc.occupancy == 4


def test_pim_ops_to_distinct_scopes_flow_to_module(sim):
    mc, module, _ = _mc(sim, buffer_capacity=8, op_latency=50)
    requester = ResponseCollector()
    for scope in range(4):
        mc.offer(make_pim(scope, reply_to=requester))
    sim.run()
    assert module.stats.as_dict()["ops_executed"] == 4
    assert sim.now < 4 * 50  # scopes executed in parallel


def test_queue_length_stat_sampled_at_arrival(sim):
    mc, _, _ = _mc(sim)
    requester = ResponseCollector()
    mc.offer(make_load(0x100, reply_to=requester))
    mc.offer(make_load(0x200, reply_to=requester))
    assert mc.stats.as_dict()["queue_length_at_arrival_count"] == 2


# ---------------------------------------------------------------------- #
# DRAM burst batching (dram_burst_len > 1)
# ---------------------------------------------------------------------- #


def test_burst_fuses_same_window_accesses(sim):
    """Queued accesses in one aligned burst window ride one service
    interval; an access outside the window waits for the next."""
    mc, _, memory = _mc(sim, dram_burst_len=4)
    for addr in (0x9000, 0x9040, 0x9080):  # one 4-line window
        memory.write(addr, 2)
    requester = ResponseCollector()
    for addr in (0x9000, 0x10000, 0x9040, 0x9080):
        mc.offer(make_load(addr, reply_to=requester))
    sim.run()
    assert len(requester.of_type(MessageType.LOAD_RESP)) == 4
    snap = mc.stats.as_dict()
    # Window trio fused into one burst, the outlier issued alone.
    assert snap["bursts_issued"] == 2
    assert snap["burst_length"] == 2.0  # (3 + 1) / 2
    # Fusing saved a service interval: trio at t=0, outlier at t=2.
    assert sim.now == 2 + 20  # second interval + DRAM latency


def test_burst_preserves_same_line_order(sim):
    """A writeback and a younger load to the same line fuse in queue
    order, so the load observes the written version."""
    mc, _, memory = _mc(sim, dram_burst_len=4)
    requester = ResponseCollector()
    mc.offer(Message(MessageType.WRITEBACK, addr=0xB000, version=7))
    mc.offer(make_load(0xB000, reply_to=requester))
    sim.run()
    assert requester.of_type(MessageType.LOAD_RESP)[0].version == 7


def test_burst_skips_pim_scope_traffic(sim, scope_map):
    """PIM-memory messages never fuse into a DRAM burst even when their
    addresses fall inside the window."""
    mc, module, memory = _mc(sim, dram_burst_len=4, op_latency=5)
    scope0 = scope_map.scope(0)
    requester = ResponseCollector()
    mc.offer(make_load(scope0.base & ~0xFF, reply_to=requester))
    mc.offer(make_load(scope0.base + 64, scope=0, reply_to=requester))
    sim.run()
    assert len(requester.of_type(MessageType.LOAD_RESP)) == 2
    assert mc.stats.as_dict()["burst_length"] == 1.0


def test_default_burst_len_emits_no_burst_stats(sim):
    mc, _, _ = _mc(sim)
    requester = ResponseCollector()
    mc.offer(make_load(0x9000, reply_to=requester))
    sim.run()
    snap = mc.stats.as_dict()
    assert "bursts_issued" not in snap and "burst_length" not in snap
