"""MESI state machine helpers."""

import pytest

from repro.memory.mesi import (
    VALID_DOWNGRADES,
    MesiState,
    state_after_store,
    state_on_fill,
)


def test_readability():
    assert not MesiState.INVALID.readable
    for s in (MesiState.SHARED, MesiState.EXCLUSIVE, MesiState.MODIFIED):
        assert s.readable


def test_writability():
    assert MesiState.EXCLUSIVE.writable
    assert MesiState.MODIFIED.writable
    assert not MesiState.SHARED.writable
    assert not MesiState.INVALID.writable


def test_dirty_only_modified():
    assert MesiState.MODIFIED.dirty
    for s in (MesiState.INVALID, MesiState.SHARED, MesiState.EXCLUSIVE):
        assert not s.dirty


def test_state_on_fill():
    assert state_on_fill(exclusive=True) is MesiState.EXCLUSIVE
    assert state_on_fill(exclusive=False) is MesiState.SHARED


def test_state_after_store():
    assert state_after_store(MesiState.EXCLUSIVE) is MesiState.MODIFIED
    assert state_after_store(MesiState.MODIFIED) is MesiState.MODIFIED
    with pytest.raises(ValueError):
        state_after_store(MesiState.SHARED)


def test_downgrade_table_is_monotone():
    for state, targets in VALID_DOWNGRADES.items():
        for target in targets:
            assert target < state
