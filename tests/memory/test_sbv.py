"""The scope bit-vector (Section IV-B)."""

import pytest

from repro.memory.sbv import ScopeBitVector


def test_mark_and_scan_set():
    sbv = ScopeBitVector(8)
    sbv.mark(3)
    sbv.mark(5)
    assert sbv.sets_to_scan() == [3, 5]
    assert sbv.is_marked(3) and not sbv.is_marked(0)


def test_eviction_clears_bit_when_no_pim_left():
    sbv = ScopeBitVector(8)
    sbv.mark(3)
    sbv.update_on_eviction(3, set_still_has_pim=False)
    assert not sbv.is_marked(3)
    sbv.mark(4)
    sbv.update_on_eviction(4, set_still_has_pim=True)
    assert sbv.is_marked(4)


def test_skip_ratio_accounting():
    """Fig. 10d: ratio of sets skipped out of all sets."""
    sbv = ScopeBitVector(100)
    for i in range(6):
        sbv.mark(i)
    sbv.record_scan(len(sbv.sets_to_scan()))
    assert sbv.mean_skipped_ratio == pytest.approx(0.94)
    sbv.record_scan(0)  # a scan that visited nothing
    assert sbv.mean_skipped_ratio == pytest.approx((94 + 100) / 200)


def test_popcount():
    sbv = ScopeBitVector(16)
    for i in (1, 5, 9):
        sbv.mark(i)
    assert sbv.popcount() == 3


def test_storage_is_one_bit_per_set():
    assert ScopeBitVector(2048).storage_bits() == 2048


def test_invalid_geometry():
    with pytest.raises(ValueError):
        ScopeBitVector(0)
