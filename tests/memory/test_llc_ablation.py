"""Scope-buffer/SBV ablation switches on the LLC."""

from helpers import CaptureSink, DirectDispatcher, make_pim

from repro.core.scope import ScopeMap
from repro.memory.llc import LastLevelCache
from repro.sim.config import CacheConfig, ScopeBufferConfig


def _llc(sim, scope_map, scope_buffer_enabled=True, sbv_enabled=True):
    mem = CaptureSink(sim, "mem")
    llc = LastLevelCache(
        sim, "llc",
        CacheConfig(size_bytes=64 << 10, ways=4, hit_latency=2),
        ScopeBufferConfig(sets=8, ways=2),
        scope_map, mem, DirectDispatcher(sim, "resp"),
        scope_buffer_enabled=scope_buffer_enabled,
        sbv_enabled=sbv_enabled,
    )
    return llc, mem


def test_disabled_scope_buffer_scans_every_op(sim, scope_map):
    llc, _ = _llc(sim, scope_map, scope_buffer_enabled=False)
    for _ in range(3):
        llc.offer(make_pim(0))
        sim.run()
    stats = llc.stats.as_dict()
    assert stats["scan_latency_count"] == 3
    assert llc._scan_latency.min > 0  # no zero-cost hits


def test_disabled_sbv_scans_all_sets(sim, scope_map):
    llc, _ = _llc(sim, scope_map, sbv_enabled=False)
    llc.offer(make_pim(0))
    sim.run()
    assert llc._scan_latency.max >= llc.array.num_sets
    # and the skip ratio is zero: nothing was skipped
    assert llc.stats.as_dict()["skipped_set_ratio"] == 0.0


def test_enabled_is_default(sim, scope_map):
    llc, _ = _llc(sim, scope_map)
    llc.offer(make_pim(0))
    llc.offer(make_pim(0))
    sim.run()
    assert llc._scan_latency.min == 0  # second op hit the scope buffer
