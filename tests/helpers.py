"""Stub components shared by the test suite."""

from typing import List, Optional

import pytest

from repro.core.scope import ScopeMap
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.messages import Message, MessageType


class CaptureSink(Component):
    """Accepts (or rejects) everything, recording what it saw."""

    def __init__(self, sim, name="capture", full=False):
        super().__init__(sim, name)
        self.received: List[Message] = []
        self.full = full
        self.waiters: list = []

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        if self.full:
            if sender is not None and sender not in self.waiters:
                self.waiters.append(sender)
            return False
        self.received.append(msg)
        return True

    def release(self):
        self.full = False
        waiters, self.waiters = self.waiters, []
        for w in waiters:
            w.unblock()

    def of_type(self, mtype: MessageType) -> List[Message]:
        return [m for m in self.received if m.mtype is mtype]


class ResponseCollector:
    """Stands in for a core/entry point on the response path."""

    def __init__(self):
        self.responses: List[Message] = []

    def receive_response(self, msg: Message) -> None:
        self.responses.append(msg)

    def of_type(self, mtype: MessageType) -> List[Message]:
        return [m for m in self.responses if m.mtype is mtype]


class DirectDispatcher(Component):
    """A response network with zero latency: delivers immediately."""

    def offer(self, msg: Message, sender=None) -> bool:
        msg.reply_to.receive_response(msg)
        return True


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def scope_map():
    return ScopeMap(pim_base=1 << 30, scope_bytes=128 << 10, num_scopes=4)


def make_load(addr, scope=None, reply_to=None, core=0, exclusive=False,
              uncacheable=False, expect=0):
    return Message(MessageType.LOAD, addr=addr, scope=scope, core=core,
                   reply_to=reply_to, exclusive=exclusive,
                   uncacheable=uncacheable, version=expect)


def make_store(addr, scope=None, reply_to=None, core=0):
    return Message(MessageType.STORE, addr=addr, scope=scope, core=core,
                   reply_to=reply_to)


def make_pim(scope, addr=0, reply_to=None, core=0, direct=False):
    return Message(MessageType.PIM_OP, addr=addr, scope=scope, core=core,
                   reply_to=reply_to, direct=direct)
