"""The memory-subsystem entry point (write buffer)."""

from helpers import CaptureSink, make_load, make_pim, make_store

from repro.core.models import ConsistencyModel
from repro.host.entry_point import EntryPoint
from repro.host.policies import IssuePolicy
from repro.sim.messages import Message, MessageType


def _ep(sim, model, depth=8):
    l1 = CaptureSink(sim, "l1")
    net = CaptureSink(sim, "net")
    ep = EntryPoint(sim, "ep", 0, IssuePolicy(model), l1, net, depth=depth)
    return ep, l1, net


def _ack(ep, pim_msg):
    ep.receive_response(pim_msg.make_response(MessageType.PIM_ACK))


class _NullCore:
    def on_entry_point_progress(self):
        pass

    def on_subsystem_ack(self, resp):
        pass


def test_loads_and_stores_route_to_l1(sim):
    ep, l1, net = _ep(sim, ConsistencyModel.ATOMIC)
    ep.offer(make_load(0x100))
    ep.offer(make_store(0x200))
    sim.run()
    assert len(l1.received) == 2
    assert not net.received


def test_uncacheable_bypasses_l1(sim):
    ep, l1, net = _ep(sim, ConsistencyModel.UNCACHEABLE)
    msg = make_load(0x100, uncacheable=True)
    ep.offer(msg)
    sim.run()
    assert msg in net.received and not l1.received


def test_pim_routes_past_l1_except_scope_relaxed(sim):
    for model, through_l1 in [(ConsistencyModel.ATOMIC, False),
                              (ConsistencyModel.SCOPE_RELAXED, True)]:
        ep, l1, net = _ep(sim, model)
        msg = make_pim(0, reply_to=None)
        ep.offer(msg)
        sim.run()
        target = l1 if through_l1 else net
        assert msg in target.received, model


def test_baseline_pim_marked_direct(sim):
    ep, _, net = _ep(sim, ConsistencyModel.SW_FLUSH)
    msg = make_pim(0)
    ep.offer(msg)
    sim.run()
    assert net.received[0].direct


def test_store_model_serializes_pim_ops_on_acks(sim):
    ep, l1, net = _ep(sim, ConsistencyModel.STORE)
    ep.attach_core(_NullCore())
    first, second = make_pim(0, reply_to=ep), make_pim(1, reply_to=ep)
    ep.offer(first)
    ep.offer(second)
    sim.run()
    assert first in net.received and second not in net.received
    _ack(ep, first)
    sim.run()
    assert second in net.received


def test_store_model_load_bypass_rules(sim):
    ep, l1, net = _ep(sim, ConsistencyModel.STORE)
    ep.attach_core(_NullCore())
    pim = make_pim(0, reply_to=ep)
    same_scope = make_load(0x100, scope=0)
    other_scope = make_load(0x200, scope=1)
    trailing_store = make_store(0x300, scope=1)
    for m in (pim, same_scope, other_scope, trailing_store):
        ep.offer(m)
    sim.run()
    assert other_scope in l1.received          # bypassed the pending PIM op
    assert same_scope not in l1.received       # held: same scope
    assert trailing_store not in l1.received   # held: store class
    _ack(ep, pim)
    sim.run()
    assert same_scope in l1.received and trailing_store in l1.received


def test_scope_model_interleaves_other_scope_pims(sim):
    """The non-FIFO write buffer (Section V-D): PIM ops to distinct
    scopes flow without waiting for each other's ACKs."""
    ep, _, net = _ep(sim, ConsistencyModel.SCOPE)
    ep.attach_core(_NullCore())
    ops = [make_pim(s, reply_to=ep) for s in range(3)]
    ops.append(make_pim(0, reply_to=ep))  # second op to scope 0: held
    for m in ops:
        ep.offer(m)
    sim.run()
    assert all(m in net.received for m in ops[:3])
    assert ops[3] not in net.received
    _ack(ep, ops[0])
    sim.run()
    assert ops[3] in net.received


def test_scope_fence_holds_same_scope_until_ack(sim):
    ep, l1, _ = _ep(sim, ConsistencyModel.SCOPE_RELAXED)
    ep.attach_core(_NullCore())
    fence = Message(MessageType.SCOPE_FENCE, addr=0, scope=0, reply_to=ep)
    same = make_load(0x100, scope=0)
    other = make_load(0x200, scope=1)
    ep.offer(fence)
    ep.offer(same)
    ep.offer(other)
    sim.run()
    assert fence in l1.received
    assert other in l1.received and same not in l1.received
    ep.receive_response(fence.make_response(MessageType.SCOPE_FENCE_ACK))
    sim.run()
    assert same in l1.received


def test_load_cannot_jump_queued_same_scope_pim(sim):
    """The write-buffer flavour of the Fig. 1 race: a load must not
    overtake an older, still-held PIM op to its scope (except under
    scope-relaxed, which permits the reorder)."""
    ep, l1, net = _ep(sim, ConsistencyModel.STORE)
    ep.attach_core(_NullCore())
    first = make_pim(0, reply_to=ep)
    held = make_pim(1, reply_to=ep)     # held behind first's ACK
    load = make_load(0x100, scope=1)    # must not pass the held op
    for m in (first, held, load):
        ep.offer(m)
    sim.run()
    assert load not in l1.received
    _ack(ep, first)
    sim.run()
    _ack(ep, held)
    sim.run()
    assert load in l1.received


def test_capacity_and_drained(sim):
    ep, _, _ = _ep(sim, ConsistencyModel.NAIVE, depth=2)
    assert ep.offer(make_load(0x100))
    assert ep.offer(make_load(0x200))
    assert ep.is_full
    assert not ep.offer(make_load(0x300))
    sim.run()
    assert ep.drained


# --------------------------------------------------------------------- #
# parity: the serve loop's inlined policy decision vs IssuePolicy
# --------------------------------------------------------------------- #


def _reference_first_forwardable(policy, queue, pending, fenced):
    """The pre-optimization O(n^2) algorithm, driven by the canonical
    IssuePolicy.may_forward -- the oracle the inlined scan must match."""
    from repro.sim.messages import MessageType

    for i, msg in enumerate(queue):
        earlier_line_write = False
        if msg.mtype is MessageType.LOAD:
            line = msg.addr & ~63
            earlier_line_write = any(
                e.mtype in (MessageType.STORE, MessageType.FLUSH)
                and (e.addr & ~63) == line
                for e in list(queue)[:i]
            )
        scope_order = ""
        if msg.scope is not None and msg.mtype is not MessageType.PIM_OP:
            for earlier in list(queue)[:i]:
                if earlier.scope != msg.scope:
                    continue
                if earlier.mtype is MessageType.SCOPE_FENCE:
                    scope_order = "fence"
                    break
                if earlier.mtype is MessageType.PIM_OP and not scope_order:
                    scope_order = "pim"
        if policy.may_forward(msg, pending, fenced, earlier_line_write,
                              scope_order):
            return i
    return None


def test_serve_scan_matches_may_forward_for_every_model():
    """The entry point inlines IssuePolicy.may_forward in its serve loop
    (head fast path + incremental full scan); randomized queue states
    must make exactly the same choice as the canonical policy method."""
    import random

    from repro.core.models import ConsistencyModel
    from repro.host.entry_point import EntryPoint
    from repro.host.policies import IssuePolicy
    from repro.sim.component import Component
    from repro.sim.kernel import Simulator
    from repro.sim.messages import Message, MessageType

    class Rejecting(Component):
        """Records the chosen message but refuses it, leaving the queue
        intact so the choice is observable without side effects."""

        def __init__(self, sim):
            super().__init__(sim, "stub")
            self.offered = []

        def offer(self, msg, sender=None):
            self.offered.append(msg)
            return False

    kinds = [MessageType.LOAD, MessageType.STORE, MessageType.FLUSH,
             MessageType.PIM_OP, MessageType.SCOPE_FENCE]
    rng = random.Random(1234)
    for model in ConsistencyModel:
        policy = IssuePolicy(model)
        for _ in range(60):
            sim = Simulator()
            stub = Rejecting(sim)
            ep = EntryPoint(sim, "ep", 0, policy, l1=stub, req_net=stub)
            for _ in range(rng.randrange(1, 7)):
                mtype = rng.choice(kinds)
                scope = rng.choice([None, 0, 1]) \
                    if mtype not in (MessageType.PIM_OP,
                                     MessageType.SCOPE_FENCE) \
                    else rng.choice([0, 1])
                ep._queue.append(Message(
                    mtype, addr=rng.choice([0x0, 0x40, 0x80]), scope=scope,
                ))
            for scope in (0, 1):
                if rng.random() < 0.4:
                    ep.pending_pim_scopes[scope] = 1
                if rng.random() < 0.3:
                    ep.fenced_scopes.add(scope)
            expected = _reference_first_forwardable(
                policy, ep._queue, ep.pending_pim_scopes, ep.fenced_scopes)
            ep._serve()
            chosen = (ep._queue.index(stub.offered[0])
                      if stub.offered else None)
            assert chosen == expected, (
                f"model={model.value} queue="
                f"{[(m.mtype.name, m.scope, hex(m.addr)) for m in ep._queue]}"
                f" pending={ep.pending_pim_scopes}"
                f" fenced={ep.fenced_scopes}"
            )
