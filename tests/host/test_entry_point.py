"""The memory-subsystem entry point (write buffer)."""

from helpers import CaptureSink, make_load, make_pim, make_store

from repro.core.models import ConsistencyModel
from repro.host.entry_point import EntryPoint
from repro.host.policies import IssuePolicy
from repro.sim.messages import Message, MessageType


def _ep(sim, model, depth=8):
    l1 = CaptureSink(sim, "l1")
    net = CaptureSink(sim, "net")
    ep = EntryPoint(sim, "ep", 0, IssuePolicy(model), l1, net, depth=depth)
    return ep, l1, net


def _ack(ep, pim_msg):
    ep.receive_response(pim_msg.make_response(MessageType.PIM_ACK))


class _NullCore:
    def on_entry_point_progress(self):
        pass

    def on_subsystem_ack(self, resp):
        pass


def test_loads_and_stores_route_to_l1(sim):
    ep, l1, net = _ep(sim, ConsistencyModel.ATOMIC)
    ep.offer(make_load(0x100))
    ep.offer(make_store(0x200))
    sim.run()
    assert len(l1.received) == 2
    assert not net.received


def test_uncacheable_bypasses_l1(sim):
    ep, l1, net = _ep(sim, ConsistencyModel.UNCACHEABLE)
    msg = make_load(0x100, uncacheable=True)
    ep.offer(msg)
    sim.run()
    assert msg in net.received and not l1.received


def test_pim_routes_past_l1_except_scope_relaxed(sim):
    for model, through_l1 in [(ConsistencyModel.ATOMIC, False),
                              (ConsistencyModel.SCOPE_RELAXED, True)]:
        ep, l1, net = _ep(sim, model)
        msg = make_pim(0, reply_to=None)
        ep.offer(msg)
        sim.run()
        target = l1 if through_l1 else net
        assert msg in target.received, model


def test_baseline_pim_marked_direct(sim):
    ep, _, net = _ep(sim, ConsistencyModel.SW_FLUSH)
    msg = make_pim(0)
    ep.offer(msg)
    sim.run()
    assert net.received[0].direct


def test_store_model_serializes_pim_ops_on_acks(sim):
    ep, l1, net = _ep(sim, ConsistencyModel.STORE)
    ep.attach_core(_NullCore())
    first, second = make_pim(0, reply_to=ep), make_pim(1, reply_to=ep)
    ep.offer(first)
    ep.offer(second)
    sim.run()
    assert first in net.received and second not in net.received
    _ack(ep, first)
    sim.run()
    assert second in net.received


def test_store_model_load_bypass_rules(sim):
    ep, l1, net = _ep(sim, ConsistencyModel.STORE)
    ep.attach_core(_NullCore())
    pim = make_pim(0, reply_to=ep)
    same_scope = make_load(0x100, scope=0)
    other_scope = make_load(0x200, scope=1)
    trailing_store = make_store(0x300, scope=1)
    for m in (pim, same_scope, other_scope, trailing_store):
        ep.offer(m)
    sim.run()
    assert other_scope in l1.received          # bypassed the pending PIM op
    assert same_scope not in l1.received       # held: same scope
    assert trailing_store not in l1.received   # held: store class
    _ack(ep, pim)
    sim.run()
    assert same_scope in l1.received and trailing_store in l1.received


def test_scope_model_interleaves_other_scope_pims(sim):
    """The non-FIFO write buffer (Section V-D): PIM ops to distinct
    scopes flow without waiting for each other's ACKs."""
    ep, _, net = _ep(sim, ConsistencyModel.SCOPE)
    ep.attach_core(_NullCore())
    ops = [make_pim(s, reply_to=ep) for s in range(3)]
    ops.append(make_pim(0, reply_to=ep))  # second op to scope 0: held
    for m in ops:
        ep.offer(m)
    sim.run()
    assert all(m in net.received for m in ops[:3])
    assert ops[3] not in net.received
    _ack(ep, ops[0])
    sim.run()
    assert ops[3] in net.received


def test_scope_fence_holds_same_scope_until_ack(sim):
    ep, l1, _ = _ep(sim, ConsistencyModel.SCOPE_RELAXED)
    ep.attach_core(_NullCore())
    fence = Message(MessageType.SCOPE_FENCE, addr=0, scope=0, reply_to=ep)
    same = make_load(0x100, scope=0)
    other = make_load(0x200, scope=1)
    ep.offer(fence)
    ep.offer(same)
    ep.offer(other)
    sim.run()
    assert fence in l1.received
    assert other in l1.received and same not in l1.received
    ep.receive_response(fence.make_response(MessageType.SCOPE_FENCE_ACK))
    sim.run()
    assert same in l1.received


def test_load_cannot_jump_queued_same_scope_pim(sim):
    """The write-buffer flavour of the Fig. 1 race: a load must not
    overtake an older, still-held PIM op to its scope (except under
    scope-relaxed, which permits the reorder)."""
    ep, l1, net = _ep(sim, ConsistencyModel.STORE)
    ep.attach_core(_NullCore())
    first = make_pim(0, reply_to=ep)
    held = make_pim(1, reply_to=ep)     # held behind first's ACK
    load = make_load(0x100, scope=1)    # must not pass the held op
    for m in (first, held, load):
        ep.offer(m)
    sim.run()
    assert load not in l1.received
    _ack(ep, first)
    sim.run()
    _ack(ep, held)
    sim.run()
    assert load in l1.received


def test_capacity_and_drained(sim):
    ep, _, _ = _ep(sim, ConsistencyModel.NAIVE, depth=2)
    assert ep.offer(make_load(0x100))
    assert ep.offer(make_load(0x200))
    assert ep.is_full
    assert not ep.offer(make_load(0x300))
    sim.run()
    assert ep.drained
