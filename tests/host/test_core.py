"""Host core execution semantics."""

from helpers import CaptureSink

from repro.core.models import ConsistencyModel
from repro.host.core import Core
from repro.host.entry_point import EntryPoint
from repro.host.policies import IssuePolicy
from repro.host.program import ThreadOp, ThreadProgram
from repro.sim.messages import MessageType


def _core(sim, model=ConsistencyModel.NAIVE, mlp=2):
    l1 = CaptureSink(sim, "l1")
    net = CaptureSink(sim, "net")
    ep = EntryPoint(sim, "ep", 0, IssuePolicy(model), l1, net, depth=8)
    core = Core(sim, "core", 0, ep.policy, ep, max_outstanding_loads=mlp)
    return core, ep, l1, net


def _answer_loads(sim, core, sink, version=0):
    for msg in sink.of_type(MessageType.LOAD):
        core.receive_response(msg.make_response(MessageType.LOAD_RESP, version=version))
    sink.received = [m for m in sink.received if m.mtype is not MessageType.LOAD]


def test_mlp_limits_outstanding_loads(sim):
    core, ep, l1, _ = _core(sim, mlp=2)
    core.run_program(ThreadProgram("t", [ThreadOp.load(64 * i) for i in range(5)]))
    sim.run()
    assert len(l1.of_type(MessageType.LOAD)) == 2  # MLP cap
    _answer_loads(sim, core, l1)
    sim.run()
    assert core.outstanding_loads <= 2


def test_done_requires_completed_responses(sim):
    core, ep, l1, _ = _core(sim)
    core.run_program(ThreadProgram("t", [ThreadOp.load(0)]))
    sim.run()
    assert not core.done  # load still outstanding
    _answer_loads(sim, core, l1)
    sim.run()
    assert core.done


def test_compute_consumes_cycles(sim):
    core, *_ = _core(sim)
    core.run_program(ThreadProgram("t", [ThreadOp.compute(100)]))
    sim.run()
    assert core.done and sim.now >= 100


def test_mem_fence_waits_for_loads(sim):
    core, ep, l1, _ = _core(sim)
    core.run_program(ThreadProgram("t", [
        ThreadOp.load(0),
        ThreadOp.mem_fence(),
        ThreadOp.load(64),
    ]))
    sim.run()
    assert len(l1.of_type(MessageType.LOAD)) == 1  # fence blocks the second
    _answer_loads(sim, core, l1)
    sim.run()
    assert len(l1.of_type(MessageType.LOAD)) == 1  # answered removed; new one
    assert core.outstanding_loads == 1


def test_atomic_pim_blocks_until_ack(sim):
    core, ep, l1, net = _core(sim, ConsistencyModel.ATOMIC)
    core.run_program(ThreadProgram("t", [
        ThreadOp.pim_op(0),
        ThreadOp.load(64, scope=1),
    ]))
    sim.run()
    pim = net.of_type(MessageType.PIM_OP)[0]
    assert not l1.of_type(MessageType.LOAD)  # commit blocked on ACK
    core.receive_response(pim.make_response(MessageType.PIM_ACK))
    sim.run()
    assert l1.of_type(MessageType.LOAD)


def test_store_model_pim_waits_for_earlier_loads(sim):
    core, ep, l1, net = _core(sim, ConsistencyModel.STORE)
    core.run_program(ThreadProgram("t", [
        ThreadOp.load(0),
        ThreadOp.pim_op(0),
    ]))
    sim.run()
    assert not net.of_type(MessageType.PIM_OP)  # waiting for the load
    _answer_loads(sim, core, l1)
    sim.run()
    assert net.of_type(MessageType.PIM_OP)


def test_scope_model_pim_waits_only_same_scope(sim):
    core, ep, l1, net = _core(sim, ConsistencyModel.SCOPE)
    core.run_program(ThreadProgram("t", [
        ThreadOp.load(1 << 20, scope=1),   # other scope: does not block
        ThreadOp.pim_op(0),
    ]))
    sim.run()
    assert net.of_type(MessageType.PIM_OP)  # issued despite pending load


def test_scope_relaxed_pim_never_waits(sim):
    core, ep, l1, net = _core(sim, ConsistencyModel.SCOPE_RELAXED)
    core.run_program(ThreadProgram("t", [
        ThreadOp.load(0, scope=0),
        ThreadOp.pim_op(0),
    ]))
    sim.run()
    # the PIM op went through the L1 (scope-relaxed path) with the load
    # still outstanding
    assert l1.of_type(MessageType.PIM_OP)


def test_stale_read_detection(sim):
    core, ep, l1, _ = _core(sim)
    core.run_program(ThreadProgram("t", [ThreadOp.load(0, expect_version=5)]))
    sim.run()
    msg = l1.of_type(MessageType.LOAD)[0]
    core.receive_response(msg.make_response(MessageType.LOAD_RESP, version=3))
    sim.run()
    assert core.stale_reads == 1


def test_fresh_read_not_counted_stale(sim):
    core, ep, l1, _ = _core(sim)
    core.run_program(ThreadProgram("t", [ThreadOp.load(0, expect_version=5)]))
    sim.run()
    msg = l1.of_type(MessageType.LOAD)[0]
    core.receive_response(msg.make_response(MessageType.LOAD_RESP, version=6))
    sim.run()
    assert core.stale_reads == 0


def test_barrier_waits_for_quiesce_then_calls_back(sim):
    arrived = []
    l1 = CaptureSink(sim, "l1")
    net = CaptureSink(sim, "net")
    ep = EntryPoint(sim, "ep", 0, IssuePolicy(ConsistencyModel.NAIVE), l1, net)
    core = Core(sim, "core", 0, ep.policy, ep, barrier_cb=arrived.append)
    core.run_program(ThreadProgram("t", [
        ThreadOp.load(0),
        ThreadOp.barrier(),
        ThreadOp.compute(10),
    ]))
    sim.run()
    assert not arrived  # load outstanding: not yet at the barrier
    for msg in l1.of_type(MessageType.LOAD):
        core.receive_response(msg.make_response(MessageType.LOAD_RESP))
    sim.run()
    assert arrived == [core]
    assert not core.done  # still parked at the barrier
    core.release_barrier()
    sim.run()
    assert core.done


def test_uncacheable_accesses_serialize(sim):
    core, ep, l1, net = _core(sim, ConsistencyModel.UNCACHEABLE, mlp=8)
    core.run_program(ThreadProgram("t", [
        ThreadOp.load(64 * i, uncacheable=True) for i in range(3)
    ]))
    sim.run()
    assert len(net.of_type(MessageType.LOAD)) == 1  # strongly ordered
    msg = net.of_type(MessageType.LOAD)[0]
    core.receive_response(msg.make_response(MessageType.LOAD_RESP))
    sim.run()
    assert len(net.of_type(MessageType.LOAD)) == 2


def test_pim_fence_waits_for_acks(sim):
    core, ep, l1, net = _core(sim, ConsistencyModel.SCOPE)
    core.run_program(ThreadProgram("t", [
        ThreadOp.pim_op(0),
        ThreadOp.pim_fence(),
        ThreadOp.compute(1),
    ]))
    sim.run()
    pim = net.of_type(MessageType.PIM_OP)[0]
    assert not core.done  # fence waiting on the ACK
    ep.receive_response(pim.make_response(MessageType.PIM_ACK))
    sim.run()
    assert core.done
