"""Per-model entry-point issue policies (Section V)."""

import pytest

from repro.core.models import ConsistencyModel
from repro.host.policies import IssuePolicy
from repro.sim.messages import Message, MessageType


def _load(scope=None):
    return Message(MessageType.LOAD, addr=0x100, scope=scope)


def _store(scope=None):
    return Message(MessageType.STORE, addr=0x100, scope=scope)


def _pim(scope=0):
    return Message(MessageType.PIM_OP, addr=0, scope=scope)


def _policy(model):
    return IssuePolicy(model)


def test_atomic_policy_blocks_commit_only():
    p = _policy(ConsistencyModel.ATOMIC)
    assert p.blocks_commit and p.requires_ack
    # entry point never holds; the core serializes
    assert p.may_forward(_store(0), {0: 1}, set(), False)
    assert p.pim_waits_for == "all"


def test_store_policy_holds_store_class_ops():
    p = _policy(ConsistencyModel.STORE)
    pending = {0: 1}
    assert not p.may_forward(_store(1), pending, set(), False)
    assert not p.may_forward(_pim(1), pending, set(), False)
    # loads to other scopes bypass; same scope blocked
    assert p.may_forward(_load(1), pending, set(), False)
    assert p.may_forward(_load(None), pending, set(), False)
    assert not p.may_forward(_load(0), pending, set(), False)
    # with nothing pending, everything flows
    assert p.may_forward(_store(1), {}, set(), False)
    assert p.pim_waits_for == "all-memops"


def test_scope_policy_holds_same_scope_only():
    p = _policy(ConsistencyModel.SCOPE)
    pending = {0: 2}
    assert p.may_forward(_pim(1), pending, set(), False)
    assert p.may_forward(_store(1), pending, set(), False)
    assert p.may_forward(_load(1), pending, set(), False)
    assert not p.may_forward(_load(0), pending, set(), False)
    assert not p.may_forward(_pim(0), pending, set(), False)
    assert p.pim_waits_for == "same-scope"


def test_scope_relaxed_policy_holds_nothing_but_fences():
    p = _policy(ConsistencyModel.SCOPE_RELAXED)
    assert p.may_forward(_load(0), {0: 1}, set(), False)
    assert p.may_forward(_pim(0), {0: 1}, set(), False)
    # a forwarded, un-ACKed scope-fence blocks same-scope accesses
    assert not p.may_forward(_load(0), {}, {0}, False)
    assert p.may_forward(_load(1), {}, {0}, False)
    assert p.pim_waits_for == "none"
    assert p.routes_pim_through_l1
    assert not p.requires_ack


def test_store_to_load_queue_order():
    p = _policy(ConsistencyModel.NAIVE)
    assert not p.may_forward(_load(0), {}, set(), True)


def test_queued_pim_blocks_same_scope_except_scope_relaxed():
    for model in ConsistencyModel:
        p = _policy(model)
        expected = model is ConsistencyModel.SCOPE_RELAXED
        assert p.may_forward(_load(0), {}, set(), False, "pim") == expected, model


def test_queued_scope_fence_blocks_under_every_model():
    for model in ConsistencyModel:
        p = _policy(model)
        assert not p.may_forward(_load(0), {}, set(), False, "fence"), model


def test_baselines_forward_pim_direct():
    for model in (ConsistencyModel.NAIVE, ConsistencyModel.SW_FLUSH,
                  ConsistencyModel.UNCACHEABLE):
        assert _policy(model).pim_is_direct
    for model in (ConsistencyModel.ATOMIC, ConsistencyModel.STORE,
                  ConsistencyModel.SCOPE, ConsistencyModel.SCOPE_RELAXED):
        assert not _policy(model).pim_is_direct


def test_mem_fence_pim_interaction():
    assert _policy(ConsistencyModel.ATOMIC).mem_fence_waits_for_pim()
    assert _policy(ConsistencyModel.STORE).mem_fence_waits_for_pim()
    assert not _policy(ConsistencyModel.SCOPE).mem_fence_waits_for_pim()
    assert not _policy(ConsistencyModel.SCOPE_RELAXED).mem_fence_waits_for_pim()


def test_policy_holds_agree_with_table1_reordering():
    """Operational holds must be at least as strict as Table I: if the
    declarative model forbids reordering a PIM op with a later same-
    scope load, the entry point must hold that load while the op is
    pending."""
    from repro.core.memops import MemOp, OpKind
    from repro.core.models import properties_of

    for model in (ConsistencyModel.ATOMIC, ConsistencyModel.STORE,
                  ConsistencyModel.SCOPE, ConsistencyModel.SCOPE_RELAXED):
        policy = _policy(model)
        props = properties_of(model)
        pim = MemOp(OpKind.PIM_OP, 0, 0, scope=0)
        later_load = MemOp(OpKind.LOAD, 0, 1, address=0x100, scope=0)
        declarative_allows = props.may_reorder(pim, later_load)
        # pending PIM op to scope 0 (atomic: core blocks, so the entry
        # point face never sees the pair concurrently)
        operational_allows = (
            policy.blocks_commit is False
            and policy.may_forward(_load(0), {0: 1}, set(), False)
        )
        if not declarative_allows:
            assert not operational_allows, model
