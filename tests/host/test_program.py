"""Thread program representation."""

from repro.host.program import ThreadOp, ThreadOpKind, ThreadProgram


def test_factories_set_kinds():
    assert ThreadOp.load(0x10).kind is ThreadOpKind.LOAD
    assert ThreadOp.store(0x10).kind is ThreadOpKind.STORE
    assert ThreadOp.flush(0x10).kind is ThreadOpKind.FLUSH
    assert ThreadOp.pim_op(2).kind is ThreadOpKind.PIM_OP
    assert ThreadOp.mem_fence().kind is ThreadOpKind.MEM_FENCE
    assert ThreadOp.pim_fence().kind is ThreadOpKind.PIM_FENCE
    assert ThreadOp.scope_fence(1).kind is ThreadOpKind.SCOPE_FENCE
    assert ThreadOp.compute(5).cycles == 5
    assert ThreadOp.barrier().kind is ThreadOpKind.BARRIER


def test_load_carries_expectation_and_uncacheable():
    op = ThreadOp.load(0x40, scope=3, expect_version=7, uncacheable=True)
    assert op.scope == 3 and op.expect_version == 7 and op.uncacheable


def test_program_append_extend_count():
    prog = ThreadProgram("t")
    prog.append(ThreadOp.load(0))
    prog.extend([ThreadOp.store(64), ThreadOp.load(128)])
    assert len(prog) == 3
    assert prog.count(ThreadOpKind.LOAD) == 2
    assert prog.count(ThreadOpKind.STORE) == 1
