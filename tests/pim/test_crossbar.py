"""MAGIC crossbar semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pim.crossbar import Crossbar, MagicDisciplineError


def test_storage_roundtrip():
    x = Crossbar(8, 8)
    x.write_bit(3, 5, True)
    assert x.read_bit(3, 5)
    x.write_row_bits(2, [0, 1, 2, 3], 0b1010)
    assert x.read_row_bits(2, [0, 1, 2, 3]) == 0b1010


def test_nor_requires_init():
    x = Crossbar(4, 4)
    with pytest.raises(MagicDisciplineError):
        x.nor_columns([0, 1], 2)
    x.init_column(2)
    x.nor_columns([0, 1], 2)  # fine after INIT


def test_nor_output_consumed_after_write():
    """A column written by NOR needs a fresh INIT before reuse."""
    x = Crossbar(4, 4)
    x.init_column(2)
    x.nor_columns([0, 1], 2)
    with pytest.raises(MagicDisciplineError):
        x.nor_columns([0, 1], 2)


def test_nor_truth_table():
    x = Crossbar(4, 3)
    x.write_column(0, np.array([False, False, True, True]))
    x.write_column(1, np.array([False, True, False, True]))
    x.init_column(2)
    x.nor_columns([0, 1], 2)
    assert list(x.read_column(2)) == [True, False, False, False]


def test_nor_output_distinct_from_inputs():
    x = Crossbar(4, 4)
    x.init_column(1)
    with pytest.raises(ValueError):
        x.nor_columns([0, 1], 1)


def test_row_direction_nor():
    x = Crossbar(3, 4)
    x._cells[0] = [False, False, True, True]
    x._cells[1] = [False, True, False, True]
    x.init_row(2)
    x.nor_rows([0, 1], 2)
    assert list(x._cells[2]) == [True, False, False, False]


def test_cycle_counting():
    x = Crossbar(4, 4)
    x.init_column(3)
    x.nor_columns([0], 3)
    x.init_row(0)
    assert x.cycles == 3


def test_invalid_dimensions():
    with pytest.raises(ValueError):
        Crossbar(0, 4)


@given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=64))
def test_nor_matches_boolean_algebra(rows):
    """Property: MAGIC NOR equals ~(a | b) in every row."""
    x = Crossbar(len(rows), 3)
    x.write_column(0, np.array([a for a, _ in rows]))
    x.write_column(1, np.array([b for _, b in rows]))
    x.init_column(2)
    x.nor_columns([0, 1], 2)
    expected = [not (a or b) for a, b in rows]
    assert list(x.read_column(2)) == expected
