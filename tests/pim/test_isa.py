"""PIM instruction compilation and execution."""

import pytest

from repro.pim.database import FieldSpec, RecordSchema, ScopeDatabase
from repro.pim.isa import PimInstruction, PimOpcode, ScopeLayout
from repro.core.scope import Scope


def _db(capacity=32):
    schema = RecordSchema(key_bits=8, fields=[FieldSpec("val", 8)])
    scope = Scope(0, 1 << 20, (1 << 20) + (1 << 17))
    db = ScopeDatabase(scope, schema, capacity)
    for k in range(16):
        db.insert(k, {"val": 2 * k})
    return db


def test_scan_eq():
    db = _db()
    bitmap, cycles = db.execute(PimInstruction.scan_eq("key", 5))
    assert list(bitmap.nonzero()[0]) == [5]
    assert cycles > 0


def test_scan_lt_ge():
    db = _db()
    lt, _ = db.execute(PimInstruction.scan_lt("key", 4))
    ge, _ = db.execute(PimInstruction.scan_ge("key", 12))
    assert list(lt.nonzero()[0]) == [0, 1, 2, 3]
    assert list(ge.nonzero()[0]) == [12, 13, 14, 15]


def test_scan_range_on_data_field():
    db = _db()
    bitmap, _ = db.execute(PimInstruction.scan_range("val", 10, 20))
    # val = 2k, 10 <= 2k < 20  =>  k in 5..9
    assert list(bitmap.nonzero()[0]) == [5, 6, 7, 8, 9]


def test_invalid_rows_never_match():
    db = _db(capacity=32)  # only 16 inserted
    bitmap, _ = db.execute(PimInstruction.scan_ge("key", 0))
    assert bitmap.sum() == 16  # not 32


def test_combine_and_or():
    db = _db()
    db.execute(PimInstruction.scan_ge("key", 4, slot=1))
    db.execute(PimInstruction.scan_lt("key", 8, slot=2))
    both, _ = db.execute(PimInstruction.combine_and(1, 2, dst=0))
    assert list(both.nonzero()[0]) == [4, 5, 6, 7]
    either, _ = db.execute(PimInstruction.combine_or(1, 2, dst=3))
    assert either.sum() == 16


def test_result_not():
    db = _db()
    db.execute(PimInstruction.scan_lt("key", 4, slot=1))
    inverted, _ = db.execute(
        PimInstruction(PimOpcode.RESULT_NOT, slot=0, src_slots=(1,)))
    # NOT includes invalid rows; only compare the valid prefix
    assert list(inverted[:16].nonzero()[0]) == list(range(4, 16))


def test_add_fields():
    schema = RecordSchema(key_bits=8, fields=[FieldSpec("a", 8), FieldSpec("b", 8)])
    scope = Scope(0, 1 << 20, (1 << 20) + (1 << 17))
    db = ScopeDatabase(scope, schema, 8)
    for k in range(8):
        db.insert(k, {"a": 3 * k, "b": k + 1})
    instr = PimInstruction(PimOpcode.ADD_FIELDS, field_name="a", field_b="b")
    program = instr.compile(db.layout)
    program.run(db.xbar)
    for row in range(8):
        assert db.xbar.read_row_bits(row, list(program.aux_cols)) == 3 * row + row + 1


def test_program_cache_reuses_compilation():
    db = _db()
    instr = PimInstruction.scan_eq("key", 5)
    db.execute(instr)
    cached = db._program_cache[instr]
    db.execute(instr)
    assert db._program_cache[instr] is cached


def test_unknown_field_raises():
    db = _db()
    with pytest.raises(KeyError):
        db.execute(PimInstruction.scan_eq("nope", 5))


def test_layout_result_slot_bounds():
    layout = ScopeLayout(RecordSchema(key_bits=8), result_slots=2)
    layout.result_col(1)
    with pytest.raises(ValueError):
        layout.result_col(2)


def test_layout_column_regions_disjoint():
    schema = RecordSchema(key_bits=8, fields=[FieldSpec("v", 8)])
    layout = ScopeLayout(schema)
    key_cols = set(layout.field_cols("key"))
    val_cols = set(layout.field_cols("v"))
    results = {layout.result_col(s) for s in range(layout.result_slots)}
    assert not key_cols & val_cols
    assert not (key_cols | val_cols) & results
    assert layout.valid_col not in key_cols | val_cols | results
    assert layout.scratch_first > max(results)
