"""Multi-scope PIM database layout and scans."""

import pytest

from repro.core.scope import ScopeMap
from repro.pim.database import PimDatabase, RecordSchema
from repro.pim.isa import PimInstruction

SMAP = ScopeMap(pim_base=1 << 30, scope_bytes=128 << 10, num_scopes=4)


def _db(records=40, rps=64):
    schema = RecordSchema.ycsb(num_fields=2, field_bytes=4)
    db = PimDatabase(list(SMAP.scopes()), schema, records_per_scope=rps)
    for k in range(records):
        db.insert(k, {"field0": k + 100, "field1": k + 200})
    return db


def test_round_robin_placement():
    db = _db()
    for row in range(40):
        shard, local = db.shard_of(row)
        assert shard.scope.scope_id == row % 4
        assert local == row // 4


def test_insert_and_read_fields():
    db = _db()
    shard, local = db.shard_of(17)
    assert shard.read_field(local, "key") == 17
    assert shard.read_field(local, "field0") == 117
    assert shard.read_field(local, "field1") == 217


def test_scan_spans_all_scopes():
    db = _db()
    bitmaps, cycles = db.scan(PimInstruction.scan_range("key", 10, 20))
    assert db.matching_rows(bitmaps) == list(range(10, 20))
    assert cycles > 0
    assert len(bitmaps) == 4


def test_matches_spread_evenly_across_scopes():
    """Round-robin placement spreads a key range over all scopes
    (Section VI-B: results evenly distributed)."""
    db = _db()
    bitmaps, _ = db.scan(PimInstruction.scan_range("key", 0, 40))
    per_scope = [int(b.sum()) for b in bitmaps]
    assert per_scope == [10, 10, 10, 10]


def test_capacity_enforced():
    db = _db(records=0, rps=1)
    for k in range(4):
        db.insert(k, {})
    with pytest.raises(RuntimeError):
        db.insert(4, {})


def test_count_and_capacity():
    db = _db(records=10)
    assert db.count == 10
    assert db.capacity == 4 * 64


def test_record_addresses_inside_scope():
    db = _db()
    for row in (0, 5, 39):
        shard, local = db.shard_of(row)
        addr = shard.record_address(local, "field1")
        assert shard.scope.contains(addr)


def test_bitmap_region_at_scope_top():
    db = _db()
    shard = db.shards[0]
    base0, size = shard.bitmap_region(0)
    base1, _ = shard.bitmap_region(1)
    assert base0 + size <= shard.scope.limit
    assert base1 < base0
    lines = shard.bitmap_line_addresses(0)
    assert all(shard.scope.contains(a) for a in lines)
    assert all(a % 64 == 0 for a in lines)


def test_schema_validation():
    from repro.pim.database import FieldSpec
    RecordSchema(key_bits=8, fields=[])  # keyless-data schema is fine
    with pytest.raises(ValueError):
        RecordSchema(key_bits=8, fields=[FieldSpec("a", 4), FieldSpec("a", 4)])
    with pytest.raises(ValueError):
        FieldSpec("w", 0)


def test_ycsb_schema_matches_table3():
    schema = RecordSchema.ycsb()
    assert len(schema.fields) == 5
    assert all(f.bits == 80 for f in schema.fields)  # 10 bytes
    assert schema.record_bytes == 4 + 5 * 10
