"""Microcode synthesis: gates and comparators from MAGIC NOR."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pim.crossbar import Crossbar
from repro.pim.logic import ColumnAllocator, LogicBuilder

WIDTH = 8


def _run(build, inputs):
    """Synthesize with ``build`` and evaluate on the given input rows.

    ``inputs`` is a list of per-row integer values for the input bits.
    Returns the result column bits.
    """
    rows = len(inputs)
    xbar = Crossbar(rows, 512)
    for row, value in enumerate(inputs):
        xbar.write_row_bits(row, list(range(WIDTH)), value)
    alloc = ColumnAllocator(WIDTH, 512)
    builder = LogicBuilder(alloc)
    result_col = build(builder, list(range(WIDTH)))
    program = builder.program(result_col)
    return program.run(xbar), program


def test_not_gate():
    bits, _ = _run(lambda b, cols: b.not_(cols[0]), [0, 1])
    assert list(bits) == [True, False]


def test_and_or_gates():
    values = [0b00, 0b01, 0b10, 0b11]
    and_bits, _ = _run(lambda b, c: b.and_([c[0], c[1]]), values)
    or_bits, _ = _run(lambda b, c: b.or_([c[0], c[1]]), values)
    assert list(and_bits) == [False, False, False, True]
    assert list(or_bits) == [False, True, True, True]


def test_xor_xnor_gates():
    values = [0b00, 0b01, 0b10, 0b11]
    xor_bits, _ = _run(lambda b, c: b.xor(c[0], c[1]), values)
    xnor_bits, _ = _run(lambda b, c: b.xnor(c[0], c[1]), values)
    assert list(xor_bits) == [False, True, True, False]
    assert list(xnor_bits) == [True, False, False, True]


@settings(max_examples=30)
@given(st.integers(0, 255), st.lists(st.integers(0, 255), min_size=1, max_size=32))
def test_eq_const(constant, values):
    bits, _ = _run(lambda b, c: b.eq_const(c, constant), values)
    assert list(bits) == [v == constant for v in values]


@settings(max_examples=30)
@given(st.integers(0, 255), st.lists(st.integers(0, 255), min_size=1, max_size=32))
def test_lt_const(constant, values):
    bits, _ = _run(lambda b, c: b.lt_const(c, constant), values)
    assert list(bits) == [v < constant for v in values]


@settings(max_examples=30)
@given(st.integers(0, 255), st.lists(st.integers(0, 255), min_size=1, max_size=32))
def test_ge_const(constant, values):
    bits, _ = _run(lambda b, c: b.ge_const(c, constant), values)
    assert list(bits) == [v >= constant for v in values]


@settings(max_examples=30)
@given(st.integers(0, 255), st.integers(0, 255),
       st.lists(st.integers(0, 255), min_size=1, max_size=32))
def test_range_const(lo, hi, values):
    """The short-range-scan predicate lo <= v < hi."""
    bits, _ = _run(lambda b, c: b.range_const(c, lo, hi), values)
    assert list(bits) == [lo <= v < hi for v in values]


def test_lt_const_extremes():
    bits, _ = _run(lambda b, c: b.lt_const(c, 0), [0, 255])
    assert list(bits) == [False, False]
    bits, _ = _run(lambda b, c: b.lt_const(c, 256), [0, 255])
    assert list(bits) == [True, True]


@settings(max_examples=20)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                min_size=1, max_size=16))
def test_ripple_carry_add(pairs):
    """4-bit vector addition with carry-out."""
    rows = len(pairs)
    xbar = Crossbar(rows, 512)
    a_cols, b_cols = list(range(4)), list(range(4, 8))
    for row, (a, b) in enumerate(pairs):
        xbar.write_row_bits(row, a_cols, a)
        xbar.write_row_bits(row, b_cols, b)
    builder = LogicBuilder(ColumnAllocator(8, 512))
    sum_cols = builder.add(a_cols, b_cols)
    program = builder.program(sum_cols[-1], aux_cols=sum_cols)
    program.run(xbar)
    for row, (a, b) in enumerate(pairs):
        assert xbar.read_row_bits(row, sum_cols) == a + b


def test_program_cycles_equals_micro_ops():
    _, program = _run(lambda b, c: b.xor(c[0], c[1]), [0])
    assert program.cycles == len(program.ops) > 0


def test_touched_columns_stay_in_scratch():
    """The op's implicit footprint stays inside the scratch region plus
    the designated result column (Section II-A)."""
    _, program = _run(lambda b, c: b.range_const(c, 10, 200), [0, 42, 250])
    touched = program.touched_columns()
    assert all(col >= WIDTH for col in touched)


def test_allocator_exhaustion():
    alloc = ColumnAllocator(0, 4)
    for _ in range(4):
        alloc.alloc()
    with pytest.raises(RuntimeError):
        alloc.alloc()


def test_allocator_mark_release():
    alloc = ColumnAllocator(0, 8)
    alloc.alloc()
    mark = alloc.mark()
    alloc.alloc()
    alloc.alloc()
    alloc.release_to(mark)
    assert alloc.in_use == 1


def test_copy_to():
    xbar = Crossbar(2, 32)
    xbar.write_column(0, np.array([True, False]))
    builder = LogicBuilder(ColumnAllocator(2, 32))
    builder.copy_to(0, 1)
    builder.program(1).run(xbar)
    assert list(xbar.read_column(1)) == [True, False]
