"""The PIM module's timing model."""

import pytest
from helpers import DirectDispatcher, ResponseCollector, make_load, make_pim

from repro.memory.versioned import VersionedMemory
from repro.pim.module import PimModule
from repro.sim.component import Component
from repro.sim.config import PimModuleConfig
from repro.sim.messages import MessageType


def _module(sim, capacity=4, op_latency=100, **kwargs):
    memory = VersionedMemory()
    module = PimModule(sim, "pim",
                       PimModuleConfig(buffer_capacity=capacity,
                                       op_latency=op_latency, **kwargs),
                       memory, DirectDispatcher(sim, "resp"),
                       access_latency=10)
    return module, memory


def test_same_scope_ops_serialize(sim):
    module, _ = _module(sim, op_latency=100)
    executed = []
    module.on_execute = lambda msg: executed.append(sim.now)
    for _ in range(3):
        module.offer(make_pim(0))
    sim.run()
    assert executed == [100, 200, 300]


def test_different_scopes_execute_in_parallel(sim):
    module, _ = _module(sim, op_latency=100)
    executed = []
    module.on_execute = lambda msg: executed.append((msg.scope, sim.now))
    for scope in range(3):
        module.offer(make_pim(scope))
    sim.run()
    assert [t for _, t in executed] == [100, 100, 100]


def test_buffer_capacity_backpressure_and_wakeup(sim):
    module, _ = _module(sim, capacity=2, op_latency=100)

    class Sender(Component):
        def __init__(self):
            super().__init__(sim, "s")
            self.woken = 0

        def unblock(self):
            self.woken += 1

    sender = Sender()
    accepted = [module.offer(make_pim(0), sender)]
    sim.run(until=1)  # first op moves from buffer to execution
    # two more fill the buffer; the fourth bounces
    accepted += [module.offer(make_pim(0), sender) for _ in range(3)]
    sim.run(until=50)
    accepted.append(module.offer(make_pim(0), sender))
    assert accepted == [True, True, True, False, False]
    sim.run()  # executions drain the buffer and wake the sender
    assert sender.woken >= 1


def test_unbounded_buffer(sim):
    """Fig. 11a: buffer_capacity=None accepts everything."""
    module, _ = _module(sim, capacity=None, op_latency=10)
    assert all(module.offer(make_pim(0)) for _ in range(500))
    assert not module.is_full
    sim.run()
    assert module.stats.as_dict()["ops_executed"] == 500


def test_zero_logic_latency(sim):
    """Fig. 11b: PIM execution takes zero time."""
    module, _ = _module(sim, op_latency=12345, zero_logic=True)
    executed = []
    module.on_execute = lambda msg: executed.append(sim.now)
    module.offer(make_pim(0))
    sim.run()
    assert executed == [0]


def test_max_concurrent_scopes(sim):
    module, _ = _module(sim, op_latency=100, max_concurrent_scopes=1)
    executed = []
    module.on_execute = lambda msg: executed.append(sim.now)
    module.offer(make_pim(0))
    module.offer(make_pim(1))
    sim.run()
    assert executed == [100, 200]  # serialized by the concurrency limit


def test_access_waits_behind_same_scope_op_on_result_line(sim):
    module, memory = _module(sim, op_latency=200)
    module.result_lines_fn = lambda s: frozenset({0x1000})
    module.on_execute = lambda msg: memory.write(0x1000, 9)
    requester = ResponseCollector()
    module.offer(make_pim(0))
    module.offer(make_load(0x1000, scope=0, reply_to=requester))
    sim.run()
    assert requester.of_type(MessageType.LOAD_RESP)[0].version == 9


def test_non_result_access_served_immediately(sim):
    module, _ = _module(sim, op_latency=100_000)
    module.result_lines_fn = lambda s: frozenset({0x1000})
    requester = ResponseCollector()
    module.offer(make_pim(0))
    module.offer(make_load(0x2000, scope=0, reply_to=requester))
    sim.run(until=100)
    assert requester.of_type(MessageType.LOAD_RESP)


def test_conservative_ordering_without_result_lines(sim):
    """With no result-line registry everything orders behind ops."""
    module, _ = _module(sim, op_latency=300)
    requester = ResponseCollector()
    module.offer(make_pim(0))
    module.offer(make_load(0x2000, scope=0, reply_to=requester))
    sim.run(until=100)
    assert not requester.responses
    sim.run()
    assert requester.responses


def test_buffer_stats_sampled_at_arrival(sim):
    module, _ = _module(sim, capacity=8, op_latency=1000)
    for i in range(4):
        module.offer(make_pim(i % 2))
    stats = module.stats.as_dict()
    assert stats["buffer_len_at_arrival_count"] == 4
    # arrivals saw 0, 1, 2, 3 queued... minus dispatched; mean is small
    assert 0 <= stats["buffer_len_at_arrival"] <= 3


def test_store_and_writeback_update_memory(sim):
    from helpers import make_store
    from repro.sim.messages import Message
    module, memory = _module(sim)
    requester = ResponseCollector()
    module.offer(make_store(0x3000, scope=0, reply_to=requester))
    module.offer(Message(MessageType.WRITEBACK, addr=0x3040, scope=0, version=5))
    sim.run()
    assert memory.read(0x3000) == 1
    assert memory.read(0x3040) == 5
    assert requester.of_type(MessageType.STORE_ACK)


def test_rejects_non_pim_message_types(sim):
    module, _ = _module(sim)
    from repro.sim.messages import Message
    with pytest.raises(ValueError):
        module.offer(Message(MessageType.PIM_ACK))
