"""Pytest configuration: make tests/helpers.py importable everywhere."""

import logging
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from helpers import scope_map, sim  # re-export fixtures  # noqa: E402,F401


@pytest.fixture(autouse=True)
def _isolate_repro_logger():
    """Undo ``repro.obs.logconf`` side effects between tests.

    Any test that drives the CLI front door configures the ``repro``
    logger (handler, level, ``propagate=False``); left in place, that
    silences ``caplog`` -- which captures via the root logger -- for
    every test that runs later.
    """
    logger = logging.getLogger("repro")
    saved = (logger.level, list(logger.handlers), logger.propagate)
    yield
    logger.setLevel(saved[0])
    logger.handlers[:] = saved[1]
    logger.propagate = saved[2]
