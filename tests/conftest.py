"""Pytest configuration: make tests/helpers.py importable everywhere."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from helpers import scope_map, sim  # re-export fixtures  # noqa: E402,F401
