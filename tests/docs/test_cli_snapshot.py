"""``docs/cli.md`` must match the live argparse definitions.

The reference is regenerated in memory by
:func:`repro.api.cli.help_snapshot` (80-column pinned) and compared to
the checked-in file, so a flag change cannot land without its
documentation.  argparse help layout differs across Python minor
versions (3.9 prints ``optional arguments:``, 3.10+ ``options:``), so
the byte comparison only runs under the version CI pins.
"""

import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
CLI_DOC = os.path.join(REPO_ROOT, "docs", "cli.md")

SNAPSHOT_PYTHON = (3, 11)


def test_snapshot_covers_every_subcommand():
    """Version-independent floor: each documented section exists."""
    from repro.api.cli import help_snapshot

    snapshot = help_snapshot()
    for section in ("## `repro-bench`", "## `repro-bench sweep run`",
                    "## `repro-bench perf`", "## `repro-bench fuzz run`",
                    "## `repro-bench store prune`",
                    "## `repro-bench worker`"):
        assert section in snapshot, f"help snapshot lost {section}"


@pytest.mark.skipif(sys.version_info[:2] != SNAPSHOT_PYTHON,
                    reason="argparse help text differs across Python "
                           "minor versions; docs/cli.md is pinned to "
                           f"{'.'.join(map(str, SNAPSHOT_PYTHON))}")
def test_checked_in_cli_reference_is_current():
    from repro.api.cli import help_snapshot

    with open(CLI_DOC, encoding="utf-8") as handle:
        checked_in = handle.read()
    assert checked_in == help_snapshot(), (
        "docs/cli.md is stale; regenerate with "
        "PYTHONPATH=src python -c \"from repro.api.cli import "
        "write_help_snapshot; write_help_snapshot('docs/cli.md')\""
    )
