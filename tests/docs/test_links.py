"""Relative-link checker for README.md and the docs/ tree.

Every ``[text](target)`` whose target is a relative path must point at
a file that exists, and a ``#fragment`` must match a heading's
GitHub-style anchor slug in the target document.  External links
(``http(s)://``, ``mailto:``) are out of scope -- CI must not depend on
the network.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def _doc_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs = os.path.join(REPO_ROOT, "docs")
    files += sorted(os.path.join(docs, name)
                    for name in os.listdir(docs) if name.endswith(".md"))
    return files


def _read(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _links(path):
    """Relative link targets in ``path`` (code fences stripped)."""
    text = FENCE_RE.sub("", _read(path))
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def _slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->'-'."""
    out = []
    for ch in heading.strip().lower():
        if ch.isalnum() or ch == "-":
            out.append(ch)
        elif ch == " ":
            out.append("-")
    return "".join(out)


def _anchors(path):
    anchors = set()
    text = FENCE_RE.sub("", _read(path))
    for line in text.splitlines():
        if line.startswith("#"):
            anchors.add(_slug(line.lstrip("#")))
    return anchors


@pytest.mark.parametrize("doc", _doc_files(),
                         ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_relative_links_resolve(doc):
    base = os.path.dirname(doc)
    broken = []
    for target in _links(doc):
        path_part, _, fragment = target.partition("#")
        resolved = (os.path.normpath(os.path.join(base, path_part))
                    if path_part else doc)
        if not os.path.exists(resolved):
            broken.append(f"{target}: no such file {resolved}")
            continue
        if fragment and os.path.isfile(resolved):
            if fragment not in _anchors(resolved):
                broken.append(f"{target}: no heading slug {fragment!r} "
                              f"in {resolved}")
    assert not broken, broken


def test_docs_tree_is_linked_from_readme():
    """Every docs/*.md guide must be reachable from the README index
    (a split-out page nobody links to is silently dropped content)."""
    readme = os.path.join(REPO_ROOT, "README.md")
    linked = {os.path.normpath(os.path.join(REPO_ROOT, t.partition("#")[0]))
              for t in _links(readme)}
    for doc in _doc_files():
        if os.path.basename(doc) == "README.md":
            continue
        assert doc in linked, f"{doc} is not linked from README.md"


def test_readme_kept_the_install_and_verify_sections():
    """The split must not gut the front page: install, verify and
    quickstart stay in README.md."""
    anchors = _anchors(os.path.join(REPO_ROOT, "README.md"))
    for required in ("install", "verify-tier-1",
                     "quickstart-the-experiment-api", "documentation",
                     "layout"):
        assert required in anchors, f"README.md lost its #{required}"
