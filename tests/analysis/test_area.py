"""Hardware-overhead model (Section VI)."""

import pytest

from repro.analysis.area import AreaModel, cache_storage_bits, scope_hardware_bits
from repro.sim.config import CacheConfig, ScopeBufferConfig, SystemConfig


def test_cache_storage_bits_dominated_by_data():
    cfg = CacheConfig(size_bytes=2 << 20, ways=16)
    bits = cache_storage_bits(cfg)
    data_bits = (2 << 20) * 8
    assert data_bits < bits < data_bits * 1.2


def test_scope_hardware_is_small():
    cache = CacheConfig(size_bytes=2 << 20, ways=16)
    sb = ScopeBufferConfig(sets=64, ways=4)
    assert scope_hardware_bits(cache, sb) < cache_storage_bits(cache) * 0.01


def test_llc_overhead_matches_paper_band():
    """The paper synthesizes 0.092% for the LLC structures; the bit
    model should land in the same order of magnitude."""
    model = AreaModel(SystemConfig.paper_default())
    overhead = model.llc_overhead()
    assert 0.0004 < overhead < 0.002


def test_total_overhead_below_abstract_claim():
    """Abstract: 'The hardware overhead of our design is less than
    0.22%.'"""
    model = AreaModel(SystemConfig.paper_default())
    assert model.all_caches_overhead() < 0.0022
    assert model.llc_overhead() < 0.0022


def test_all_caches_exceeds_llc_only():
    model = AreaModel(SystemConfig.paper_default())
    assert model.all_caches_overhead() > model.llc_overhead()


def test_summary_keys():
    summary = AreaModel(SystemConfig.paper_default()).summary()
    assert set(summary) == {"llc_overhead", "all_caches_overhead"}
