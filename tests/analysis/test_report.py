"""Report formatting."""

from repro.analysis.report import format_series, format_table


def test_format_table_aligns_columns():
    out = format_table(["model", "time"], [["atomic", 1.23456], ["naive", 2]],
                       title="Fig")
    lines = out.splitlines()
    assert lines[0] == "Fig"
    assert "model" in lines[1] and "time" in lines[1]
    assert "1.235" in out and "2" in out


def test_format_series_one_column_per_curve():
    out = format_series("scopes", [4, 8],
                        {"naive": [1.0, 1.1], "scope": [0.9, 0.8]})
    assert "scopes" in out and "naive" in out and "scope" in out
    assert "0.800" in out


def test_empty_rows():
    out = format_table(["a"], [])
    assert "a" in out
