"""Report formatting."""

from repro.analysis.report import format_series, format_table


def test_format_table_aligns_columns():
    out = format_table(["model", "time"], [["atomic", 1.23456], ["naive", 2]],
                       title="Fig")
    lines = out.splitlines()
    assert lines[0] == "Fig"
    assert "model" in lines[1] and "time" in lines[1]
    assert "1.235" in out and "2" in out


def test_format_series_one_column_per_curve():
    out = format_series("scopes", [4, 8],
                        {"naive": [1.0, 1.1], "scope": [0.9, 0.8]})
    assert "scopes" in out and "naive" in out and "scope" in out
    assert "0.800" in out


def test_empty_rows():
    out = format_table(["a"], [])
    assert "a" in out


def test_stalls_table_per_point_with_taxonomy_column_order():
    from types import SimpleNamespace

    from repro.analysis.report import stalls_table

    def point(name, obs):
        return SimpleNamespace(name=name,
                               result=SimpleNamespace(obs=obs))

    # untraced campaign: no table at all
    bare = SimpleNamespace(ok_points=[point("a", None)])
    assert stalls_table(bare) is None

    traced = SimpleNamespace(ok_points=[
        point("ycsb/naive", {"stalls": {"mc": {"pim_busy": 7},
                                        "l1-0": {"mshr_full": 2}}}),
        point("ycsb/atomic", {"stalls": {}}),
        point("untraced", None),  # mixed campaigns keep working
    ])
    headers, rows = stalls_table(traced)
    # documented taxonomy order, only reasons actually observed
    assert headers == ["point", "mshr_full", "pim_busy"]
    assert rows == [["ycsb/naive", 2, 7], ["ycsb/atomic", 0, 0]]


def test_stalls_table_unknown_reason_sorts_after_taxonomy():
    from types import SimpleNamespace

    from repro.analysis.report import stalls_table

    result = SimpleNamespace(ok_points=[SimpleNamespace(
        name="p", result=SimpleNamespace(
            obs={"stalls": {"x": {"pim_busy": 1, "novel_reason": 3}}}))])
    headers, _rows = stalls_table(result)
    assert headers == ["point", "pim_busy", "novel_reason"]
