"""Execution backends: serial/process-pool equivalence and determinism."""

import time
from dataclasses import asdict

import pytest

from repro.api import (
    Experiment,
    ProcessPoolBackend,
    SerialBackend,
    backend_for,
    execute_experiment,
)
from repro.api.backends import ExperimentFailure
from repro.core.models import ConsistencyModel
from repro.sim.config import SystemConfig
from repro.workloads.ycsb import YcsbParams

PARAMS = YcsbParams(num_records=8000, num_ops=6, threads=4, seed=11)


def _experiments():
    return [
        Experiment(
            workload="ycsb",
            config=SystemConfig.scaled_default(model=model, num_scopes=4),
            params=asdict(PARAMS),
            max_events=50_000_000,
        )
        for model in (ConsistencyModel.NAIVE, ConsistencyModel.ATOMIC,
                      ConsistencyModel.SCOPE)
    ]


def test_process_pool_matches_serial_exactly():
    """Simulations are deterministic and share nothing, so fanning a
    sweep over worker processes must not change a single statistic."""
    exps = _experiments()
    serial = SerialBackend().run_all(exps)
    pooled = ProcessPoolBackend(jobs=2).run_all(exps)
    assert len(pooled) == len(serial) == len(exps)
    for s, p, exp in zip(serial, pooled, exps):
        assert p.config == exp.config  # order preserved
        assert p.run_time == s.run_time
        assert p.stale_reads == s.stale_reads
        assert p.events == s.events
        assert p.stats == s.stats


def test_process_pool_single_job_falls_back_to_serial():
    exps = _experiments()[:1]
    assert (ProcessPoolBackend(jobs=1).run_all(exps)[0].run_time
            == execute_experiment(exps[0]).run_time)


def test_process_pool_rejects_bad_job_count():
    with pytest.raises(ValueError):
        ProcessPoolBackend(jobs=0)


def test_pool_timeout_settles_hung_point_as_retryable(monkeypatch):
    """A point that hangs past timeout_s settles as a retryable failure
    instead of wedging the shard; the other points still complete.
    (The pool forks, so children inherit the monkeypatched executor.)"""
    import repro.api.backends as backends

    real = backends.execute_experiment

    def sometimes_hangs(experiment, **kwargs):
        if experiment.variant == "hang":
            time.sleep(120)
        return real(experiment, **kwargs)

    monkeypatch.setattr(backends, "execute_experiment", sometimes_hangs)
    fast, hung = _experiments()[:2]
    hung = Experiment.from_dict(dict(hung.to_dict(), variant="hang"))
    start = time.time()
    settled = ProcessPoolBackend(jobs=2, timeout_s=3.0).run_all_settled(
        [fast, hung])
    assert time.time() - start < 60  # the hung child did not wedge us
    assert not isinstance(settled[0], ExperimentFailure)
    assert settled[0].run_time == execute_experiment(fast).run_time
    assert isinstance(settled[1], ExperimentFailure)
    assert settled[1].retryable  # environmental, so the queue may retry
    assert "per-point timeout" in settled[1].error


def test_pool_timeout_validation_and_backend_for():
    with pytest.raises(ValueError):
        ProcessPoolBackend(timeout_s=0)
    assert isinstance(backend_for(1), SerialBackend)
    assert isinstance(backend_for(4), ProcessPoolBackend)
    # a timeout forces the pool even at one job: only a child process
    # can be abandoned
    timed = backend_for(1, timeout_s=5.0)
    assert isinstance(timed, ProcessPoolBackend)
    assert timed.timeout_s == 5.0
    # failures default to the deterministic (never-retried) kind
    assert ExperimentFailure("boom").retryable is False


def test_experiments_and_results_are_picklable():
    import pickle

    exp = _experiments()[0]
    assert pickle.loads(pickle.dumps(exp)) == exp
    result = execute_experiment(exp)
    clone = pickle.loads(pickle.dumps(result))
    assert clone.run_time == result.run_time
    assert clone.stats == result.stats


def test_backends_produce_identical_stats_views():
    """Satellite of the kernel overhaul: the typed StatsView namespaces
    (not just the raw dicts) agree between backends, which relies on the
    per-run op-id/pool reset in Simulator.reset_ids()."""
    exp = _experiments()[2]
    serial = SerialBackend().run(exp)
    pooled = ProcessPoolBackend(jobs=2).run_all([exp])[0]
    assert serial.llc.as_dict() == pooled.llc.as_dict()
    assert serial.pim.as_dict() == pooled.pim.as_dict()
    assert serial.mc.as_dict() == pooled.mc.as_dict()
    assert [v.as_dict() for v in serial.cores] == \
        [v.as_dict() for v in pooled.cores]
