"""Runner semantics: parity with the legacy path, caching, dedup."""

from dataclasses import asdict
from typing import List, Sequence

import pytest

from repro.api import Experiment, Runner, SerialBackend
from repro.core.models import ConsistencyModel
from repro.sim.config import SystemConfig
from repro.system.simulation import run_workload
from repro.workloads.ycsb import YcsbParams, YcsbWorkload

#: Small fixed-seed YCSB point; every model finishes in well under a second.
PARAMS = YcsbParams(num_records=8000, num_ops=10, threads=4, seed=11)
NUM_SCOPES = 4
MAX_EVENTS = 50_000_000

#: "All six consistency models" of the evaluation sweeps (Figs. 7-13).
SIX_MODELS = [
    ConsistencyModel.NAIVE,
    ConsistencyModel.SW_FLUSH,
    ConsistencyModel.ATOMIC,
    ConsistencyModel.STORE,
    ConsistencyModel.SCOPE,
    ConsistencyModel.SCOPE_RELAXED,
]


def _experiment(model: ConsistencyModel) -> Experiment:
    return Experiment(
        workload="ycsb",
        config=SystemConfig.scaled_default(model=model,
                                           num_scopes=NUM_SCOPES),
        params=asdict(PARAMS),
        max_events=MAX_EVENTS,
    )


@pytest.mark.parametrize("model", SIX_MODELS,
                         ids=[m.value for m in SIX_MODELS])
def test_runner_reproduces_legacy_run_workload(model):
    """The redesign is a pure re-plumbing: for a fixed seed, the
    Experiment/Runner path must match the legacy run_workload output
    exactly -- run time, stale reads, and every stat group."""
    cfg = SystemConfig.scaled_default(model=model, num_scopes=NUM_SCOPES)
    legacy = run_workload(cfg, YcsbWorkload(PARAMS), max_events=MAX_EVENTS)
    new = Runner().run(_experiment(model))
    assert new.run_time == legacy.run_time
    assert new.stale_reads == legacy.stale_reads
    assert new.events == legacy.events
    assert new.stats == legacy.stats
    assert new.config == legacy.config


class _CountingBackend(SerialBackend):
    """Serial execution that records how many specs it actually ran."""

    def __init__(self) -> None:
        self.executed: List[str] = []
        self.batches: List[List[str]] = []

    def run_all(self, experiments: Sequence[Experiment], **kwargs):
        hashes = [e.spec_hash() for e in experiments]
        self.executed.extend(hashes)
        self.batches.append(hashes)
        return super().run_all(experiments, **kwargs)

    def run_all_settled(self, experiments: Sequence[Experiment], **kwargs):
        hashes = [e.spec_hash() for e in experiments]
        self.executed.extend(hashes)
        self.batches.append(hashes)
        return super().run_all_settled(experiments, **kwargs)


def test_cache_serves_repeated_specs_without_resimulating():
    backend = _CountingBackend()
    runner = Runner(backend=backend)
    exp = _experiment(ConsistencyModel.ATOMIC)
    first = runner.run(exp)
    second = runner.run(_experiment(ConsistencyModel.ATOMIC))
    assert first is second  # cache hit returns the same snapshot
    assert len(backend.executed) == 1
    assert runner.cache_size == 1
    assert runner.cached(exp) is first


def test_run_all_deduplicates_within_a_batch_and_keeps_order():
    backend = _CountingBackend()
    runner = Runner(backend=backend)
    atomic = _experiment(ConsistencyModel.ATOMIC)
    naive = _experiment(ConsistencyModel.NAIVE)
    results = runner.run_all([atomic, naive, atomic])
    assert len(backend.executed) == 2
    assert results[0] is results[2]
    assert results[0].model_name == "atomic"
    assert results[1].model_name == "naive"


def test_uncached_runner_still_dedupes_batches():
    backend = _CountingBackend()
    runner = Runner(backend=backend, cache=False)
    exp = _experiment(ConsistencyModel.ATOMIC)
    results = runner.run_all([exp, exp])
    assert len(backend.executed) == 1
    assert results[0] is results[1]
    assert runner.cache_size == 0
    # ...but separate calls re-execute
    runner.run(exp)
    assert len(backend.executed) == 2


def test_mixed_cached_batch_dispatches_only_the_misses():
    """A batch mixing cache hits and misses must make exactly one
    backend dispatch carrying only the misses, in input order -- that is
    what keeps a resumed campaign sharded instead of degrading to
    point-at-a-time execution."""
    backend = _CountingBackend()
    runner = Runner(backend=backend)
    atomic = _experiment(ConsistencyModel.ATOMIC)
    cached = runner.run(atomic)
    backend.batches.clear()

    naive = _experiment(ConsistencyModel.NAIVE)
    scope = _experiment(ConsistencyModel.SCOPE)
    results = runner.run_all([atomic, naive, atomic, scope])
    assert backend.batches == [[naive.spec_hash(), scope.spec_hash()]]
    assert results[0] is cached and results[2] is cached
    assert results[1].model_name == "naive"
    assert results[3].model_name == "scope"


def test_run_settled_shares_the_batch_path_and_cache():
    backend = _CountingBackend()
    runner = Runner(backend=backend)
    atomic = _experiment(ConsistencyModel.ATOMIC)
    cached = runner.run(atomic)

    outcomes = runner.run_settled([atomic, _experiment(ConsistencyModel.ATOMIC)])
    assert len(backend.executed) == 1  # both points served from cache
    assert outcomes[0] == (cached, None) and outcomes[1] == (cached, None)
    # settled successes land in the same cache run_all reads
    naive = _experiment(ConsistencyModel.NAIVE)
    (result, error), = runner.run_settled([naive])
    assert error is None
    assert runner.run(naive) is result
    assert len(backend.executed) == 2


def test_clear_cache():
    runner = Runner()
    exp = _experiment(ConsistencyModel.NAIVE)
    runner.run(exp)
    assert runner.cache_size == 1
    runner.clear_cache()
    assert runner.cache_size == 0
    assert runner.cached(exp) is None


def test_run_settled_progress_counts_duplicates_and_cache_hits():
    runner = Runner(backend=SerialBackend())
    a = _experiment(ConsistencyModel.ATOMIC)
    b = _experiment(ConsistencyModel.SCOPE)

    # a appears twice: its single dispatch must advance two points
    ticks: List[int] = []
    runner.run_settled([a, b, a], progress=ticks.append)
    assert sum(ticks) == 3

    # fully cached re-run: one upfront tick covering every point
    ticks = []
    runner.run_settled([a, b, a], progress=ticks.append)
    assert ticks == [3]


def test_run_settled_trace_overlay_does_not_fork_the_cache():
    from repro.sim.config import TraceConfig

    runner = Runner(backend=SerialBackend())
    exp = _experiment(ConsistencyModel.ATOMIC)
    trace = TraceConfig(enabled=True, ring_size=0)
    (traced, err), = runner.run_settled([exp], trace=trace)
    assert err is None and traced.obs is not None
    assert runner.dispatch_count == 1

    # same spec hash: the traced result serves the untraced request
    (cached, err), = runner.run_settled([exp])
    assert err is None
    assert runner.dispatch_count == 1  # no second simulation
    assert cached is traced
