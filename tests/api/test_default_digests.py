"""Default-configuration result digests, pinned to the growth seed.

The MSHR/burst subsystem (and anything after it) must leave the default
configuration's simulated behavior untouched: no knobs set means the
legacy 8-entry L1 / 64-entry LLC MSHR files with coalescing, no burst
fusion, and no extra stats keys.  These digests were captured from the
seed kernel; a change here means the default timing model shifted and
every pinned baseline (BENCH_kernel.json, stored campaigns) silently
re-baselined with it.  If a change is *intentional*, re-capture with::

    PYTHONPATH=src python -m pytest tests/api/test_default_digests.py \
        --no-header -q  # the failure message prints the new digest
"""

import pytest

from repro.api.backends import execute_experiment
from repro.api.experiment import Experiment
from repro.system.simulation import result_digest

_YCSB_DIGESTS = {
    "naive": "0f5d29503e9411fc04aba88d75a470cdde637d4e6cb6a9ac80a6a19015ce3c53",
    "sw-flush": "aaf7a89639e40f43d566a616a0c3d7dd2e3f268a056a43c85fea940be174fef7",
    "atomic": "4a28c071dca0aafb6b259bdfaf714417065c92747fededaba00f806ebad45cf0",
    "store": "d0f5651c2e54eec224bd586af122b0e5b769dec3b5effbae004214513eceabee",
    "scope": "d0f5651c2e54eec224bd586af122b0e5b769dec3b5effbae004214513eceabee",
    # Re-captured when the LLC flush point learned to drain in-flight
    # same-scope fetches (a fuzzer-found stale-read race): scope-relaxed
    # fences now wait out racing cross-core record fetches.
    "scope-relaxed":
        "4cdddcfbc47bf55ca35ec610d63dc1edc64f466a5024700ce8f2361dcf5f0695",
}

_TPCH_DIGEST = \
    "54e1baa0b9483eb117dada27f4ac4033145988be2d259f10f9ca0d59477f834f"
_LITMUS_DIGEST = \
    "d0b5f233d1727dfe219f50c5f9ed30ae0f744996badf40bce71eef50c8d6eb08"


def _digest(spec):
    res = execute_experiment(Experiment.from_dict(spec))
    return result_digest({
        "run_time": res.run_time,
        "events": res.events,
        "stale_reads": res.stale_reads,
        "stats": res.stats,
    })


@pytest.mark.parametrize("model", sorted(_YCSB_DIGESTS))
def test_ycsb_default_digest_matches_seed(model):
    digest = _digest({
        "workload": "ycsb",
        "params": {"num_records": 8000, "num_ops": 10, "threads": 4,
                   "seed": 11},
        "config": {"preset": "scaled", "model": model, "num_scopes": 4},
        "variant": "digest-gate",
        "max_events": 50_000_000,
    })
    assert digest == _YCSB_DIGESTS[model]


def test_tpch_default_digest_matches_seed():
    digest = _digest({
        "workload": "tpch",
        "params": {"query": "q6", "scale": 0.015625},
        "config": {"preset": "scaled", "model": "scope", "num_scopes": 32},
        "variant": "digest-gate",
    })
    assert digest == _TPCH_DIGEST


def test_litmus_default_digest_matches_seed():
    digest = _digest({
        "workload": "litmus",
        "params": {"rounds": 10, "threads": 4},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 4},
        "variant": "digest-gate",
    })
    assert digest == _LITMUS_DIGEST
