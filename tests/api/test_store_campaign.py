"""Cross-session campaign resume through the persistent store.

The acceptance property: a store-hydrated rerun of a campaign makes
zero backend dispatches and reproduces a byte-identical campaign digest
(and Markdown report) -- for every workload family the evaluation uses
(all six consistency models, TPC-H, litmus), across backends and across
processes (the CLI tests re-enter through ``main`` like separate shell
sessions would).
"""

import json
from typing import List, Sequence

import pytest

from repro.api import (
    Axis,
    Campaign,
    Experiment,
    ResultStore,
    Runner,
    SerialBackend,
    Sweep,
    get_campaign,
    run_campaign,
)
from repro.analysis.report import campaign_markdown
from repro.api.sweep import SIX_MODELS, load_results


class CountingBackend(SerialBackend):
    """Serial execution recording each dispatched batch (store-aware)."""

    def __init__(self) -> None:
        self.batches: List[List[str]] = []

    def run_all(self, experiments: Sequence[Experiment], **kwargs):
        self.batches.append([e.spec_hash() for e in experiments])
        return super().run_all(experiments, **kwargs)

    def run_all_settled(self, experiments: Sequence[Experiment],
                        store=None, **kwargs):
        self.batches.append([e.spec_hash() for e in experiments])
        return super().run_all_settled(experiments, store=store, **kwargs)

    @property
    def executed(self) -> List[str]:
        return [h for batch in self.batches for h in batch]


def _fidelity_campaign() -> Campaign:
    """Six models x YCSB + one TPC-H query + litmus, at smoke size."""
    ycsb = Sweep(
        name="ycsb",
        base={
            "workload": "ycsb",
            "params": {"num_records": 8000, "num_ops": 10, "threads": 4,
                       "seed": 11},
            "config": {"preset": "scaled", "num_scopes": 4},
            "max_events": 50_000_000,
        },
        axes=(Axis("model", SIX_MODELS),),
    )
    tpch = Sweep(
        name="tpch",
        base={
            "workload": "tpch",
            "params": {"query": "q6", "scale": 0.015625, "runs": 1},
            "config": {"preset": "scaled", "num_scopes": 32},
            "max_events": 50_000_000,
        },
        axes=(Axis("model", ("naive", "scope")),),
    )
    litmus = Sweep(
        name="litmus",
        base={
            "workload": "litmus",
            "params": {"rounds": 3, "threads": 2},
            "config": {"preset": "scaled", "num_scopes": 2},
            "max_events": 50_000_000,
        },
        axes=(Axis("model", ("naive", "atomic")),),
    )
    return Campaign(name="fidelity", sweeps=(ycsb, tpch, litmus))


def test_store_hydrated_rerun_is_byte_identical(tmp_path):
    """Fresh run vs store-hydrated run: zero dispatches, identical
    digest and report, for all six models + tpch + litmus."""
    campaign = _fidelity_campaign()
    store_dir = str(tmp_path / "store")

    cold = run_campaign(campaign,
                        runner=Runner(backend=SerialBackend(),
                                      store=ResultStore(store_dir)))
    assert not cold.failed_points

    warm_backend = CountingBackend()
    warm_runner = Runner(backend=warm_backend,
                         store=ResultStore(store_dir))
    warm = run_campaign(campaign, runner=warm_runner)

    assert warm_backend.executed == []  # zero backend dispatches
    assert warm_runner.dispatch_count == 0
    assert warm.digest() == cold.digest()  # byte-identical campaign digest
    assert campaign_markdown(warm) == campaign_markdown(cold)
    # per-point, the hydrated results round-tripped every statistic
    for a, b in zip(cold.points, warm.points):
        assert a.result.stats == b.result.stats
        assert a.result.run_time == b.result.run_time
        assert a.result.events == b.result.events
        assert a.result.stale_reads == b.result.stale_reads
        assert a.result.config == b.result.config


def test_cli_store_resume_across_sessions(tmp_path, capsys):
    """Two `sweep run --store` invocations behave like two shell
    sessions sharing one store: the second makes zero dispatches and
    reproduces the digest and report byte-for-byte."""
    from repro.api.cli import main

    store_dir = str(tmp_path / "store")
    report1 = tmp_path / "first.md"
    report2 = tmp_path / "second.md"

    assert main(["sweep", "run", "smoke", "--store", store_dir,
                 "--report", str(report1)]) == 0
    first = capsys.readouterr().out
    assert "backend dispatches: 4" in first

    assert main(["sweep", "run", "smoke", "--store", store_dir,
                 "--report", str(report2)]) == 0
    second = capsys.readouterr().out
    assert "backend dispatches: 0" in second
    assert "store: 4 points hydrated" in second
    assert report1.read_text() == report2.read_text()


def test_cli_report_append_stacks_campaigns(tmp_path, capsys):
    """`sweep run --report F` then `--report F --append` leaves both
    campaigns' reports in the file, in run order."""
    from repro.api.cli import main

    report = tmp_path / "stacked.md"
    assert main(["sweep", "run", "smoke", "--report", str(report)]) == 0
    first = report.read_text()
    assert main(["sweep", "run", "smoke", "--report", str(report),
                 "--append"]) == 0
    assert "appended report" in capsys.readouterr().out
    assert report.read_text() == first + first


def test_cli_store_env_var_default(tmp_path, capsys, monkeypatch):
    """$REPRO_STORE selects the store when --store is absent."""
    from repro.api.cli import main

    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
    assert main(["sweep", "run", "smoke"]) == 0
    capsys.readouterr()
    assert main(["sweep", "run", "smoke"]) == 0
    assert "backend dispatches: 0" in capsys.readouterr().out


def test_cli_store_stats_verify_prune_export(tmp_path, capsys):
    """The store maintenance CLI: stats, verify, export, prune."""
    from repro.api.cli import main

    store_dir = str(tmp_path / "store")
    assert main(["sweep", "run", "smoke", "--store", store_dir]) == 0
    capsys.readouterr()

    assert main(["store", "stats", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "entries          : 4 (4 current, 0 stale)" in out

    assert main(["store", "verify", "--store", store_dir]) == 0
    assert "ok: 4 entries verified" in capsys.readouterr().out

    # export writes a --resume-compatible artifact covering every point
    artifact = tmp_path / "smoke-export.json"
    assert main(["store", "export", "smoke", "--store", store_dir,
                 "--output", str(artifact)]) == 0
    assert "exported 4 of 4 points" in capsys.readouterr().out
    hydrated = load_results(json.loads(artifact.read_text()))
    smoke = get_campaign("smoke")
    assert set(hydrated) == {p.experiment.spec_hash()
                             for p in smoke.points()}
    backend = CountingBackend()
    resumed = run_campaign(smoke, runner=Runner(backend=backend),
                           resume=hydrated)
    assert backend.executed == []
    assert not resumed.failed_points

    # prune demands a selector, then removes everything under --stale=no,
    # age=0 (every entry is "older than 0 days" after an mtime rewind)
    with pytest.raises(SystemExit, match="nothing to prune"):
        main(["store", "prune", "--store", store_dir])
    import os
    for entry in ResultStore(store_dir).entries():
        old = entry.mtime - 2 * 86400
        os.utime(entry.path, (old, old))
    # --dry-run previews the candidates without touching the store
    assert main(["store", "prune", "--store", store_dir,
                 "--max-age-days", "1", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "would prune 4 entries" in out
    assert out.count("would prune " + store_dir) == 4
    assert main(["store", "stats", "--store", store_dir]) == 0
    assert "entries          : 4" in capsys.readouterr().out
    assert main(["store", "prune", "--store", store_dir,
                 "--max-age-days", "1"]) == 0
    assert "pruned 4 entries" in capsys.readouterr().out
    assert main(["store", "stats", "--store", store_dir]) == 0
    assert "entries          : 0" in capsys.readouterr().out


def test_cli_store_requires_a_directory(monkeypatch):
    from repro.api.cli import main

    monkeypatch.delenv("REPRO_STORE", raising=False)
    with pytest.raises(SystemExit, match="no store selected"):
        main(["store", "stats"])


def test_kernel_change_invalidates_the_store(tmp_path):
    """A different code fingerprint must never be served: the warm run
    under a 'new kernel' re-simulates everything."""
    campaign = _fidelity_campaign()
    store_dir = str(tmp_path / "store")
    old_store = ResultStore(store_dir, fingerprint="old-kernel")
    cold = run_campaign(campaign, runner=Runner(backend=SerialBackend(),
                                                store=old_store))

    backend = CountingBackend()
    runner = Runner(backend=backend,
                    store=ResultStore(store_dir, fingerprint="new-kernel"))
    warm = run_campaign(campaign, runner=runner)
    assert len(backend.executed) == len(campaign.points())
    assert warm.digest() == cold.digest()  # deterministic either way


def test_geometry_ablation_campaign_registration():
    """The Figs. 11-13 geometry campaign expands, serializes, and spans
    the documented axes without executing anything."""
    campaign = get_campaign("geometry-ablation")
    points = campaign.points()
    assert len(points) == 66
    by_sweep = {}
    for p in points:
        by_sweep.setdefault(p.sweep, []).append(p)
    assert set(by_sweep) == {"llc-size", "pim-buffer", "pim-logic",
                             "crossbar", "threads"}
    # every sweep covers all six models
    for name, pts in by_sweep.items():
        assert len({p.coords["model"] for p in pts}) == 6, name
    # the ablation axes actually land in the config
    llc = {p.experiment.config.llc.size_bytes
           for p in by_sweep["llc-size"]}
    assert llc == {128 << 10, 512 << 10}
    buffers = {p.experiment.config.pim.buffer_capacity
               for p in by_sweep["pim-buffer"]}
    assert buffers == {8, 16, None}
    assert {p.experiment.config.pim.zero_logic
            for p in by_sweep["pim-logic"]} == {False, True}
    assert {p.experiment.config.pim.max_concurrent_scopes
            for p in by_sweep["crossbar"]} == {None, 2}
    threads = {(p.experiment.params_dict["threads"],
                p.experiment.config.cores.num_cores)
               for p in by_sweep["threads"]}
    assert threads == {(4, 8), (8, 16)}
    # the campaign is plain data: JSON round trip preserves every point
    clone = Campaign.from_dict(json.loads(json.dumps(campaign.to_dict())))
    assert [p.experiment for p in clone.points()] == \
        [p.experiment for p in points]
