"""Experiment specs: freezing, hashing, dict round trips, registry."""

import pytest

from repro.api import (
    Experiment,
    REGISTRY,
    UnknownWorkloadError,
    config_from_dict,
    config_to_dict,
    freeze_params,
)
from repro.core.models import ConsistencyModel
from repro.sim.config import SystemConfig
from repro.workloads.litmus import LitmusWorkload
from repro.workloads.tpch import TpchWorkload
from repro.workloads.ycsb import YcsbWorkload


def _exp(**overrides):
    base = dict(
        workload="ycsb",
        config=SystemConfig.scaled_default(num_scopes=4),
        params={"num_records": 8000, "num_ops": 10},
    )
    base.update(overrides)
    return Experiment(**base)


def test_experiment_is_frozen_and_hashable():
    exp = _exp()
    assert hash(exp) == hash(_exp())
    with pytest.raises(AttributeError):
        exp.variant = "other"


def test_params_given_as_dict_are_canonicalized():
    a = Experiment(workload="ycsb",
                   config=SystemConfig.scaled_default(num_scopes=4),
                   params={"num_ops": 10, "num_records": 8000})
    b = Experiment(workload="ycsb",
                   config=SystemConfig.scaled_default(num_scopes=4),
                   params={"num_records": 8000, "num_ops": 10})
    assert a == b
    assert a.spec_hash() == b.spec_hash()
    assert a.params_dict == {"num_records": 8000, "num_ops": 10}


def test_freeze_params_handles_nesting():
    frozen = freeze_params({"a": [1, 2], "b": {"y": 2, "x": 1}})
    assert frozen == (("a", (1, 2)),
                      ("b", ("__map__", (("x", 1), ("y", 2)))))


def test_params_round_trip_distinguishes_dicts_from_pair_lists():
    exp = _exp(params={"pairs": [("name", 8), ("age", 4)],
                       "mapping": {"name": 8, "age": 4}})
    thawed = exp.params_dict
    assert thawed["pairs"] == [["name", 8], ["age", 4]]  # sequence stays one
    assert thawed["mapping"] == {"name": 8, "age": 4}
    clone = Experiment.from_dict(exp.to_dict())
    assert clone.spec_hash() == exp.spec_hash()


def test_spec_hash_distinguishes_every_spec_field():
    exp = _exp()
    assert exp.spec_hash() != _exp(workload="tpch").spec_hash()
    assert exp.spec_hash() != _exp(variant="other").spec_hash()
    assert exp.spec_hash() != _exp(max_events=1).spec_hash()
    assert exp.spec_hash() != _exp(
        params={"num_records": 8000, "num_ops": 11}).spec_hash()
    assert exp.spec_hash() != exp.with_model(
        ConsistencyModel.SCOPE).spec_hash()


def test_dict_round_trip_is_exact():
    exp = _exp(variant="tagged", max_events=123)
    clone = Experiment.from_dict(exp.to_dict())
    assert clone == exp
    assert clone.spec_hash() == exp.spec_hash()


def test_config_dict_round_trip():
    cfg = SystemConfig.scaled_default(model=ConsistencyModel.SCOPE,
                                      num_scopes=8)
    assert config_from_dict(config_to_dict(cfg)) == cfg


def test_config_preset_with_partial_nested_overrides():
    cfg = config_from_dict({
        "preset": "scaled", "model": "atomic", "num_scopes": 8,
        "pim": {"zero_logic": True},
    })
    base = SystemConfig.scaled_default(model=ConsistencyModel.ATOMIC,
                                       num_scopes=8)
    assert cfg.pim.zero_logic is True
    assert cfg.pim.buffer_capacity == base.pim.buffer_capacity
    assert cfg.llc == base.llc


def test_config_unknown_preset_rejected():
    with pytest.raises(ValueError, match="preset"):
        config_from_dict({"preset": "gigantic"})


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown experiment keys"):
        Experiment.from_dict({"workload": "ycsb", "workload_params": {}})


def test_registry_lists_builtin_workloads():
    assert {"ycsb", "tpch", "litmus"} <= set(REGISTRY.names())


@pytest.mark.parametrize("workload,params,cls", [
    ("ycsb", {"num_records": 8000, "num_ops": 10}, YcsbWorkload),
    ("tpch", {"query": "q6", "scale": 1 / 64, "runs": 1}, TpchWorkload),
    ("litmus", {"rounds": 2, "threads": 2}, LitmusWorkload),
])
def test_registry_round_trip(workload, params, cls):
    """from_dict -> build_workload -> params reproduces the spec."""
    exp = Experiment.from_dict({
        "workload": workload,
        "params": params,
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 4},
    })
    built = exp.build_workload()
    assert isinstance(built, cls)
    assert built.name == workload
    for key, value in params.items():
        assert built.params[key] == value
    # the workload's full params rebuild an equivalent workload
    again = cls.from_params(**built.params)
    assert again.params == built.params


def test_unknown_workload_error_names_known_ones():
    exp = _exp(workload="nonesuch")
    with pytest.raises(UnknownWorkloadError, match="ycsb"):
        exp.build_workload()
