"""Typed stat views and the hardened SimulationResult properties."""

import pytest

from repro.api import StatsView, headline
from repro.sim.config import SystemConfig
from repro.system.simulation import SimulationResult


def _result(stats=None):
    return SimulationResult(config=SystemConfig.scaled_default(),
                            run_time=100, stats=stats or {})


def test_stats_view_attribute_access():
    view = StatsView("llc", {"hit_rate": 0.75, "scans": 4})
    assert view.hit_rate == 0.75
    assert view.scans == 4
    assert view.missing_stat == 0.0
    assert view.get("scans") == 4
    assert "hit_rate" in view and "nope" not in view
    assert view.as_dict() == {"hit_rate": 0.75, "scans": 4}
    assert bool(view) and not bool(StatsView("empty"))


def test_headline_properties_survive_missing_stat_groups():
    """A run whose snapshot lacks 'llc'/'pim' groups (e.g. a truncated or
    synthetic result) must read as zeros, not raise KeyError."""
    res = _result(stats={})
    assert res.scope_buffer_hit_rate == 0.0
    assert res.llc_scan_latency == 0.0
    assert res.sbv_skip_ratio == 0.0
    assert res.pim_buffer_mean_len == 0.0
    assert res.pim_unique_scopes == 0.0
    assert res.pim_ops_executed == 0
    assert res.cores == []


def test_typed_views_match_legacy_dict_plumbing():
    stats = {
        "llc": {"hit_rate": 0.5, "scan_latency": 3.0,
                "skipped_set_ratio": 0.9},
        "pim": {"ops_executed": 7, "buffer_len_at_arrival": 1.5},
        "mc": {"requests": 11},
        "core.0": {"pim_ops": 3},
        "core.1": {"pim_ops": 4},
        "l1.0": {"hits": 9},
    }
    res = _result(stats=stats)
    assert res.llc.hit_rate == res.stats["llc"]["hit_rate"]
    assert res.pim.ops_executed == res.stats["pim"]["ops_executed"]
    assert res.mc.requests == 11
    assert res.core(0).pim_ops == 3
    assert res.l1(0).hits == 9
    assert [c.pim_ops for c in res.cores] == [3, 4]
    # legacy shims agree with the typed views
    assert res.scope_buffer_hit_rate == res.llc.hit_rate
    assert res.pim_buffer_mean_len == res.pim.buffer_len_at_arrival


def test_headline_summary_flattens_a_result():
    res = _result(stats={"llc": {"hit_rate": 0.5}, "pim": {"ops_executed": 2}})
    summary = headline(res)
    assert summary["run_time"] == 100
    assert summary["scope_buffer_hit_rate"] == 0.5
    assert summary["pim_ops_executed"] == 2
    assert summary["model"] == res.model_name


def test_stats_view_rejects_private_names():
    view = StatsView("x", {"_secret": 1})
    with pytest.raises(AttributeError):
        view._secret
