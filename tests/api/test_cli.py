"""The repro-bench CLI: workload listing and small end-to-end sweeps."""

import pytest

from repro.api.cli import _default_scopes, _parse_models, _parse_params, main
from repro.core.models import ConsistencyModel
from repro.workloads.tpch import TpchWorkload


def test_list_names_registered_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("ycsb", "tpch", "litmus"):
        assert name in out


def test_run_litmus_sweep_end_to_end(capsys):
    assert main([
        "run", "litmus", "--models", "naive,atomic", "--num-scopes", "2",
        "--param", "rounds=3", "--param", "threads=2",
    ]) == 0
    out = capsys.readouterr().out
    assert "litmus sweep" in out
    assert "naive" in out and "atomic" in out
    # the atomic row reports zero stale reads; naive reports some
    rows = {cells[2]: cells for cells in
            (line.split() for line in out.splitlines())
            if len(cells) >= 8 and cells[0] == "litmus"}
    assert int(rows["atomic"][4]) == 0
    assert int(rows["naive"][4]) > 0


def test_run_with_jobs_uses_process_pool(capsys):
    assert main([
        "run", "litmus", "--models", "naive,atomic", "--num-scopes", "2",
        "--jobs", "2", "--param", "rounds=2",
    ]) == 0
    assert "process-pool backend" in capsys.readouterr().out


def test_default_scopes_fit_the_tpch_query():
    """Without --num-scopes, a tpch run must size the system to the
    query instead of crashing on the generic default."""
    params = {"query": "q6", "scale": 1 / 64}
    assert (_default_scopes("tpch", params)
            == TpchWorkload("q6", scale=1 / 64).scaled_scopes())
    assert _default_scopes("ycsb", {}) == 4


def test_unknown_workload_exits_cleanly(capsys):
    with pytest.raises(SystemExit, match="unknown workload"):
        main(["run", "nonesuch"])


def test_bad_workload_params_exit_cleanly():
    """Missing or invalid workload params must not traceback."""
    with pytest.raises(SystemExit, match="invalid parameters"):
        main(["run", "tpch"])  # tpch requires --param query=...
    with pytest.raises(SystemExit, match="not evaluated"):
        main(["run", "tpch", "--param", "query=q99"])


def test_parse_models():
    assert _parse_models("atomic,scope") == [ConsistencyModel.ATOMIC,
                                             ConsistencyModel.SCOPE]
    assert len(_parse_models("all")) == 6
    with pytest.raises(SystemExit, match="valid models"):
        _parse_models("warp-drive")


def test_parse_params_literals_and_strings():
    params = _parse_params(["num_ops=30", "scale=0.5", "query=q6",
                            "sync_per_op=True"])
    assert params == {"num_ops": 30, "scale": 0.5, "query": "q6",
                      "sync_per_op": True}
    with pytest.raises(SystemExit, match="key=value"):
        _parse_params(["oops"])
