"""The repro-bench CLI: workload listing and small end-to-end sweeps."""

import pytest

from repro.api.cli import _default_scopes, _parse_models, _parse_params, main
from repro.core.models import ConsistencyModel
from repro.workloads.tpch import TpchWorkload


def test_list_names_registered_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("ycsb", "tpch", "litmus"):
        assert name in out


def test_run_litmus_sweep_end_to_end(capsys):
    assert main([
        "run", "litmus", "--models", "naive,atomic", "--num-scopes", "2",
        "--param", "rounds=3", "--param", "threads=2",
    ]) == 0
    out = capsys.readouterr().out
    assert "litmus sweep" in out
    assert "naive" in out and "atomic" in out
    # the atomic row reports zero stale reads; naive reports some
    rows = {cells[2]: cells for cells in
            (line.split() for line in out.splitlines())
            if len(cells) >= 8 and cells[0] == "litmus"}
    assert int(rows["atomic"][4]) == 0
    assert int(rows["naive"][4]) > 0


def test_run_with_jobs_uses_process_pool(capsys):
    assert main([
        "run", "litmus", "--models", "naive,atomic", "--num-scopes", "2",
        "--jobs", "2", "--param", "rounds=2",
    ]) == 0
    assert "process-pool backend" in capsys.readouterr().out


def test_default_scopes_fit_the_tpch_query():
    """Without --num-scopes, a tpch run must size the system to the
    query instead of crashing on the generic default."""
    params = {"query": "q6", "scale": 1 / 64}
    assert (_default_scopes("tpch", params)
            == TpchWorkload("q6", scale=1 / 64).scaled_scopes())
    assert _default_scopes("ycsb", {}) == 4


def test_unknown_workload_exits_cleanly(capsys):
    with pytest.raises(SystemExit, match="unknown workload"):
        main(["run", "nonesuch"])


def test_bad_workload_params_exit_cleanly():
    """Missing or invalid workload params must not traceback."""
    with pytest.raises(SystemExit, match="invalid parameters"):
        main(["run", "tpch"])  # tpch requires --param query=...
    with pytest.raises(SystemExit, match="not evaluated"):
        main(["run", "tpch", "--param", "query=q99"])


def test_parse_models():
    assert _parse_models("atomic,scope") == [ConsistencyModel.ATOMIC,
                                             ConsistencyModel.SCOPE]
    assert len(_parse_models("all")) == 6
    with pytest.raises(SystemExit, match="valid models"):
        _parse_models("warp-drive")


def test_parse_params_literals_and_strings():
    params = _parse_params(["num_ops=30", "scale=0.5", "query=q6",
                            "sync_per_op=True"])
    assert params == {"num_ops": 30, "scale": 0.5, "query": "q6",
                      "sync_per_op": True}
    with pytest.raises(SystemExit, match="key=value"):
        _parse_params(["oops"])


def test_perf_subcommand_smoke(capsys, tmp_path):
    from repro.api.cli import main

    out_path = tmp_path / "perf.json"
    assert main(["perf", "--configs", "litmus", "--repeats", "1",
                 "--output", str(out_path)]) == 0
    printed = capsys.readouterr().out
    assert "litmus" in printed and "events/sec" in printed
    import json
    record = json.loads(out_path.read_text())
    assert "litmus" in record["configs"]


def test_perf_check_flags_digest_mismatch(tmp_path):
    import json

    from repro.api import perf
    from repro.api.cli import main

    record = perf.run_suite(["litmus"], repeats=1)
    # A corrupted baseline digest must fail the check...
    bad = {"schema": perf.SCHEMA,
           "configs": {"litmus": dict(record["configs"]["litmus"],
                                      stats_sha256="0" * 64)}}
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(json.dumps(bad))
    assert main(["perf", "--configs", "litmus", "--repeats", "1",
                 "--check", str(bad_path)]) == 1
    # ...and the genuine record must pass it.
    good_path = tmp_path / "good.json"
    good_path.write_text(json.dumps(record))
    assert main(["perf", "--configs", "litmus", "--repeats", "1",
                 "--check", str(good_path)]) == 0


def test_perf_update_preserves_tracked_schema(tmp_path):
    """--update must keep the baseline section and recompute speedups,
    so BENCH_kernel.json stays regenerable by tooling."""
    import json

    from repro.api import perf
    from repro.api.cli import main

    record = perf.run_suite(["litmus"], repeats=1)
    base = {name: dict(cfg, events_per_sec=cfg["events_per_sec"] // 2)
            for name, cfg in record["configs"].items()}
    tracked = tmp_path / "BENCH_kernel.json"
    tracked.write_text(json.dumps({
        "schema": perf.SCHEMA,
        "description": "tracked",
        "baseline": {"kernel": "old", "configs": base},
        "configs": record["configs"],
    }))
    assert main(["perf", "--configs", "litmus", "--repeats", "1",
                 "--update", str(tracked)]) == 0
    updated = json.loads(tracked.read_text())
    assert updated["baseline"]["configs"] == base
    assert updated["description"] == "tracked"
    litmus = updated["configs"]["litmus"]
    assert litmus["speedup_vs_baseline"] >= 1.0
    assert litmus["stats_sha256"] == record["configs"]["litmus"]["stats_sha256"]


def test_worker_once_on_an_empty_queue_exits_clean(tmp_path, capsys):
    assert main(["worker", "--store", str(tmp_path), "--once"]) == 0
    assert "0 tasks completed" in capsys.readouterr().out


def test_worker_requires_a_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    with pytest.raises(SystemExit, match="no store"):
        main(["worker", "--once"])


def test_queue_status_empty_and_populated(tmp_path, capsys):
    assert main(["queue", "status", "--store", str(tmp_path)]) == 0
    assert "no active queue runs" in capsys.readouterr().out

    from repro.api import Experiment, ResultStore
    from repro.api.workqueue import _publish_run

    exp = Experiment.from_dict({
        "workload": "litmus", "params": {"rounds": 2, "threads": 2},
        "config": {"preset": "scaled", "num_scopes": 2}})
    _publish_run(ResultStore(str(tmp_path)), [exp], 1, 30.0)
    assert main(["queue", "status", "--store", str(tmp_path)]) == 0
    assert "work queue" in capsys.readouterr().out


def test_sweep_run_distributed_requires_a_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    with pytest.raises(SystemExit, match="--distributed needs a store"):
        main(["sweep", "run", "smoke", "--distributed"])


def test_store_prune_by_fingerprint_cli(tmp_path, capsys):
    from repro.api import Experiment, ResultStore
    from repro.api.backends import execute_experiment

    exp = Experiment.from_dict({
        "workload": "litmus", "params": {"rounds": 2, "threads": 2},
        "config": {"preset": "scaled", "num_scopes": 2}})
    result = execute_experiment(exp)
    ResultStore(str(tmp_path), fingerprint="old-kernel").put(
        exp.spec_hash(), result, exp)

    assert main(["store", "prune", "--store", str(tmp_path),
                 "--fingerprint", "old-kernel", "--dry-run"]) == 0
    assert "would prune 1 entries" in capsys.readouterr().out
    assert main(["store", "prune", "--store", str(tmp_path),
                 "--fingerprint", "old-kernel"]) == 0
    assert "pruned 1 entries" in capsys.readouterr().out


def test_queue_status_json_is_machine_readable(tmp_path, capsys):
    import json

    assert main(["queue", "status", "--store", str(tmp_path),
                 "--json"]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_store_verify_lists_quarantined_entries(tmp_path, capsys):
    """A quarantined entry makes `store verify` exit nonzero and name
    the file, even though the addressable tree itself is clean."""
    import json
    import os

    from repro.api.experiment import Experiment
    from repro.api.runner import Runner
    from repro.api.store import ResultStore

    store = ResultStore(str(tmp_path))
    exp = Experiment.from_dict({
        "workload": "litmus", "params": {"rounds": 1, "threads": 2},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 2},
    })
    Runner(store=store).run_all([exp])
    assert main(["store", "verify", "--store", str(tmp_path)]) == 0

    path = next(iter(store.paths()))
    entry = json.loads(open(path).read())
    entry["result"]["run_time"] += 1
    open(path, "w").write(json.dumps(entry))
    assert store.get(exp.spec_hash()) is None  # corrupt read quarantines

    capsys.readouterr()
    assert main(["store", "verify", "--store", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert f"QUARANTINED {os.path.basename(path)}" in out
    assert "quarantine" in out

    # Clearing the quarantine restores the zero exit.
    import shutil
    shutil.rmtree(os.path.join(str(tmp_path), "quarantine"))
    assert main(["store", "verify", "--store", str(tmp_path)]) == 0


def test_fuzz_cli_run_replay_corpus_round_trip(tmp_path, capsys):
    import json

    store = str(tmp_path / "store")
    report_file = str(tmp_path / "report.json")
    assert main(["fuzz", "run", "--seed", "5", "--programs", "2",
                 "--store", store, "--output", report_file]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out and "2 banked to corpus" in out
    report = json.load(open(report_file))
    assert report["schema"] == "repro-fuzz-report/1"
    assert report["violations"] == []

    assert main(["fuzz", "replay", "--store", store]) == 0
    assert "0 mismatched" in capsys.readouterr().out

    assert main(["fuzz", "corpus", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "2 corpus entries, 0 minimal repros" in out


def test_fuzz_cli_weakened_self_test_exits_nonzero(tmp_path, capsys):
    assert main(["fuzz", "run", "--seed", "5", "--programs", "2",
                 "--no-timing", "--no-corpus",
                 "--weaken", "no-atomic-flush"]) == 1
    out = capsys.readouterr().out
    assert "VIOLATION" in out
