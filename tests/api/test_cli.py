"""The repro-bench CLI: workload listing and small end-to-end sweeps."""

import pytest

from repro.api.cli import _default_scopes, _parse_models, _parse_params, main
from repro.core.models import ConsistencyModel
from repro.workloads.tpch import TpchWorkload


def test_list_names_registered_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("ycsb", "tpch", "litmus"):
        assert name in out


def test_run_litmus_sweep_end_to_end(capsys):
    assert main([
        "run", "litmus", "--models", "naive,atomic", "--num-scopes", "2",
        "--param", "rounds=3", "--param", "threads=2",
    ]) == 0
    out = capsys.readouterr().out
    assert "litmus sweep" in out
    assert "naive" in out and "atomic" in out
    # the atomic row reports zero stale reads; naive reports some
    rows = {cells[2]: cells for cells in
            (line.split() for line in out.splitlines())
            if len(cells) >= 8 and cells[0] == "litmus"}
    assert int(rows["atomic"][4]) == 0
    assert int(rows["naive"][4]) > 0


def test_run_with_jobs_uses_process_pool(capsys):
    assert main([
        "run", "litmus", "--models", "naive,atomic", "--num-scopes", "2",
        "--jobs", "2", "--param", "rounds=2",
    ]) == 0
    assert "process-pool backend" in capsys.readouterr().out


def test_default_scopes_fit_the_tpch_query():
    """Without --num-scopes, a tpch run must size the system to the
    query instead of crashing on the generic default."""
    params = {"query": "q6", "scale": 1 / 64}
    assert (_default_scopes("tpch", params)
            == TpchWorkload("q6", scale=1 / 64).scaled_scopes())
    assert _default_scopes("ycsb", {}) == 4


def test_unknown_workload_exits_cleanly(capsys):
    with pytest.raises(SystemExit, match="unknown workload"):
        main(["run", "nonesuch"])


def test_bad_workload_params_exit_cleanly():
    """Missing or invalid workload params must not traceback."""
    with pytest.raises(SystemExit, match="invalid parameters"):
        main(["run", "tpch"])  # tpch requires --param query=...
    with pytest.raises(SystemExit, match="not evaluated"):
        main(["run", "tpch", "--param", "query=q99"])


def test_parse_models():
    assert _parse_models("atomic,scope") == [ConsistencyModel.ATOMIC,
                                             ConsistencyModel.SCOPE]
    assert len(_parse_models("all")) == 6
    with pytest.raises(SystemExit, match="valid models"):
        _parse_models("warp-drive")


def test_parse_params_literals_and_strings():
    params = _parse_params(["num_ops=30", "scale=0.5", "query=q6",
                            "sync_per_op=True"])
    assert params == {"num_ops": 30, "scale": 0.5, "query": "q6",
                      "sync_per_op": True}
    with pytest.raises(SystemExit, match="key=value"):
        _parse_params(["oops"])


def test_perf_subcommand_smoke(capsys, tmp_path):
    from repro.api.cli import main

    out_path = tmp_path / "perf.json"
    assert main(["perf", "--configs", "litmus", "--repeats", "1",
                 "--output", str(out_path)]) == 0
    printed = capsys.readouterr().out
    assert "litmus" in printed and "events/sec" in printed
    import json
    record = json.loads(out_path.read_text())
    assert "litmus" in record["configs"]


def test_perf_check_flags_digest_mismatch(tmp_path):
    import json

    from repro.api import perf
    from repro.api.cli import main

    record = perf.run_suite(["litmus"], repeats=1)
    # A corrupted baseline digest must fail the check...
    bad = {"schema": perf.SCHEMA,
           "configs": {"litmus": dict(record["configs"]["litmus"],
                                      stats_sha256="0" * 64)}}
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(json.dumps(bad))
    assert main(["perf", "--configs", "litmus", "--repeats", "1",
                 "--check", str(bad_path)]) == 1
    # ...and the genuine record must pass it.
    good_path = tmp_path / "good.json"
    good_path.write_text(json.dumps(record))
    assert main(["perf", "--configs", "litmus", "--repeats", "1",
                 "--check", str(good_path)]) == 0


def test_perf_update_preserves_tracked_schema(tmp_path):
    """--update must keep the baseline section and recompute speedups,
    so BENCH_kernel.json stays regenerable by tooling."""
    import json

    from repro.api import perf
    from repro.api.cli import main

    record = perf.run_suite(["litmus"], repeats=1)
    base = {name: dict(cfg, events_per_sec=cfg["events_per_sec"] // 2)
            for name, cfg in record["configs"].items()}
    tracked = tmp_path / "BENCH_kernel.json"
    tracked.write_text(json.dumps({
        "schema": perf.SCHEMA,
        "description": "tracked",
        "baseline": {"kernel": "old", "configs": base},
        "configs": record["configs"],
    }))
    assert main(["perf", "--configs", "litmus", "--repeats", "1",
                 "--update", str(tracked)]) == 0
    updated = json.loads(tracked.read_text())
    assert updated["baseline"]["configs"] == base
    assert updated["description"] == "tracked"
    litmus = updated["configs"]["litmus"]
    assert litmus["speedup_vs_baseline"] >= 1.0
    assert litmus["stats_sha256"] == record["configs"]["litmus"]["stats_sha256"]


def test_worker_once_on_an_empty_queue_exits_clean(tmp_path, capsys):
    assert main(["worker", "--store", str(tmp_path), "--once"]) == 0
    assert "0 tasks completed" in capsys.readouterr().out


def test_worker_requires_a_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    with pytest.raises(SystemExit, match="no store"):
        main(["worker", "--once"])


def test_queue_status_empty_and_populated(tmp_path, capsys):
    assert main(["queue", "status", "--store", str(tmp_path)]) == 0
    assert "no active queue runs" in capsys.readouterr().out

    from repro.api import Experiment, ResultStore
    from repro.api.workqueue import _publish_run

    exp = Experiment.from_dict({
        "workload": "litmus", "params": {"rounds": 2, "threads": 2},
        "config": {"preset": "scaled", "num_scopes": 2}})
    _publish_run(ResultStore(str(tmp_path)), [exp], 1, 30.0)
    assert main(["queue", "status", "--store", str(tmp_path)]) == 0
    assert "work queue" in capsys.readouterr().out


def test_sweep_run_distributed_requires_a_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    with pytest.raises(SystemExit, match="--distributed needs a store"):
        main(["sweep", "run", "smoke", "--distributed"])


def test_store_prune_by_fingerprint_cli(tmp_path, capsys):
    from repro.api import Experiment, ResultStore
    from repro.api.backends import execute_experiment

    exp = Experiment.from_dict({
        "workload": "litmus", "params": {"rounds": 2, "threads": 2},
        "config": {"preset": "scaled", "num_scopes": 2}})
    result = execute_experiment(exp)
    ResultStore(str(tmp_path), fingerprint="old-kernel").put(
        exp.spec_hash(), result, exp)

    assert main(["store", "prune", "--store", str(tmp_path),
                 "--fingerprint", "old-kernel", "--dry-run"]) == 0
    assert "would prune 1 entries" in capsys.readouterr().out
    assert main(["store", "prune", "--store", str(tmp_path),
                 "--fingerprint", "old-kernel"]) == 0
    assert "pruned 1 entries" in capsys.readouterr().out


def test_queue_status_json_is_machine_readable(tmp_path, capsys):
    import json

    assert main(["queue", "status", "--store", str(tmp_path),
                 "--json"]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_store_verify_lists_quarantined_entries(tmp_path, capsys):
    """A quarantined entry makes `store verify` exit nonzero and name
    the file, even though the addressable tree itself is clean."""
    import json
    import os

    from repro.api.experiment import Experiment
    from repro.api.runner import Runner
    from repro.api.store import ResultStore

    store = ResultStore(str(tmp_path))
    exp = Experiment.from_dict({
        "workload": "litmus", "params": {"rounds": 1, "threads": 2},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 2},
    })
    Runner(store=store).run_all([exp])
    assert main(["store", "verify", "--store", str(tmp_path)]) == 0

    path = next(iter(store.paths()))
    entry = json.loads(open(path).read())
    entry["result"]["run_time"] += 1
    open(path, "w").write(json.dumps(entry))
    assert store.get(exp.spec_hash()) is None  # corrupt read quarantines

    capsys.readouterr()
    assert main(["store", "verify", "--store", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert f"QUARANTINED {os.path.basename(path)}" in out
    assert "quarantine" in out

    # Clearing the quarantine restores the zero exit.
    import shutil
    shutil.rmtree(os.path.join(str(tmp_path), "quarantine"))
    assert main(["store", "verify", "--store", str(tmp_path)]) == 0


def test_fuzz_cli_run_replay_corpus_round_trip(tmp_path, capsys):
    import json

    store = str(tmp_path / "store")
    report_file = str(tmp_path / "report.json")
    assert main(["fuzz", "run", "--seed", "5", "--programs", "2",
                 "--store", store, "--output", report_file]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out and "2 banked to corpus" in out
    report = json.load(open(report_file))
    assert report["schema"] == "repro-fuzz-report/1"
    assert report["violations"] == []

    assert main(["fuzz", "replay", "--store", store]) == 0
    assert "0 mismatched" in capsys.readouterr().out

    assert main(["fuzz", "corpus", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "2 corpus entries, 0 minimal repros" in out


def test_fuzz_cli_weakened_self_test_exits_nonzero(tmp_path, capsys):
    assert main(["fuzz", "run", "--seed", "5", "--programs", "2",
                 "--no-timing", "--no-corpus",
                 "--weaken", "no-atomic-flush"]) == 1
    out = capsys.readouterr().out
    assert "VIOLATION" in out


# --------------------------------------------------------------------- #
# observability surface: trace run/report/export, queue tail, progress
# --------------------------------------------------------------------- #

def test_trace_run_report_export_round_trip(tmp_path, capsys):
    import json

    dump_file = str(tmp_path / "dump.json")
    assert main(["trace", "run", "litmus", "--model", "atomic",
                 "--num-scopes", "2", "--param", "rounds=2",
                 "--param", "threads=2", "--ring", "2048",
                 "--output", dump_file]) == 0
    out = capsys.readouterr().out
    assert "traced litmus [atomic, 2 scopes]" in out
    assert "wrote trace dump" in out
    dump = json.load(open(dump_file))
    assert dump["schema"] == "repro-trace-dump/1"
    assert dump["obs"]["events"]

    assert main(["trace", "report", dump_file]) == 0
    out = capsys.readouterr().out
    assert "kernel dispatch mix" in out
    assert "records kept" in out

    chrome_file = str(tmp_path / "dump.chrome.json")
    assert main(["trace", "export", dump_file, "--output", chrome_file,
                 "--validate"]) == 0
    out = capsys.readouterr().out
    assert "wrote Chrome trace" in out
    assert out.strip().splitlines()[-1].startswith("ok:")
    chrome = json.load(open(chrome_file))
    assert chrome["traceEvents"]


def test_trace_export_default_output_name(tmp_path, capsys):
    import os

    dump_file = str(tmp_path / "mytrace.json")
    assert main(["trace", "run", "litmus", "--model", "atomic",
                 "--num-scopes", "2", "--param", "rounds=2",
                 "--param", "threads=2", "--output", dump_file]) == 0
    capsys.readouterr()
    assert main(["trace", "export", dump_file]) == 0
    assert os.path.exists(str(tmp_path / "mytrace.chrome.json"))
    capsys.readouterr()


def test_trace_export_rejects_a_non_dump(tmp_path):
    bogus = tmp_path / "nope.json"
    bogus.write_text('{"schema": "something-else"}')
    with pytest.raises(SystemExit, match="not a trace dump"):
        main(["trace", "export", str(bogus)])
    with pytest.raises(SystemExit, match="cannot load"):
        main(["trace", "report", str(tmp_path / "missing.json")])


def test_trace_run_requires_exactly_one_model():
    with pytest.raises(SystemExit, match="exactly one model"):
        main(["trace", "run", "litmus", "--model", "all"])


def test_sweep_run_trace_renders_the_stall_table(tmp_path, capsys):
    assert main(["sweep", "run", "smoke", "--trace", "--no-progress",
                 "--report", str(tmp_path / "report.md")]) == 0
    out = capsys.readouterr().out
    assert "stall attribution per traced point" in out
    report = (tmp_path / "report.md").read_text()
    assert "## Stall attribution per traced point" in report


def test_sweep_run_untraced_has_no_stall_table(capsys):
    assert main(["sweep", "run", "smoke", "--no-progress"]) == 0
    out = capsys.readouterr().out
    assert "stall attribution" not in out


def test_sweep_progress_streams_to_stderr(capsys):
    assert main(["sweep", "run", "smoke"]) == 0
    err = capsys.readouterr().err
    assert "sweep: 4/4 points" in err


def test_sweep_progress_callback_counts_and_eta():
    import io

    from repro.api.cli import _sweep_progress

    stream = io.StringIO()  # not a tty: line-per-update mode
    tick = _sweep_progress(10, stream=stream)
    tick(3)
    tick(7)
    lines = [l for l in stream.getvalue().splitlines() if l]
    assert lines[0].startswith("sweep: 3/10 points")
    assert lines[-1].startswith("sweep: 10/10 points")


def test_fmt_eta_ranges():
    from repro.api.cli import _fmt_eta

    assert _fmt_eta(12) == "12s"
    assert _fmt_eta(185) == "3m05s"
    assert _fmt_eta(3720) == "1h02m"


def test_queue_tail_empty_then_populated(tmp_path, capsys):
    from repro.obs.telemetry import TelemetryWriter

    store = str(tmp_path)
    assert main(["queue", "tail", "--store", store]) == 0
    assert "no telemetry" in capsys.readouterr().out

    writer = TelemetryWriter(store, "w-1")
    writer.emit("claim", shard="0000", points=4)
    writer.emit("finish", shard="0000")
    writer.close()
    assert main(["queue", "tail", "--store", store, "--lines", "1"]) == 0
    out = capsys.readouterr().out
    assert "finish" in out and "claim" not in out  # last N only


def test_queue_tail_follow_bounded(tmp_path, capsys):
    from repro.obs.telemetry import TelemetryWriter

    store = str(tmp_path)
    TelemetryWriter(store, "w").emit("publish", run="r1")
    assert main(["queue", "tail", "--store", store, "--follow",
                 "--poll-s", "0.01", "--max-s", "0.05"]) == 0
    assert "publish" in capsys.readouterr().out


def test_log_level_flag_tunes_the_repro_logger(capsys):
    import logging

    assert main(["--log-level", "debug", "list"]) == 0
    capsys.readouterr()
    logger = logging.getLogger("repro")
    assert logger.level == logging.DEBUG
    assert sum(1 for h in logger.handlers
               if getattr(h, "_repro_handler", False)) == 1
    assert main(["--log-level", "error", "list"]) == 0
    capsys.readouterr()
    assert logger.level == logging.ERROR


def test_fuzz_run_trace_flag_is_accepted(tmp_path, capsys):
    # a healthy simulator yields no timing violations, so no dumps --
    # the flag must still parse and the run stay clean
    assert main(["fuzz", "run", "--seed", "5", "--programs", "2",
                 "--store", str(tmp_path / "store"), "--trace"]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out


def test_perf_report_renders_the_speedup_trajectory():
    from repro.api.perf import _speedup_sections, format_report

    def cfg(eps):
        return {"events": 1000, "run_time": 10, "wall_s": 0.5,
                "events_per_sec": eps}

    record = {"configs": {"ycsb-c": cfg(400)}}
    tracked = {
        "configs": {"ycsb-c": cfg(400)},
        "baseline": {"configs": {"ycsb-c": cfg(100)}},
        "history": {"pr2": {"configs": {"ycsb-c": cfg(200)}},
                    "pr4": {"configs": {"other": cfg(999)}}},
    }
    labels = [label for label, _ in _speedup_sections(tracked)]
    assert labels == ["vs-seed", "vs-pr2", "vs-pr4", "vs-last"]

    out = format_report(record, tracked)
    header, row = out.splitlines()
    assert "vs-seed" in header and "vs-pr2" in header \
        and "vs-last" in header
    assert "4.00x" in row and "2.00x" in row and "1.00x" in row
    assert "-" in row  # pr4 never measured ycsb-c

    # a plain --output record still yields the classic single column
    assert [l for l, _ in _speedup_sections({"configs": {"a": cfg(1)}})] \
        == ["speedup"]
    assert _speedup_sections(None) == []
