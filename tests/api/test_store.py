"""The persistent result store: layout, integrity, Runner tiering."""

import json
import os
from typing import List, Sequence

import pytest

from repro.api import Experiment, ResultStore, Runner, SerialBackend
from repro.api.backends import ProcessPoolBackend
from repro.api.store import STORE_SCHEMA, code_fingerprint
from repro.system.simulation import RESULT_SCHEMA, SimulationResult

#: A litmus point small enough that every test simulates in milliseconds.
LITMUS = {
    "workload": "litmus",
    "params": {"rounds": 2, "threads": 2},
    "config": {"preset": "scaled", "num_scopes": 2},
    "max_events": 10_000_000,
}


def _experiment(**overrides) -> Experiment:
    spec = dict(LITMUS, **overrides)
    return Experiment.from_dict(spec)


@pytest.fixture(scope="module")
def litmus_result():
    """One simulated result the read-path tests share."""
    from repro.api.backends import execute_experiment

    return execute_experiment(_experiment())


class CountingBackend(SerialBackend):
    """Serial execution recording each dispatched batch (store-aware)."""

    def __init__(self) -> None:
        self.batches: List[List[str]] = []

    def run_all(self, experiments: Sequence[Experiment], **kwargs):
        self.batches.append([e.spec_hash() for e in experiments])
        return super().run_all(experiments, **kwargs)

    def run_all_settled(self, experiments: Sequence[Experiment],
                        store=None, **kwargs):
        self.batches.append([e.spec_hash() for e in experiments])
        return super().run_all_settled(experiments, store=store, **kwargs)

    @property
    def executed(self) -> List[str]:
        return [h for batch in self.batches for h in batch]


# --------------------------------------------------------------------- #
# serialization round trip
# --------------------------------------------------------------------- #


def test_result_dict_round_trip_is_exact(litmus_result):
    data = json.loads(json.dumps(litmus_result.to_dict()))
    assert data["schema"] == RESULT_SCHEMA
    clone = SimulationResult.from_dict(data)
    assert clone.config == litmus_result.config
    assert clone.run_time == litmus_result.run_time
    assert clone.stale_reads == litmus_result.stale_reads
    assert clone.events == litmus_result.events
    assert clone.stats == litmus_result.stats


def test_from_dict_rejects_foreign_schema(litmus_result):
    data = litmus_result.to_dict()
    with pytest.raises(ValueError, match="unsupported result schema"):
        SimulationResult.from_dict(dict(data, schema="repro-result/999"))
    # a missing tag is accepted (campaign artifacts predating the tag)
    legacy = {k: v for k, v in data.items() if k != "schema"}
    assert SimulationResult.from_dict(legacy).stats == litmus_result.stats


# --------------------------------------------------------------------- #
# store layout and integrity
# --------------------------------------------------------------------- #


def test_put_get_round_trip_and_layout(tmp_path, litmus_result):
    store = ResultStore(str(tmp_path))
    exp = _experiment()
    spec_hash = exp.spec_hash()
    path = store.put(spec_hash, litmus_result, exp)

    key = store.key(spec_hash)
    assert len(key) == 40
    assert path == os.path.join(str(tmp_path), key[:2], f"{key}.json")
    assert os.path.exists(path)
    # no temp files survive an atomic write
    assert not [f for f in os.listdir(os.path.dirname(path))
                if f.startswith(".tmp-")]

    hit = store.get(spec_hash)
    assert hit is not None
    assert hit.stats == litmus_result.stats
    assert hit.config == litmus_result.config
    assert spec_hash in store
    assert store.get("no-such-spec") is None

    entry = json.loads(open(path).read())
    assert entry["schema"] == STORE_SCHEMA
    assert entry["spec_hash"] == spec_hash
    assert entry["fingerprint"] == code_fingerprint()
    assert Experiment.from_dict(entry["experiment"]) == exp


def test_key_depends_on_fingerprint(tmp_path):
    a = ResultStore(str(tmp_path), fingerprint="kernel-a")
    b = ResultStore(str(tmp_path), fingerprint="kernel-b")
    assert a.key("feedc0ffee") != b.key("feedc0ffee")


def test_stale_fingerprint_is_never_served(tmp_path, litmus_result):
    exp = _experiment()
    old = ResultStore(str(tmp_path), fingerprint="old-kernel")
    old.put(exp.spec_hash(), litmus_result, exp)
    assert old.get(exp.spec_hash()) is not None
    # the same directory under the current kernel misses entirely
    new = ResultStore(str(tmp_path))
    assert new.get(exp.spec_hash()) is None
    assert exp.spec_hash() not in new


def test_corrupt_entries_read_as_misses(tmp_path, litmus_result):
    store = ResultStore(str(tmp_path))
    exp = _experiment()
    path = store.put(exp.spec_hash(), litmus_result, exp)

    # tampered statistics: digest verification fails -> miss
    entry = json.loads(open(path).read())
    entry["result"]["run_time"] += 1
    open(path, "w").write(json.dumps(entry))
    assert store.get(exp.spec_hash()) is None

    # torn write: invalid JSON -> miss, not an exception
    open(path, "w").write("{\"schema\": \"repro-store")
    assert store.get(exp.spec_hash()) is None

    # foreign file at the right address -> miss
    open(path, "w").write(json.dumps({"schema": "not-a-store-entry"}))
    assert store.get(exp.spec_hash()) is None


def test_corrupt_entry_is_quarantined_on_read(tmp_path, litmus_result,
                                              caplog):
    """A digest-mismatch entry self-heals: the read moves it aside to
    quarantine/, logs one warning, and frees the address for a rewrite."""
    import logging

    store = ResultStore(str(tmp_path))
    exp = _experiment()
    path = store.put(exp.spec_hash(), litmus_result, exp)
    entry = json.loads(open(path).read())
    entry["result"]["run_time"] += 1
    open(path, "w").write(json.dumps(entry))

    with caplog.at_level(logging.WARNING, logger="repro.store"):
        assert store.get(exp.spec_hash()) is None
    assert not os.path.exists(path)  # moved, not copied
    quarantined = os.listdir(os.path.join(str(tmp_path), "quarantine"))
    assert quarantined == [os.path.basename(path)]
    assert store.stats()["quarantined"] == 1
    warnings = [r for r in caplog.records if "quarantined" in r.message]
    assert len(warnings) == 1
    assert exp.spec_hash() in warnings[0].getMessage()
    assert store.fingerprint in warnings[0].getMessage()

    # quarantine is outside the addressable tree: verify stays clean,
    # and a re-run repairs the address
    assert store.verify() == []
    store.put(exp.spec_hash(), litmus_result, exp)
    assert store.get(exp.spec_hash()) is not None
    assert store.stats()["entries"] == 1

    # torn JSON and foreign schemas are misses but NOT quarantined
    # (nothing trustworthy to preserve, and tmp files must not move)
    open(path, "w").write("{\"schema\": \"repro-store")
    assert store.get(exp.spec_hash()) is None
    assert store.stats()["quarantined"] == 1


def test_prune_by_fingerprint(tmp_path, litmus_result):
    """`store prune --fingerprint FP` garbage-collects exactly one
    engine generation (what the resume mismatch error suggests)."""
    store = ResultStore(str(tmp_path))
    old = ResultStore(str(tmp_path), fingerprint="old-kernel")
    ancient = ResultStore(str(tmp_path), fingerprint="ancient-kernel")
    exps = [_experiment(variant=f"v{i}") for i in range(3)]
    store.put(exps[0].spec_hash(), litmus_result, exps[0])
    old.put(exps[1].spec_hash(), litmus_result, exps[1])
    ancient.put(exps[2].spec_hash(), litmus_result, exps[2])

    candidates = store.prune_candidates(fingerprint="old-kernel")
    assert [c.fingerprint for c in candidates] == ["old-kernel"]
    assert store.prune(fingerprint="old-kernel") == 1
    stats = store.stats()
    assert stats["entries"] == 2
    assert stats["by_fingerprint"] == {store.fingerprint: 1,
                                       "ancient-kernel": 1}
    # the current fingerprint can be named too (full rebuild)
    assert store.prune(fingerprint=store.fingerprint) == 1
    assert store.get(exps[0].spec_hash()) is None


def test_verify_reports_each_defect(tmp_path, litmus_result):
    store = ResultStore(str(tmp_path))
    exp = _experiment()
    good_path = store.put(exp.spec_hash(), litmus_result, exp)
    assert store.verify() == []

    # stale-but-intact entries of another kernel still verify clean
    ResultStore(str(tmp_path), fingerprint="old-kernel").put(
        exp.spec_hash(), litmus_result, exp)
    assert store.verify() == []

    # a tampered payload and a misplaced copy are both flagged
    entry = json.loads(open(good_path).read())
    entry["result"]["events"] += 7
    bad_path = os.path.join(os.path.dirname(good_path), "0" * 40 + ".json")
    open(bad_path, "w").write(json.dumps(entry))
    problems = dict(store.verify())
    assert problems[bad_path] == "result digest mismatch"

    entry["result"]["events"] -= 7  # intact content, wrong address
    open(bad_path, "w").write(json.dumps(entry))
    problems = dict(store.verify())
    assert problems[bad_path] == "entry at wrong address"


def test_stats_and_prune(tmp_path, litmus_result):
    store = ResultStore(str(tmp_path))
    old = ResultStore(str(tmp_path), fingerprint="old-kernel")
    exps = [_experiment(variant=f"v{i}") for i in range(3)]
    for exp in exps[:2]:
        store.put(exp.spec_hash(), litmus_result, exp)
    old.put(exps[2].spec_hash(), litmus_result, exps[2])

    stats = store.stats()
    assert stats["entries"] == 3
    assert stats["current_entries"] == 2
    assert stats["stale_entries"] == 1
    assert stats["by_fingerprint"] == {store.fingerprint: 2,
                                       "old-kernel": 1}
    assert stats["size_bytes"] > 0

    # nothing selected -> nothing removed
    assert store.prune() == 0
    # stale-only prune drops exactly the old kernel's entry
    assert store.prune(stale=True) == 1
    assert store.stats()["entries"] == 2
    assert store.get(exps[0].spec_hash()) is not None

    # age-based prune via file mtimes
    target = store.path(exps[0].spec_hash())
    week_ago = os.stat(target).st_mtime - 8 * 86400
    os.utime(target, (week_ago, week_ago))
    assert store.prune(max_age_days=7) == 1
    assert store.get(exps[0].spec_hash()) is None
    assert store.get(exps[1].spec_hash()) is not None


def test_concurrent_writers_last_rename_wins(tmp_path, litmus_result):
    """Two writers racing on one key leave exactly one valid entry."""
    exp = _experiment()
    a = ResultStore(str(tmp_path))
    b = ResultStore(str(tmp_path))
    a.put(exp.spec_hash(), litmus_result, exp)
    b.put(exp.spec_hash(), litmus_result, exp)
    shard = os.path.dirname(a.path(exp.spec_hash()))
    assert len(os.listdir(shard)) == 1
    assert a.get(exp.spec_hash()).stats == litmus_result.stats


def test_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert ResultStore.from_env() is None
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    store = ResultStore.from_env()
    assert store is not None and store.root == str(tmp_path)


# --------------------------------------------------------------------- #
# Runner tiering
# --------------------------------------------------------------------- #


def test_runner_writes_back_and_new_session_hydrates(tmp_path):
    exp = _experiment()
    cold_backend = CountingBackend()
    cold = Runner(backend=cold_backend, store=ResultStore(str(tmp_path)))
    result = cold.run(exp)
    assert cold.dispatch_count == 1 and cold.store_hits == 0

    # a fresh Runner (new session) serves the point from disk
    warm_backend = CountingBackend()
    warm = Runner(backend=warm_backend, store=ResultStore(str(tmp_path)))
    hydrated = warm.run(exp)
    assert warm_backend.executed == []
    assert warm.dispatch_count == 0 and warm.store_hits == 1
    assert hydrated.stats == result.stats
    assert hydrated.run_time == result.run_time
    # ...and the hit now sits in the memory tier
    assert warm.cached(exp) is not None


def test_mixed_batch_still_makes_exactly_one_dispatch(tmp_path):
    """Memory hit + store hit + genuine miss: one dispatch, misses only."""
    store = ResultStore(str(tmp_path))
    mem_exp = _experiment(variant="mem")
    disk_exp = _experiment(variant="disk")
    miss_exp = _experiment(variant="miss")

    Runner(store=store).run(disk_exp)  # populate the disk tier

    backend = CountingBackend()
    runner = Runner(backend=backend, store=store)
    runner.run(mem_exp)  # populate the memory tier
    backend.batches.clear()

    results = runner.run_all([mem_exp, disk_exp, miss_exp, disk_exp])
    assert backend.batches == [[miss_exp.spec_hash()]]
    assert [r is not None for r in results] == [True] * 4
    assert results[1].stats == results[3].stats


def test_runner_accepts_a_path_and_no_cache(tmp_path):
    """A bare directory path works, and the store tier functions even
    with the memory cache disabled."""
    exp = _experiment()
    first = Runner(cache=False, store=str(tmp_path))
    first.run(exp)
    second = Runner(cache=False, store=str(tmp_path))
    backend = CountingBackend()
    second.backend = backend
    second.run(exp)
    assert backend.executed == []
    assert second.store_hits == 1


def test_settled_write_through_serial_and_pool(tmp_path):
    """run_settled persists successes from the executing worker, on both
    backends, and never stores failures."""
    good = _experiment(variant="wt")
    bad = Experiment.from_dict(dict(
        LITMUS, variant="bad",
        params=dict(LITMUS["params"], rounds=0)))

    for jobs, label in ((1, "serial"), (2, "pool")):
        root = tmp_path / label
        backend = SerialBackend() if jobs == 1 else ProcessPoolBackend(jobs=2)
        runner = Runner(backend=backend, store=ResultStore(str(root)))
        outcomes = runner.run_settled([good, bad])
        assert outcomes[0][1] is None, label
        store = ResultStore(str(root))
        assert store.get(good.spec_hash()) is not None, label
        assert store.get(bad.spec_hash()) is None, label


def test_pool_written_store_serves_serial_sessions(tmp_path):
    """Entries written by process-pool shards hydrate a serial session:
    the store is backend-agnostic."""
    exps = [_experiment(variant=f"x{i}") for i in range(3)]
    pooled = Runner(backend=ProcessPoolBackend(jobs=2),
                    store=ResultStore(str(tmp_path)))
    pooled_out = pooled.run_settled(exps)

    backend = CountingBackend()
    serial = Runner(backend=backend, store=ResultStore(str(tmp_path)))
    serial_out = serial.run_settled(exps)
    assert backend.executed == []
    for (a, _), (b, _) in zip(pooled_out, serial_out):
        assert a.stats == b.stats and a.run_time == b.run_time


def test_preload_raises_with_caching_disabled(tmp_path):
    """A silently dropped preload would re-simulate a whole campaign."""
    runner = Runner(cache=False)
    with pytest.raises(RuntimeError, match="cache=False"):
        runner.preload({})
    assert Runner().preload({}) == 0
    # With a store attached the error names where misses still resolve.
    store = ResultStore(str(tmp_path))
    stored_runner = Runner(cache=False, store=store)
    with pytest.raises(RuntimeError) as exc:
        stored_runner.preload({})
    assert store.root in str(exc.value)
    assert store.fingerprint in str(exc.value)


def test_prune_candidates_previews_without_removing(tmp_path, litmus_result):
    store = ResultStore(str(tmp_path))
    old = ResultStore(str(tmp_path), fingerprint="old-kernel")
    current_exp, old_exp = _experiment(), _experiment(variant="old")
    store.put(current_exp.spec_hash(), litmus_result, current_exp)
    old.put(old_exp.spec_hash(), litmus_result, old_exp)

    assert store.prune_candidates() == []
    candidates = store.prune_candidates(stale=True)
    assert [c.fingerprint for c in candidates] == ["old-kernel"]
    # preview removed nothing
    assert store.stats()["entries"] == 2
    assert store.prune(stale=True) == 1
    assert store.stats()["entries"] == 1
