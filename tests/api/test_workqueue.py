"""The distributed work queue: leases, retry/backoff, chaos recovery.

The invariant under test throughout: N workers with injected faults
(crashes, hangs, corrupt writes) still produce campaign results
byte-identical to a serial run, because simulations are deterministic
and results are content-addressed -- leases and retries only bound
wasted work.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.api import Experiment, ResultStore, Runner, run_campaign
from repro.api.backends import (
    ExperimentFailure,
    SerialBackend,
    WorkQueueBackend,
)
from repro.api.store import read_json, try_create_json
from repro.api.sweep import SIX_MODELS, Axis, Campaign, Sweep, shard_slices
from repro.api.workqueue import (
    LEASE_SCHEMA,
    ChaosPlan,
    Coordinator,
    QueueWorker,
    _publish_run,
    _shard_paths,
    _ShardState,
    backoff_delay,
    queue_status,
)

#: A litmus point small enough that every test simulates in milliseconds.
LITMUS = {
    "workload": "litmus",
    "params": {"rounds": 2, "threads": 2},
    "config": {"preset": "scaled", "num_scopes": 2},
    "max_events": 10_000_000,
}


def _litmus(model: str, **overrides) -> Experiment:
    spec = dict(LITMUS, **overrides)
    spec["config"] = dict(spec["config"], model=model)
    return Experiment.from_dict(spec)


class _FixedRng:
    """A jitter source returning one constant (0.0 = no jitter)."""

    def __init__(self, value: float) -> None:
        self.value = value

    def random(self) -> float:
        return self.value


def _fast_coordinator(store: ResultStore, **overrides) -> Coordinator:
    """A coordinator with test-speed timing defaults."""
    kwargs = dict(shard_size=2, lease_s=5.0, poll_s=0.02, grace_s=0.1,
                  max_attempts=4, backoff_base_s=0.02, backoff_cap_s=0.1)
    kwargs.update(overrides)
    return Coordinator(store, **kwargs)


def _ok(settled) -> bool:
    return all(not isinstance(s, ExperimentFailure) for s in settled)


# --------------------------------------------------------------------- #
# sharding and backoff (pure units)
# --------------------------------------------------------------------- #


def test_shard_slices_cover_the_range_contiguously():
    assert shard_slices(0, 4) == []
    assert shard_slices(7, 3) == [slice(0, 3), slice(3, 6), slice(6, 7)]
    assert shard_slices(4, 4) == [slice(0, 4)]
    covered = [i for sl in shard_slices(11, 4) for i in range(11)[sl]]
    assert covered == list(range(11))
    with pytest.raises(ValueError):
        shard_slices(5, 0)


def test_backoff_delay_is_capped_exponential_with_bounded_jitter():
    """Dedicated retry/backoff unit: the envelope is base * 2^(n-1),
    capped, with at most +25% jitter on top."""
    flat = _FixedRng(0.0)
    assert backoff_delay(0, 1.0, 8.0, flat) == 0.0
    assert [backoff_delay(n, 1.0, 8.0, flat) for n in range(1, 6)] == \
        [1.0, 2.0, 4.0, 8.0, 8.0]  # doubles, then the cap holds
    # full jitter adds exactly 25%
    assert backoff_delay(3, 1.0, 8.0, _FixedRng(1.0)) == pytest.approx(5.0)
    # the unpinned path stays inside the envelope
    for n in range(1, 8):
        delay = backoff_delay(n, 0.5, 4.0)
        base = min(4.0, 0.5 * 2 ** (n - 1))
        assert base <= delay <= base * 1.25


# --------------------------------------------------------------------- #
# publication and claims
# --------------------------------------------------------------------- #


def test_publish_run_writes_complete_task_files(tmp_path):
    store = ResultStore(str(tmp_path))
    exps = [_litmus(m) for m in ("naive", "atomic", "scope")]
    run_dir, shards = _publish_run(store, exps, shard_size=2, lease_s=30.0)
    assert shards == ["0000", "0001"]
    task = read_json(_shard_paths(run_dir, "0000")[0])
    assert task["fingerprint"] == store.fingerprint
    assert [p["spec_hash"] for p in task["points"]] == \
        [e.spec_hash() for e in exps[:2]]
    # every task is self-describing: the experiment round-trips
    assert Experiment.from_dict(task["points"][0]["experiment"]) == exps[0]
    manifest = read_json(os.path.join(run_dir, "manifest.json"))
    assert manifest["points"] == 3 and manifest["shards"] == 2


def test_lease_claim_is_exclusive_and_never_stolen(tmp_path):
    store = ResultStore(str(tmp_path))
    run_dir, _ = _publish_run(store, [_litmus("naive")], 1, 30.0)
    a = QueueWorker(store, worker_id="a", chaos=ChaosPlan())
    b = QueueWorker(store, worker_id="b", chaos=ChaosPlan())
    (run_dir_a, task) = a._claimable_tasks()[0]
    lease = a._acquire(run_dir_a, task)
    assert lease is not None and lease["worker"] == "a"
    # the exclusive create lost: no second lease
    assert b._acquire(run_dir_a, task) is None
    # ...and a leased task is not even offered, expired or not
    assert b._claimable_tasks() == []


def test_heartbeat_detects_a_reaped_lease(tmp_path):
    store = ResultStore(str(tmp_path))
    run_dir, _ = _publish_run(store, [_litmus("naive")], 1, 30.0)
    worker = QueueWorker(store, worker_id="w", chaos=ChaosPlan())
    _, task = worker._claimable_tasks()[0]
    lease = worker._acquire(run_dir, task)
    old_deadline = lease["deadline"]
    time.sleep(0.01)
    assert worker._heartbeat(run_dir, lease)
    assert lease["deadline"] > old_deadline
    # the coordinator reaps the lease; the next heartbeat says so
    os.unlink(_shard_paths(run_dir, task["shard"])[1])
    assert not worker._heartbeat(run_dir, lease)
    # a lease re-acquired by someone else is not ours either
    other = QueueWorker(store, worker_id="thief", chaos=ChaosPlan())
    assert other._acquire(run_dir, task) is not None
    assert not worker._heartbeat(run_dir, lease)


def test_worker_skips_tasks_of_a_foreign_fingerprint(tmp_path):
    foreign = ResultStore(str(tmp_path), fingerprint="other-kernel")
    _publish_run(foreign, [_litmus("naive")], 1, 30.0)
    worker = QueueWorker(ResultStore(str(tmp_path)), chaos=ChaosPlan())
    assert worker._claimable_tasks() == []


def test_worker_drains_a_run_and_reports_done(tmp_path):
    store = ResultStore(str(tmp_path))
    exps = [_litmus(m) for m in ("naive", "atomic", "scope")]
    run_dir, shards = _publish_run(store, exps, shard_size=2, lease_s=30.0)
    worker = QueueWorker(store, worker_id="w", chaos=ChaosPlan())
    assert worker.run(once=True) == 2
    for shard in shards:
        _, lease_path, done_path = _shard_paths(run_dir, shard)
        done = read_json(done_path)
        assert done["worker"] == "w"
        assert all(o["status"] == "ok" for o in done["outcomes"].values())
        assert not os.path.exists(lease_path)  # released
    for e in exps:
        assert store.get(e.spec_hash()) is not None  # write-through


# --------------------------------------------------------------------- #
# retry scheduling
# --------------------------------------------------------------------- #


def test_retry_backoff_defers_the_task_via_not_before(tmp_path):
    """Dedicated retry/backoff integration: each retry bumps the task's
    attempt, pushes not_before out exponentially, and workers refuse the
    task until the backoff passes."""
    store = ResultStore(str(tmp_path))
    exp = _litmus("naive")
    run_dir, _ = _publish_run(store, [exp], 1, 30.0)
    coordinator = _fast_coordinator(
        store, backoff_base_s=2.0, backoff_cap_s=60.0, rng=_FixedRng(0.0))
    task_path = _shard_paths(run_dir, "0000")[0]
    state = _ShardState("0000", [exp.spec_hash()], time.time())

    now = time.time()
    coordinator._schedule_retry(task_path, state, now)
    task = read_json(task_path)
    assert task["attempt"] == 1 and state.attempt == 1
    assert task["not_before"] == pytest.approx(now + 2.0)

    coordinator._schedule_retry(task_path, state, now)
    task = read_json(task_path)
    assert task["attempt"] == 2
    assert task["not_before"] == pytest.approx(now + 4.0)  # doubled
    assert coordinator.stats["retries"] == 2

    # a backing-off task is invisible to workers...
    worker = QueueWorker(store, chaos=ChaosPlan())
    assert worker._claimable_tasks() == []
    # ...until not_before passes
    task["not_before"] = time.time() - 1.0
    from repro.api.store import atomic_write_json
    atomic_write_json(task_path, task)
    assert len(worker._claimable_tasks()) == 1


def test_expired_lease_is_reaped_and_redispatched(tmp_path):
    """Dedicated lease-expiry test: a worker that died holding a lease
    (deadline in the past) is reaped by the coordinator, the shard is
    re-offered with backoff, and the batch still completes."""
    store = ResultStore(str(tmp_path))
    exps = [_litmus(m) for m in ("naive", "atomic")]
    coordinator = _fast_coordinator(store, grace_s=1.5)

    def die_holding_the_lease():
        worker = QueueWorker(store, worker_id="doomed", chaos=ChaosPlan())
        deadline = time.time() + 10.0
        while time.time() < deadline:
            claimable = worker._claimable_tasks()
            if claimable:
                run_dir, task = claimable[0]
                # the lease a crashed worker left behind: long expired
                try_create_json(_shard_paths(run_dir, task["shard"])[1], {
                    "schema": LEASE_SCHEMA,
                    "shard": task["shard"],
                    "worker": "doomed",
                    "nonce": "dead",
                    "acquired": time.time() - 60.0,
                    "lease_s": 1.0,
                    "deadline": time.time() - 30.0,
                })
                return
            time.sleep(0.005)

    zombie = threading.Thread(target=die_holding_the_lease)
    zombie.start()
    settled = coordinator.run(exps)
    zombie.join()

    assert _ok(settled)
    assert coordinator.stats["expired_leases"] >= 1
    assert coordinator.stats["retries"] >= 1
    assert coordinator.stats["local_shards"] >= 1  # recovery ran it
    assert coordinator.stats["lost_points"] == 0


def test_deterministic_failure_is_never_retried(tmp_path):
    """A spec that fails identically every time is final on the first
    report: no retries, no lease churn, the other points unaffected."""
    store = ResultStore(str(tmp_path))
    good = _litmus("naive")
    bad = Experiment.from_dict(dict(
        LITMUS, params=dict(LITMUS["params"], rounds=0)))
    coordinator = _fast_coordinator(store, shard_size=1, grace_s=0.05)
    settled = coordinator.run([good, bad])

    assert not isinstance(settled[0], ExperimentFailure)
    assert isinstance(settled[1], ExperimentFailure)
    assert not settled[1].retryable
    assert coordinator.stats["retries"] == 0
    assert coordinator.stats["deterministic_failures"] == 1
    assert coordinator.stats["lost_points"] == 0


def test_retries_exhausted_settles_points_as_lost(tmp_path):
    """A shard that can never produce a usable report settles as a
    retryable failure after max_attempts instead of hanging forever."""
    store = ResultStore(str(tmp_path))
    exp = _litmus("naive")

    class _LyingBackend(SerialBackend):
        """Reports success without the write-through ever landing."""
        def run_all_settled(self, experiments, store=None, **kwargs):
            from repro.api.backends import execute_experiment_settled
            return [execute_experiment_settled(e) for e in experiments]

    coordinator = _fast_coordinator(
        store, shard_size=1, grace_s=0.0, max_attempts=2,
        fallback=_LyingBackend())
    settled = coordinator.run([exp])
    assert isinstance(settled[0], ExperimentFailure)
    assert settled[0].retryable
    assert "lost after 2 attempts" in settled[0].error
    assert coordinator.stats["lost_points"] == 1
    assert coordinator.stats["retries"] >= 1


# --------------------------------------------------------------------- #
# degradation and chaos
# --------------------------------------------------------------------- #


def test_no_workers_degrades_to_local_with_identical_digest(tmp_path):
    """--distributed with nobody listening: after the grace period the
    coordinator runs everything itself, and the campaign digest is
    byte-identical to a plain serial run."""
    campaign = Campaign(
        name="wq-degrade",
        title="degrade-to-local equivalence",
        description="work-queue vs serial digest equality",
        sweeps=(Sweep(name="litmus", base=LITMUS,
                      axes=(Axis("model", ("naive", "atomic", "scope")),)),),
    )
    serial = run_campaign(campaign, runner=Runner())

    store = ResultStore(str(tmp_path))
    backend = WorkQueueBackend(store, shard_size=2, lease_s=5.0,
                               poll_s=0.02, grace_s=0.05,
                               backoff_base_s=0.02, backoff_cap_s=0.1)
    distributed = run_campaign(
        campaign, runner=Runner(backend=backend, store=store))

    assert distributed.digest() == serial.digest()
    assert backend.last_stats["local_shards"] == 2
    assert backend.last_stats["worker_shards"] == 0
    assert backend.last_stats["lost_points"] == 0
    # the queue cleans up its task/lease files; only the append-only
    # telemetry history (observability, not protocol state) remains
    assert (os.listdir(os.path.join(str(tmp_path), "queue"))
            == ["telemetry.jsonl"])


def test_corrupt_write_is_quarantined_and_reexecuted(tmp_path):
    """corrupt-after chaos: the worker's done report claims success but
    the store entry fails its digest.  The read path quarantines it, the
    coordinator rejects the report and re-dispatches, and the repaired
    store verifies clean."""
    store = ResultStore(str(tmp_path))
    exps = [_litmus(m) for m in ("naive", "atomic")]
    coordinator = _fast_coordinator(store, shard_size=2, grace_s=2.0)
    worker = QueueWorker(store, worker_id="chaotic",
                         chaos=ChaosPlan(kind="corrupt-after", after=1))
    stop = threading.Event()

    def serve():
        while not stop.is_set():
            worker._sweep()
            time.sleep(0.01)

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        settled = coordinator.run(exps)
    finally:
        stop.set()
        thread.join()

    assert _ok(settled)
    assert coordinator.stats["retries"] >= 1  # the bad report was rejected
    assert coordinator.stats["lost_points"] == 0
    assert store.stats()["quarantined"] >= 1  # the torn write was isolated
    assert store.verify() == []  # ...and the addressable tree is clean
    for e, s in zip(exps, settled):
        assert store.get(e.spec_hash()).stats == s.stats


def test_chaos_plan_parses_env_directives(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    assert not ChaosPlan.from_env().active
    monkeypatch.setenv("REPRO_CHAOS", "kill-after=3")
    plan = ChaosPlan.from_env()
    assert plan.kind == "kill-after" and plan.after == 3
    monkeypatch.setenv("REPRO_CHAOS", "hang-after=2:45")
    plan = ChaosPlan.from_env()
    assert plan.kind == "hang-after" and plan.hang_s == 45.0
    monkeypatch.setenv("REPRO_CHAOS", "explode")
    with pytest.raises(ValueError):
        ChaosPlan.from_env()
    monkeypatch.setenv("REPRO_CHAOS", "melt-after=1")
    with pytest.raises(ValueError):
        ChaosPlan.from_env()


# --------------------------------------------------------------------- #
# crash-resume: SIGKILL a real worker process mid-campaign
# --------------------------------------------------------------------- #


def _crash_campaign() -> Campaign:
    """Six models over the litmus smoke subset plus TPC-H points."""
    return Campaign(
        name="crash-resume",
        title="crash-resume coverage",
        description="six models + tpch + litmus at smoke size",
        sweeps=(
            Sweep(name="litmus", base=LITMUS,
                  axes=(Axis("model", SIX_MODELS),)),
            Sweep(name="tpch",
                  base={"workload": "tpch",
                        "params": {"query": "q6", "scale": 1 / 256,
                                   "runs": 1},
                        "config": {"preset": "scaled"},
                        "max_events": 50_000_000},
                  axes=(Axis("model", ("naive", "atomic")),)),
        ),
    )


def test_sigkill_worker_mid_campaign_resumes_byte_identical(tmp_path):
    """The signature invariant, end to end: a real worker process is
    SIGKILLed mid-shard (lease held, points half done); the coordinator
    reaps the expired lease, re-dispatches the range, the campaign
    completes, and the digest is byte-identical to a serial run."""
    campaign = _crash_campaign()
    serial = run_campaign(campaign, runner=Runner())

    store = ResultStore(str(tmp_path))
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    # hang-after freezes the worker after 2 points with the lease held,
    # giving the test a deterministic window to SIGKILL it mid-shard.
    env["REPRO_CHAOS"] = "hang-after=2:3600"
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro.api.cli", "worker",
         "--store", str(tmp_path), "--poll-s", "0.05",
         "--max-idle-s", "120", "--id", "victim"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)

    points = len(campaign.points())
    backend = WorkQueueBackend(
        store, shard_size=points,  # one shard: the worker takes it all
        lease_s=1.5, poll_s=0.05, grace_s=3.0,
        backoff_base_s=0.05, backoff_cap_s=0.2)
    outcome = {}

    def drive():
        runner = Runner(backend=backend, store=store)
        outcome["result"] = run_campaign(campaign, runner=runner)

    coordinator = threading.Thread(target=drive)
    coordinator.start()
    try:
        # wait until the worker has visibly executed its two points
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if store.stats()["current_entries"] >= 2:
                break
            time.sleep(0.05)
        else:
            pytest.fail("worker never made progress")
        os.kill(worker.pid, signal.SIGKILL)
        coordinator.join(timeout=120.0)
        assert not coordinator.is_alive(), "coordinator never finished"
    finally:
        worker.kill()
        worker.wait()

    result = outcome["result"]
    assert result.failed_points == []
    assert result.digest() == serial.digest()  # byte-identical
    stats = backend.last_stats
    assert stats["expired_leases"] >= 1  # the victim's range was re-leased
    assert stats["retries"] >= 1
    assert stats["lost_points"] == 0
    assert store.verify() == []


# --------------------------------------------------------------------- #
# inspection
# --------------------------------------------------------------------- #


def test_queue_status_inventories_runs_and_leases(tmp_path):
    store = ResultStore(str(tmp_path))
    assert queue_status(store) == []
    exps = [_litmus(m) for m in ("naive", "atomic", "scope")]
    run_dir, _ = _publish_run(store, exps, shard_size=2, lease_s=30.0)
    status = queue_status(store)
    assert len(status) == 1
    assert status[0]["points"] == 3
    assert status[0]["shards"] == 2
    assert status[0]["done"] == 0
    assert status[0]["active_leases"] == 0

    worker = QueueWorker(store, worker_id="w", chaos=ChaosPlan())
    _, task = worker._claimable_tasks()[0]
    worker._acquire(run_dir, task)
    try_create_json(_shard_paths(run_dir, "0001")[1], {
        "schema": LEASE_SCHEMA, "shard": "0001", "worker": "gone",
        "nonce": "x", "acquired": 0.0, "lease_s": 1.0, "deadline": 1.0})
    status = queue_status(store)[0]
    assert status["active_leases"] == 1
    assert status["expired_leases"] == 1


def test_workqueue_backend_rejects_a_foreign_store(tmp_path):
    backend = WorkQueueBackend(str(tmp_path / "a"))
    with pytest.raises(ValueError, match="share one store"):
        backend.run_all_settled([], store=ResultStore(str(tmp_path / "b")))
    assert backend.run_all_settled([]) == []


# --------------------------------------------------------------------- #
# observability: trace propagation and fleet telemetry
# --------------------------------------------------------------------- #

def test_trace_overlay_propagates_through_task_files(tmp_path):
    """A traced distributed campaign ships the TraceConfig inside the
    task files (tasks stay self-describing), the worker applies it at
    execution, and the store entry carries the obs payload -- under the
    exact spec hash an untraced run would use."""
    from repro.sim.config import TraceConfig

    store = ResultStore(str(tmp_path))
    exps = [_litmus(m) for m in ("naive", "atomic")]
    trace = TraceConfig(enabled=True, ring_size=0)
    run_dir, shards = _publish_run(store, exps, shard_size=2,
                                   lease_s=30.0, trace=trace)
    task = read_json(_shard_paths(run_dir, shards[0])[0])
    assert task["trace"] == {"enabled": True, "ring_size": 0,
                             "flight": False}

    worker = QueueWorker(store, worker_id="w", chaos=ChaosPlan())
    assert worker.run(once=True) == 1
    for e in exps:
        result = store.get(e.spec_hash())  # untraced key
        assert result.obs is not None
        assert result.obs["kernel"]["cycles"] > 0


def test_untraced_task_files_carry_no_trace_key(tmp_path):
    store = ResultStore(str(tmp_path))
    run_dir, shards = _publish_run(store, [_litmus("atomic")],
                                   shard_size=2, lease_s=30.0)
    task = read_json(_shard_paths(run_dir, shards[0])[0])
    assert "trace" not in task


def test_worker_emits_the_telemetry_lifecycle(tmp_path):
    from repro.obs.telemetry import read_telemetry

    store = ResultStore(str(tmp_path))
    exps = [_litmus(m) for m in ("naive", "atomic")]
    _publish_run(store, exps, shard_size=2, lease_s=30.0)
    worker = QueueWorker(store, worker_id="w-tel", chaos=ChaosPlan())
    assert worker.run(once=True) == 1

    records = [r for r in read_telemetry(str(tmp_path))
               if r["who"] == "w-tel"]
    kinds = [r["event"] for r in records]
    assert kinds == ["claim", "start", "point", "heartbeat", "point",
                     "heartbeat", "finish"]
    points = [r for r in records if r["event"] == "point"]
    assert all(p["status"] == "ok" for p in points)
    assert all(len(p["spec"]) == 12 for p in points)


def test_coordinator_emits_publish_and_local_telemetry(tmp_path):
    from repro.obs.telemetry import read_telemetry

    store = ResultStore(str(tmp_path))
    coordinator = _fast_coordinator(store)
    exps = [_litmus(m) for m in ("naive", "atomic", "scope")]
    ticks = []
    settled = coordinator.run(exps, progress=ticks.append)
    assert _ok(settled)
    assert sum(ticks) == len(exps)  # every point reported exactly once

    kinds = [r["event"] for r in read_telemetry(str(tmp_path))
             if r["who"] == "coordinator"]
    assert kinds[0] == "publish"
    assert kinds.count("local") == 2  # both shards ran locally
