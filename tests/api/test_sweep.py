"""The campaign subsystem: sweep expansion, execution, aggregation, CLI."""

import json
from typing import List, Sequence

import pytest

from repro.api import (
    Axis,
    Campaign,
    Experiment,
    Pivot,
    Runner,
    SerialBackend,
    Sweep,
    get_campaign,
    run_campaign,
)
from repro.api.backends import ProcessPoolBackend
from repro.api.sweep import (
    load_results,
    result_from_dict,
    result_to_dict,
)
from repro.core.models import ConsistencyModel
from repro.sim.config import SystemConfig

#: A tiny YCSB template every expansion test shares.
YCSB_BASE = {
    "workload": "ycsb",
    "params": {"num_records": 8000, "num_ops": 10, "threads": 4, "seed": 11},
    "config": {"preset": "scaled", "num_scopes": 4},
    "max_events": 50_000_000,
}


class CountingBackend(SerialBackend):
    """Serial execution that records every spec the backend actually ran."""

    def __init__(self) -> None:
        self.batches: List[List[str]] = []

    def run_all(self, experiments: Sequence[Experiment], **kwargs):
        self.batches.append([e.spec_hash() for e in experiments])
        return super().run_all(experiments, **kwargs)

    def run_all_settled(self, experiments: Sequence[Experiment], **kwargs):
        self.batches.append([e.spec_hash() for e in experiments])
        return super().run_all_settled(experiments, **kwargs)

    @property
    def executed(self) -> List[str]:
        return [h for batch in self.batches for h in batch]


# --------------------------------------------------------------------- #
# expansion
# --------------------------------------------------------------------- #


def test_grid_expansion_order_and_paths():
    sweep = Sweep(
        name="grid",
        base=YCSB_BASE,
        axes=(Axis("model", ("naive", "atomic")),
              Axis("scopes", (4, 8))),
    )
    points = sweep.points()
    assert [p.name for p in points] == [
        "grid/model=naive,scopes=4",
        "grid/model=naive,scopes=8",
        "grid/model=atomic,scopes=4",
        "grid/model=atomic,scopes=8",
    ]
    # well-known axis names resolve into the config
    assert points[1].experiment.config.model is ConsistencyModel.NAIVE
    assert points[1].experiment.config.num_scopes == 8
    # ...and the rest of the preset config survives untouched
    assert points[1].experiment.config == SystemConfig.scaled_default(
        model=ConsistencyModel.NAIVE, num_scopes=8)
    assert points[0].coords == {"model": "naive", "scopes": 4}


def test_default_axis_path_is_a_workload_param():
    sweep = Sweep(name="s", base=YCSB_BASE,
                  axes=(Axis("num_ops", (5, 7)),))
    ops = [p.experiment.params_dict["num_ops"] for p in sweep.points()]
    assert ops == [5, 7]


def test_explicit_dotted_path_reaches_nested_config():
    sweep = Sweep(name="s", base=YCSB_BASE,
                  axes=(Axis("buf", (8, None),
                             path="config.pim.buffer_capacity"),))
    caps = [p.experiment.config.pim.buffer_capacity
            for p in sweep.points()]
    assert caps == [8, None]


def test_zip_axes_advance_together_and_hide_derived_values():
    sweep = Sweep(
        name="s",
        base=YCSB_BASE,
        axes=(Axis("model", ("naive", "atomic")),
              Axis("scopes", (4, 8)),
              Axis("records", (8000, 16000),
                   path="params.num_records", hidden=True)),
        zip_groups=(("scopes", "records"),),
    )
    points = sweep.points()
    assert len(points) == 4  # 2 models x 2 zipped pairs, not 2 x 2 x 2
    assert points[0].name == "s/model=naive,scopes=4"  # hidden axis absent
    pairs = {(p.experiment.config.num_scopes,
              p.experiment.params_dict["num_records"]) for p in points}
    assert pairs == {(4, 8000), (8, 16000)}


def test_zip_length_mismatch_rejected():
    with pytest.raises(ValueError, match="mismatched lengths"):
        Sweep(name="s", base=YCSB_BASE,
              axes=(Axis("scopes", (4, 8)),
                    Axis("records", (8000,), path="params.num_records")),
              zip_groups=(("scopes", "records"),))


def test_zip_group_of_unknown_axis_rejected():
    with pytest.raises(ValueError, match="unknown axis"):
        Sweep(name="s", base=YCSB_BASE,
              axes=(Axis("scopes", (4, 8)),),
              zip_groups=(("scopes", "records"),))


def test_empty_axis_expands_to_no_points():
    sweep = Sweep(name="s", base=YCSB_BASE,
                  axes=(Axis("model", ()), Axis("scopes", (4, 8))))
    assert sweep.points() == []


def test_filters_prune_points():
    sweep = Sweep(
        name="s", base=YCSB_BASE,
        axes=(Axis("model", ("naive", "atomic")), Axis("scopes", (4, 8))),
        filters=(lambda c: not (c["model"] == "naive" and c["scopes"] == 8),),
    )
    assert len(sweep.points()) == 3


def test_filter_removing_every_point_still_runs():
    sweep = Sweep(name="s", base=YCSB_BASE,
                  axes=(Axis("model", ("naive",)),),
                  filters=(lambda c: False,))
    campaign = Campaign(name="empty", sweeps=(sweep,))
    backend = CountingBackend()
    result = run_campaign(campaign, runner=Runner(backend=backend))
    assert result.points == []
    assert backend.executed == []
    assert isinstance(result.digest(), str)


def test_duplicate_point_names_rejected():
    sweep = Sweep(name="s", base=YCSB_BASE,
                  axes=(Axis("model", ("naive",)),))
    campaign = Campaign(name="c", sweeps=(sweep, sweep))
    with pytest.raises(ValueError, match="duplicate point name"):
        campaign.points()


def test_sweep_dict_round_trip():
    sweep = Sweep(
        name="s", base=YCSB_BASE,
        axes=(Axis("model", ("naive", "atomic")),
              Axis("scopes", (4, 8)),
              Axis("records", (8000, 16000),
                   path="params.num_records", hidden=True)),
        zip_groups=(("scopes", "records"),),
    )
    campaign = Campaign(name="c", title="t", description="d",
                        sweeps=(sweep,),
                        pivots=(Pivot(title="p", x="scopes",
                                      split_by="model"),))
    clone = Campaign.from_dict(
        json.loads(json.dumps(campaign.to_dict())))
    assert [p.name for p in clone.points()] == \
        [p.name for p in campaign.points()]
    assert [p.experiment for p in clone.points()] == \
        [p.experiment for p in campaign.points()]
    assert clone.pivots == campaign.pivots


def test_hidden_axis_must_ride_a_visible_zip_partner():
    with pytest.raises(ValueError, match="hidden axis"):
        Sweep(name="s", base=YCSB_BASE,
              axes=(Axis("model", ("naive", "atomic")),
                    Axis("records", (1000, 2000),
                         path="params.num_records", hidden=True)))
    with pytest.raises(ValueError, match="entirely hidden"):
        Sweep(name="s", base=YCSB_BASE,
              axes=(Axis("scopes", (4, 8), hidden=True),
                    Axis("records", (8000, 16000),
                         path="params.num_records", hidden=True)),
              zip_groups=(("scopes", "records"),))


def test_from_dict_rejects_unknown_keys():
    good = Sweep(name="s", base=YCSB_BASE,
                 axes=(Axis("model", ("naive",)),)).to_dict()
    with pytest.raises(ValueError, match="unknown sweep keys"):
        Sweep.from_dict(dict(good, zip_groups=[["a", "b"]]))
    with pytest.raises(ValueError, match="unknown axis keys"):
        Axis.from_dict({"name": "model", "values": [], "hide": True})
    with pytest.raises(ValueError, match="unknown campaign keys"):
        Campaign.from_dict({"name": "c", "sweep": []})
    with pytest.raises(ValueError, match="unknown pivot keys"):
        Pivot.from_dict({"title": "t", "x": "a", "split_by": "b",
                         "normalise_to": "naive"})


def test_sweep_with_transform_is_not_serializable():
    sweep = Sweep(name="s", base=YCSB_BASE,
                  axes=(Axis("model", ("naive",)),),
                  transform=lambda e, c: e)
    with pytest.raises(ValueError, match="not serializable"):
        sweep.to_dict()


# --------------------------------------------------------------------- #
# execution: dedup, equivalence, failure isolation, resume
# --------------------------------------------------------------------- #


def _two_model_campaign() -> Campaign:
    return Campaign(name="mini", sweeps=(Sweep(
        name="ycsb", base=YCSB_BASE,
        axes=(Axis("model", ("naive", "atomic")),),
    ),))


def test_duplicate_points_simulate_once():
    """Two sweeps expanding to identical specs dispatch one simulation."""
    campaign = Campaign(name="dup", sweeps=(
        Sweep(name="a", base=YCSB_BASE, axes=(Axis("model", ("naive",)),)),
        Sweep(name="b", base=YCSB_BASE, axes=(Axis("model", ("naive",)),)),
    ))
    backend = CountingBackend()
    result = run_campaign(campaign, runner=Runner(backend=backend))
    assert len(result.points) == 2
    assert len(backend.executed) == 1
    assert result.points[0].result is result.points[1].result


def test_serial_and_process_pool_campaigns_match_stat_for_stat():
    campaign = get_campaign("smoke")
    serial = run_campaign(campaign, runner=Runner(backend=SerialBackend()))
    pooled = run_campaign(
        campaign, runner=Runner(backend=ProcessPoolBackend(jobs=2)))
    assert serial.digest() == pooled.digest()
    for a, b in zip(serial.points, pooled.points):
        assert a.name == b.name
        assert a.result.run_time == b.result.run_time
        assert a.result.stale_reads == b.result.stale_reads
        assert a.result.events == b.result.events
        assert a.result.stats == b.result.stats


@pytest.mark.parametrize("backend_factory", [
    SerialBackend, lambda: ProcessPoolBackend(jobs=2)],
    ids=["serial", "pool"])
def test_failed_point_reports_and_campaign_completes(backend_factory):
    """num_records=0 cannot build a workload; the other points finish."""
    campaign = Campaign(name="partial", sweeps=(Sweep(
        name="ycsb", base=YCSB_BASE,
        axes=(Axis("model", ("naive", "atomic")),
              Axis("records", (0, 8000), path="params.num_records")),
    ),))
    result = run_campaign(campaign,
                          runner=Runner(backend=backend_factory()))
    assert len(result.points) == 4
    failed = result.failed_points
    assert {p.coords["records"] for p in failed} == {0}
    assert all("at least one item" in p.error for p in failed)
    assert {p.coords["records"] for p in result.ok_points} == {8000}
    assert all(p.result.run_time > 0 for p in result.ok_points)


def test_results_accessor_is_strict():
    ok = run_campaign(_two_model_campaign())
    assert [r.model_name for r in ok.results()] == ["naive", "atomic"]
    broken = run_campaign(Campaign(name="bad", sweeps=(Sweep(
        name="ycsb", base=YCSB_BASE,
        axes=(Axis("records", (0,), path="params.num_records"),),
    ),)))
    with pytest.raises(RuntimeError, match="1 of 1 campaign points failed"):
        broken.results()


def test_failures_are_not_cached_so_resume_retries_them():
    backend = CountingBackend()
    runner = Runner(backend=backend)
    bad = Experiment.from_dict(dict(
        YCSB_BASE, params=dict(YCSB_BASE["params"], num_records=0)))
    first = runner.run_settled([bad])
    second = runner.run_settled([bad])
    assert first[0][0] is None and "at least one item" in first[0][1]
    assert len(backend.executed) == 2  # retried, not served from cache
    assert second[0][1] is not None


def test_campaign_json_round_trip_and_resume(tmp_path):
    campaign = _two_model_campaign()
    backend = CountingBackend()
    first = run_campaign(campaign, runner=Runner(backend=backend))
    artifact = tmp_path / "mini.json"
    artifact.write_text(json.dumps(first.to_json_dict()))

    resumed_backend = CountingBackend()
    resume = load_results(json.loads(artifact.read_text()))
    second = run_campaign(campaign, runner=Runner(backend=resumed_backend),
                          resume=resume)
    assert resumed_backend.executed == []  # every point came from cache
    assert second.digest() == first.digest()


def test_result_dict_round_trip():
    result = run_campaign(_two_model_campaign()).points[0].result
    clone = result_from_dict(
        json.loads(json.dumps(result_to_dict(result))))
    assert clone.config == result.config
    assert clone.run_time == result.run_time
    assert clone.stale_reads == result.stale_reads
    assert clone.events == result.events
    assert clone.stats == result.stats


def test_load_results_rejects_foreign_json():
    with pytest.raises(ValueError, match="schema"):
        load_results({"points": []})


def test_load_results_names_both_fingerprints_on_mismatch():
    """Resuming from an artifact of another engine generation fails
    loudly -- naming both fingerprints and the prune command -- instead
    of silently re-running everything."""
    from repro.api.store import code_fingerprint

    data = run_campaign(_two_model_campaign()).to_json_dict()
    assert data["fingerprint"] == code_fingerprint()  # recorded on write
    assert load_results(data)  # the matching artifact loads

    stale = dict(data, fingerprint="0123456789abcdef")
    with pytest.raises(ValueError) as exc:
        load_results(stale)
    message = str(exc.value)
    assert "0123456789abcdef" in message  # the artifact's fingerprint
    assert code_fingerprint() in message  # ...and the current engine's
    assert "store prune --fingerprint 0123456789abcdef" in message

    # artifacts predating the field still load unchecked (back-compat)
    legacy = {k: v for k, v in data.items() if k != "fingerprint"}
    assert load_results(legacy)


# --------------------------------------------------------------------- #
# aggregation
# --------------------------------------------------------------------- #


def _grid_result():
    campaign = Campaign(
        name="g",
        sweeps=(Sweep(
            name="ycsb", base=YCSB_BASE,
            axes=(Axis("model", ("naive", "atomic")),
                  Axis("scopes", (4, 8))),
        ),),
        pivots=(
            Pivot(title="abs", x="scopes", split_by="model"),
            Pivot(title="rel", x="scopes", split_by="model",
                  normalize_to="naive"),
            Pivot(title="hit", x="scopes", split_by="model",
                  value="llc.hit_rate"),
        ),
    )
    return campaign, run_campaign(campaign)


def test_series_pivots_the_grid():
    campaign, result = _grid_result()
    xs, series = result.series(campaign.pivots[0])
    assert xs == ["4", "8"]
    assert list(series) == ["naive", "atomic"]
    by_point = {p.name: p.result for p in result.points}
    assert series["atomic"] == [
        by_point["ycsb/model=atomic,scopes=4"].run_time,
        by_point["ycsb/model=atomic,scopes=8"].run_time,
    ]
    _, rel = result.series(campaign.pivots[1])
    assert rel["naive"] == [1.0, 1.0]
    assert rel["atomic"][0] == pytest.approx(
        series["atomic"][0] / series["naive"][0])
    _, hits = result.series(campaign.pivots[2])
    assert hits["atomic"][0] == by_point[
        "ycsb/model=atomic,scopes=4"].llc.hit_rate


def test_campaign_markdown_is_deterministic():
    from repro.analysis.report import campaign_markdown

    campaign, result = _grid_result()
    text = campaign_markdown(result)
    assert text == campaign_markdown(result)
    assert f"Result digest: `{result.digest()}`" in text
    assert "## abs" in text and "## All points" in text
    assert "ycsb/model=atomic,scopes=8" in text


def test_registered_campaigns_expand():
    smoke = get_campaign("smoke")
    assert len(smoke.points()) == 4  # 2 models x 2 workloads
    grid = get_campaign("paper-grid")
    names = [p.name for p in grid.points()]
    assert len(names) == len(set(names))
    # the full grid covers all six models on the YCSB scope sweep
    ycsb = [p for p in grid.points() if p.sweep == "ycsb"]
    assert len({p.coords["model"] for p in ycsb}) == 6
    assert len({p.coords["scopes"] for p in ycsb}) == 5
    with pytest.raises(ValueError, match="unknown campaign"):
        get_campaign("nonesuch")


# --------------------------------------------------------------------- #
# CLI round trip
# --------------------------------------------------------------------- #


def test_cli_sweep_list_and_points(capsys):
    from repro.api.cli import main

    assert main(["sweep", "list"]) == 0
    out = capsys.readouterr().out
    assert "smoke" in out and "paper-grid" in out

    assert main(["sweep", "list-points", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "ycsb/model=naive" in out and "litmus/model=atomic" in out


def test_cli_sweep_run_round_trip(tmp_path, capsys):
    from repro.api.cli import main

    artifact = tmp_path / "smoke.json"
    report = tmp_path / "smoke.md"
    assert main(["sweep", "run", "smoke", "--output", str(artifact),
                 "--report", str(report)]) == 0
    out = capsys.readouterr().out
    data = json.loads(artifact.read_text())
    assert data["schema"] == "repro-campaign-result/1"
    assert data["digest"] in out
    assert len(data["points"]) == 4
    # the artifact's specs reconstruct the campaign's experiments exactly
    smoke = get_campaign("smoke")
    for stored, point in zip(data["points"], smoke.points()):
        assert Experiment.from_dict(stored["experiment"]) == point.experiment
    assert report.read_text().startswith("# CI smoke campaign")

    # resuming from the artifact simulates nothing and prints the digest
    assert main(["sweep", "run", "smoke", "--resume", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "4 from cache" in out
    assert data["digest"] in out


def test_cli_sweep_run_campaign_file_and_failure_exit(tmp_path, capsys):
    """A JSON campaign file runs; a failing point exits non-zero."""
    from repro.api.cli import main

    campaign = Campaign(name="filecase", sweeps=(Sweep(
        name="ycsb", base=YCSB_BASE,
        axes=(Axis("records", (8000, 0), path="params.num_records"),),
    ),))
    path = tmp_path / "filecase.json"
    path.write_text(json.dumps(campaign.to_dict()))
    assert main(["sweep", "run", str(path)]) == 1
    out = capsys.readouterr().out
    assert "FAILED ycsb/records=0" in out

    assert main(["sweep", "list-points", str(path)]) == 0
    assert "ycsb/records=8000" in capsys.readouterr().out


def test_cli_sweep_unknown_campaign():
    from repro.api.cli import main

    with pytest.raises(SystemExit, match="unknown campaign"):
        main(["sweep", "run", "nonesuch"])


def test_sweep_specs_match_directly_constructed_experiments():
    """A Sweep-expanded spec hashes identically to the same experiment
    built by hand -- the property that lets campaign points share the
    Runner cache with the benchmark harness's figure points."""
    from dataclasses import asdict

    from repro.workloads.ycsb import YcsbParams

    sweep = Sweep(
        name="s",
        base={
            "workload": "ycsb",
            "params": asdict(YcsbParams(num_records=8000, num_ops=10,
                                        threads=4, seed=11)),
            "config": {"preset": "scaled", "num_scopes": 4},
            "max_events": 50_000_000,
        },
        axes=(Axis("model", ("atomic",)),),
    )
    direct = Experiment(
        workload="ycsb",
        config=SystemConfig.scaled_default(model=ConsistencyModel.ATOMIC,
                                           num_scopes=4),
        params=asdict(YcsbParams(num_records=8000, num_ops=10, threads=4,
                                 seed=11)),
        max_events=50_000_000,
    )
    (point,) = sweep.points()
    assert point.experiment == direct
    assert point.experiment.spec_hash() == direct.spec_hash()
