"""Happens-before graphs and the Fig. 1 cycle argument."""

from repro.core.ordering import HappensBefore, fig1_happens_before


def test_acyclic_chain_is_consistent():
    hb = HappensBefore()
    hb.add_chain(["a", "b", "c", "d"])
    assert hb.is_consistent
    assert hb.find_cycle() is None


def test_simple_cycle_detected():
    hb = HappensBefore()
    hb.add("a", "b")
    hb.add("b", "a")
    cycle = hb.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]


def test_diamond_is_acyclic():
    hb = HappensBefore()
    hb.add("a", "b")
    hb.add("a", "c")
    hb.add("b", "d")
    hb.add("c", "d")
    assert hb.is_consistent


def test_long_cycle_detected():
    hb = HappensBefore()
    hb.add_chain(["a", "b", "c", "d", "e"])
    hb.add("e", "b")
    cycle = hb.find_cycle()
    assert cycle is not None
    members = set(cycle)
    assert {"b", "c", "d", "e"} <= members
    assert "a" not in members


def test_edges_carry_labels():
    hb = HappensBefore()
    hb.add("x", "y", "why")
    assert ("x", "y", "why") in hb.edges()


def test_fig1_cycle_exists_iff_stale_read():
    """The paper's Section I argument: a stale read of A closes the
    W(A) -> W(B) -> PIMop -> W(A) cycle."""
    broken = fig1_happens_before(stale_read_of_a=True)
    cycle = broken.find_cycle()
    assert cycle is not None
    assert set(cycle) >= {"W(A)", "W(B)", "PIMop"}
    assert fig1_happens_before(stale_read_of_a=False).is_consistent
