"""Happens-before graphs and the Fig. 1 cycle argument."""

from repro.core.ordering import HappensBefore, fig1_happens_before


def test_acyclic_chain_is_consistent():
    hb = HappensBefore()
    hb.add_chain(["a", "b", "c", "d"])
    assert hb.is_consistent
    assert hb.find_cycle() is None


def test_simple_cycle_detected():
    hb = HappensBefore()
    hb.add("a", "b")
    hb.add("b", "a")
    cycle = hb.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]


def test_diamond_is_acyclic():
    hb = HappensBefore()
    hb.add("a", "b")
    hb.add("a", "c")
    hb.add("b", "d")
    hb.add("c", "d")
    assert hb.is_consistent


def test_long_cycle_detected():
    hb = HappensBefore()
    hb.add_chain(["a", "b", "c", "d", "e"])
    hb.add("e", "b")
    cycle = hb.find_cycle()
    assert cycle is not None
    members = set(cycle)
    assert {"b", "c", "d", "e"} <= members
    assert "a" not in members


def test_multiple_disjoint_cycles_each_detectable():
    """With two independent cycles, find_cycle returns a real one, and
    the graph stays inconsistent until *both* are gone."""
    hb = HappensBefore()
    hb.add("a", "b")
    hb.add("b", "a")
    hb.add("x", "y")
    hb.add("y", "x")
    cycle = hb.find_cycle()
    assert cycle is not None and cycle[0] == cycle[-1]
    members = set(cycle)
    assert members <= {"a", "b"} or members <= {"x", "y"}

    # Removing one cycle by rebuilding without it still flags the other.
    rest = HappensBefore()
    for src, dst, label in hb.edges():
        if {src, dst} != set(members):
            rest.add(src, dst, label)
    other = rest.find_cycle()
    assert other is not None
    assert set(other).isdisjoint(members)


def test_overlapping_cycles_share_a_node():
    """Two cycles through one shared node: the reported cycle must be a
    genuine closed walk along recorded edges."""
    hb = HappensBefore()
    hb.add_chain(["a", "b", "a"])   # cycle 1: a-b
    hb.add_chain(["a", "c", "a"])   # cycle 2: a-c, sharing a
    cycle = hb.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    edges = {(src, dst) for src, dst, _ in hb.edges()}
    for src, dst in zip(cycle, cycle[1:]):
        assert (src, dst) in edges


def test_self_loop_is_a_cycle():
    hb = HappensBefore()
    hb.add("n", "n")
    cycle = hb.find_cycle()
    assert cycle is not None
    assert set(cycle) == {"n"}
    assert not hb.is_consistent


def test_edges_carry_labels():
    hb = HappensBefore()
    hb.add("x", "y", "why")
    assert ("x", "y", "why") in hb.edges()


def test_fig1_cycle_exists_iff_stale_read():
    """The paper's Section I argument: a stale read of A closes the
    W(A) -> W(B) -> PIMop -> W(A) cycle."""
    broken = fig1_happens_before(stale_read_of_a=True)
    cycle = broken.find_cycle()
    assert cycle is not None
    assert set(cycle) >= {"W(A)", "W(B)", "PIMop"}
    assert fig1_happens_before(stale_read_of_a=False).is_consistent
