"""Scope partition and address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.core.scope import Scope, ScopeMap

BASE = 1 << 34
SIZE = 2 << 20


def test_scope_ranges_are_disjoint_and_cover():
    smap = ScopeMap(BASE, SIZE, 8)
    scopes = list(smap.scopes())
    assert len(scopes) == 8
    for a, b in zip(scopes, scopes[1:]):
        assert a.limit == b.base
    assert scopes[0].base == BASE
    assert scopes[-1].limit == smap.pim_limit


def test_scope_of_boundaries():
    smap = ScopeMap(BASE, SIZE, 4)
    assert smap.scope_id_of(BASE) == 0
    assert smap.scope_id_of(BASE + SIZE - 1) == 0
    assert smap.scope_id_of(BASE + SIZE) == 1
    assert smap.scope_id_of(BASE - 1) is None
    assert smap.scope_id_of(smap.pim_limit) is None


def test_non_pim_memory_has_no_scope():
    smap = ScopeMap(BASE, SIZE, 4)
    assert not smap.is_pim(0x1000)
    assert smap.scope_of(0x1000) is None


def test_scope_contains_and_offset():
    s = Scope(3, 100, 200)
    assert s.size == 100
    assert s.contains(150) and not s.contains(200)
    assert s.offset_of(150) == 50
    with pytest.raises(ValueError):
        s.offset_of(200)


def test_invalid_geometry():
    with pytest.raises(ValueError):
        ScopeMap(BASE, 3 << 20, 4)  # not a power of two
    with pytest.raises(ValueError):
        ScopeMap(BASE + 1, SIZE, 4)  # unaligned base
    with pytest.raises(ValueError):
        ScopeMap(BASE, SIZE, 0)


def test_scope_id_out_of_range():
    smap = ScopeMap(BASE, SIZE, 4)
    with pytest.raises(ValueError):
        smap.scope(4)


@given(st.integers(min_value=0, max_value=(8 * SIZE) - 1))
def test_mapping_roundtrip(offset):
    """Every PIM address maps to the scope whose range contains it."""
    smap = ScopeMap(BASE, SIZE, 8)
    addr = BASE + offset
    sid = smap.scope_id_of(addr)
    scope = smap.scope(sid)
    assert scope.contains(addr)
    assert scope.offset_of(addr) == offset - sid * SIZE
