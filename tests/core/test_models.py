"""Table I: the consistency models' reordering rules."""

import pytest

from repro.core.memops import MemOp, OpKind
from repro.core.models import MODEL_PROPERTIES, ConsistencyModel, properties_of

SCOPE_A, SCOPE_B = 1, 2


def _pim(index, scope=SCOPE_A):
    return MemOp(OpKind.PIM_OP, 0, index, scope=scope)


def _load(index, scope=SCOPE_A):
    return MemOp(OpKind.LOAD, 0, index, address=0x1000 * (scope or 99), scope=scope)


def _store(index, scope=SCOPE_A):
    return MemOp(OpKind.STORE, 0, index, address=0x1000 * (scope or 99), scope=scope)


def _fence(index, kind=OpKind.MEM_FENCE, scope=None):
    return MemOp(kind, 0, index, scope=scope)


def props(model):
    return properties_of(model)


# ---------------------------------------------------------------------- #
# per-model reordering matrices
# ---------------------------------------------------------------------- #

def test_atomic_forbids_all_reordering():
    p = props(ConsistencyModel.ATOMIC)
    assert not p.may_reorder(_pim(0), _load(1))
    assert not p.may_reorder(_load(0), _pim(1))
    assert not p.may_reorder(_pim(0), _load(1, scope=SCOPE_B))
    assert not p.may_reorder(_pim(0), _store(1, scope=SCOPE_B))
    assert not p.may_reorder(_pim(0), _pim(1, scope=SCOPE_B))


def test_store_model_orders_like_tso_stores():
    p = props(ConsistencyModel.STORE)
    # a later load to another scope may bypass the PIM op (TSO)
    assert p.may_reorder(_pim(0), _load(1, scope=SCOPE_B))
    # ... but not to the same scope (overlapping address range)
    assert not p.may_reorder(_pim(0), _load(1, scope=SCOPE_A))
    # a PIM op (a store) never bypasses an earlier load or store
    assert not p.may_reorder(_load(0, scope=SCOPE_B), _pim(1))
    assert not p.may_reorder(_store(0, scope=SCOPE_B), _pim(1))
    # store-store order: PIM ops do not reorder with each other
    assert not p.may_reorder(_pim(0), _pim(1, scope=SCOPE_B))


def test_scope_model_orders_only_same_scope():
    p = props(ConsistencyModel.SCOPE)
    assert p.may_reorder(_pim(0), _load(1, scope=SCOPE_B))
    assert p.may_reorder(_load(0, scope=SCOPE_B), _pim(1))
    assert p.may_reorder(_pim(0), _pim(1, scope=SCOPE_B))
    assert not p.may_reorder(_pim(0), _load(1, scope=SCOPE_A))
    assert not p.may_reorder(_pim(0, SCOPE_A), _pim(1, SCOPE_A))


def test_scope_relaxed_allows_everything_but_fences():
    p = props(ConsistencyModel.SCOPE_RELAXED)
    assert p.may_reorder(_pim(0), _load(1, scope=SCOPE_A))
    assert p.may_reorder(_load(0, scope=SCOPE_A), _pim(1))
    assert p.may_reorder(_pim(0), _pim(1, scope=SCOPE_A))
    # a MemFence does NOT order PIM ops under scope-relaxed
    assert p.may_reorder(_pim(0), _fence(1))
    # dedicated fences do
    assert not p.may_reorder(_pim(0), _fence(1, OpKind.PIM_FENCE))
    # the scope-fence orders only its own scope
    assert not p.may_reorder(_pim(0, SCOPE_A), _fence(1, OpKind.SCOPE_FENCE, SCOPE_A))
    assert p.may_reorder(_pim(0, SCOPE_A), _fence(1, OpKind.SCOPE_FENCE, SCOPE_B))


def test_mem_fence_orders_pim_in_strict_models():
    for model in (ConsistencyModel.ATOMIC, ConsistencyModel.STORE,
                  ConsistencyModel.SCOPE):
        assert not props(model).may_reorder(_pim(0), _fence(1))


def test_baselines_enforce_nothing():
    for model in (ConsistencyModel.NAIVE, ConsistencyModel.SW_FLUSH):
        p = props(model)
        assert p.may_reorder(_pim(0), _load(1, scope=SCOPE_A))
        assert not p.guarantees_correctness


def test_host_tso_rules_for_non_pim_pairs():
    p = props(ConsistencyModel.ATOMIC)
    st0, ld1 = _store(0, SCOPE_B), _load(1, scope=SCOPE_A)
    assert p.may_reorder(st0, ld1)  # TSO store -> later load
    assert not p.may_reorder(_load(0), _store(1))
    same = MemOp(OpKind.LOAD, 0, 1, address=_store(0).address, scope=SCOPE_A)
    assert not p.may_reorder(_store(0), same)  # same address


def test_reorder_requires_same_thread():
    p = props(ConsistencyModel.ATOMIC)
    other = MemOp(OpKind.LOAD, 1, 0, address=4, scope=None)
    with pytest.raises(ValueError):
        p.may_reorder(_pim(0), other)


# ---------------------------------------------------------------------- #
# Table I rows and static properties
# ---------------------------------------------------------------------- #

def test_table1_rows():
    rows = {m: props(m).table_row() for m in ConsistencyModel if m.is_proposed}
    assert rows[ConsistencyModel.ATOMIC]["PIM Op Allowed Reordering"] == "None"
    assert rows[ConsistencyModel.STORE]["Additional Fence Required"] == "No"
    assert (rows[ConsistencyModel.SCOPE]["PIM Op Allowed Reordering"]
            == "All operations to other scopes")
    assert rows[ConsistencyModel.SCOPE_RELAXED]["Scope Buffer & SBV"] == "All caches"
    for model, row in rows.items():
        if model is not ConsistencyModel.SCOPE_RELAXED:
            assert row["Scope Buffer & SBV"] == "Only LLC"


def test_proposed_models_guarantee_correctness():
    for model in ConsistencyModel:
        p = props(model)
        if model.is_proposed or model is ConsistencyModel.UNCACHEABLE:
            assert p.guarantees_correctness, model
        elif model in (ConsistencyModel.NAIVE, ConsistencyModel.SW_FLUSH):
            assert not p.guarantees_correctness, model


def test_only_atomic_blocks_commit():
    for model in ConsistencyModel:
        assert props(model).blocks_commit == (model is ConsistencyModel.ATOMIC)


def test_flush_at_llc_matches_proposed_models():
    for model in ConsistencyModel:
        assert props(model).flushes_at_llc == model.is_proposed


def test_all_models_have_properties():
    assert set(MODEL_PROPERTIES) == set(ConsistencyModel)
