"""The operational litmus executor and the Fig. 1 violation."""

from repro.core.litmus import (
    A, A0, A1, B, B0, B1,
    LitmusExecutor,
    LitmusProgram,
    fig1_program,
    fig1_violation,
    fig1_violation_reachable,
)
from repro.core.memops import MemOp, OpKind


def test_fig1_violation_reachable_under_software_flush():
    """Section I: explicit flushes cannot make the PIM op atomic; a
    prefetch between the flush and the PIM op re-caches stale data."""
    assert fig1_violation_reachable(flush_atomic=False)


def test_fig1_violation_impossible_with_atomic_flush():
    """Section IV: coupling the scope flush to the PIM op closes the
    window; no interleaving reaches the cyclic outcome."""
    assert not fig1_violation_reachable(flush_atomic=True)


def test_fig1_without_prefetcher_is_safe_even_with_sw_flush():
    """The violation requires the nondeterministic re-fetch (Fig. 1,
    step 5): with no prefetcher the flushes happen to suffice -- which
    is exactly why the bug is easy to miss."""
    executor = LitmusExecutor(fig1_program(), flush_atomic=False,
                              prefetch_budget=0)
    assert not executor.reachable(fig1_violation)


def test_pim_result_visible_after_atomic_op():
    """A reader that sees B1 must also see A1 under atomic flush."""
    executor = LitmusExecutor(fig1_program(), flush_atomic=True)

    def b_new_but_a_old(outcome):
        return outcome.get((1, 1)) == B1 and outcome.get((1, 2)) == A0

    assert not executor.reachable(b_new_but_a_old)


def test_all_fig1_outcomes_without_pim_are_coherent():
    """Sanity: before the PIM op, reads see the writes or the initial
    zero, never made-up values."""
    executor = LitmusExecutor(fig1_program(), flush_atomic=True)
    for outcome in executor.outcomes():
        values = {(t, i): v for t, i, v in outcome}
        assert values[(1, 0)] in (0, B0, B1)
        assert values[(1, 2)] in (0, A0, A1)


def test_read_own_write_through_cache():
    t0 = [
        MemOp(OpKind.STORE, 0, 0, address=A, value=7),
        MemOp(OpKind.LOAD, 0, 1, address=A),
    ]
    program = LitmusProgram.build([t0], scope_addresses=[A])
    executor = LitmusExecutor(program, flush_atomic=True)
    for outcome in executor.outcomes():
        values = {(t, i): v for t, i, v in outcome}
        assert values[(0, 1)] == 7


def test_dirty_data_survives_pim_flush():
    """An atomic scope flush writes dirty lines back before executing,
    so the PIM op computes on the latest store."""
    t0 = [
        MemOp(OpKind.STORE, 0, 0, address=A, value=5),
        MemOp(OpKind.PIM_OP, 0, 1, scope=0),
        MemOp(OpKind.LOAD, 0, 2, address=A),
    ]
    program = LitmusProgram.build([t0], scope_addresses=[A],
                                  pim_function=lambda addr, v: v * 10)
    executor = LitmusExecutor(program, flush_atomic=True, prefetch_budget=0)
    outcomes = executor.outcomes()
    assert all(dict(((t, i), v) for t, i, v in o)[(0, 2)] == 50 for o in outcomes)


def test_sw_flush_pim_misses_dirty_cached_data():
    """Without the atomic flush, a PIM op can run on memory while the
    latest store still sits dirty in the cache -- the lost-update flavor
    of the same coherency break."""
    t0 = [
        MemOp(OpKind.STORE, 0, 0, address=A, value=5),
        MemOp(OpKind.PIM_OP, 0, 1, scope=0),
    ]
    program = LitmusProgram.build([t0], scope_addresses=[A],
                                  pim_function=lambda addr, v: v * 10)
    executor = LitmusExecutor(program, flush_atomic=False, prefetch_budget=0)
    # PIM computed 0 * 10; the store's 5 never reached memory.
    outcomes = executor.outcomes()
    assert outcomes  # terminal states exist; inspect memory via reads:
    # (no reads in this program; reachability asserted via a follow-up read)
    t0_with_read = t0 + [
        MemOp(OpKind.FLUSH, 0, 2, address=A),
        MemOp(OpKind.LOAD, 0, 3, address=A),
    ]
    program2 = LitmusProgram.build([t0_with_read], scope_addresses=[A],
                                   pim_function=lambda addr, v: v * 10)
    executor2 = LitmusExecutor(program2, flush_atomic=False, prefetch_budget=0)
    # The flush after the PIM op pushes the stale 5 over the result.
    assert executor2.reachable(lambda o: o[(0, 3)] == 5)
