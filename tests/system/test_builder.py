"""System assembly and the barrier."""

import pytest

from repro.core.models import ConsistencyModel
from repro.host.program import ThreadOp, ThreadProgram
from repro.sim.config import SystemConfig
from repro.system.builder import Barrier, System


def test_builder_wires_components():
    system = System(SystemConfig.scaled_default(num_scopes=4))
    cfg = system.config
    assert len(system.cores) == cfg.cores.num_cores
    assert len(system.l1s) == cfg.cores.num_cores
    assert system.llc.l1s is system.l1s
    assert system.mc.pim_module is system.pim_module
    assert system.pim_module.mc is system.mc


def test_l1_scope_buffers_only_under_scope_relaxed():
    relaxed = System(SystemConfig.scaled_default(
        model=ConsistencyModel.SCOPE_RELAXED, num_scopes=4))
    strict = System(SystemConfig.scaled_default(
        model=ConsistencyModel.ATOMIC, num_scopes=4))
    assert all(l1.scope_buffer is not None for l1 in relaxed.l1s)
    assert all(l1.sbv is not None for l1 in relaxed.l1s)
    assert all(l1.scope_buffer is None for l1 in strict.l1s)


def test_pim_execution_bumps_result_versions():
    system = System(SystemConfig.scaled_default(num_scopes=4))
    lines = [system.scope_map.scope(0).limit - 64 * (i + 1) for i in range(2)]
    system.register_pim_result_lines(0, lines)
    prog = ThreadProgram("t", [ThreadOp.pim_op(0), ThreadOp.pim_fence()])
    system.load_programs([prog])
    system.run(max_events=1_000_000)
    # run() returns when the core is done; execution may lag -- drain:
    system.sim.run()
    assert system.pim_execution_counts[0] == 1
    assert all(system.memory.read(a) == 1 for a in lines)


def test_run_without_programs_raises_cleanly():
    """run() before load_programs() must not die with an AttributeError
    on the lazily-created active-core list."""
    system = System(SystemConfig.scaled_default(num_scopes=4))
    with pytest.raises(RuntimeError, match="no programs loaded"):
        system.run()


def test_run_detects_stuck_cores():
    system = System(SystemConfig.scaled_default(num_scopes=4))
    # a barrier with a second program that never arrives
    prog = ThreadProgram("t", [ThreadOp.barrier()])
    prog2 = ThreadProgram("t2", [ThreadOp.compute(5)])
    system.load_programs([prog, prog2])
    # thread 2 finishes; thread 1 waits forever at the barrier
    with pytest.raises(RuntimeError, match="stuck"):
        system.run(max_events=1_000_000)


def test_barrier_releases_all_at_once():
    released = []

    class FakeCore:
        def __init__(self, name):
            self.name = name

        def release_barrier(self):
            released.append(self.name)

    barrier = Barrier(3)
    barrier.arrive(FakeCore("a"))
    barrier.arrive(FakeCore("b"))
    assert not released
    barrier.arrive(FakeCore("c"))
    assert sorted(released) == ["a", "b", "c"]
    assert barrier.crossings == 1


def test_too_many_programs_rejected():
    system = System(SystemConfig.scaled_default(num_scopes=4))
    programs = [ThreadProgram(f"t{i}", [ThreadOp.compute(1)]) for i in range(99)]
    with pytest.raises(ValueError):
        system.load_programs(programs)


def test_zero_logic_overrides_everything():
    cfg = SystemConfig.scaled_default(num_scopes=4).with_pim(zero_logic=True)
    system = System(cfg)
    system.pim_op_latency_override = 5000
    from repro.sim.messages import Message, MessageType
    msg = Message(MessageType.PIM_OP, scope=0)
    assert system._pim_latency(msg) == 0
