"""End-to-end runs: the paper's correctness claims as executable tests.

These run the full stack (cores -> caches -> network -> MC -> PIM module)
on a small YCSB workload under every model and check the *correctness*
results the paper argues for:

* the four proposed models and the uncacheable baseline never observe a
  stale PIM result;
* the naive baseline does;
* the scope-buffer statistics behave as Section VII describes.
"""

import pytest

from dataclasses import asdict

from repro.api import Experiment, Runner
from repro.core.models import ConsistencyModel
from repro.sim.config import SystemConfig
from repro.workloads.ycsb import YcsbParams

PARAMS = YcsbParams(num_records=8000, num_ops=30, threads=4, seed=11)
NUM_SCOPES = 4

#: Session-wide runner: its spec-hash cache memoizes the per-model runs.
_runner = Runner()


def _experiment(model):
    return Experiment(
        workload="ycsb",
        config=SystemConfig.scaled_default(model=model,
                                           num_scopes=NUM_SCOPES),
        params=asdict(PARAMS),
        max_events=50_000_000,
    )


def _run(model):
    return _runner.run(_experiment(model))


@pytest.mark.parametrize("model", [
    ConsistencyModel.ATOMIC,
    ConsistencyModel.STORE,
    ConsistencyModel.SCOPE,
    ConsistencyModel.SCOPE_RELAXED,
    ConsistencyModel.UNCACHEABLE,
])
def test_correct_models_never_read_stale(model):
    assert _run(model).stale_reads == 0


def test_naive_baseline_reads_stale():
    """No coherency action at all: cached result bitmaps go stale the
    moment the next PIM op executes."""
    assert _run(ConsistencyModel.NAIVE).stale_reads > 0


def test_all_models_issue_the_same_pim_work():
    """Every model runs the same operation trace, so the cores issue an
    identical number of PIM ops (executions may trail the run's end)."""
    issued = {}
    for m in ConsistencyModel:
        res = _run(m)
        issued[m] = sum(core.pim_ops for core in res.cores)
    assert len(set(issued.values())) == 1
    assert all(res > 0 for res in issued.values())


def test_proposed_models_share_scope_buffer_hit_rate():
    """Fig. 9: the first PIM op per scope per computation misses, the
    rest hit -- identically across the proposed models."""
    rates = [
        _run(m).scope_buffer_hit_rate
        for m in (ConsistencyModel.ATOMIC, ConsistencyModel.STORE,
                  ConsistencyModel.SCOPE)
    ]
    assert max(rates) - min(rates) < 0.02
    expected = (PARAMS.pim_ops_per_scan - 1) / PARAMS.pim_ops_per_scan
    assert rates[0] == pytest.approx(expected, abs=0.05)


def test_sbv_skips_most_sets():
    """Fig. 10d: scans visit only the SBV-marked subset of sets."""
    res = _run(ConsistencyModel.ATOMIC)
    assert res.sbv_skip_ratio > 0.7


def test_scan_latency_below_full_scan():
    res = _run(ConsistencyModel.ATOMIC)
    full_scan = res.config.llc.num_sets * res.config.llc.scan_cycles_per_set
    assert 0 < res.llc_scan_latency < full_scan


def test_run_time_ordering_naive_fastest_or_close():
    """The overhead of guaranteeing correctness is bounded (the paper
    reports at most ~6%; we allow a generous band for the miniature)."""
    naive = _run(ConsistencyModel.NAIVE).run_time
    for model in (ConsistencyModel.ATOMIC, ConsistencyModel.STORE,
                  ConsistencyModel.SCOPE, ConsistencyModel.SCOPE_RELAXED):
        assert _run(model).run_time <= naive * 1.6, model


def test_uncacheable_is_much_slower():
    """Fig. 3: the uncacheable approach pays heavily for losing the
    cache on result reads."""
    naive = _run(ConsistencyModel.NAIVE).run_time
    assert _run(ConsistencyModel.UNCACHEABLE).run_time > naive * 1.3


def test_deterministic_replay():
    # Fresh uncached runners: both calls really simulate.
    exp = _experiment(ConsistencyModel.SCOPE)
    a = Runner(cache=False).run(exp)
    b = Runner(cache=False).run(exp)
    assert a.run_time == b.run_time
    assert a.events == b.events


def test_result_properties_exposed():
    res = _run(ConsistencyModel.ATOMIC)
    assert res.model_name == "atomic"
    assert res.run_time > 0
    assert res.pim_buffer_mean_len >= 0
    assert res.pim_unique_scopes >= 0
    assert "llc" in res.stats and "pim" in res.stats
