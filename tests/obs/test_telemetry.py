"""Telemetry JSONL: writer durability, tolerant reads, live follow."""

import json
import os

from repro.obs.telemetry import (
    TelemetryWriter,
    follow_telemetry,
    format_event,
    read_telemetry,
    telemetry_path,
)


def test_writer_reader_round_trip(tmp_path):
    root = str(tmp_path)
    writer = TelemetryWriter(root, "w-1")
    writer.emit("claim", shard="0000", points=4)
    writer.emit("point", spec="abc123", status="ok")
    writer.close()
    records = read_telemetry(root)
    assert [r["event"] for r in records] == ["claim", "point"]
    assert records[0]["who"] == "w-1"
    assert records[0]["shard"] == "0000"
    assert isinstance(records[0]["ts"], float)


def test_reader_skips_torn_and_foreign_lines(tmp_path):
    root = str(tmp_path)
    TelemetryWriter(root, "w").emit("finish", shard="0001")
    with open(telemetry_path(root), "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps(["a", "list"]) + "\n")
        handle.write('{"torn": ')  # unterminated tail
    records = read_telemetry(root)
    assert [r["event"] for r in records] == ["finish"]


def test_read_last_n(tmp_path):
    root = str(tmp_path)
    writer = TelemetryWriter(root, "w")
    for i in range(10):
        writer.emit("heartbeat", n=i)
    assert [r["n"] for r in read_telemetry(root, last=3)] == [7, 8, 9]
    assert read_telemetry(str(tmp_path / "nowhere")) == []


def test_writer_survives_unwritable_path(tmp_path):
    # telemetry is observability, not protocol: a dead disk must not
    # raise into the worker loop
    blocked = tmp_path / "blocked"
    blocked.write_text("a file where the store dir should be")
    writer = TelemetryWriter(str(blocked), "w")
    writer.emit("claim", shard="0000")  # must not raise
    assert writer._dead


def test_format_event_layout():
    line = format_event({"ts": 0.0, "event": "claim", "who": "w-1",
                         "shard": "0000", "points": 4})
    assert "claim" in line and "w-1" in line
    assert "points=4" in line and "shard=0000" in line
    assert format_event({}).endswith("?")


def test_follow_yields_whole_lines_only(tmp_path):
    root = str(tmp_path)
    writer = TelemetryWriter(root, "w")
    writer.emit("claim", shard="0000")
    with open(telemetry_path(root), "a", encoding="utf-8") as handle:
        handle.write('{"event": "torn", "who": "w"')  # no newline yet
    records = list(follow_telemetry(root, poll_s=0.01, stop_after_s=0.05))
    assert [r["event"] for r in records] == ["claim"]


def test_follow_start_at_end_skips_the_backlog(tmp_path):
    import threading
    import time

    root = str(tmp_path)
    writer = TelemetryWriter(root, "w")
    writer.emit("claim", shard="0000")  # backlog: must NOT be yielded

    events = []
    started = threading.Event()

    def consume():
        started.set()
        for record in follow_telemetry(root, poll_s=0.01,
                                       stop_after_s=0.5,
                                       start_at_end=True):
            events.append(record["event"])

    thread = threading.Thread(target=consume)
    thread.start()
    started.wait()
    time.sleep(0.1)  # let the follower snapshot its end-of-file offset
    writer.emit("finish", shard="0000")
    thread.join()
    assert events == ["finish"]


def test_follow_restarts_after_truncation(tmp_path):
    root = str(tmp_path)
    writer = TelemetryWriter(root, "w")
    writer.emit("claim", shard="0000")
    writer.emit("start", shard="0000")
    writer.close()

    seen = []
    follower = follow_telemetry(root, poll_s=0.01, stop_after_s=0.3)
    for record in follower:
        seen.append(record["event"])
        if seen == ["claim", "start"]:
            # rotate: truncate and write something new
            os.truncate(telemetry_path(root), 0)
            fresh = TelemetryWriter(root, "w2")
            fresh.emit("publish", run="r2")
            fresh.close()
        if "publish" in seen:
            break
    assert seen == ["claim", "start", "publish"]
