"""Trace neutrality: tracing on or off, results are byte-identical.

This is the observability layer's hard constraint.  The specs and
pinned digests here mirror ``tests/api/test_default_digests.py``
exactly -- but every run executes under a full trace overlay (event
ring + flight recorder armed).  If a trace hook ever schedules an
event, consumes pooled-message state, or perturbs a queue decision,
these digests move and this file fails before any baseline silently
re-pins.
"""

import pytest

from repro.api.backends import execute_experiment
from repro.api.experiment import Experiment
from repro.sim.config import TraceConfig
from repro.system.simulation import result_digest
# tests/ is on sys.path (tests/conftest.py), so the pinned digests are
# imported from the untraced gate rather than duplicated here.
from api.test_default_digests import (
    _LITMUS_DIGEST,
    _TPCH_DIGEST,
    _YCSB_DIGESTS,
)

#: Full-fat tracing: event ring on, flight recorder armed.
TRACE = TraceConfig(enabled=True, ring_size=4096, flight=True)


def _traced_digest(spec):
    res = execute_experiment(Experiment.from_dict(spec), trace=TRACE)
    assert res.obs is not None  # tracing actually ran
    return result_digest({
        "run_time": res.run_time,
        "events": res.events,
        "stale_reads": res.stale_reads,
        "stats": res.stats,
    })


@pytest.mark.parametrize("model", sorted(_YCSB_DIGESTS))
def test_ycsb_digests_unchanged_under_tracing(model):
    digest = _traced_digest({
        "workload": "ycsb",
        "params": {"num_records": 8000, "num_ops": 10, "threads": 4,
                   "seed": 11},
        "config": {"preset": "scaled", "model": model, "num_scopes": 4},
        "variant": "digest-gate",
        "max_events": 50_000_000,
    })
    assert digest == _YCSB_DIGESTS[model]


def test_tpch_digest_unchanged_under_tracing():
    digest = _traced_digest({
        "workload": "tpch",
        "params": {"query": "q6", "scale": 0.015625},
        "config": {"preset": "scaled", "model": "scope", "num_scopes": 32},
        "variant": "digest-gate",
    })
    assert digest == _TPCH_DIGEST


def test_litmus_digest_unchanged_under_tracing():
    digest = _traced_digest({
        "workload": "litmus",
        "params": {"rounds": 10, "threads": 4},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 4},
        "variant": "digest-gate",
    })
    assert digest == _LITMUS_DIGEST


def test_trace_overlay_leaves_the_spec_hash_alone():
    spec = {
        "workload": "litmus",
        "params": {"rounds": 2, "threads": 2},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 2},
        "variant": "obs",
    }
    bare = Experiment.from_dict(spec)
    # an explicit default TraceConfig serializes to nothing: same hash
    explicit = Experiment.from_dict(spec)
    assert "trace" not in explicit.to_dict()["config"]
    assert bare.spec_hash() == explicit.spec_hash()


def test_obs_payload_rides_only_on_traced_results():
    spec = {
        "workload": "litmus",
        "params": {"rounds": 2, "threads": 2},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 2},
        "variant": "obs",
        "max_events": 10_000_000,
    }
    untraced = execute_experiment(Experiment.from_dict(spec))
    traced = execute_experiment(Experiment.from_dict(spec), trace=TRACE)
    assert untraced.obs is None
    assert "obs" not in untraced.to_dict()
    assert traced.obs["schema"] == "repro-obs/1"
    assert traced.obs["kernel"]["cycles"] > 0
    assert traced.to_dict()["obs"] == traced.obs
    # identical simulated behavior either way
    assert (untraced.run_time, untraced.events, untraced.stale_reads,
            untraced.stats) == (traced.run_time, traced.events,
                                traced.stale_reads, traced.stats)


def test_traced_config_round_trips_through_dict():
    from repro.sim.config import config_from_dict, config_to_dict

    bare = Experiment.from_dict({
        "workload": "litmus", "params": {},
        "config": {"preset": "scaled", "model": "atomic",
                   "num_scopes": 2},
    })
    traced = bare.config.with_trace(enabled=True, ring_size=4096,
                                    flight=True)
    serialized = config_to_dict(traced)
    assert serialized["trace"] == {"enabled": True, "ring_size": 4096,
                                   "flight": True}
    assert config_from_dict(serialized).trace == TRACE
    # and the default section vanishes, keeping pre-obs spec hashes
    assert "trace" not in config_to_dict(bare.config)
