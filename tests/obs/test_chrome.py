"""Chrome trace-event export and its CI schema validator."""

import pytest

from repro.obs.chrome import chrome_trace, validate_chrome_trace


def _obs(events):
    return {"schema": "repro-obs/1", "events": events,
            "events_recorded": len(events), "events_dropped": 0}


def test_export_validates_and_builds_tracks_and_flows():
    obs = _obs([
        [10, "entry0", "READ", 1],
        [12, "l1-0", "GETS", 1],
        [20, "mc", "FILL", 1],
        [11, "entry1", "WRITE", 2],  # single-hop request: no flow
    ])
    trace = chrome_trace(obs)
    counts = validate_chrome_trace(trace)
    # one process_name + three thread_name... (entry0, l1-0, mc, entry1)
    assert counts["M"] == 5
    assert counts["X"] == 4
    # op 1 has 3 hops: one 's', one 't', one 'f'; op 2 has none
    assert counts["s"] == 1 and counts["t"] == 1 and counts["f"] == 1
    names = {e["args"]["name"] for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert names == {"entry0", "l1-0", "mc", "entry1"}
    # slice durations run hop-to-hop; the last hop is a unit slice
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"
              and e["args"]["op_id"] == 1]
    assert [s["dur"] for s in slices] == [2, 8, 1]


def test_export_rejects_an_eventless_payload():
    with pytest.raises(ValueError, match="no event records"):
        chrome_trace({"schema": "repro-obs/1", "stalls": {}})
    with pytest.raises(ValueError, match="no event records"):
        chrome_trace(_obs([]))


def test_validator_rejects_malformed_traces():
    good = chrome_trace(_obs([[1, "a", "K", 1], [2, "b", "K", 1]]))
    validate_chrome_trace(good)

    with pytest.raises(ValueError, match="not a JSON object"):
        validate_chrome_trace([])
    with pytest.raises(ValueError, match="traceEvents missing"):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ValueError, match="unknown ph"):
        validate_chrome_trace({"traceEvents": [
            {"ph": "B", "pid": 0, "tid": 0, "name": "x", "ts": 1}]})
    with pytest.raises(ValueError, match="positive dur"):
        validate_chrome_trace({"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 1,
             "dur": 0}]})
    # a flow event floating off any slice is the defect Perfetto
    # silently drops -- the validator must catch it loudly
    with pytest.raises(ValueError, match="not anchored"):
        validate_chrome_trace({"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 1,
             "dur": 1},
            {"ph": "s", "pid": 0, "tid": 0, "name": "r", "ts": 99,
             "id": 1}]})


def test_export_is_deterministic():
    import json

    events = [[c, f"comp{c % 3}", "K", c % 5] for c in range(50)]
    a = json.dumps(chrome_trace(_obs(events)), sort_keys=True)
    b = json.dumps(chrome_trace(_obs(events)), sort_keys=True)
    assert a == b
