"""The Tracer: ring bounding, stalls, kernel tallies, export shape."""

import pytest

from repro.obs.trace import OBS_SCHEMA, STALL_REASONS, Tracer, stall_totals


def test_ring_bounds_and_counts_drops():
    tracer = Tracer(ring_size=4)
    for i in range(10):
        tracer.record(i, "core0", "READ", i)
    assert tracer.appended == 10
    assert tracer.events_dropped == 6
    assert [r[0] for r in tracer.ring] == [6, 7, 8, 9]  # oldest fell off


def test_ring_size_zero_disables_event_records():
    tracer = Tracer(ring_size=0)
    assert tracer.ring is None
    assert not tracer.recording
    assert tracer.events_dropped == 0
    # stall attribution still works without a ring
    bucket = tracer.stall_bucket("mc")
    bucket["pim_busy"] = bucket.get("pim_busy", 0) + 3
    out = tracer.export()
    assert "events" not in out
    assert out["stalls"] == {"mc": {"pim_busy": 3}}


def test_stall_buckets_are_shared_and_mutable():
    tracer = Tracer(ring_size=0)
    assert tracer.stall_bucket("l1-0") is tracer.stall_bucket("l1-0")
    tracer.stall_bucket("l1-0")["mshr_full"] = 2
    tracer.stall_bucket("l1-1")  # untouched bucket stays out of export
    assert tracer.export()["stalls"] == {"l1-0": {"mshr_full": 2}}


def test_kernel_tally_accumulates_per_tier():
    tracer = Tracer(ring_size=0)
    tracer.kernel_tally(3, 2, 1)
    tracer.kernel_tally(1, 0, 0)
    out = tracer.export()["kernel"]
    assert out == {"cycles": 2, "ring_events": 4, "wheel_events": 2,
                   "heap_events": 1}


def test_export_schema_and_event_fields():
    tracer = Tracer(ring_size=8)
    tracer.record(5, "llc", "GETS", 42)
    out = tracer.export()
    assert out["schema"] == OBS_SCHEMA
    assert out["events"] == [[5, "llc", "GETS", 42]]
    assert out["events_recorded"] == 1
    assert out["events_dropped"] == 0
    assert "flight" not in out and "flight_triggers" not in out


def test_flight_snapshot_is_first_trigger_only():
    tracer = Tracer(ring_size=8, flight=True)
    tracer.record(1, "core0", "READ", 7)
    tracer.flight_trigger("stale_read", 9, "core0", 7)
    tracer.record(2, "core0", "READ", 8)  # after the snapshot
    tracer.flight_trigger("stale_read", 11, "core0", 8)
    out = tracer.export()
    assert out["flight_triggers"] == 2
    assert out["flight"]["trigger"] == "stale_read"
    assert out["flight"]["cycle"] == 9
    assert out["flight"]["events"] == [[1, "core0", "READ", 7]]


def test_unarmed_tracer_counts_triggers_without_snapshot():
    tracer = Tracer(ring_size=8, flight=False)
    tracer.flight_trigger("stale_read", 1, "core0", 1)
    out = tracer.export()
    assert out["flight_triggers"] == 1
    assert "flight" not in out


def test_stall_totals_sums_across_components():
    obs = {"stalls": {"mc": {"pim_busy": 3}, "l1-0": {"mshr_full": 2},
                      "l1-1": {"mshr_full": 5, "pim_busy": 1}}}
    assert stall_totals(obs) == {"mshr_full": 7, "pim_busy": 4}
    assert stall_totals({}) == {}


def test_stall_taxonomy_is_stable():
    # docs/observability.md documents these names; renaming one is a
    # breaking change for stored obs payloads and the report tables.
    assert STALL_REASONS == ("mshr_full", "admission_wait",
                            "admission_shed", "fence_wait", "pim_busy",
                            "crossbar_contention")


def test_negative_ring_size_rejected_by_config():
    from repro.sim.config import TraceConfig

    with pytest.raises(ValueError):
        TraceConfig(enabled=True, ring_size=-1)
    with pytest.raises(ValueError):
        TraceConfig(enabled=False, flight=True)
