"""The repro logger hierarchy: level precedence, idempotent setup."""

import logging

import pytest

from repro.obs.logconf import LOG_ENV, configure_logging, resolve_level


def _repro_handlers():
    return [h for h in logging.getLogger("repro").handlers
            if getattr(h, "_repro_handler", False)]


@pytest.fixture(autouse=True)
def _clean_logger(monkeypatch):
    monkeypatch.delenv(LOG_ENV, raising=False)
    logger = logging.getLogger("repro")
    saved = (logger.level, list(logger.handlers), logger.propagate)
    yield
    logger.setLevel(saved[0])
    logger.handlers[:] = saved[1]
    logger.propagate = saved[2]


def test_resolve_level_precedence(monkeypatch):
    assert resolve_level(None, default="warning") == logging.WARNING
    monkeypatch.setenv(LOG_ENV, "debug")
    assert resolve_level(None, default="warning") == logging.DEBUG
    # an explicit flag beats the environment
    assert resolve_level("error", default="warning") == logging.ERROR


def test_resolve_level_rejects_unknown_names(monkeypatch):
    with pytest.raises(ValueError, match="log level"):
        resolve_level("loud")
    monkeypatch.setenv(LOG_ENV, "silent")
    with pytest.raises(ValueError, match="log level"):
        resolve_level(None)


def test_configure_is_idempotent_and_scoped():
    root_handlers = list(logging.getLogger().handlers)
    configure_logging("info")
    configure_logging("debug")
    assert len(_repro_handlers()) == 1  # no handler stacking
    logger = logging.getLogger("repro")
    assert logger.level == logging.DEBUG  # re-tuned by the second call
    assert logger.propagate is False
    # never touches the root logger
    assert logging.getLogger().handlers == root_handlers


def test_child_loggers_inherit_the_level():
    configure_logging("debug")
    assert logging.getLogger("repro.api.workqueue").isEnabledFor(
        logging.DEBUG)
    configure_logging("error")
    assert not logging.getLogger("repro.api.workqueue").isEnabledFor(
        logging.WARNING)
