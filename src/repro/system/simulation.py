"""Run harness: execute a compiled workload and collect the paper's stats.

A *workload* object must provide::

    compile(system) -> list[ThreadProgram]   # also registers result lines

:func:`run_workload` builds the system, compiles, runs, and returns a
:class:`SimulationResult` holding the run time and every statistic the
evaluation figures need (scope-buffer hit rate, LLC scan latency, SBV
skip ratio, PIM buffer occupancy, stale reads, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.config import SystemConfig
from repro.system.builder import System


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run."""

    config: SystemConfig
    run_time: int
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    stale_reads: int = 0
    events: int = 0

    @property
    def model_name(self) -> str:
        return self.config.model.value

    # -- the paper's headline statistics -------------------------------- #

    @property
    def scope_buffer_hit_rate(self) -> float:
        """Fig. 9: LLC scope-buffer hit rate."""
        return self.stats["llc"].get("hit_rate", 0.0)

    @property
    def llc_scan_latency(self) -> float:
        """Fig. 10c: mean LLC scan latency (scope-buffer hits count as 0)."""
        return self.stats["llc"].get("scan_latency", 0.0)

    @property
    def sbv_skip_ratio(self) -> float:
        """Fig. 10d: mean ratio of LLC sets skipped during a scan."""
        return self.stats["llc"].get("skipped_set_ratio", 0.0)

    @property
    def pim_buffer_mean_len(self) -> float:
        """Fig. 10a: mean PIM-module buffer length at op arrival."""
        return self.stats["pim"].get("buffer_len_at_arrival", 0.0)

    @property
    def pim_unique_scopes(self) -> float:
        """Fig. 10b: mean unique scopes in the PIM buffer at op arrival."""
        return self.stats["pim"].get("unique_scopes_at_arrival", 0.0)

    @property
    def pim_ops_executed(self) -> int:
        return int(self.stats["pim"].get("ops_executed", 0))


def run_workload(
    config: SystemConfig,
    workload,
    max_events: Optional[int] = None,
) -> SimulationResult:
    """Build a system, compile and run ``workload`` on it."""
    system = System(config)
    programs = workload.compile(system)
    system.load_programs(programs)
    run_time = system.run(max_events=max_events)
    return collect_result(system, run_time)


def collect_result(system: System, run_time: int) -> SimulationResult:
    """Snapshot a finished system's statistics."""
    stats: Dict[str, Dict[str, float]] = {
        "llc": system.llc.stats.as_dict(),
        "mc": system.mc.stats.as_dict(),
        "pim": system.pim_module.stats.as_dict(),
    }
    for l1 in system.l1s:
        stats[l1.name] = l1.stats.as_dict()
    for core in system.cores:
        stats[core.name] = core.stats.as_dict()
    return SimulationResult(
        config=system.config,
        run_time=run_time,
        stats=stats,
        stale_reads=system.total_stale_reads,
        events=system.sim.events_executed,
    )
