"""Run harness: execute a compiled workload and collect the paper's stats.

A *workload* object must provide::

    compile(system) -> list[ThreadProgram]   # also registers result lines

:func:`run_workload` builds the system, compiles, runs, and returns a
:class:`SimulationResult` holding the run time and every statistic the
evaluation figures need (scope-buffer hit rate, LLC scan latency, SBV
skip ratio, PIM buffer occupancy, stale reads, ...).

.. note::
   :mod:`repro.api` is the canonical front door for running experiments:
   ``Runner().run(Experiment(...))`` replaces direct ``run_workload``
   calls and adds workload registration, spec-hash caching and parallel
   backends.  ``run_workload`` remains as the single-run engine the
   backends execute (and as a compatibility shim for older callers).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.sim.config import SystemConfig, config_from_dict, config_to_dict
from repro.sim.stats import StatGroup, StatsView
from repro.system.builder import System

#: Schema tag of the serialized :class:`SimulationResult` form.  Bump it
#: whenever the dict shape changes incompatibly: deserialization rejects
#: any other tagged version, which is what keeps an on-disk result store
#: from silently serving records written by an older format.
RESULT_SCHEMA = "repro-simulation-result/1"


def result_digest(payload: Mapping[str, object]) -> str:
    """Canonical SHA-256 of one serialized result payload.

    The digest is computed over the sorted, separator-normalized JSON
    encoding, so it is independent of dict ordering, whitespace and the
    machine that produced it; the result store verifies it on every read.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run.

    Statistics are exposed two ways:

    * **typed views** -- ``result.llc``, ``result.pim``, ``result.mc``
      and the per-core/per-L1 accessors return :class:`StatsView`
      namespaces (``result.llc.hit_rate``, ``result.pim.ops_executed``,
      ``result.core(0).pim_ops``); a statistic or component the run
      never recorded reads as ``0.0``;
    * **the raw dict** -- ``result.stats`` keeps the string-keyed
      snapshot for serialization and older callers.
    """

    config: SystemConfig
    run_time: int
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    stale_reads: int = 0
    events: int = 0
    #: Observability side channel (``Tracer.export()`` payload) -- only
    #: present when the run traced.  Deliberately *not* part of any
    #: result digest: campaign digests, perf fingerprints and the
    #: pinned default digests all hash the simulation outputs above,
    #: so tracing on or off leaves them byte-identical.
    obs: Optional[Dict[str, object]] = None

    @property
    def model_name(self) -> str:
        return self.config.model.value

    # -- typed stat views ------------------------------------------------ #

    def group(self, name: str) -> StatsView:
        """The named component's statistics (empty view if absent)."""
        return StatsView(name, self.stats.get(name))

    @property
    def llc(self) -> StatsView:
        return self.group("llc")

    @property
    def mc(self) -> StatsView:
        return self.group("mc")

    @property
    def pim(self) -> StatsView:
        return self.group("pim")

    @property
    def traffic(self) -> StatsView:
        """Merged open-loop traffic stats (empty under the closed loop).

        ``result.traffic.latency_p99``, ``.req_dropped``, ... -- the
        per-core histograms merged into one distribution plus summed
        admission counters (see ``repro.traffic``).
        """
        return self.group("traffic")

    def core(self, core_id: int) -> StatsView:
        return self.group(f"core.{core_id}")

    def l1(self, core_id: int) -> StatsView:
        return self.group(f"l1.{core_id}")

    @property
    def cores(self) -> List[StatsView]:
        """Per-core views, ordered by core id."""
        ids = sorted(int(name.split(".", 1)[1]) for name in self.stats
                     if name.startswith("core."))
        return [self.core(i) for i in ids]

    # -- the paper's headline statistics (shims over the typed views) --- #

    @property
    def scope_buffer_hit_rate(self) -> float:
        """Fig. 9: LLC scope-buffer hit rate."""
        return self.llc.hit_rate

    @property
    def llc_scan_latency(self) -> float:
        """Fig. 10c: mean LLC scan latency (scope-buffer hits count as 0)."""
        return self.llc.scan_latency

    @property
    def sbv_skip_ratio(self) -> float:
        """Fig. 10d: mean ratio of LLC sets skipped during a scan."""
        return self.llc.skipped_set_ratio

    @property
    def pim_buffer_mean_len(self) -> float:
        """Fig. 10a: mean PIM-module buffer length at op arrival."""
        return self.pim.buffer_len_at_arrival

    @property
    def pim_unique_scopes(self) -> float:
        """Fig. 10b: mean unique scopes in the PIM buffer at op arrival."""
        return self.pim.unique_scopes_at_arrival

    @property
    def pim_ops_executed(self) -> int:
        return int(self.pim.ops_executed)

    # -- versioned dict round trip (stdlib JSON, no pickle) -------------- #

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe snapshot that :meth:`from_dict` restores exactly.

        Covers every field a consumer reads: the full system config, the
        run time, all stats groups (including the per-core and per-L1
        views, which live in ``stats`` under their component names), the
        stale-read count and the event count.
        """
        data: Dict[str, object] = {
            "schema": RESULT_SCHEMA,
            "config": config_to_dict(self.config),
            "run_time": self.run_time,
            "stats": self.stats,
            "stale_reads": self.stale_reads,
            "events": self.events,
        }
        if self.obs is not None:
            data["obs"] = self.obs
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimulationResult":
        """Rebuild a result from its :meth:`to_dict` form.

        An explicit ``schema`` tag other than :data:`RESULT_SCHEMA` is
        rejected; a missing tag is accepted for campaign artifacts
        written before the tag existed.
        """
        schema = data.get("schema")
        if schema is not None and schema != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported result schema {schema!r} "
                f"(expected {RESULT_SCHEMA!r})")
        return cls(
            config=config_from_dict(data["config"]),
            run_time=data["run_time"],
            stats={name: dict(group)
                   for name, group in data["stats"].items()},
            stale_reads=data["stale_reads"],
            events=data["events"],
            obs=data.get("obs"),
        )


def run_workload(
    config: SystemConfig,
    workload,
    max_events: Optional[int] = None,
) -> SimulationResult:
    """Build a system, compile and run ``workload`` on it."""
    system = System(config)
    programs = workload.compile(system)
    system.load_programs(programs)
    run_time = system.run(max_events=max_events)
    return collect_result(system, run_time)


def collect_result(system: System, run_time: int) -> SimulationResult:
    """Snapshot a finished system's statistics."""
    stats: Dict[str, Dict[str, float]] = {
        "llc": system.llc.stats.as_dict(),
        "mc": system.mc.stats.as_dict(),
        "pim": system.pim_module.stats.as_dict(),
    }
    for l1 in system.l1s:
        stats[l1.name] = l1.stats.as_dict()
    for core in system.cores:
        stats[core.name] = core.stats.as_dict()
    if system.traffic_sources:
        # Merge the per-core admission queues into one "traffic" group:
        # histograms merge exactly (bucket-count addition), counters sum.
        merged = StatGroup("traffic")
        latency = merged.histogram("latency")
        depth = merged.histogram("queue_depth")
        offered = merged.counter("req_offered")
        admitted = merged.counter("req_admitted")
        dropped = merged.counter("req_dropped")
        completed = merged.counter("req_completed")
        for source in system.traffic_sources:
            latency.merge(source.latency)
            depth.merge(source.queue_depth)
            offered.value += source.offered
            admitted.value += source.admitted
            dropped.value += source.dropped
            completed.value += source.completed
        stats["traffic"] = merged.as_dict()
    tracer = getattr(system, "tracer", None)
    return SimulationResult(
        config=system.config,
        run_time=run_time,
        stats=stats,
        stale_reads=system.total_stale_reads,
        events=system.sim.events_executed,
        obs=tracer.export() if tracer is not None else None,
    )
