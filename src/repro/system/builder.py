"""Builds the simulated system of Fig. 5.

::

    core --> entry point --> L1 --+
    core --> entry point --> L1 --+--> request network --> LLC --> mem
                                                           link --> MC --> PIM module
                                                                       '--> DRAM
    responses:  MC / LLC --> response network --> dispatcher --> reply_to

The builder also owns the pieces the components share: the scope map, the
version-tagged memory image, the per-scope PIM version counters (bumped
when the PIM module executes an op -- the stale-read detector's ground
truth), and the barrier controller used by multi-threaded workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.models import ConsistencyModel
from repro.core.scope import ScopeMap
from repro.host.core import Core
from repro.host.entry_point import EntryPoint
from repro.host.policies import IssuePolicy
from repro.host.program import ThreadOpKind, ThreadProgram
from repro.memory.l1 import L1Cache
from repro.memory.llc import LastLevelCache
from repro.memory.memory_controller import MemoryController
from repro.memory.versioned import VersionedMemory
from repro.obs.trace import Tracer
from repro.pim.module import PimModule
from repro.sim.component import Link, ResponseDispatcher
from repro.sim.config import SystemConfig
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.traffic import AdmissionQueue, arrival_times


class Barrier:
    """Releases all participating cores once every one has arrived."""

    def __init__(self, participants: int) -> None:
        self.participants = participants
        self._arrived: List[Core] = []
        self.crossings = 0

    def arrive(self, core: Core) -> None:
        self._arrived.append(core)
        if len(self._arrived) >= self.participants:
            waiting, self._arrived = self._arrived, []
            self.crossings += 1
            for c in waiting:
                c.release_barrier()


class System:
    """A fully wired simulated machine."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.sim = Simulator()
        # Fresh op-id sequence and message pool per system: experiments
        # in one process (and forked pool workers) must be byte-identical.
        self.sim.reset_ids()
        self.policy = IssuePolicy(config.model)
        self.scope_map = ScopeMap(
            pim_base=config.pim_base,
            scope_bytes=config.scope_bytes,
            num_scopes=config.num_scopes,
        )
        self.memory = VersionedMemory(config.llc.line_bytes)

        # Response path: anything below the L1s answers through here.
        self._dispatcher = ResponseDispatcher(self.sim, "resp-dispatch")
        self.resp_net = Link(
            self.sim, "resp-net", self._dispatcher,
            latency=config.network.latency,
            service_interval=config.network.service_interval,
            capacity=None,
        )

        # Memory side.
        self.mc = MemoryController(
            self.sim, "mc", config.memory, self.memory, self.resp_net
        )
        self.pim_module = PimModule(
            self.sim, "pim", config.pim,
            memory=self.memory,
            resp_net=self.resp_net,
            access_latency=config.memory.dram_latency,
            latency_fn=self._pim_latency,
            on_execute=self._on_pim_execute,
            result_lines_fn=self._result_lines_of,
        )
        self.pim_module.mc = self.mc
        self.mc.pim_module = self.pim_module

        mem_link = Link(self.sim, "mem-link", self.mc, latency=6, capacity=8)
        # MSHR knobs: an explicit entry count selects the size *and*
        # turns the mshr_* statistics on; None keeps the level's legacy
        # default file silent, which is what keeps default-config result
        # digests byte-identical.
        llc_mshr = config.llc.mshr_entries
        self.llc = LastLevelCache(
            self.sim, "llc", config.llc, config.llc_scope_buffer,
            self.scope_map, mem_link, self.resp_net,
            mshr_count=64 if llc_mshr is None else llc_mshr,
            coalescing=config.llc.coalescing,
            emit_mshr_stats=llc_mshr is not None or not config.llc.coalescing,
            scope_buffer_enabled=config.scope_buffer_enabled,
            sbv_enabled=config.sbv_enabled,
        )
        self.req_net = Link(
            self.sim, "req-net", self.llc,
            latency=config.network.latency,
            service_interval=config.network.service_interval,
            capacity=config.network.queue_capacity,
        )

        # Core side.
        scope_relaxed = config.model is ConsistencyModel.SCOPE_RELAXED
        self.l1s: List[L1Cache] = []
        self.entry_points: List[EntryPoint] = []
        self.cores: List[Core] = []
        self.barrier: Optional[Barrier] = None
        self._active_cores: List[Core] = []
        #: Per-core admission queues (open-loop traffic only; empty for
        #: the closed loop, which is what keeps snapshots key-stable).
        self.traffic_sources: List[AdmissionQueue] = []
        #: Active cores whose ``done`` has not yet fired (run loop stop).
        self._unfinished = 0
        l1_mshr = config.l1.mshr_entries
        for core_id in range(config.cores.num_cores):
            l1 = L1Cache(
                self.sim, f"l1.{core_id}", core_id, config.l1,
                self.scope_map, self.req_net,
                scope_buffer_cfg=config.l1_scope_buffer if scope_relaxed else None,
                mshr_count=8 if l1_mshr is None else l1_mshr,
                coalescing=config.l1.coalescing,
                emit_mshr_stats=l1_mshr is not None or not config.l1.coalescing,
            )
            ep = EntryPoint(
                self.sim, f"ep.{core_id}", core_id, self.policy, l1,
                self.req_net, depth=config.cores.entry_point_depth,
            )
            core = Core(
                self.sim, f"core.{core_id}", core_id, self.policy, ep,
                max_outstanding_loads=config.cores.max_outstanding_loads,
                barrier_cb=self._barrier_arrive,
                done_cb=self._core_finished,
            )
            self.l1s.append(l1)
            self.entry_points.append(ep)
            self.cores.append(core)
        self.llc.l1s = self.l1s

        # PIM result-line registry: scope id -> line addresses a PIM op
        # rewrites, and the per-scope executed-op counter that defines the
        # version its results carry.
        self._result_lines: Dict[int, Sequence[int]] = {}
        self._result_line_sets: Dict[int, frozenset] = {}
        self.pim_execution_counts: Dict[int, int] = {}
        #: Optional per-op latency override: scope -> host cycles.
        self.pim_latency_by_scope: Dict[int, int] = {}
        #: Workload-provided default PIM op latency (host cycles), e.g.
        #: derived from compiled microcode lengths; ``None`` falls back to
        #: the config value.  ``zero_logic`` overrides both (Fig. 11b).
        self.pim_op_latency_override: Optional[int] = None

        #: Observability: one Tracer per traced run, else None.  Stall
        #: buckets attach whenever tracing is enabled (they're cheap);
        #: event-record hooks only when a ring is configured.  Tracing
        #: never touches simulation state, so results are byte-identical
        #: either way.
        self.tracer: Optional[Tracer] = None
        if config.trace.enabled:
            self.tracer = tracer = Tracer(
                ring_size=config.trace.ring_size,
                flight=config.trace.flight,
            )
            self.sim._trace = tracer
            self.mc._stalls = tracer.stall_bucket(self.mc.name)
            self.pim_module._stalls = tracer.stall_bucket(
                self.pim_module.name)
            self.llc._stalls = tracer.stall_bucket(self.llc.name)
            for l1 in self.l1s:
                l1._stalls = tracer.stall_bucket(l1.name)
            for core in self.cores:
                core._stalls = tracer.stall_bucket(core.name)
            if tracer.recording:
                for component in (self.mc, self.pim_module, self.llc,
                                  self.resp_net, self.req_net, mem_link,
                                  *self.l1s, *self.entry_points,
                                  *self.cores):
                    component._trace = tracer

    # ------------------------------------------------------------------ #
    # PIM execution effects
    # ------------------------------------------------------------------ #

    def register_pim_result_lines(self, scope_id: int, line_addrs: Sequence[int]) -> None:
        """Declare which lines PIM ops to ``scope_id`` rewrite."""
        self._result_lines[scope_id] = list(line_addrs)
        self._result_line_sets[scope_id] = frozenset(a & ~63 for a in line_addrs)

    def _result_lines_of(self, scope_id: int) -> frozenset:
        return self._result_line_sets.get(scope_id, frozenset())

    def _on_pim_execute(self, msg: Message) -> None:
        scope = msg.scope
        count = self.pim_execution_counts.get(scope, 0) + 1
        self.pim_execution_counts[scope] = count
        lines = self._result_lines.get(scope)
        if lines:
            self.memory.bump_lines(lines, count)

    def _pim_latency(self, msg: Message) -> int:
        if self.config.pim.zero_logic:
            return 0
        override = self.pim_latency_by_scope.get(msg.scope)
        if override is not None:
            return override
        if self.pim_op_latency_override is not None:
            return self.pim_op_latency_override
        return self.config.pim.op_latency

    # ------------------------------------------------------------------ #
    # running programs
    # ------------------------------------------------------------------ #

    def _barrier_arrive(self, core: Core) -> None:
        if self.barrier is None:
            raise RuntimeError("barrier reached but no program set loaded")
        self.barrier.arrive(core)

    def load_programs(self, programs: Sequence[ThreadProgram]) -> None:
        """Assign programs to cores 0..n-1 and set up the barrier."""
        if len(programs) > len(self.cores):
            raise ValueError("more programs than cores")
        self.barrier = Barrier(len(programs))
        self._active_cores = []
        traffic = self.config.traffic
        for core, program in zip(self.cores, programs):
            if traffic.open:
                requests = program.count(ThreadOpKind.ARRIVE)
                if requests == 0:
                    raise ValueError(
                        f"open-loop traffic ({traffic.arrival!r}) needs a "
                        f"workload that emits admission requests; "
                        f"{program.name!r} has none"
                    )
                # The schedule is seeded per run, not per core: one
                # client stream fans out to every shard, so all cores
                # share one arrival array (shard-level admission).
                core.traffic = source = AdmissionQueue(
                    arrival_times(traffic, requests),
                    traffic.queue_depth, core.stats,
                )
                self.traffic_sources.append(source)
            core.run_program(program)
            self._active_cores.append(core)

    def _core_finished(self, core: Core) -> None:
        """A core's ``done`` just turned true: count down toward the stop.

        Replaces the old ``stop_when=lambda: all(c.done ...)`` predicate
        the kernel had to re-evaluate after *every* event -- the cores
        notify once each instead, and the last one flips the kernel's
        stop flag from inside its own event, which stops the run at
        exactly the same cycle the polling version did.
        """
        self._unfinished -= 1
        if self._unfinished <= 0:
            self.sim.stop()

    def run(self, max_events: Optional[int] = None) -> int:
        """Run to completion of all loaded programs; returns the cycle."""
        if not self._active_cores:
            raise RuntimeError(
                "no programs loaded: call load_programs() before run()"
            )
        active = self._active_cores
        unfinished = 0
        for core in active:
            if core.done:
                core._done_notified = True
            else:
                unfinished += 1
        self._unfinished = unfinished
        if unfinished:
            self.sim.run(max_events=max_events)
        if not all(c.done for c in active):
            stuck = [c.name for c in active if not c.done]
            raise RuntimeError(
                f"simulation drained its event queue with cores stuck: {stuck} "
                f"(cycle {self.sim.now})"
            )
        return self.sim.now

    # ------------------------------------------------------------------ #

    @property
    def total_stale_reads(self) -> int:
        return sum(c.stale_reads for c in self.cores)
