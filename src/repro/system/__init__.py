"""System assembly and the simulation harness.

* :mod:`repro.system.builder` -- wires cores, entry points, L1s, network,
  LLC, memory controller and PIM module per a
  :class:`~repro.sim.config.SystemConfig` (the Fig. 5 system).
* :mod:`repro.system.simulation` -- runs compiled workloads, collects the
  statistics behind every figure, and reports stale reads.
"""

from repro.system.builder import System
from repro.system.simulation import SimulationResult, run_workload

__all__ = ["System", "SimulationResult", "run_workload"]
