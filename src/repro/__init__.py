"""Reproduction of "On Consistency for Bulk-Bitwise Processing-in-Memory".

Perach, Ronen & Kvatinsky, HPCA 2023 (arXiv:2211.07542).

Package map:

* :mod:`repro.api` -- the canonical front door: declarative
  :class:`Experiment` specs, the workload registry, the Runner with
  serial/process-pool backends, typed results, and the ``repro-bench``
  CLI.
* :mod:`repro.core` -- the paper's contribution: the four consistency
  models, scopes, ordering theory, and the Fig. 1 litmus checker.
* :mod:`repro.pim` -- the bulk-bitwise PIM substrate, functional (MAGIC
  crossbars, microcode, database engine) and timing (the PIM module).
* :mod:`repro.memory` -- caches, MESI, the scope buffer and SBV, the
  memory controller.
* :mod:`repro.host` -- cores and the per-model issue machinery.
* :mod:`repro.sim` -- the discrete-event kernel and configuration.
* :mod:`repro.workloads` -- YCSB and TPC-H generators.
* :mod:`repro.system` -- system assembly and the run harness.
* :mod:`repro.analysis` -- area model and report formatting.
"""

__version__ = "1.0.0"
