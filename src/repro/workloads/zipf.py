"""YCSB's Zipfian generator.

A faithful port of the generator used by the YCSB client [7]: item
popularity follows a Zipf distribution with parameter ``theta`` (0.99 by
default), computed with the incremental zeta recurrence so the item count
can be large.  The scan *base record* in Table III is drawn from this
distribution.
"""

from __future__ import annotations

import math
import random
from typing import Optional


class ZipfianGenerator:
    """Draws integers in ``[0, items)`` with Zipfian popularity.

    >>> gen = ZipfianGenerator(1000, seed=42)
    >>> all(0 <= gen.next() < 1000 for _ in range(100))
    True
    """

    ZIPFIAN_CONSTANT = 0.99

    def __init__(self, items: int, theta: float = ZIPFIAN_CONSTANT,
                 seed: Optional[int] = None) -> None:
        if items <= 0:
            raise ValueError("need at least one item")
        self.items = items
        self.theta = theta
        self._rng = random.Random(seed)
        self._zeta = self._compute_zeta(items, theta)
        self._alpha = 1.0 / (1.0 - theta)
        zeta2 = self._compute_zeta(2, theta)
        self._eta = (1 - (2.0 / items) ** (1 - theta)) / (1 - zeta2 / self._zeta)

    @staticmethod
    def _compute_zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        """The next Zipfian-distributed value (0 is the most popular)."""
        u = self._rng.random()
        uz = u * self._zeta
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.items * (self._eta * u - self._eta + 1) ** self._alpha)

    def probability(self, rank: int) -> float:
        """Analytic popularity of the item with the given rank (0-based)."""
        if not 0 <= rank < self.items:
            raise ValueError("rank out of range")
        return (1.0 / (rank + 1) ** self.theta) / self._zeta
