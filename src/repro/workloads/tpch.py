"""TPC-H queries on bulk-bitwise PIM (Table IV, following PIMDB [25]).

Each evaluated query runs only its *PIM section*: either filtering the
involved relations (filter-only) or the whole query (full-query, when a
single relation is involved), after which the host reads the results.
Table IV gives each query's scope count; the per-query PIM-section shape
(ops per scope, op length, result volume) is synthesized from the paper's
Section VII description:

* q2, q12, q19 have "more and longer PIM ops per scope relative to other
  filter-only queries";
* q1, q6 (full-queries) have a substantially longer PIM section and fewer
  results to read;
* q14, q15, q20 have "a few PIM ops per scope and a relatively short PIM
  execution time per scope".

Queries 9, 13 and 18 have no PIM section and are not evaluated.

Each query is run ten times consecutively (Section VI-B).  Scope counts
can be scaled down (``scale``) for pure-Python sweeps; the per-thread
ratios that drive the models' relative behaviour are preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api.registry import register_workload
from repro.pim.database import FieldSpec, RecordSchema
from repro.pim.latency import scan_op_latency
from repro.system.builder import System
from repro.workloads.base import (
    DatabaseLayout,
    ProgramEmitter,
    Workload,
    partition_scopes,
    scaled_pim_latency,
)


@dataclass(frozen=True)
class TpchQuerySpec:
    """One query's PIM section."""

    name: str
    #: Table IV scope count.
    scopes: int
    #: "Filter only" / "Full-query" / "Full sub-query" per Table IV.
    section: str
    #: PIM ops issued per scope per run.
    pim_ops_per_scope: int
    #: Multiplier on the base PIM op latency ("longer PIM ops").
    op_latency_factor: float
    #: Fraction of each scope's result bitmap the host reads (full
    #: queries aggregate in-memory and leave little to read).
    result_read_fraction: float


def _filter(name: str, scopes: int, ops: int = 2, latency: float = 1.0,
            reads: float = 1.0) -> TpchQuerySpec:
    return TpchQuerySpec(name, scopes, "Filter only", ops, latency, reads)


def _full(name: str, scopes: int, section: str = "Full-query") -> TpchQuerySpec:
    return TpchQuerySpec(name, scopes, section, pim_ops_per_scope=12,
                         op_latency_factor=1.5, result_read_fraction=0.1)


#: Table IV: scope counts and PIM-section types of the evaluated queries.
TPCH_QUERIES: Dict[str, TpchQuerySpec] = {
    spec.name: spec
    for spec in [
        _full("q1", 1832),
        _filter("q2", 66, ops=6, latency=2.0),
        _filter("q3", 2336),
        _filter("q4", 2290),
        _filter("q5", 508),
        _full("q6", 1832),
        _filter("q7", 1882),
        _filter("q8", 566),
        _filter("q10", 2290),
        _filter("q11", 4),
        _filter("q12", 1832, ops=5, latency=2.0),
        _filter("q14", 1832, ops=1, latency=0.5),
        _filter("q15", 1832, ops=1, latency=0.5),
        _filter("q16", 62),
        _filter("q17", 62),
        _filter("q19", 1894, ops=6, latency=2.0),
        _filter("q20", 2294, ops=1, latency=0.5),
        _filter("q21", 1832),
        _full("q22", 46, section="Full sub-query"),
    ]
}


def tpch_schema() -> RecordSchema:
    """A lineitem-like schema: 32-bit key plus four 32-bit attributes."""
    fields = [FieldSpec(name, 32) for name in
              ("quantity", "price", "discount", "shipdate")]
    return RecordSchema(key_bits=32, fields=fields)


@register_workload
class TpchWorkload(Workload):
    """Compiles one TPC-H query's PIM section (x10 runs)."""

    name = "tpch"

    def __init__(self, query: str, scale: float = 1.0, runs: int = 10,
                 threads: int = 4) -> None:
        if query not in TPCH_QUERIES:
            raise KeyError(f"query {query!r} is not evaluated (Table IV)")
        self.spec = TPCH_QUERIES[query]
        self.scale = scale
        self.runs = runs
        self.threads = threads

    @property
    def params(self) -> Dict[str, object]:
        return {"query": self.spec.name, "scale": self.scale,
                "runs": self.runs, "threads": self.threads}

    def scaled_scopes(self) -> int:
        """The scope count after scaling (at least one per thread)."""
        return max(self.threads, math.ceil(self.spec.scopes * self.scale))

    def compile(self, system: System):
        spec = self.spec
        num_scopes = system.config.num_scopes
        if num_scopes < self.scaled_scopes():
            raise ValueError(
                f"{spec.name} needs {self.scaled_scopes()} scopes, "
                f"system has {num_scopes}"
            )
        schema = tpch_schema()
        layout = DatabaseLayout(
            system.scope_map, schema, system.config.records_per_scope
        )
        layout.register_result_lines(system)
        base_latency = scaled_pim_latency(scan_op_latency(schema), system)
        system.pim_op_latency_override = max(
            1, round(base_latency * spec.op_latency_factor)
        )

        counts: Dict[int, int] = {}
        scope_sets = partition_scopes(self.scaled_scopes(), self.threads)
        emitters = [
            ProgramEmitter(system, f"{spec.name}.t{t}", counts)
            for t in range(self.threads)
        ]
        for _ in range(self.runs):
            for t, em in enumerate(emitters):
                for sid in scope_sets[t]:
                    em.pim_group(sid, spec.pim_ops_per_scope,
                                 sw_flush_lines=layout.bitmap_lines(sid))
            for t, em in enumerate(emitters):
                for sid in scope_sets[t]:
                    self._read_results(em, layout, sid, spec)
        for em in emitters:
            em.barrier()  # join: run time is the slowest thread's finish
        return [em.program for em in emitters]

    def _read_results(self, em: ProgramEmitter, layout: DatabaseLayout,
                      scope_id: int, spec: TpchQuerySpec) -> None:
        lines = layout.bitmap_lines(scope_id)
        keep = max(1, round(len(lines) * spec.result_read_fraction))
        expect = em.pim_issue_counts.get(scope_id, 0)
        for line in lines[:keep]:
            em.load(line, expect_version=expect)
