"""Generated litmus scenarios as runnable timing workloads.

The second synchronized form of a :class:`~repro.fuzz.program.FuzzProgram`
(the first is the abstract rendering the model checkers execute): the
same per-thread op streams compiled onto the full timing simulator
through :class:`~repro.workloads.base.ProgramEmitter`, which inserts the
active model's discipline -- SW-Flush clflushes, scope-relaxed
scope-fences, uncacheable bypass flags -- exactly as the hand-written
``litmus`` workload does.

Mapping rules:

* scope ``s``, slot ``i`` lands on line ``scope(s).base + i *
  line_bytes``; every slot of a PIM scope is registered as a PIM result
  line, so the scope's PIM op bumps their versions (matching the
  abstract machine, whose PIM function rewrites every scope address);
* ``flush`` ops accumulate into the owning PIM op's ``sw_flush_lines``
  (the emitter renders them only under SW-Flush); flushes in a scope
  with no PIM op are dropped -- pure software-flush discipline with
  nothing to order against;
* a load expects the PIM version *its own thread* has issued program-
  order-before it (cross-thread counts carry no ordering guarantee, so
  expecting them would flag correct executions).  Under every
  correctness-guaranteeing model these expectations hold -- the
  simulator/checker-agreement invariant the fuzz harness gates on --
  while Naive re-serves pre-PIM lines cached by earlier loads and
  reports stale reads.

``rounds`` replays the whole scenario; expectations accumulate across
rounds (round ``r``'s post-PIM reads expect version ``r``).  The
abstract form corresponds to ``rounds=1``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.api.registry import register_workload
from repro.fuzz.program import FuzzProgram
from repro.host.program import ThreadProgram
from repro.system.builder import System
from repro.workloads.base import ProgramEmitter, Workload


@register_workload
class FuzzLitmusWorkload(Workload):
    """One generated litmus scenario on the timing stack.

    Args:
        spec: a :meth:`FuzzProgram.to_dict` document (validated on
            construction, so a bad spec fails before any simulation).
        rounds: whole-scenario repetitions.
    """

    name = "litmus-fuzz"

    def __init__(self, spec: Mapping[str, object], rounds: int = 1) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.fuzz_program = FuzzProgram.from_dict(spec)
        self.spec = self.fuzz_program.to_dict()
        self.rounds = rounds

    @property
    def params(self) -> Dict[str, object]:
        return {"spec": self.spec, "rounds": self.rounds}

    def compile(self, system: System) -> List[ThreadProgram]:
        program = self.fuzz_program
        num_scopes = len(program.slots)
        if system.config.num_scopes < num_scopes:
            raise ValueError(
                f"litmus-fuzz program uses {num_scopes} scopes; the "
                f"system has {system.config.num_scopes}")
        line_bytes = system.config.llc.line_bytes
        for scope_id, slots in enumerate(program.slots):
            scope = system.scope_map.scope(scope_id)
            if slots * line_bytes > scope.size:
                raise ValueError(
                    f"scope {scope_id} needs {slots} line slots; "
                    f"{scope.size} bytes hold "
                    f"{scope.size // line_bytes}")

        def line(scope_id: int, index: int) -> int:
            return system.scope_map.scope(scope_id).base + index * line_bytes

        for scope_id in program.pim_scopes():
            system.register_pim_result_lines(
                scope_id,
                [line(scope_id, index)
                 for index in range(program.slots[scope_id])])

        counts: Dict[int, int] = {}
        emitters = [
            ProgramEmitter(system, f"litmus-fuzz.t{tid}", counts)
            for tid in range(len(program.threads))
        ]
        #: PIM versions each thread has itself issued, per scope.
        own_counts: List[Dict[int, int]] = [
            {} for _ in range(len(program.threads))
        ]
        for _ in range(self.rounds):
            for tid, ops in enumerate(program.threads):
                em = emitters[tid]
                pending_flushes: Dict[int, List[int]] = {}
                for op in ops:
                    if op.kind == "load":
                        em.load(line(op.scope, op.index),
                                expect_version=own_counts[tid].get(
                                    op.scope, 0))
                    elif op.kind == "store":
                        em.store(line(op.scope, op.index))
                    elif op.kind == "flush":
                        pending_flushes.setdefault(op.scope, []).append(
                            line(op.scope, op.index))
                    elif op.kind == "fence":
                        em.mem_fence()
                    else:  # pim
                        em.pim_group(
                            op.scope, 1,
                            sw_flush_lines=pending_flushes.pop(
                                op.scope, []))
                        own_counts[tid][op.scope] = counts[op.scope]
        for em in emitters:
            em.barrier()  # join: run time is the slowest thread's finish
        return [em.program for em in emitters]
