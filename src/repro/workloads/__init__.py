"""Workload generators: YCSB short-range scan and TPC-H (Sections VI-B).

* :mod:`repro.workloads.zipf` -- the YCSB Zipfian key-popularity generator.
* :mod:`repro.workloads.base` -- model-aware program-emission helpers
  shared by all database workloads (fence/flush insertion per model).
* :mod:`repro.workloads.ycsb` -- Table III: 1000 operations, 95% scans /
  5% inserts, Zipfian scan base, uniform[1,100] result counts.
* :mod:`repro.workloads.tpch` -- Table IV: the 19 evaluated queries with
  their scope counts and PIM-section types.
"""

from repro.workloads.zipf import ZipfianGenerator
from repro.workloads.ycsb import YcsbParams, YcsbWorkload
from repro.workloads.tpch import TPCH_QUERIES, TpchQuerySpec, TpchWorkload

__all__ = [
    "ZipfianGenerator",
    "YcsbParams",
    "YcsbWorkload",
    "TPCH_QUERIES",
    "TpchQuerySpec",
    "TpchWorkload",
]
