"""Workload generators: YCSB short-range scan and TPC-H (Sections VI-B).

* :mod:`repro.workloads.zipf` -- the YCSB Zipfian key-popularity generator.
* :mod:`repro.workloads.base` -- the :class:`Workload` ABC plus the
  model-aware program-emission helpers shared by all database workloads
  (fence/flush insertion per model).
* :mod:`repro.workloads.ycsb` -- Table III: 1000 operations, 95% scans /
  5% inserts, Zipfian scan base, uniform[1,100] result counts.
* :mod:`repro.workloads.tpch` -- Table IV: the 19 evaluated queries with
  their scope counts and PIM-section types.
* :mod:`repro.workloads.litmus` -- the Fig. 1 pattern as a timing
  workload.
* :mod:`repro.workloads.fuzz` -- generated litmus scenarios
  (:mod:`repro.fuzz`) as timing workloads.

Importing this package registers the built-in workloads (``ycsb``,
``tpch``, ``litmus``, ``litmus-fuzz``) with :mod:`repro.api`'s registry.
"""

from repro.workloads.base import Workload
from repro.workloads.zipf import ZipfianGenerator
from repro.workloads.ycsb import YcsbParams, YcsbWorkload
from repro.workloads.tpch import TPCH_QUERIES, TpchQuerySpec, TpchWorkload
from repro.workloads.litmus import LitmusWorkload
from repro.workloads.fuzz import FuzzLitmusWorkload

__all__ = [
    "Workload",
    "ZipfianGenerator",
    "YcsbParams",
    "YcsbWorkload",
    "TPCH_QUERIES",
    "TpchQuerySpec",
    "TpchWorkload",
    "LitmusWorkload",
    "FuzzLitmusWorkload",
]
