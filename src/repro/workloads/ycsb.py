"""The YCSB short-range-scan workload (Table III).

1000 operations, 95% scans / 5% record insertions, in a random (seeded)
order.  A scan selects records whose key falls in a short range -- base
record Zipfian-distributed, result count uniform in [1, 100] -- and
extracts one 10-byte field from each found record.  Scans run on the PIM:

1. the database's scopes are divided evenly among the worker threads,
2. each thread issues PIM ops performing the scan on each of its scopes,
3. each thread reads the scan result bitmap and the matching records'
   fields from its scopes with ordinary loads.

Insertions are standard stores (Section VI-B).  Keys are assigned
sequentially at insertion and records are placed round-robin across
scopes, so any key range's matches spread evenly over the scopes -- the
paper's "records are randomly distributed" property.

The compiled programs carry stale-read expectations on every result-bitmap
load, so a run doubles as a correctness check of the consistency model.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.registry import register_workload
from repro.pim.database import RecordSchema
from repro.pim.latency import PimLatencyModel, scan_op_latency
from repro.system.builder import System
from repro.workloads.base import (
    DatabaseLayout,
    ProgramEmitter,
    Workload,
    partition_scopes,
    scaled_pim_latency,
)
from repro.workloads.zipf import ZipfianGenerator


@dataclass(frozen=True)
class YcsbParams:
    """Table III parameters (paper values as defaults)."""

    num_records: int
    num_ops: int = 1000
    scan_fraction: float = 0.95
    num_fields: int = 5
    field_bytes: int = 10
    max_scan_records: int = 100
    threads: int = 4
    #: PIM ops per scope per scan.  The fine-grained ISA needs several ops
    #: for a range filter (>=, <, AND, plus result housekeeping); their
    #: temporal locality is what the scope buffer exploits (Section IV-A).
    pim_ops_per_scan: int = 4
    #: Zipfian skew (YCSB's theta) of the scan base-record distribution;
    #: sweep it to move between near-uniform (0.0+) and heavily skewed
    #: (towards 1.0) access patterns.
    zipf_theta: float = ZipfianGenerator.ZIPFIAN_CONSTANT
    seed: int = 7
    #: Inter-operation client think time, host cycles.
    think_cycles: int = 20
    #: Synchronize all threads after every operation.  The paper's threads
    #: work through their scope shares asynchronously (each thread issues
    #: PIM ops and reads results for its own scopes, Section VI-B), which
    #: is what lets operations pipeline through the PIM module; per-op
    #: barriers are only useful for debugging.
    sync_per_op: bool = False


@register_workload
class YcsbWorkload(Workload):
    """Compiles the YCSB operation stream for a given system/model."""

    name = "ycsb"

    def __init__(self, params: YcsbParams) -> None:
        self.spec = params
        self.schema = RecordSchema.ycsb(params.num_fields, params.field_bytes)
        self._operations: Optional[List[Tuple]] = None

    @property
    def params(self) -> Dict[str, object]:
        return asdict(self.spec)

    @classmethod
    def from_params(cls, **params) -> "YcsbWorkload":
        return cls(YcsbParams(**params))

    # ------------------------------------------------------------------ #
    # deterministic operation stream (shared by every model's compile)
    # ------------------------------------------------------------------ #

    def operations(self) -> List[Tuple]:
        """The seeded operation trace: ('scan', lo, hi) | ('insert', row)."""
        if self._operations is not None:
            return self._operations
        p = self.spec
        rng = random.Random(p.seed)
        zipf = ZipfianGenerator(p.num_records, theta=p.zipf_theta,
                                seed=p.seed + 1)
        ops: List[Tuple] = []
        record_count = p.num_records
        for _ in range(p.num_ops):
            if rng.random() < p.scan_fraction:
                base = zipf.next()
                length = rng.randint(1, p.max_scan_records)
                ops.append(("scan", base, min(base + length, record_count)))
            else:
                ops.append(("insert", record_count))
                record_count += 1
        self._operations = ops
        return ops

    def required_scopes(self, records_per_scope: int) -> int:
        """Scopes needed to hold the initial records plus inserts."""
        p = self.spec
        inserts = sum(1 for op in self.operations() if op[0] == "insert")
        return -(-(p.num_records + inserts) // records_per_scope)

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #

    def pim_op_latency(self, latency_model: Optional[PimLatencyModel] = None) -> int:
        """Host-cycle latency of one scan PIM op, from real microcode.

        The scan predicate compiles (once) against this schema's layout;
        its MAGIC cycle count drives the timing model, keeping the
        functional and timing layers consistent.
        """
        return scan_op_latency(self.schema, latency_model)

    def compile(self, system: System):
        p = self.spec
        layout = DatabaseLayout(
            system.scope_map, self.schema, system.config.records_per_scope
        )
        if layout.capacity < p.num_records:
            raise ValueError(
                f"{p.num_records} records need "
                f"{self.required_scopes(system.config.records_per_scope)} scopes; "
                f"system has {layout.num_scopes}"
            )
        layout.register_result_lines(system)
        system.pim_op_latency_override = scaled_pim_latency(
            self.pim_op_latency(), system
        )

        rng = random.Random(p.seed + 2)
        counts: Dict[int, int] = {}
        scope_sets = partition_scopes(layout.num_scopes, p.threads)
        emitters = [
            ProgramEmitter(system, f"ycsb.t{t}", counts) for t in range(p.threads)
        ]
        # Software-known cached lines per scope that must be clflushed
        # before the next PIM op under SW-Flush: the result bitmap (the
        # PIM op rewrites it) and any lines inserts dirtied.
        pending_insert_lines: Dict[int, List[int]] = {}
        field_names = [f.name for f in self.schema.fields]

        # Open loop: every workload operation becomes one request per
        # thread (shard-level admission -- a client op fans out to all
        # shards, so request indices stay aligned with the shared
        # arrival stream; an insert is an empty request on non-owner
        # shards).  The client think time is replaced by the arrival
        # gate; the closed-loop emission below is byte-identical to the
        # pre-traffic compiler.
        open_loop = emitters[0].open_loop if emitters else False

        for op in self.operations():
            if op[0] == "scan":
                _, lo, hi = op
                matches = range(lo, hi)
                for t, em in enumerate(emitters):
                    if open_loop:
                        em.begin_request()
                    else:
                        em.compute(p.think_cycles)
                    for sid in scope_sets[t]:
                        flush_lines = layout.bitmap_lines(sid)
                        flush_lines += pending_insert_lines.pop(sid, [])
                        em.pim_group(sid, p.pim_ops_per_scan, flush_lines)
                field = rng.choice(field_names)
                for t, em in enumerate(emitters):
                    my_scopes = set(scope_sets[t])
                    for sid in scope_sets[t]:
                        em.read_result_bitmap(layout, sid)
                    for row in matches:
                        if layout.shard_of(row) in my_scopes:
                            em.read_record_field(layout, row, field)
                    if open_loop:
                        em.end_request()
                    if p.sync_per_op:
                        em.barrier()
            else:
                _, row = op
                sid = layout.shard_of(row)
                owner = next(
                    t for t, scopes in enumerate(scope_sets) if sid in scopes
                )
                for t, em in enumerate(emitters):
                    if open_loop:
                        em.begin_request()
                    if t == owner:
                        if not open_loop:
                            em.compute(p.think_cycles)
                        lines = em.insert_record(layout, row)
                        pending_insert_lines.setdefault(sid, []).extend(lines)
                    if open_loop:
                        em.end_request()
                    if p.sync_per_op:
                        em.barrier()
        for em in emitters:
            em.barrier()  # join: run time is the slowest thread's finish
        return [em.program for em in emitters]
