"""The Fig. 1 litmus pattern as a runnable timing workload.

:mod:`repro.core.litmus` model-checks the Fig. 1 interleavings on an
abstract machine; this module runs the *same access pattern* -- write
into a scope, issue a PIM op that rewrites the scope's result line, read
the result back -- on the full timing simulator, one scope per thread,
for a configurable number of rounds.

The result reads carry stale-read expectations, so the workload is a
minimal end-to-end probe of a consistency model: the proposed models
finish with ``stale_reads == 0`` while the Naive baseline re-reads the
cached pre-PIM result line and reports stale reads.  Registered as
``litmus`` so ``Experiment(workload="litmus", ...)`` (and the
``repro-bench`` CLI) can run it by name.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api.registry import register_workload
from repro.host.program import ThreadProgram
from repro.system.builder import System
from repro.workloads.base import ProgramEmitter, Workload


@register_workload
class LitmusWorkload(Workload):
    """Write / PIM-op / read-result rounds, one scope per thread.

    Args:
        rounds: write->PIM->read iterations per thread.  From round two
            on, a model without a coherency guarantee serves the result
            read from the copy cached in round one -- the Fig. 1 stale
            read, now on the timing stack.
        threads: worker threads; thread ``t`` owns scope ``t``.
    """

    name = "litmus"

    def __init__(self, rounds: int = 4, threads: int = 2) -> None:
        if rounds < 1 or threads < 1:
            raise ValueError("rounds and threads must be >= 1")
        self.rounds = rounds
        self.threads = threads

    @property
    def params(self) -> Dict[str, object]:
        return {"rounds": self.rounds, "threads": self.threads}

    def compile(self, system: System) -> List[ThreadProgram]:
        if system.config.num_scopes < self.threads:
            raise ValueError(
                f"litmus needs one scope per thread: "
                f"{self.threads} threads, {system.config.num_scopes} scopes"
            )
        line_bytes = system.config.llc.line_bytes
        counts: Dict[int, int] = {}
        emitters = [
            ProgramEmitter(system, f"litmus.t{t}", counts)
            for t in range(self.threads)
        ]
        for sid in range(self.threads):
            scope = system.scope_map.scope(sid)
            system.register_pim_result_lines(sid, [scope.base])
        for _ in range(self.rounds):
            for sid, em in enumerate(emitters):
                scope = system.scope_map.scope(sid)
                result_line = scope.base
                data_line = scope.base + line_bytes
                # Fig. 1's thread 0: write into the scope, then compute.
                em.store(data_line)
                em.pim_group(sid, 1,
                             sw_flush_lines=[result_line, data_line])
                # Fig. 1's reader: the result must reflect the PIM op.
                em.load(result_line, expect_version=counts[sid])
        for em in emitters:
            em.barrier()  # join: run time is the slowest thread's finish
        return [em.program for em in emitters]
