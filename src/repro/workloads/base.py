"""Shared machinery for compiling database workloads into thread programs.

Three pieces live here:

* :class:`Workload` -- the ABC every runnable workload implements
  (``name`` / ``params`` / ``compile(system)``); the experiment API
  (:mod:`repro.api`) instantiates registered subclasses by name.
* :class:`DatabaseLayout` -- the byte-address layout of a multi-scope
  database (mirroring :class:`repro.pim.database.PimDatabase`'s placement:
  round-robin records, result bitmaps at the top of each scope) without
  materializing crossbars, so compiling large timing workloads is pure
  arithmetic.
* :class:`ProgramEmitter` -- a per-thread program builder that knows the
  active consistency model: it inserts the SW-Flush baseline's clflushes,
  the scope-relaxed model's scope-fences, the uncacheable baseline's
  bypass flags, and the stale-read expectations on result reads.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Dict, Iterable, List, Optional, Sequence

from repro.core.models import ConsistencyModel
from repro.core.scope import ScopeMap
from repro.host.program import ThreadOp, ThreadProgram
from repro.pim.database import RecordSchema
from repro.system.builder import System


class Workload(abc.ABC):
    """A runnable workload: a named, parameterized program generator.

    Subclasses declare a class-level ``name`` (the registry key used by
    :func:`repro.api.register_workload` and ``Experiment.workload``),
    expose their defining parameters as a plain dict, and compile to one
    :class:`~repro.host.program.ThreadProgram` per worker thread.  The
    contract: ``cls.from_params(**workload.params)`` rebuilds an
    equivalent workload, which is what lets experiment specs stay pure
    data across cache keys and process boundaries.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""

    @property
    @abc.abstractmethod
    def params(self) -> Dict[str, object]:
        """The constructor parameters, as a plain JSON-safe dict."""

    @abc.abstractmethod
    def compile(self, system: System) -> List[ThreadProgram]:
        """Emit one program per thread for ``system``'s model and layout."""

    @classmethod
    def from_params(cls, **params) -> "Workload":
        """Rebuild a workload from its :attr:`params` dict."""
        return cls(**params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"


class DatabaseLayout:
    """Address arithmetic for a relation spread over PIM scopes."""

    def __init__(self, scope_map: ScopeMap, schema: RecordSchema,
                 records_per_scope: int, line_bytes: int = 64) -> None:
        self.scope_map = scope_map
        self.schema = schema
        self.records_per_scope = records_per_scope
        self.line_bytes = line_bytes
        self.num_scopes = scope_map.num_scopes
        stride = schema.record_stride()
        if stride * records_per_scope > scope_map.scope_bytes:
            raise ValueError("records do not fit in a scope")

    @property
    def capacity(self) -> int:
        return self.num_scopes * self.records_per_scope

    def shard_of(self, global_row: int) -> int:
        """Scope id holding ``global_row`` (round-robin placement)."""
        return global_row % self.num_scopes

    def local_row(self, global_row: int) -> int:
        return global_row // self.num_scopes

    def record_address(self, global_row: int, field: Optional[str] = None) -> int:
        scope = self.scope_map.scope(self.shard_of(global_row))
        addr = scope.base + self.local_row(global_row) * self.schema.record_stride()
        if field is not None:
            addr += self.schema.field_byte_offset(field)
        return addr

    def record_lines(self, global_row: int) -> List[int]:
        """Line addresses a record's bytes cover (insert stores)."""
        base = self.record_address(global_row)
        end = base + self.schema.record_bytes
        first = base & ~(self.line_bytes - 1)
        return list(range(first, end, self.line_bytes))

    def bitmap_lines(self, scope_id: int, slot: int = 0) -> List[int]:
        """Cache lines of a result-bitmap slot (what the host reads)."""
        scope = self.scope_map.scope(scope_id)
        bitmap_bytes = (self.records_per_scope + 7) // 8
        region_bytes = _round_up(bitmap_bytes, self.line_bytes)
        base = scope.limit - (slot + 1) * region_bytes
        if base < scope.base:
            raise ValueError("scope too small for result bitmaps")
        return list(range(base, base + region_bytes, self.line_bytes))

    def register_result_lines(self, system: System, slot: int = 0) -> None:
        """Tell the system which lines PIM ops rewrite, per scope."""
        for sid in range(self.num_scopes):
            system.register_pim_result_lines(sid, self.bitmap_lines(sid, slot))


def _round_up(value: int, quantum: int) -> int:
    return (value + quantum - 1) // quantum * quantum


#: Table II: records per 2 MB scope at paper scale.
PAPER_RECORDS_PER_SCOPE = 32 << 10


def scaled_pim_latency(microcode_latency: int, system: System) -> int:
    """Scale a microcode-derived PIM op latency to the system's miniature.

    Benchmark configurations shrink scopes (and with them result-bitmap
    sizes and read volumes) by some factor relative to Table II; the PIM
    execution time must shrink by the same factor or the execution/read
    ratio -- which every effect in Figs. 7-13 depends on -- would be
    distorted.  At paper scale the factor is 1 and the real compiled
    latency is used unchanged.
    """
    scale = system.config.records_per_scope / PAPER_RECORDS_PER_SCOPE
    return max(1, round(microcode_latency * scale))


def partition_scopes(num_scopes: int, threads: int) -> List[List[int]]:
    """Divide scopes evenly among threads (Section VI-B step 1)."""
    return [list(range(t, num_scopes, threads)) for t in range(threads)]


class ProgramEmitter:
    """Builds one thread's program under the active consistency model."""

    def __init__(self, system: System, name: str,
                 pim_issue_counts: Dict[int, int]) -> None:
        self.system = system
        self.model = system.config.model
        self.program = ThreadProgram(name)
        self.uncacheable = self.model is ConsistencyModel.UNCACHEABLE
        #: Shared, compile-time count of PIM ops issued per scope -- the
        #: version a subsequent correct result read must observe.
        self.pim_issue_counts = pim_issue_counts
        # Open-loop request bracketing state (begin_request/end_request).
        self._request_start: int = -1
        self._request_count: int = 0

    # -- open-loop request boundaries ------------------------------------ #

    @property
    def open_loop(self) -> bool:
        """True when the system's traffic config is an open arrival."""
        return self.system.config.traffic.open

    def begin_request(self) -> None:
        """Mark the start of one open-loop request.

        Emits an ARRIVE marker carrying the request index; the core
        sleeps on it until the request's precomputed arrival cycle and
        lets the admission queue admit or shed it.
        """
        if self._request_start >= 0:
            raise RuntimeError("begin_request inside an open request")
        self._request_start = len(self.program.ops)
        self.program.append(ThreadOp.arrive(self._request_count))

    def end_request(self) -> None:
        """Close the current request: patch the marker's body length.

        The body length lets a core skip a shed request in O(1) without
        walking its ops.
        """
        start = self._request_start
        if start < 0:
            raise RuntimeError("end_request without begin_request")
        marker = self.program.ops[start]
        marker.cycles = len(self.program.ops) - start - 1
        self._request_start = -1
        self._request_count += 1

    # -- plain operations ------------------------------------------------ #

    def load(self, addr: int, expect_version: int = 0) -> None:
        scope = self.system.scope_map.scope_id_of(addr)
        self.program.append(ThreadOp.load(
            addr, scope=scope, expect_version=expect_version,
            uncacheable=self.uncacheable and scope is not None,
        ))

    def store(self, addr: int) -> None:
        scope = self.system.scope_map.scope_id_of(addr)
        self.program.append(ThreadOp.store(
            addr, scope=scope,
            uncacheable=self.uncacheable and scope is not None,
        ))

    def compute(self, cycles: int) -> None:
        if cycles > 0:
            self.program.append(ThreadOp.compute(cycles))

    def barrier(self) -> None:
        self.program.append(ThreadOp.barrier())

    def mem_fence(self) -> None:
        self.program.append(ThreadOp.mem_fence())

    def pim_fence(self) -> None:
        self.program.append(ThreadOp.pim_fence())

    # -- PIM computation phases ------------------------------------------ #

    def pim_group(self, scope_id: int, num_ops: int,
                  sw_flush_lines: Iterable[int] = ()) -> None:
        """Issue ``num_ops`` PIM ops to one scope.

        Under SW-Flush, the software's explicit clflushes of the lines it
        knows the PIM computation touches come first (Section VI-C);
        under scope-relaxed, a scope-fence follows the group so the
        thread's later result reads are ordered (Section V-E).
        """
        scope = self.system.scope_map.scope(scope_id)
        if self.model is ConsistencyModel.SW_FLUSH:
            for line in sw_flush_lines:
                self.program.append(ThreadOp.flush(
                    line, scope=self.system.scope_map.scope_id_of(line)))
        for _ in range(num_ops):
            self.program.append(ThreadOp.pim_op(scope_id, addr=scope.base))
        self.pim_issue_counts[scope_id] = (
            self.pim_issue_counts.get(scope_id, 0) + num_ops
        )
        if self.model is ConsistencyModel.SCOPE_RELAXED:
            self.program.append(ThreadOp.scope_fence(scope_id, addr=scope.base))

    def read_result_bitmap(self, layout: DatabaseLayout, scope_id: int,
                           slot: int = 0) -> None:
        """Read a scope's result bitmap, expecting the current PIM version."""
        expect = self.pim_issue_counts.get(scope_id, 0)
        for line in layout.bitmap_lines(scope_id, slot):
            self.load(line, expect_version=expect)

    def read_record_field(self, layout: DatabaseLayout, global_row: int,
                          field: str) -> None:
        self.load(layout.record_address(global_row, field))

    def insert_record(self, layout: DatabaseLayout, global_row: int) -> List[int]:
        """Stores covering a new record; returns the lines touched."""
        lines = layout.record_lines(global_row)
        for line in lines:
            self.store(line)
        return lines
