"""Scopes: the fixed partition of PIM memory into PIM-op address ranges.

Section III of the paper defines a *scope* as a fixed, architecturally
defined address range; PIM ops are issued to exactly one scope and may only
touch addresses within it.  The reference implementation (PIMDB [25]) uses
huge pages as scopes -- Table II uses 2 MB huge pages holding up to 32 K
database records each.

:class:`ScopeMap` implements the address arithmetic: PIM memory starts at a
base address and is divided into equal power-of-two-sized scopes.  Non-PIM
(regular DRAM) addresses map to no scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class Scope:
    """One scope: an id plus its half-open address range ``[base, limit)``."""

    scope_id: int
    base: int
    limit: int

    @property
    def size(self) -> int:
        return self.limit - self.base

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    def offset_of(self, address: int) -> int:
        """Byte offset of ``address`` within the scope."""
        if not self.contains(address):
            raise ValueError(f"address {address:#x} outside scope {self.scope_id}")
        return address - self.base


class ScopeMap:
    """Maps addresses to scopes.

    >>> smap = ScopeMap(pim_base=1 << 32, scope_bytes=2 << 20, num_scopes=4)
    >>> smap.scope_of(smap.scope(2).base + 100).scope_id
    2
    >>> smap.scope_of(0) is None
    True
    """

    def __init__(self, pim_base: int, scope_bytes: int, num_scopes: int) -> None:
        if scope_bytes <= 0 or scope_bytes & (scope_bytes - 1):
            raise ValueError("scope_bytes must be a positive power of two")
        if pim_base % scope_bytes:
            raise ValueError("pim_base must be scope-aligned")
        if num_scopes <= 0:
            raise ValueError("need at least one scope")
        self.pim_base = pim_base
        self.scope_bytes = scope_bytes
        self.num_scopes = num_scopes
        self._shift = scope_bytes.bit_length() - 1

    @property
    def pim_limit(self) -> int:
        return self.pim_base + self.num_scopes * self.scope_bytes

    def scope(self, scope_id: int) -> Scope:
        """The scope with a given id."""
        if not 0 <= scope_id < self.num_scopes:
            raise ValueError(f"scope id {scope_id} out of range")
        base = self.pim_base + scope_id * self.scope_bytes
        return Scope(scope_id, base, base + self.scope_bytes)

    def scope_id_of(self, address: int) -> Optional[int]:
        """Scope id containing ``address``, or ``None`` for non-PIM memory."""
        if not self.pim_base <= address < self.pim_limit:
            return None
        return (address - self.pim_base) >> self._shift

    def scope_of(self, address: int) -> Optional[Scope]:
        sid = self.scope_id_of(address)
        return None if sid is None else self.scope(sid)

    def is_pim(self, address: int) -> bool:
        """Whether ``address`` belongs to a PIM-enabled scope."""
        return self.pim_base <= address < self.pim_limit

    def scopes(self) -> Iterator[Scope]:
        for sid in range(self.num_scopes):
            yield self.scope(sid)
