"""The paper's primary contribution: consistency models for bulk-bitwise PIM.

* :mod:`repro.core.models` -- the four proposed consistency models (atomic,
  store, scope, scope-relaxed) and the baselines (naive, SW-flush,
  uncacheable), with their Table-I reordering rules.
* :mod:`repro.core.scope` -- the fixed partition of PIM memory into scopes
  (huge pages) and address mapping helpers.
* :mod:`repro.core.memops` -- abstract memory-operation vocabulary shared by
  the ordering theory, the litmus checker, and the timing simulator.
* :mod:`repro.core.ordering` -- happens-before graphs and cycle detection.
* :mod:`repro.core.litmus` -- an operational litmus-test executor that
  reproduces the Fig. 1 correctness violation.
"""

from repro.core.models import ConsistencyModel, MODEL_PROPERTIES, ModelProperties
from repro.core.scope import Scope, ScopeMap
from repro.core.memops import MemOp, OpKind

__all__ = [
    "ConsistencyModel",
    "MODEL_PROPERTIES",
    "ModelProperties",
    "Scope",
    "ScopeMap",
    "MemOp",
    "OpKind",
]
