"""Happens-before graphs and cycle detection.

Section I argues that the software-flush approach permits executions with
*cyclic* ordering: W(A) before W(B) (fenced program order), W(B) before
PIMop (observed), PIMop before W(A) (a stale read of A after observing the
PIM result) -- so W(A) precedes itself.  This module gives that argument
teeth: build the observed happens-before relation as a graph and ask for a
cycle.  The litmus executor (:mod:`repro.core.litmus`) produces the edges
from concrete executions.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple


class HappensBefore:
    """A directed graph of happen-before edges over arbitrary event keys."""

    def __init__(self) -> None:
        self._succ: Dict[Hashable, Set[Hashable]] = {}
        self._labels: Dict[Tuple[Hashable, Hashable], str] = {}

    def add(self, before: Hashable, after: Hashable, label: str = "") -> None:
        """Record that ``before`` happens before ``after``."""
        self._succ.setdefault(before, set()).add(after)
        self._succ.setdefault(after, set())
        if label:
            self._labels[(before, after)] = label

    def add_chain(self, events: Iterable[Hashable], label: str = "") -> None:
        events = list(events)
        for a, b in zip(events, events[1:]):
            self.add(a, b, label)

    def edges(self) -> List[Tuple[Hashable, Hashable, str]]:
        return [
            (a, b, self._labels.get((a, b), ""))
            for a, succs in self._succ.items()
            for b in succs
        ]

    def find_cycle(self) -> Optional[List[Hashable]]:
        """A list of events forming a cycle, or ``None`` if the relation
        is a partial order (acyclic)."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {v: WHITE for v in self._succ}
        stack: List[Hashable] = []

        def dfs(v: Hashable) -> Optional[List[Hashable]]:
            color[v] = GREY
            stack.append(v)
            for w in self._succ[v]:
                if color[w] is GREY:
                    return stack[stack.index(w):] + [w]
                if color[w] is WHITE:
                    cycle = dfs(w)
                    if cycle is not None:
                        return cycle
            stack.pop()
            color[v] = BLACK
            return None

        for v in list(self._succ):
            if color[v] is WHITE:
                cycle = dfs(v)
                if cycle is not None:
                    return cycle
        return None

    @property
    def is_consistent(self) -> bool:
        """True iff the happens-before relation is acyclic."""
        return self.find_cycle() is None


def fig1_happens_before(stale_read_of_a: bool) -> HappensBefore:
    """The Fig. 1 ordering argument as a graph.

    Args:
        stale_read_of_a: whether the observing thread read the *old*
            value of A after seeing the PIM op's result on B (the
            outcome the software-flush approach permits).

    With ``stale_read_of_a=True`` the relation contains the paper's
    cycle: ``W(A) -> W(B) -> PIMop -> W(A)``.
    """
    hb = HappensBefore()
    hb.add("W(A)", "W(B)", "program order + MemFence")
    hb.add("W(B)", "PIMop", "r(B)=B0 then r(B)=B1")
    if stale_read_of_a:
        hb.add("PIMop", "W(A)", "r(B)=B1 then r(A)=A0")
    else:
        hb.add("W(A)", "PIMop", "flush atomic with PIM op")
    return hb
