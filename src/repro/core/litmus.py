"""Operational litmus-test executor for PIM coherency mechanisms.

This is a small model checker over an abstract machine: threads executing
program-order operation streams, one shared cache above a main memory, a
bulk-bitwise PIM module operating on memory, and -- crucially -- a
*nondeterministic prefetcher/other-thread* that may pull any interesting
address into the cache at any step (Fig. 1, step 5).  All interleavings
are enumerated with DFS over machine states, and the set of reachable
read-value outcomes is returned.

Two PIM-op mechanisms are modelled:

* ``flush_atomic=False`` -- the software-flush approach of [9, 25]: the
  PIM op updates memory without touching the cache; coherency relies on
  the program's explicit ``Flush`` operations.  The Fig. 1 outcome
  (observing the PIM result on B, then the *pre-PIM* value of A) is
  reachable, which yields a happens-before cycle.
* ``flush_atomic=True`` -- the paper's mechanism (all four proposed
  models): the PIM op atomically flushes its scope from the cache and
  executes.  The bad outcome is unreachable.

Programs use :class:`repro.core.memops.MemOp`; writes carry explicit
values and the PIM op applies a per-address function to memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.memops import MemOp, OpKind

#: A PIM computation: address -> (old value -> new value).
PimFunction = Callable[[int, int], int]


@dataclass(frozen=True)
class LitmusProgram:
    """Per-thread operation streams plus the PIM op semantics."""

    threads: Tuple[Tuple[MemOp, ...], ...]
    #: Addresses the nondeterministic prefetcher may touch.
    prefetchable: FrozenSet[int]
    #: Scope membership: the addresses a PIM op's scope covers.
    scope_addresses: FrozenSet[int]
    pim_function: PimFunction = field(default=lambda addr, v: v + 1)

    @classmethod
    def build(cls, threads: Sequence[Sequence[MemOp]],
              scope_addresses: Iterable[int],
              prefetchable: Optional[Iterable[int]] = None,
              pim_function: Optional[PimFunction] = None) -> "LitmusProgram":
        scope = frozenset(scope_addresses)
        return cls(
            threads=tuple(tuple(t) for t in threads),
            prefetchable=frozenset(prefetchable if prefetchable is not None else scope),
            scope_addresses=scope,
            pim_function=pim_function or (lambda addr, v: v + 1),
        )


class _State:
    """One abstract machine state (hashable for visited-set pruning)."""

    __slots__ = ("pcs", "memory", "cache", "dirty", "reads", "prefetches")

    def __init__(self, pcs, memory, cache, dirty, reads, prefetches):
        self.pcs = pcs            # tuple of per-thread program counters
        self.memory = memory      # tuple of (addr, value), sorted
        self.cache = cache        # tuple of (addr, value), sorted
        self.dirty = dirty        # frozenset of dirty cached addrs
        self.reads = reads        # tuple of (thread, index, value)
        self.prefetches = prefetches  # prefetch budget left

    def key(self):
        return (self.pcs, self.memory, self.cache, self.dirty,
                self.reads, self.prefetches)


class LitmusExecutor:
    """Enumerates all executions of a litmus program.

    Args:
        flush_atomic: whether PIM ops atomically flush their scope from
            the cache before executing (the paper's mechanism) or leave
            the cache untouched (the software-flush approach).
        prefetch_budget: bound on spontaneous cache fills per execution
            (keeps the state space finite; 2 suffices for Fig. 1).
    """

    def __init__(self, program: LitmusProgram, flush_atomic: bool,
                 prefetch_budget: int = 2) -> None:
        self.program = program
        self.flush_atomic = flush_atomic
        self.prefetch_budget = prefetch_budget

    # ------------------------------------------------------------------ #

    def outcomes(self) -> Set[Tuple[Tuple[int, int, int], ...]]:
        """All reachable read outcomes.

        Each outcome is a sorted tuple of ``(thread, op_index, value)``
        for every LOAD in the program.
        """
        initial = _State(
            pcs=tuple(0 for _ in self.program.threads),
            memory=(),
            cache=(),
            dirty=frozenset(),
            reads=(),
            prefetches=self.prefetch_budget,
        )
        results: Set[Tuple[Tuple[int, int, int], ...]] = set()
        visited: Set = set()
        stack = [initial]
        while stack:
            state = stack.pop()
            key = state.key()
            if key in visited:
                continue
            visited.add(key)
            successors = list(self._successors(state))
            if not successors:
                results.add(tuple(sorted(state.reads)))
                continue
            stack.extend(successors)
        return results

    def reachable(self, predicate: Callable[[Dict[Tuple[int, int], int]], bool]) -> bool:
        """Is any outcome satisfying ``predicate`` reachable?

        ``predicate`` receives ``{(thread, op_index): value}``.
        """
        for outcome in self.outcomes():
            if predicate({(t, i): v for t, i, v in outcome}):
                return True
        return False

    # ------------------------------------------------------------------ #

    def _successors(self, state: _State):
        # Thread steps.
        for tid, pc in enumerate(state.pcs):
            thread = self.program.threads[tid]
            if pc < len(thread):
                yield self._step_thread(state, tid, thread[pc])
        # Spontaneous prefetch (another thread / hardware prefetcher
        # pulling a line into the cache between any two steps).
        if state.prefetches > 0:
            cache = dict(state.cache)
            for addr in sorted(self.program.prefetchable):
                if addr not in cache:
                    memory = dict(state.memory)
                    new_cache = dict(cache)
                    new_cache[addr] = memory.get(addr, 0)
                    yield _State(
                        state.pcs, state.memory, _freeze(new_cache),
                        state.dirty, state.reads, state.prefetches - 1,
                    )

    def _step_thread(self, state: _State, tid: int, op: MemOp) -> _State:
        memory = dict(state.memory)
        cache = dict(state.cache)
        dirty = set(state.dirty)
        reads = state.reads
        kind = op.kind
        if kind is OpKind.STORE:
            cache[op.address] = op.value
            dirty.add(op.address)
        elif kind is OpKind.LOAD:
            if op.address in cache:
                value = cache[op.address]
            else:
                value = memory.get(op.address, 0)
                cache[op.address] = value  # loads allocate
            reads = reads + ((tid, op.index, value),)
        elif kind is OpKind.FLUSH:
            if op.address in cache:
                if op.address in dirty:
                    memory[op.address] = cache[op.address]
                    dirty.discard(op.address)
                del cache[op.address]
        elif kind is OpKind.PIM_OP:
            if self.flush_atomic:
                # The paper's mechanism: scope flush is atomic with the op.
                for addr in self.program.scope_addresses:
                    if addr in cache:
                        if addr in dirty:
                            memory[addr] = cache[addr]
                            dirty.discard(addr)
                        del cache[addr]
            for addr in self.program.scope_addresses:
                memory[addr] = self.program.pim_function(addr, memory.get(addr, 0))
        elif kind.is_fence:
            # Threads execute in program order in this abstract machine,
            # so fences are ordering no-ops; they exist in programs for
            # documentation and for the reordering-predicate tests.
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"litmus cannot execute {kind}")
        pcs = tuple(
            pc + 1 if t == tid else pc for t, pc in enumerate(state.pcs)
        )
        return _State(pcs, _freeze(memory), _freeze(cache),
                      frozenset(dirty), reads, state.prefetches)


def _freeze(d: Dict[int, int]) -> Tuple[Tuple[int, int], ...]:
    return tuple(sorted(d.items()))


# ---------------------------------------------------------------------- #
# The Fig. 1 litmus test
# ---------------------------------------------------------------------- #

A, B = 0x100, 0x140
A0, B0, A1, B1 = 10, 20, 11, 21


def fig1_program() -> LitmusProgram:
    """The example of Fig. 1.

    Thread 0 writes A and B (fenced), flushes both, and issues a PIM op
    that bumps every scope address (A0 -> A1, B0 -> B1).  Thread 1 reads
    B twice and then A.  The problematic outcome is
    ``r(B)=B0, r(B)=B1, r(A)=A0``: thread 1 sees the PIM op's effect on
    B but the *pre-PIM* value of A, closing the happens-before cycle.
    """
    t0 = [
        MemOp(OpKind.STORE, 0, 0, address=A, value=A0),
        MemOp(OpKind.MEM_FENCE, 0, 1),
        MemOp(OpKind.STORE, 0, 2, address=B, value=B0),
        MemOp(OpKind.MEM_FENCE, 0, 3),
        MemOp(OpKind.FLUSH, 0, 4, address=A),
        MemOp(OpKind.FLUSH, 0, 5, address=B),
        MemOp(OpKind.MEM_FENCE, 0, 6),
        MemOp(OpKind.PIM_OP, 0, 7, scope=0),
    ]
    t1 = [
        MemOp(OpKind.LOAD, 1, 0, address=B),
        MemOp(OpKind.LOAD, 1, 1, address=B),
        MemOp(OpKind.LOAD, 1, 2, address=A),
    ]
    return LitmusProgram.build([t0, t1], scope_addresses=[A, B],
                               pim_function=lambda addr, v: v + 1)


def fig1_violation(outcome: Dict[Tuple[int, int], int]) -> bool:
    """The cyclic-order observation of Section I."""
    return (
        outcome.get((1, 0)) == B0
        and outcome.get((1, 1)) == B1
        and outcome.get((1, 2)) == A0
    )


def fig1_violation_reachable(flush_atomic: bool) -> bool:
    """Can the Fig. 1 correctness violation occur under a mechanism?

    >>> fig1_violation_reachable(flush_atomic=False)
    True
    >>> fig1_violation_reachable(flush_atomic=True)
    False
    """
    executor = LitmusExecutor(fig1_program(), flush_atomic=flush_atomic)
    return executor.reachable(fig1_violation)
