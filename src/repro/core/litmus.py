"""Operational litmus-test executor for PIM coherency mechanisms.

This is a small model checker over an abstract machine: threads executing
program-order operation streams, one shared cache above a main memory, a
bulk-bitwise PIM module operating on memory, and -- crucially -- a
*nondeterministic prefetcher/other-thread* that may pull any interesting
address into the cache at any step (Fig. 1, step 5).  All interleavings
are enumerated with DFS over machine states, and the set of reachable
read-value outcomes is returned.

Two PIM-op mechanisms are modelled:

* ``flush_atomic=False`` -- the software-flush approach of [9, 25]: the
  PIM op updates memory without touching the cache; coherency relies on
  the program's explicit ``Flush`` operations.  The Fig. 1 outcome
  (observing the PIM result on B, then the *pre-PIM* value of A) is
  reachable, which yields a happens-before cycle.
* ``flush_atomic=True`` -- the paper's mechanism (all four proposed
  models): the PIM op atomically flushes its scope from the cache and
  executes.  The bad outcome is unreachable.

Programs use :class:`repro.core.memops.MemOp`; writes carry explicit
values and the PIM op applies a per-address function to memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.memops import MemOp, OpKind
from repro.core.models import ConsistencyModel, properties_of

#: A PIM computation: address -> (old value -> new value).
PimFunction = Callable[[int, int], int]


@dataclass(frozen=True)
class LitmusProgram:
    """Per-thread operation streams plus the PIM op semantics."""

    threads: Tuple[Tuple[MemOp, ...], ...]
    #: Addresses the nondeterministic prefetcher may touch.
    prefetchable: FrozenSet[int]
    #: Scope membership: the addresses a PIM op's scope covers.
    scope_addresses: FrozenSet[int]
    pim_function: PimFunction = field(default=lambda addr, v: v + 1)
    #: Per-scope address sets as sorted ``(scope_id, addresses)`` pairs.
    #: Empty means the single-scope legacy shape: every PIM op covers
    #: ``scope_addresses`` regardless of its ``scope`` field.
    scopes: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()

    @classmethod
    def build(cls, threads: Sequence[Sequence[MemOp]],
              scope_addresses: Iterable[int] = (),
              prefetchable: Optional[Iterable[int]] = None,
              pim_function: Optional[PimFunction] = None,
              scopes: Optional[Mapping[int, Iterable[int]]] = None,
              ) -> "LitmusProgram":
        scope_map: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
        union = frozenset(scope_addresses)
        if scopes is not None:
            scope_map = tuple(
                (sid, tuple(sorted(addrs)))
                for sid, addrs in sorted(scopes.items())
            )
            union = union | frozenset(
                a for _, addrs in scope_map for a in addrs)
        return cls(
            threads=tuple(tuple(t) for t in threads),
            prefetchable=frozenset(prefetchable if prefetchable is not None else union),
            scope_addresses=union,
            pim_function=pim_function or (lambda addr, v: v + 1),
            scopes=scope_map,
        )

    def addresses_of(self, scope: Optional[int]) -> Tuple[int, ...]:
        """The addresses a PIM op to ``scope`` covers."""
        if self.scopes and scope is not None:
            for sid, addrs in self.scopes:
                if sid == scope:
                    return addrs
            return ()
        return tuple(sorted(self.scope_addresses))


class _State:
    """One abstract machine state (hashable for visited-set pruning)."""

    __slots__ = ("pcs", "memory", "cache", "dirty", "reads", "prefetches")

    def __init__(self, pcs, memory, cache, dirty, reads, prefetches):
        self.pcs = pcs            # tuple of per-thread program counters
        self.memory = memory      # tuple of (addr, value), sorted
        self.cache = cache        # tuple of (addr, value), sorted
        self.dirty = dirty        # frozenset of dirty cached addrs
        self.reads = reads        # tuple of (thread, index, value)
        self.prefetches = prefetches  # prefetch budget left

    def key(self):
        return (self.pcs, self.memory, self.cache, self.dirty,
                self.reads, self.prefetches)


class LitmusExecutor:
    """Enumerates all executions of a litmus program.

    Args:
        flush_atomic: whether PIM ops atomically flush their scope from
            the cache before executing (the paper's mechanism) or leave
            the cache untouched (the software-flush approach).
        prefetch_budget: bound on spontaneous cache fills per execution
            (keeps the state space finite; 2 suffices for Fig. 1).
        uncacheable: scope addresses bypass the cache entirely (the
            uncacheable-region baseline): loads and stores go straight
            to memory, flushes are no-ops, the prefetcher skips them.
    """

    def __init__(self, program: LitmusProgram, flush_atomic: bool,
                 prefetch_budget: int = 2, uncacheable: bool = False) -> None:
        self.program = program
        self.flush_atomic = flush_atomic
        self.prefetch_budget = prefetch_budget
        self.uncacheable = uncacheable

    # ------------------------------------------------------------------ #

    def outcomes(self) -> Set[Tuple[Tuple[int, int, int], ...]]:
        """All reachable read outcomes.

        Each outcome is a sorted tuple of ``(thread, op_index, value)``
        for every LOAD in the program.
        """
        initial = _State(
            pcs=tuple(0 for _ in self.program.threads),
            memory=(),
            cache=(),
            dirty=frozenset(),
            reads=(),
            prefetches=self.prefetch_budget,
        )
        results: Set[Tuple[Tuple[int, int, int], ...]] = set()
        visited: Set = set()
        stack = [initial]
        while stack:
            state = stack.pop()
            key = state.key()
            if key in visited:
                continue
            visited.add(key)
            successors = list(self._successors(state))
            if not successors:
                results.add(tuple(sorted(state.reads)))
                continue
            stack.extend(successors)
        return results

    def reachable(self, predicate: Callable[[Dict[Tuple[int, int], int]], bool]) -> bool:
        """Is any outcome satisfying ``predicate`` reachable?

        ``predicate`` receives ``{(thread, op_index): value}``.
        """
        for outcome in self.outcomes():
            if predicate({(t, i): v for t, i, v in outcome}):
                return True
        return False

    # ------------------------------------------------------------------ #

    def _successors(self, state: _State):
        # Thread steps.
        for tid, pc in enumerate(state.pcs):
            thread = self.program.threads[tid]
            if pc < len(thread):
                yield self._step_thread(state, tid, thread[pc])
        # Spontaneous prefetch (another thread / hardware prefetcher
        # pulling a line into the cache between any two steps).
        yield from self._prefetch_successors(state)

    def _prefetch_successors(self, state: _State):
        if state.prefetches <= 0:
            return
        cache = dict(state.cache)
        for addr in sorted(self.program.prefetchable):
            if addr in cache:
                continue
            if self.uncacheable and addr in self.program.scope_addresses:
                continue
            memory = dict(state.memory)
            new_cache = dict(cache)
            new_cache[addr] = memory.get(addr, 0)
            yield _State(
                state.pcs, state.memory, _freeze(new_cache),
                state.dirty, state.reads, state.prefetches - 1,
            )

    def _bypasses_cache(self, addr: Optional[int]) -> bool:
        return self.uncacheable and addr in self.program.scope_addresses

    def _exec_op(self, memory: Dict[int, int], cache: Dict[int, int],
                 dirty: Set[int], reads, tid: int, op: MemOp):
        """Apply one operation's memory effect; returns updated reads."""
        kind = op.kind
        if kind is OpKind.STORE:
            if self._bypasses_cache(op.address):
                memory[op.address] = op.value
            else:
                cache[op.address] = op.value
                dirty.add(op.address)
        elif kind is OpKind.LOAD:
            if self._bypasses_cache(op.address):
                value = memory.get(op.address, 0)
            elif op.address in cache:
                value = cache[op.address]
            else:
                value = memory.get(op.address, 0)
                cache[op.address] = value  # loads allocate
            # Keep the accumulated reads sorted: outcomes are read *sets*
            # (keyed by thread and op index), so states differing only in
            # observation order merge in the visited set.
            reads = tuple(sorted(reads + ((tid, op.index, value),)))
        elif kind is OpKind.FLUSH:
            if op.address in cache:
                if op.address in dirty:
                    memory[op.address] = cache[op.address]
                    dirty.discard(op.address)
                del cache[op.address]
        elif kind is OpKind.PIM_OP:
            scope_addrs = self.program.addresses_of(op.scope)
            if self.flush_atomic:
                # The paper's mechanism: scope flush is atomic with the op.
                for addr in scope_addrs:
                    if addr in cache:
                        if addr in dirty:
                            memory[addr] = cache[addr]
                            dirty.discard(addr)
                        del cache[addr]
            for addr in scope_addrs:
                memory[addr] = self.program.pim_function(addr, memory.get(addr, 0))
        elif kind.is_fence:
            # Fences order issue, never touch memory.  The in-order
            # executor issues in program order so they are no-ops here;
            # ModelExecutor enforces them through the reordering
            # predicate before an op may issue at all.
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"litmus cannot execute {kind}")
        return reads

    def _step_thread(self, state: _State, tid: int, op: MemOp) -> _State:
        memory = dict(state.memory)
        cache = dict(state.cache)
        dirty = set(state.dirty)
        reads = self._exec_op(memory, cache, dirty, state.reads, tid, op)
        pcs = tuple(
            pc + 1 if t == tid else pc for t, pc in enumerate(state.pcs)
        )
        return _State(pcs, _freeze(memory), _freeze(cache),
                      frozenset(dirty), reads, state.prefetches)


class ModelExecutor(LitmusExecutor):
    """Model-aware litmus executor: Table-I reordering plus mechanism.

    Extends the in-order abstract machine with out-of-order *issue*: a
    thread may make operation ``j`` visible while earlier operations are
    still pending whenever :meth:`ModelProperties.may_reorder` permits
    ``j`` to pass every one of them.  The mechanism follows the model's
    static properties -- the four proposed models flush the scope
    atomically with the PIM op (``flushes_at_llc``), the uncacheable
    baseline bypasses the cache for scope addresses, and the Naive /
    SW-Flush baselines leave the cache alone.

    Because :meth:`may_reorder` is monotone along the strength lattice
    (atomic <= store <= scope <= scope-relaxed), the reachable outcome
    sets of the proposed models are nested -- the invariant the fuzz
    oracle checks differentially.
    """

    def __init__(self, program: LitmusProgram, model: ConsistencyModel,
                 prefetch_budget: int = 2) -> None:
        props = properties_of(model)
        super().__init__(
            program,
            flush_atomic=props.flushes_at_llc,
            prefetch_budget=prefetch_budget,
            uncacheable=model is ConsistencyModel.UNCACHEABLE,
        )
        self.model = model
        self.props = props

    # In ModelExecutor states, ``pcs`` holds one *issued-set bitmask*
    # per thread instead of a program counter: bit ``j`` set means the
    # thread's j-th operation has become visible.

    def _successors(self, state: _State):
        for tid, mask in enumerate(state.pcs):
            thread = self.program.threads[tid]
            for j, op in enumerate(thread):
                if mask >> j & 1:
                    continue
                if all(
                    self.props.may_reorder(thread[i], op)
                    for i in range(j) if not (mask >> i & 1)
                ):
                    yield self._issue(state, tid, j, op)
        yield from self._prefetch_successors(state)

    def _issue(self, state: _State, tid: int, index: int, op: MemOp) -> _State:
        memory = dict(state.memory)
        cache = dict(state.cache)
        dirty = set(state.dirty)
        reads = self._exec_op(memory, cache, dirty, state.reads, tid, op)
        masks = tuple(
            mask | (1 << index) if t == tid else mask
            for t, mask in enumerate(state.pcs)
        )
        return _State(masks, _freeze(memory), _freeze(cache),
                      frozenset(dirty), reads, state.prefetches)


def _freeze(d: Dict[int, int]) -> Tuple[Tuple[int, int], ...]:
    return tuple(sorted(d.items()))


# ---------------------------------------------------------------------- #
# The Fig. 1 litmus test
# ---------------------------------------------------------------------- #

A, B = 0x100, 0x140
A0, B0, A1, B1 = 10, 20, 11, 21


def fig1_program() -> LitmusProgram:
    """The example of Fig. 1.

    Thread 0 writes A and B (fenced), flushes both, and issues a PIM op
    that bumps every scope address (A0 -> A1, B0 -> B1).  Thread 1 reads
    B twice and then A.  The problematic outcome is
    ``r(B)=B0, r(B)=B1, r(A)=A0``: thread 1 sees the PIM op's effect on
    B but the *pre-PIM* value of A, closing the happens-before cycle.
    """
    t0 = [
        MemOp(OpKind.STORE, 0, 0, address=A, value=A0),
        MemOp(OpKind.MEM_FENCE, 0, 1),
        MemOp(OpKind.STORE, 0, 2, address=B, value=B0),
        MemOp(OpKind.MEM_FENCE, 0, 3),
        MemOp(OpKind.FLUSH, 0, 4, address=A),
        MemOp(OpKind.FLUSH, 0, 5, address=B),
        MemOp(OpKind.MEM_FENCE, 0, 6),
        MemOp(OpKind.PIM_OP, 0, 7, scope=0),
    ]
    t1 = [
        MemOp(OpKind.LOAD, 1, 0, address=B),
        MemOp(OpKind.LOAD, 1, 1, address=B),
        MemOp(OpKind.LOAD, 1, 2, address=A),
    ]
    return LitmusProgram.build([t0, t1], scope_addresses=[A, B],
                               pim_function=lambda addr, v: v + 1)


def fig1_violation(outcome: Dict[Tuple[int, int], int]) -> bool:
    """The cyclic-order observation of Section I."""
    return (
        outcome.get((1, 0)) == B0
        and outcome.get((1, 1)) == B1
        and outcome.get((1, 2)) == A0
    )


def fig1_violation_reachable(flush_atomic: bool) -> bool:
    """Can the Fig. 1 correctness violation occur under a mechanism?

    >>> fig1_violation_reachable(flush_atomic=False)
    True
    >>> fig1_violation_reachable(flush_atomic=True)
    False
    """
    executor = LitmusExecutor(fig1_program(), flush_atomic=flush_atomic)
    return executor.reachable(fig1_violation)
