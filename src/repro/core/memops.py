"""Abstract memory-operation vocabulary.

These classes describe memory operations *as ordering-theory objects* --
independent of any timing model.  They are shared by:

* :mod:`repro.core.models` -- the per-model reordering predicate (Table I),
* :mod:`repro.core.ordering` -- happens-before graph construction,
* :mod:`repro.core.litmus` -- the operational litmus executor.

The timing simulator (:mod:`repro.host`, :mod:`repro.memory`) uses its own
message types but mirrors the same kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class OpKind(enum.Enum):
    """Kinds of memory operations visible to the consistency model."""

    LOAD = "load"
    STORE = "store"
    PIM_OP = "pim_op"
    MEM_FENCE = "mem_fence"
    #: The dedicated PIM fence of Nag & Balasubramonian [21]; orders PIM ops
    #: across scopes (used by the scope and scope-relaxed models).
    PIM_FENCE = "pim_fence"
    #: The paper's new scope-fence: orders PIM ops and memory operations
    #: within a single scope (scope-relaxed model only).
    SCOPE_FENCE = "scope_fence"
    #: An explicit cache-line flush (clflush), used by the SW-Flush baseline.
    FLUSH = "flush"

    @property
    def is_fence(self) -> bool:
        return self in (OpKind.MEM_FENCE, OpKind.PIM_FENCE, OpKind.SCOPE_FENCE)

    @property
    def is_memory_access(self) -> bool:
        return self in (OpKind.LOAD, OpKind.STORE, OpKind.FLUSH)


@dataclass(frozen=True)
class MemOp:
    """A single abstract memory operation issued by a thread.

    Attributes:
        kind: the operation class.
        thread: issuing thread id.
        index: position in the thread's program order.
        address: byte address for loads/stores/flushes (``None`` for fences
            and PIM ops, which are scope-granular).
        scope: scope id this operation falls in (``None`` for non-PIM
            addresses and for fences without a scope).
        value: value written (stores) or a tag for PIM-op results; used by
            the litmus executor.
    """

    kind: OpKind
    thread: int
    index: int
    address: Optional[int] = None
    scope: Optional[int] = None
    value: Optional[int] = None

    def same_address(self, other: "MemOp") -> bool:
        return (
            self.address is not None
            and other.address is not None
            and self.address == other.address
        )

    def same_scope(self, other: "MemOp") -> bool:
        return self.scope is not None and self.scope == other.scope

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        loc = ""
        if self.address is not None:
            loc = f"@{self.address:#x}"
        elif self.scope is not None:
            loc = f"@scope{self.scope}"
        return f"T{self.thread}.{self.index}:{self.kind.value}{loc}"
