"""The four proposed consistency models and the comparison baselines.

This module encodes Table I of the paper: for each model, which reorderings
of a PIM op with other memory operations are allowed, which additional fences
are required, and where scope-buffer/SBV hardware is needed.

The reordering predicate :meth:`ModelProperties.may_reorder` is the
single source of truth -- the litmus checker enumerates executions against
it, and the timing simulator's issue policies (:mod:`repro.host.policies`)
are validated against it in the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.memops import MemOp, OpKind


class ConsistencyModel(enum.Enum):
    """Consistency models for bulk-bitwise PIM, plus evaluation baselines.

    The first four are the paper's proposals (Section III); the last three
    are the comparison baselines (Section VI-C and Fig. 3).  Baselines do
    not guarantee correct execution (except ``UNCACHEABLE``, which is
    correct but slow).
    """

    ATOMIC = "atomic"
    STORE = "store"
    SCOPE = "scope"
    SCOPE_RELAXED = "scope-relaxed"
    # --- baselines ---
    NAIVE = "naive"
    SW_FLUSH = "sw-flush"
    UNCACHEABLE = "uncacheable"

    @property
    def is_proposed(self) -> bool:
        """True for the paper's four proposed models."""
        return self in _PROPOSED

    @property
    def is_baseline(self) -> bool:
        return not self.is_proposed


_PROPOSED = frozenset(
    {
        ConsistencyModel.ATOMIC,
        ConsistencyModel.STORE,
        ConsistencyModel.SCOPE,
        ConsistencyModel.SCOPE_RELAXED,
    }
)


@dataclass(frozen=True)
class ModelProperties:
    """Static properties of a consistency model (Table I).

    Attributes:
        model: the model described.
        guarantees_correctness: whether PIM-op/flush atomicity is preserved
            so host ordering rules still hold.
        requires_ack: whether the memory controller must ACK PIM ops back
            to the core (atomic model) or entry point (store/scope models).
        blocks_commit: whether the core withholds commit of the PIM op
            until the ACK arrives (atomic model only).
        entry_point_holds: which subsequent operations the memory-subsystem
            entry point withholds while a PIM op is in flight:
            ``"all"``, ``"stores"`` (TSO store semantics: later loads to
            other addresses may bypass), ``"same-scope"``, or ``"none"``.
        scope_fence_available: whether the model defines the scope-fence.
        pim_fence_required: whether ordering between PIM ops of different
            scopes needs the dedicated fence of [21].
        scope_buffer_all_caches: scope buffer + SBV in every cache level
            (scope-relaxed) or only at the LLC.
        flushes_at_llc: whether PIM ops flush their scope from the LLC on
            the way to memory (all proposed models; not the baselines).
    """

    model: ConsistencyModel
    guarantees_correctness: bool
    requires_ack: bool
    blocks_commit: bool
    entry_point_holds: str
    scope_fence_available: bool
    pim_fence_required: bool
    scope_buffer_all_caches: bool
    flushes_at_llc: bool

    def may_reorder(self, first: MemOp, second: MemOp) -> bool:
        """May ``second`` become visible before ``first`` (program order)?

        This is the Table-I reordering matrix restricted to pairs where at
        least one operation is a PIM op.  Pairs not involving a PIM op
        follow the host's native model and are outside this predicate's
        scope (it returns the host-conservative answer ``False`` for a
        fence, ``True`` otherwise, mirroring X86-TSO only where needed by
        the litmus tests).
        """
        if first.thread != second.thread:
            raise ValueError("reordering is defined on a single thread's program order")
        pim_first = first.kind is OpKind.PIM_OP
        pim_second = second.kind is OpKind.PIM_OP
        if not (pim_first or pim_second):
            return _host_may_reorder(first, second)

        # A memory fence orders everything in every proposed model; in the
        # scope-relaxed model PIM ops are ordered only by dedicated fences.
        other = second if pim_first else first
        if other.kind is OpKind.MEM_FENCE:
            return self.model is ConsistencyModel.SCOPE_RELAXED
        if other.kind is OpKind.PIM_FENCE:
            return False
        if other.kind is OpKind.SCOPE_FENCE:
            if not self.scope_fence_available:
                return False  # treated as a full fence by stricter models
            pim = first if pim_first else second
            return not pim.same_scope(other)

        if self.model is ConsistencyModel.ATOMIC:
            return False
        if self.model is ConsistencyModel.STORE:
            if pim_first and pim_second:
                return False  # stores do not reorder with stores under TSO
            if first.same_scope(second):
                return False
            # TSO: a later load may bypass an earlier store; a later store
            # may not bypass an earlier load or store.
            return pim_first and second.kind is OpKind.LOAD
        if self.model is ConsistencyModel.SCOPE:
            return not first.same_scope(second)
        if self.model is ConsistencyModel.SCOPE_RELAXED:
            return True
        # Baselines enforce nothing beyond what the hardware happens to do.
        return True

    def table_row(self) -> dict:
        """The model's row of Table I, as printable fields."""
        reorder = {
            ConsistencyModel.ATOMIC: "None",
            ConsistencyModel.STORE: "Same as store operations",
            ConsistencyModel.SCOPE: "All operations to other scopes",
            ConsistencyModel.SCOPE_RELAXED: "All operations except fences",
        }.get(self.model, "Unconstrained (no correctness guarantee)")
        fences = {
            ConsistencyModel.ATOMIC: "No",
            ConsistencyModel.STORE: "No",
            ConsistencyModel.SCOPE: "Ordering between scopes",
            ConsistencyModel.SCOPE_RELAXED: (
                "(1) Ordering within scope and (2) between scopes"
            ),
        }.get(self.model, "-")
        return {
            "Model": self.model.value,
            "PIM Op Allowed Reordering": reorder,
            "Additional Fence Required": fences,
            "Scope Buffer & SBV": (
                "All caches" if self.scope_buffer_all_caches else "Only LLC"
            ),
        }


def _host_may_reorder(first: MemOp, second: MemOp) -> bool:
    """X86-TSO-like native rules for non-PIM pairs (used by litmus tests)."""
    if first.kind.is_fence or second.kind.is_fence:
        return False
    if first.same_address(second):
        return False
    # TSO: only store -> later-load reordering is allowed.
    return first.kind is OpKind.STORE and second.kind is OpKind.LOAD


MODEL_PROPERTIES = {
    ConsistencyModel.ATOMIC: ModelProperties(
        model=ConsistencyModel.ATOMIC,
        guarantees_correctness=True,
        requires_ack=True,
        blocks_commit=True,
        entry_point_holds="all",
        scope_fence_available=False,
        pim_fence_required=False,
        scope_buffer_all_caches=False,
        flushes_at_llc=True,
    ),
    ConsistencyModel.STORE: ModelProperties(
        model=ConsistencyModel.STORE,
        guarantees_correctness=True,
        requires_ack=True,
        blocks_commit=False,
        entry_point_holds="stores",
        scope_fence_available=False,
        pim_fence_required=False,
        scope_buffer_all_caches=False,
        flushes_at_llc=True,
    ),
    ConsistencyModel.SCOPE: ModelProperties(
        model=ConsistencyModel.SCOPE,
        guarantees_correctness=True,
        requires_ack=True,
        blocks_commit=False,
        entry_point_holds="same-scope",
        scope_fence_available=False,
        pim_fence_required=True,
        scope_buffer_all_caches=False,
        flushes_at_llc=True,
    ),
    ConsistencyModel.SCOPE_RELAXED: ModelProperties(
        model=ConsistencyModel.SCOPE_RELAXED,
        guarantees_correctness=True,
        requires_ack=False,
        blocks_commit=False,
        entry_point_holds="none",
        scope_fence_available=True,
        pim_fence_required=True,
        scope_buffer_all_caches=True,
        flushes_at_llc=True,
    ),
    ConsistencyModel.NAIVE: ModelProperties(
        model=ConsistencyModel.NAIVE,
        guarantees_correctness=False,
        requires_ack=False,
        blocks_commit=False,
        entry_point_holds="none",
        scope_fence_available=False,
        pim_fence_required=False,
        scope_buffer_all_caches=False,
        flushes_at_llc=False,
    ),
    ConsistencyModel.SW_FLUSH: ModelProperties(
        model=ConsistencyModel.SW_FLUSH,
        guarantees_correctness=False,
        requires_ack=False,
        blocks_commit=False,
        entry_point_holds="none",
        scope_fence_available=False,
        pim_fence_required=False,
        scope_buffer_all_caches=False,
        flushes_at_llc=False,
    ),
    ConsistencyModel.UNCACHEABLE: ModelProperties(
        model=ConsistencyModel.UNCACHEABLE,
        # Uncacheable PIM regions never have stale cached copies, so the
        # execution is correct -- just slow (Fig. 3).
        guarantees_correctness=True,
        requires_ack=False,
        blocks_commit=False,
        entry_point_holds="none",
        scope_fence_available=False,
        pim_fence_required=False,
        scope_buffer_all_caches=False,
        flushes_at_llc=False,
    ),
}


def properties_of(model: ConsistencyModel) -> ModelProperties:
    """Look up the static properties of ``model``."""
    return MODEL_PROPERTIES[model]
