"""Open-loop traffic: seeded arrival processes + bounded admission.

Closed-loop workloads (every workload before this package) issue their
next operation when the previous settles, so they can measure throughput
but never queueing delay.  This package turns the same workloads into a
serving-system study: a seeded, deterministic arrival process decides
*when* each request reaches a core, a bounded admission queue sheds load
past its depth, and per-request latency is tracked from **arrival** (not
issue) to settle -- the quantity a client actually waits.

See ``docs/traffic.md`` for the methodology (arrival processes, the SLO
knee, determinism guarantees).
"""

from repro.traffic.admission import AdmissionQueue
from repro.traffic.arrivals import arrival_times

__all__ = ["AdmissionQueue", "arrival_times"]
