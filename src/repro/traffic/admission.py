"""Per-core bounded admission queue with arrival-to-settle accounting.

One :class:`AdmissionQueue` sits logically in front of each core's entry
point.  The core's program carries one ``ARRIVE`` marker per request;
when the core reaches a marker it settles the previous request, then
asks the queue what to do with the next one:

* **admit** -- the request arrived and survived the depth bound; the
  core starts its body and the queue records the admission-time depth;
* **wait** -- the request hasn't arrived yet; the core sleeps until the
  precomputed arrival cycle (one timing-wheel/heap event, no polling);
* **drop** -- the bounded queue shed the request while the core was
  busy; the core skips the request body in O(1) (the marker carries the
  body length).

All bookkeeping lives in the core's :class:`~repro.sim.stats.StatGroup`
(counters ``req_offered/req_admitted/req_dropped/req_completed`` and
histograms ``latency``/``queue_depth``), created only when traffic is
open, so closed-loop snapshots gain no keys and default digests hold.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.sim.stats import StatGroup

#: ``poll`` verdicts: admitted now / shed; positive values are a wait.
ADMIT = 0
DROP = -1


class AdmissionQueue:
    """FIFO admission over a precomputed arrival schedule.

    Requests are identified by their index into the arrival array; the
    core presents them in order, so the FIFO discipline reduces to
    integer bookkeeping -- no deque of request objects, just a count of
    arrivals examined, a waiting counter, and the set of shed indices.
    """

    __slots__ = ("arrivals", "depth", "latency", "queue_depth",
                 "_offered", "_admitted", "_dropped_ctr", "_completed",
                 "_next", "_waiting", "_shed", "_in_service",
                 "_service_arrival")

    def __init__(self, arrivals: List[int], depth: Optional[int],
                 stats: StatGroup) -> None:
        self.arrivals = arrivals
        self.depth = depth
        self._offered = stats.counter("req_offered")
        self._admitted = stats.counter("req_admitted")
        self._dropped_ctr = stats.counter("req_dropped")
        self._completed = stats.counter("req_completed")
        self.latency = stats.histogram("latency")
        self.queue_depth = stats.histogram("queue_depth")
        self._next = 0          # first arrival not yet examined
        self._waiting = 0       # arrived, not shed, not yet in service
        self._shed: Set[int] = set()
        self._in_service = -1   # request index in service (-1: none)
        self._service_arrival = 0

    def _catch_up(self, now: int) -> None:
        """Account every arrival up to ``now`` (enqueue or shed)."""
        arrivals = self.arrivals
        n = len(arrivals)
        nxt = self._next
        while nxt < n and arrivals[nxt] <= now:
            self._offered.value += 1
            if self.depth is not None and self._waiting >= self.depth:
                self._shed.add(nxt)
                self._dropped_ctr.value += 1
            else:
                self._waiting += 1
            nxt += 1
        self._next = nxt

    def poll(self, request: int, now: int) -> int:
        """The core is free and at request ``request``'s ARRIVE marker.

        Returns :data:`ADMIT` (start the body now), :data:`DROP` (the
        bounded queue shed it; skip the body), or a positive cycle count
        to sleep until the request's arrival.
        """
        self._catch_up(now)
        if request in self._shed:
            self._shed.discard(request)
            return DROP
        if request >= self._next:
            return self.arrivals[request] - now
        # Arrived and queued; FIFO order is the program order, so this
        # is the head.  Sample depth including the departing request.
        self.queue_depth.record(self._waiting)
        self._waiting -= 1
        self._admitted.value += 1
        self._in_service = request
        self._service_arrival = self.arrivals[request]
        return ADMIT

    def settle(self, now: int) -> None:
        """The in-service request's last memory op completed at ``now``.

        Idempotent: called at the next ARRIVE marker *and* at the final
        barrier, whichever comes first.
        """
        if self._in_service >= 0:
            self.latency.record(now - self._service_arrival)
            self._completed.value += 1
            self._in_service = -1

    @property
    def offered(self) -> int:
        return self._offered.value

    @property
    def admitted(self) -> int:
        return self._admitted.value

    @property
    def dropped(self) -> int:
        return self._dropped_ctr.value

    @property
    def completed(self) -> int:
        return self._completed.value
