"""Seeded arrival-time generators for the open-loop traffic model.

Each generator precomputes the *entire* arrival schedule as a list of
absolute integer cycle times before the simulation starts.  Two reasons:

* **Determinism.**  The schedule is a pure function of the traffic
  config (kind, load, shape knobs, seed) and the request count -- it
  never reads simulator state, so Serial and ProcessPool backends see
  byte-identical arrivals and the campaign digest gates hold.  The RNG
  is seeded with a string (``random.Random`` hashes strings through
  SHA-512, not the salted ``hash()``), so schedules are stable across
  processes and Python invocations.

* **O(1) scheduling.**  A core sleeping until its next arrival schedules
  one wake-up at a known absolute time; short inter-arrival gaps land in
  the kernel's 256-slot timing wheel, so the arrival process adds no
  per-cycle polling.

Rates are expressed as ``offered_load`` requests per 1000 cycles, the
natural magnitude for this simulator's service times (a scaled YCSB scan
costs a few thousand cycles).
"""

from __future__ import annotations

import random
from typing import List

from repro.sim.config import TrafficConfig


def _monotonic_int_times(gaps) -> List[int]:
    """Accumulate float gaps into non-decreasing integer arrival times."""
    times: List[int] = []
    t = 0.0
    prev = 0
    for gap in gaps:
        t += gap
        cycle = int(t)
        if cycle < prev:
            cycle = prev
        times.append(cycle)
        prev = cycle
    return times


def _poisson(rng: random.Random, count: int, rate: float) -> List[int]:
    return _monotonic_int_times(rng.expovariate(rate) for _ in range(count))


def _burst(rng: random.Random, count: int, config: TrafficConfig) -> List[int]:
    """2-state MMPP: alternate high/low Poisson phases.

    Phase rates are ``offered_load * burstiness`` and
    ``offered_load / burstiness``; dwell per phase is geometric with mean
    ``burst_dwell`` arrivals.  The switch decision is drawn *before* each
    gap so the schedule stays a pure function of the RNG stream.
    """
    base = config.offered_load / 1000.0
    rates = (base * config.burstiness, base / config.burstiness)
    switch_p = 1.0 / config.burst_dwell
    gaps = []
    phase = 0
    for _ in range(count):
        if rng.random() < switch_p:
            phase ^= 1
        gaps.append(rng.expovariate(rates[phase]))
    return _monotonic_int_times(gaps)


def _ramp(rng: random.Random, count: int, config: TrafficConfig) -> List[int]:
    """Diurnal ramp: rate climbs linearly from trough to peak.

    Request ``i`` of ``n`` sees rate interpolated between
    ``offered_load / ramp_peak`` and ``offered_load * ramp_peak`` --
    the tail of the stream arrives above the mean load, so a knee that
    only appears under the day's peak shows up in the same run.
    """
    base = config.offered_load / 1000.0
    lo = base / config.ramp_peak
    hi = base * config.ramp_peak
    span = max(count - 1, 1)
    gaps = []
    for i in range(count):
        rate = lo + (hi - lo) * (i / span)
        gaps.append(rng.expovariate(rate))
    return _monotonic_int_times(gaps)


def arrival_times(config: TrafficConfig, count: int) -> List[int]:
    """Absolute arrival cycles for ``count`` requests under ``config``.

    Same config + count => same list, on any host, in any process.
    """
    if not config.open:
        raise ValueError("arrival_times called for closed-loop traffic")
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = random.Random(f"traffic:{config.arrival}:{config.seed}")
    if config.arrival == "poisson":
        return _poisson(rng, count, config.offered_load / 1000.0)
    if config.arrival == "burst":
        return _burst(rng, count, config)
    return _ramp(rng, count, config)
