"""Thread programs: the operation streams host cores execute.

A :class:`ThreadProgram` is the compiled form of a workload for one
thread: loads, stores, PIM ops, fences, think-time and barriers.  The
workload generators (:mod:`repro.workloads`) compile database operations
into these programs; the system harness loads one program per core.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional


class ThreadOpKind(enum.Enum):
    """Operation kinds a core can execute.

    The memory-facing kinds mirror :class:`repro.core.memops.OpKind`;
    ``COMPUTE`` (think time) and ``BARRIER`` (workload-level thread sync)
    are core-local.
    """

    LOAD = "load"
    STORE = "store"
    FLUSH = "flush"
    PIM_OP = "pim_op"
    MEM_FENCE = "mem_fence"
    PIM_FENCE = "pim_fence"
    SCOPE_FENCE = "scope_fence"
    COMPUTE = "compute"
    BARRIER = "barrier"
    #: Open-loop request boundary: wait for the request's precomputed
    #: arrival time and an admission-queue verdict (``repro.traffic``).
    #: ``addr`` carries the request index, ``cycles`` the body length so
    #: a shed request is skipped in O(1).
    ARRIVE = "arrive"


class ThreadOp:
    """One program operation (slotted: programs can hold millions)."""

    __slots__ = ("kind", "addr", "scope", "cycles", "expect_version", "uncacheable")

    def __init__(
        self,
        kind: ThreadOpKind,
        addr: int = 0,
        scope: Optional[int] = None,
        cycles: int = 0,
        expect_version: int = 0,
        uncacheable: bool = False,
    ) -> None:
        self.kind = kind
        self.addr = addr
        self.scope = scope
        self.cycles = cycles
        #: For loads: the minimum data version a correct execution must
        #: observe (stale-read detector); 0 means unchecked.
        self.expect_version = expect_version
        self.uncacheable = uncacheable

    # -- factories ------------------------------------------------------- #

    @classmethod
    def load(cls, addr: int, scope: Optional[int] = None,
             expect_version: int = 0, uncacheable: bool = False) -> "ThreadOp":
        return cls(ThreadOpKind.LOAD, addr=addr, scope=scope,
                   expect_version=expect_version, uncacheable=uncacheable)

    @classmethod
    def store(cls, addr: int, scope: Optional[int] = None,
              uncacheable: bool = False) -> "ThreadOp":
        return cls(ThreadOpKind.STORE, addr=addr, scope=scope,
                   uncacheable=uncacheable)

    @classmethod
    def flush(cls, addr: int, scope: Optional[int] = None) -> "ThreadOp":
        return cls(ThreadOpKind.FLUSH, addr=addr, scope=scope)

    @classmethod
    def pim_op(cls, scope: int, addr: int = 0) -> "ThreadOp":
        return cls(ThreadOpKind.PIM_OP, addr=addr, scope=scope)

    @classmethod
    def mem_fence(cls) -> "ThreadOp":
        return cls(ThreadOpKind.MEM_FENCE)

    @classmethod
    def pim_fence(cls) -> "ThreadOp":
        return cls(ThreadOpKind.PIM_FENCE)

    @classmethod
    def scope_fence(cls, scope: int, addr: int = 0) -> "ThreadOp":
        return cls(ThreadOpKind.SCOPE_FENCE, addr=addr, scope=scope)

    @classmethod
    def compute(cls, cycles: int) -> "ThreadOp":
        return cls(ThreadOpKind.COMPUTE, cycles=cycles)

    @classmethod
    def barrier(cls) -> "ThreadOp":
        return cls(ThreadOpKind.BARRIER)

    @classmethod
    def arrive(cls, request: int) -> "ThreadOp":
        """Open-loop request marker (``cycles`` patched to the body
        length by :meth:`repro.workloads.base.ProgramEmitter.end_request`)."""
        return cls(ThreadOpKind.ARRIVE, addr=request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind.value} addr={self.addr:#x} scope={self.scope}>"


class ThreadProgram:
    """A named sequence of :class:`ThreadOp` for one thread."""

    def __init__(self, name: str, ops: Optional[Iterable[ThreadOp]] = None) -> None:
        self.name = name
        self.ops: List[ThreadOp] = list(ops or [])

    def append(self, op: ThreadOp) -> None:
        self.ops.append(op)

    def extend(self, ops: Iterable[ThreadOp]) -> None:
        self.ops.extend(ops)

    def __len__(self) -> int:
        return len(self.ops)

    def count(self, kind: ThreadOpKind) -> int:
        return sum(1 for op in self.ops if op.kind is kind)
