"""Host processor model: cores, entry points, and per-model issue policies.

* :mod:`repro.host.program` -- thread programs (the op streams cores run).
* :mod:`repro.host.policies` -- what each consistency model lets the
  memory-subsystem entry point forward (Section V / Table I).
* :mod:`repro.host.entry_point` -- the write-buffer-like entry point that
  enforces those rules (Fig. 6b-d).
* :mod:`repro.host.core` -- commit-order cores with limited load MLP.
"""

from repro.host.program import ThreadOp, ThreadOpKind, ThreadProgram
from repro.host.policies import IssuePolicy
from repro.host.entry_point import EntryPoint
from repro.host.core import Core

__all__ = [
    "ThreadOp",
    "ThreadOpKind",
    "ThreadProgram",
    "IssuePolicy",
    "EntryPoint",
    "Core",
]
