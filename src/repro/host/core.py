"""Host cores.

A core executes its :class:`~repro.host.program.ThreadProgram` in commit
order: memory operations are handed to the entry point at commit, loads
may overlap up to a memory-level-parallelism limit, and fences block
until the relevant outstanding operations complete.  PIM ops follow the
active consistency model:

* **atomic** -- the core behaves as if the PIM op were wrapped in fences:
  it quiesces, issues the op, and withholds commit until the MC's ACK
  (Fig. 6a).
* **store / scope** -- the op is issued and committed immediately; the
  entry point does the holding (Fig. 6b).
* **scope-relaxed / baselines** -- the op is issued and committed; nothing
  waits (Fig. 6c).

The core is also where stale reads are detected: each load op may carry
the minimum version a correct execution must observe, and the response's
observed version is checked against it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.host.entry_point import EntryPoint
from repro.host.policies import IssuePolicy
from repro.host.program import ThreadOp, ThreadOpKind, ThreadProgram
from repro.sim.component import Component
from repro.sim.kernel import Simulator, WHEEL_MASK, WHEEL_SLOTS
from repro.sim.messages import Message, MessageType
from repro.sim.stats import StatGroup

#: Module-level aliases for the per-step dispatch (a global load is
#: cheaper than the enum attribute lookup on every committed op).
_LOAD = ThreadOpKind.LOAD
_COMPUTE = ThreadOpKind.COMPUTE
_STORE = ThreadOpKind.STORE
_FLUSH = ThreadOpKind.FLUSH
_PIM_OP = ThreadOpKind.PIM_OP
_SCOPE_FENCE = ThreadOpKind.SCOPE_FENCE
_MEM_FENCE = ThreadOpKind.MEM_FENCE
_PIM_FENCE = ThreadOpKind.PIM_FENCE
_BARRIER = ThreadOpKind.BARRIER
_ARRIVE = ThreadOpKind.ARRIVE
_MT_LOAD_RESP = MessageType.LOAD_RESP
_MT_STORE_ACK = MessageType.STORE_ACK
_MT_FLUSH_ACK = MessageType.FLUSH_ACK
_MT_PIM_ACK = MessageType.PIM_ACK


class Core(Component):
    """One host core running one thread program."""

    __slots__ = ("core_id", "policy", "entry_point", "max_outstanding_loads",
                 "issue_interval", "barrier_cb", "stale_cb", "done_cb",
                 "_done_notified", "program", "_ops", "pc", "_exhausted",
                 "outstanding_loads", "outstanding_stores",
                 "outstanding_flushes", "outstanding_by_scope",
                 "_waiting_pim_ack", "_at_barrier", "_step_scheduled",
                 "stats", "_stale_reads", "_loads", "_stores", "_pim_ops",
                 "finish_time", "_step_bound", "_ep_offer", "traffic",
                 "_stalls", "_fence_wait_since")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        core_id: int,
        policy: IssuePolicy,
        entry_point: EntryPoint,
        max_outstanding_loads: int = 8,
        issue_interval: int = 1,
        barrier_cb: Optional[Callable[["Core"], None]] = None,
        stale_cb: Optional[Callable[["Core", Message], None]] = None,
        done_cb: Optional[Callable[["Core"], None]] = None,
    ) -> None:
        super().__init__(sim, name)
        self.core_id = core_id
        self.policy = policy
        self.entry_point = entry_point
        entry_point.attach_core(self)
        self.max_outstanding_loads = max_outstanding_loads
        self.issue_interval = issue_interval
        self.barrier_cb = barrier_cb
        self.stale_cb = stale_cb
        #: Invoked once, the moment :attr:`done` first turns true.  The
        #: system's run loop counts these down instead of re-evaluating
        #: every core's ``done`` predicate after every kernel event.
        self.done_cb = done_cb
        self._done_notified = False
        self.program: Optional[ThreadProgram] = None
        self._ops = ()
        self.pc = 0
        self._exhausted = False
        self.outstanding_loads = 0
        self.outstanding_stores = 0
        self.outstanding_flushes = 0
        #: Outstanding loads/stores/flushes per scope (scope-model PIM
        #: issue and scope-fence issue wait on their own scope only).
        self.outstanding_by_scope: Dict[int, int] = {}
        self._waiting_pim_ack = False
        self._at_barrier = False
        self._step_scheduled = False
        # Pre-bound callables for the per-op hot path.
        self._step_bound = self._step
        self._ep_offer = entry_point.offer
        self.stats = StatGroup(name)
        # Issue/stale counters are batched as plain ints on the core
        # (one attribute bump per op) and synced into the StatGroup only
        # when a snapshot is taken.
        self._stale_reads = 0
        self._loads = 0
        self._stores = 0
        self._pim_ops = 0
        self.stats.register_flush(self._flush_stats)
        self.finish_time: Optional[int] = None
        #: Open-loop admission queue (``repro.traffic``); ``None`` keeps
        #: the legacy closed loop with zero overhead outside the rare
        #: BARRIER/ARRIVE branches.
        self.traffic = None
        #: Stall-attribution bucket (a Tracer-owned dict) when this run
        #: traces, else None; reasons: admission_wait/admission_shed
        #: (ARRIVE verdicts) and fence_wait (blocked fence cycles).
        self._stalls = None
        self._fence_wait_since: Optional[int] = None

    def _flush_stats(self) -> None:
        stats = self.stats
        stats.counter("stale_reads").value = self._stale_reads
        stats.counter("loads").value = self._loads
        stats.counter("stores").value = self._stores
        stats.counter("pim_ops").value = self._pim_ops

    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        """Program exhausted *and* every outstanding operation completed.

        A thread is only finished once its loads returned, its stores and
        flushes were acknowledged and nothing is left in the entry point
        -- otherwise run time would stop short of the memory system's
        actual work.
        """
        return (
            self._exhausted
            and not self._at_barrier
            and self.outstanding_loads == 0
            and self.outstanding_stores == 0
            and self.outstanding_flushes == 0
            and not self._waiting_pim_ack
            and self.entry_point.drained
            and self.entry_point.pending_pim_acks == 0
            and self.entry_point.pending_scope_fences == 0
        )

    def run_program(self, program: ThreadProgram) -> None:
        self.program = program
        self._ops = program.ops
        self.pc = 0
        self._exhausted = len(program) == 0
        self._done_notified = False
        self._schedule_step(0)

    def _schedule_step(self, delay: int = 0) -> None:
        if not self._step_scheduled and not self._exhausted:
            self._step_scheduled = True
            sim = self.sim
            if delay:
                if 0 < delay < WHEEL_SLOTS:
                    # Inlined Simulator.schedule (wheel tier): the issue
                    # interval lands here once per committed op.
                    sim._seq = seq = sim._seq + 1
                    sim._wheel[(sim.now + delay) & WHEEL_MASK].append(
                        (seq, self._step_bound, ()))
                    sim._wheel_count += 1
                else:
                    sim.schedule(delay, self._step_bound)
            else:
                # Inlined Simulator.call_at_now: wake-ups outnumber every
                # other event source on the core.
                sim._seq = seq = sim._seq + 1
                sim._ring.append((seq, self._step_bound, ()))

    def _step(self) -> None:
        self._step_scheduled = False
        if self._exhausted or self._at_barrier or self._waiting_pim_ack:
            return
        op = self._ops[self.pc]
        kind = op.kind
        # Dispatch ordered by issue frequency: loads dominate every
        # workload in the sweep, then modelled compute, then stores.
        if kind is _LOAD:
            self._issue_load(op)
        elif kind is _COMPUTE:
            self._advance()
            # Schedule unconditionally (not via _schedule_step) so a
            # trailing COMPUTE still advances the clock before `done`.
            self._step_scheduled = True
            self.sim.schedule(max(1, op.cycles), self._step_bound)
        elif kind is _STORE:
            self._issue_simple(op, MessageType.STORE)
        elif kind is _FLUSH:
            self._issue_simple(op, MessageType.FLUSH)
        elif kind is _PIM_OP:
            self._issue_pim(op)
        elif kind is _SCOPE_FENCE:
            self._issue_scope_fence(op)
        elif kind is _MEM_FENCE:
            self._mem_fence()
        elif kind is _PIM_FENCE:
            self._pim_fence()
        elif kind is _BARRIER:
            # A barrier models the workload client finishing an operation
            # (results consumed): the thread's outstanding accesses must
            # have completed before it reports in.  PIM ACKs are not
            # awaited -- execution may still be in flight in the module.
            if not self._quiesced(include_pim=False):
                return  # woken by response completions
            if self.traffic is not None:
                # The final open-loop request settles here, at the
                # trailing barrier, rather than at a next ARRIVE marker.
                self.traffic.settle(self.sim.now)
            self._advance()
            self._at_barrier = True
            if self.barrier_cb is not None:
                self.barrier_cb(self)
        elif kind is _ARRIVE:
            self._arrive(op)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"core cannot execute {kind}")
        if self._exhausted and not self._done_notified:
            self._maybe_finish()

    def _advance(self) -> None:
        self.pc += 1
        if self.pc >= len(self._ops):
            self._exhausted = True
            self.finish_time = self.sim.now

    def _arrive(self, op: ThreadOp) -> None:
        """Open-loop request boundary (``repro.traffic``).

        The core is a single server: it first settles the previous
        request (arrival-to-settle latency), then asks the admission
        queue for a verdict on this one -- start it, sleep until its
        precomputed arrival cycle, or skip its body if the bounded
        queue shed it while the core was busy.
        """
        if not self._quiesced(include_pim=False):
            return  # woken by response completions
        traffic = self.traffic
        if traffic is None:
            raise RuntimeError(
                f"{self.name}: ARRIVE op without an admission queue "
                "(open-loop program under closed-loop traffic config?)")
        now = self.sim.now
        traffic.settle(now)
        verdict = traffic.poll(op.addr, now)
        if verdict > 0:  # not yet arrived: one wake-up at arrival time
            stalls = self._stalls
            if stalls is not None:
                stalls["admission_wait"] = \
                    stalls.get("admission_wait", 0) + verdict
            self._step_scheduled = True
            self.sim.schedule(verdict, self._step_bound)
            return
        if verdict < 0:  # shed: skip the request body in O(1)
            stalls = self._stalls
            if stalls is not None:
                stalls["admission_shed"] = stalls.get("admission_shed", 0) + 1
            self.pc += 1 + op.cycles
            if self.pc >= len(self._ops):
                self._exhausted = True
                self.finish_time = now
            self._schedule_step(0)
            return
        self._advance()
        self._schedule_step(0)

    # -- issuing --------------------------------------------------------- #

    def _issue_load(self, op: ThreadOp) -> None:
        if self.outstanding_loads >= self.max_outstanding_loads:
            return  # woken by a load completion
        if op.uncacheable and not self._uncacheable_ready():
            return  # UC accesses are strongly ordered (no overlap)
        msg = Message(MessageType.LOAD, op.addr, op.scope, self.core_id,
                      self, False, op.uncacheable, False, op.expect_version)
        if not self._ep_offer(msg):
            return  # woken by entry-point progress
        self.outstanding_loads += 1
        scope = op.scope
        if scope is not None:
            # Inlined _track_scope(scope, +1): one bump per scoped load.
            by_scope = self.outstanding_by_scope
            by_scope[scope] = by_scope.get(scope, 0) + 1
        self._loads += 1
        # Inlined _advance(): loads are the hottest committed op.
        self.pc = pc = self.pc + 1
        if pc >= len(self._ops):
            self._exhausted = True
            self.finish_time = self.sim.now
        self._schedule_step(self.issue_interval)

    def _track_scope(self, scope: Optional[int], delta: int) -> None:
        if scope is None:
            return
        count = self.outstanding_by_scope.get(scope, 0) + delta
        if count <= 0:
            self.outstanding_by_scope.pop(scope, None)
        else:
            self.outstanding_by_scope[scope] = count

    def _uncacheable_ready(self) -> bool:
        """x86 UC semantics: uncacheable accesses are strongly ordered
        and non-speculative -- no overlap with any outstanding access.
        This serialization (not the raw miss latency) is the main cost
        of the uncacheable coherency approach in Fig. 3."""
        return not (self.outstanding_loads or self.outstanding_stores
                    or self.outstanding_flushes)

    def _issue_simple(self, op: ThreadOp, mtype: MessageType) -> None:
        if op.uncacheable and not self._uncacheable_ready():
            return  # woken by response completions
        msg = Message(mtype, op.addr, op.scope, self.core_id, self,
                      False, op.uncacheable)
        if not self._ep_offer(msg):
            return
        if mtype is MessageType.STORE:
            self.outstanding_stores += 1
            self._stores += 1
        else:
            self.outstanding_flushes += 1
        if op.scope is not None:
            self._track_scope(op.scope, +1)
        self._advance()
        self._schedule_step(self.issue_interval)

    def _issue_pim(self, op: ThreadOp) -> None:
        # Commit-order semantics: wait for whatever earlier operations
        # this model forbids a PIM op to reorder with (see
        # IssuePolicy.pim_waits_for); without this an in-flight fill can
        # reinstall pre-PIM data after the op's flush -- the Fig. 1 race.
        if not self._pim_issue_ready(op):
            return
        msg = Message(
            MessageType.PIM_OP, op.addr, op.scope, self.core_id,
            self if self.policy.blocks_commit else self.entry_point,
        )
        if not self._ep_offer(msg):
            return
        self._pim_ops += 1
        if self.policy.blocks_commit:
            # ...and no commit until the MC ACKs (Fig. 6a).
            self._waiting_pim_ack = True
        self._advance()
        self._schedule_step(self.issue_interval)

    def _pim_issue_ready(self, op: ThreadOp) -> bool:
        waits = self.policy.pim_waits_for
        if waits == "all":
            return self._quiesced()
        if waits == "all-memops":
            return not (self.outstanding_loads or self.outstanding_stores
                        or self.outstanding_flushes)
        if waits == "same-scope":
            return self.outstanding_by_scope.get(op.scope, 0) == 0
        return True

    def _issue_scope_fence(self, op: ThreadOp) -> None:
        # The fence may not pass (or be passed by) same-scope operations
        # in any path; in-flight fills to its scope must land first.
        if self.outstanding_by_scope.get(op.scope, 0) != 0:
            self._fence_blocked()
            return  # woken by response completions
        msg = Message(
            MessageType.SCOPE_FENCE,
            addr=op.addr,
            scope=op.scope,
            core=self.core_id,
            reply_to=self.entry_point,
        )
        if not self._ep_offer(msg):
            self._fence_blocked()
            return
        self._fence_unblocked()
        self._advance()
        self._schedule_step(self.issue_interval)

    def _mem_fence(self) -> None:
        if not self._quiesced(include_pim=self.policy.mem_fence_waits_for_pim()):
            self._fence_blocked()
            return
        self._fence_unblocked()
        self._advance()
        self._schedule_step(self.issue_interval)

    def _pim_fence(self) -> None:
        ep = self.entry_point
        pim_queued = any(
            m.mtype in (MessageType.PIM_OP, MessageType.SCOPE_FENCE)
            for m in ep._queue
        )
        if pim_queued or ep.pending_pim_acks > 0 or ep.pending_scope_fences > 0:
            self._fence_blocked()
            return  # woken by subsystem ACKs / entry-point progress
        self._fence_unblocked()
        self._advance()
        self._schedule_step(self.issue_interval)

    def _fence_blocked(self) -> None:
        """Stall attribution: a fence could not commit this step."""
        if self._stalls is not None and self._fence_wait_since is None:
            self._fence_wait_since = self.sim.now

    def _fence_unblocked(self) -> None:
        """Flush the blocked-fence wait into the stall bucket."""
        since = self._fence_wait_since
        if since is not None:
            self._fence_wait_since = None
            stalls = self._stalls
            stalls["fence_wait"] = \
                stalls.get("fence_wait", 0) + (self.sim.now - since)

    def _quiesced(self, include_pim: bool = True) -> bool:
        if (self.outstanding_loads or self.outstanding_stores
                or self.outstanding_flushes or not self.entry_point.drained):
            return False
        if include_pim and self.entry_point.pending_pim_acks > 0:
            return False
        return True

    # -- wake-ups --------------------------------------------------------- #

    def receive_response(self, resp: Message) -> None:
        mtype = resp.mtype
        trace = self._trace
        if trace is not None:
            # Key the settle record on the *request's* op_id (responses
            # draw fresh ids), so one request's hops share one span.
            req = resp.req
            trace.record(self.sim.now, self.name, mtype.name,
                         req.op_id if req is not None else resp.op_id)
        if mtype is _MT_LOAD_RESP:
            self.outstanding_loads -= 1
            scope = resp.scope
            if scope is not None:
                # Inlined _track_scope(scope, -1).
                by_scope = self.outstanding_by_scope
                count = by_scope.get(scope, 0) - 1
                if count <= 0:
                    by_scope.pop(scope, None)
                else:
                    by_scope[scope] = count
            expected = resp.req.version if resp.req is not None else 0
            if expected and resp.version < expected:
                self._stale_reads += 1
                if trace is not None:
                    # Invariant fired: snapshot the flight ring (the
                    # last N events leading up to this stale read).
                    trace.flight_trigger("stale_read", self.sim.now,
                                         self.name, resp.req.op_id)
                if self.stale_cb is not None:
                    # The callback may retain the response (tracing,
                    # assertions); hand it over instead of recycling.
                    self.stale_cb(self, resp)
                    self._schedule_step(0)
                    if self._exhausted and not self._done_notified:
                        self._maybe_finish()
                    return
        elif mtype is _MT_STORE_ACK:
            self.outstanding_stores -= 1
            if resp.scope is not None:
                self._track_scope(resp.scope, -1)
        elif mtype is _MT_FLUSH_ACK:
            self.outstanding_flushes -= 1
            if resp.scope is not None:
                self._track_scope(resp.scope, -1)
        elif mtype is _MT_PIM_ACK:
            # Atomic model: the op may now commit.  The PIM op itself is
            # still travelling toward the module -- only the ACK is dead.
            self._waiting_pim_ack = False
        else:  # pragma: no cover - defensive
            raise ValueError(f"core got {mtype}")
        # The response is finished: recycle it through the message
        # pool.  (The request may be observed by tracers/tests, so only
        # the transient response is pooled.)
        resp.release()
        # Inlined _schedule_step(0): one wake-up per response delivered.
        if not self._step_scheduled and not self._exhausted:
            self._step_scheduled = True
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._ring.append((seq, self._step_bound, ()))
        elif self._exhausted and not self._done_notified:
            self._maybe_finish()

    def on_entry_point_progress(self) -> None:
        # Inlined _schedule_step(0): one wake-up per entry-point forward.
        if not self._step_scheduled and not self._exhausted:
            self._step_scheduled = True
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._ring.append((seq, self._step_bound, ()))
        elif self._exhausted and not self._done_notified:
            self._maybe_finish()

    def on_subsystem_ack(self, resp: Message) -> None:
        self._schedule_step(0)
        if self._exhausted and not self._done_notified:
            self._maybe_finish()

    def release_barrier(self) -> None:
        self._at_barrier = False
        self._schedule_step(0)
        if self._exhausted and not self._done_notified:
            self._maybe_finish()

    def _maybe_finish(self) -> None:
        """Fire ``done_cb`` exactly once, when :attr:`done` first holds.

        ``done`` is monotonic once the program is exhausted (nothing can
        issue anymore, so outstanding work only drains), which is what
        makes the one-shot notification equivalent to polling ``done``
        after every kernel event.
        """
        if self.done:
            self._done_notified = True
            if self.done_cb is not None:
                self.done_cb(self)

    @property
    def stale_reads(self) -> int:
        return self._stale_reads
