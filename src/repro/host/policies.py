"""Per-model issue policies for the memory-subsystem entry point.

Section V implements each consistency model with two knobs:

1. whether the *core* withholds commit of a PIM op until its ACK
   (atomic model only -- :attr:`IssuePolicy.blocks_commit`), and
2. which operations the *entry point* (the write buffer, Fig. 6b) holds
   back while PIM ops are in flight.

:class:`IssuePolicy` evaluates rule 2 for one queued message given the
entry point's pending state.  The relation between these operational
rules and the declarative Table-I reordering matrix
(:meth:`repro.core.models.ModelProperties.may_reorder`) is checked by the
test suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.models import ConsistencyModel, ModelProperties, properties_of
from repro.sim.messages import Message, MessageType


class IssuePolicy:
    """Decides what an entry point may forward, per consistency model."""

    def __init__(self, model: ConsistencyModel) -> None:
        self.model = model
        self.props: ModelProperties = properties_of(model)

    @property
    def blocks_commit(self) -> bool:
        """Atomic model: the core stalls at the PIM op until the ACK."""
        return self.props.blocks_commit

    @property
    def pim_waits_for(self) -> str:
        """Which *earlier* outstanding operations a PIM op must wait for
        at the core before being issued.

        A PIM op is issued at commit; operations program-order-before it
        that the model forbids reordering with must have completed by
        then, or an in-flight fill could reinstall pre-PIM data after the
        op's flush (the Fig. 1 race):

        * atomic -- everything (``"all"``; plus the post-issue ACK wait),
        * store  -- all memory operations (TSO: stores pass nothing),
        * scope  -- operations to the PIM op's own scope (``"same-scope"``),
        * scope-relaxed and the baselines -- nothing; the scope-fence is
          the tool that restores same-scope order when software needs it.
        """
        model = self.model
        if model is ConsistencyModel.ATOMIC:
            return "all"
        if model is ConsistencyModel.STORE:
            return "all-memops"
        if model is ConsistencyModel.SCOPE:
            return "same-scope"
        return "none"

    @property
    def requires_ack(self) -> bool:
        return self.props.requires_ack

    @property
    def routes_pim_through_l1(self) -> bool:
        """Scope-relaxed PIM ops traverse every cache level (Fig. 6c)."""
        return self.props.scope_buffer_all_caches

    @property
    def pim_is_direct(self) -> bool:
        """Baselines forward PIM ops past the LLC untouched (Section VI-C)."""
        return not self.props.flushes_at_llc

    def may_forward(
        self,
        msg: Message,
        pending_pim_scopes: Dict[int, int],
        fenced_scopes: Set[int],
        earlier_same_line_write: bool,
        earlier_same_scope_order: str = "",
    ) -> bool:
        """May the entry point forward ``msg`` right now?

        Args:
            msg: the queued message under consideration.
            pending_pim_scopes: scope -> count of forwarded-but-unACKed
                PIM ops (empty for models without ACKs).
            fenced_scopes: scopes with a forwarded, un-ACKed scope-fence.
            earlier_same_line_write: an older store/flush to the same
                line sits in the entry point queue (store-to-load order).
            earlier_same_scope_order: ``"pim"``/``"fence"`` when an
                older, still-queued PIM op or scope-fence to the same
                scope sits ahead in the entry point.
        """
        mtype = msg.mtype
        if mtype is MessageType.LOAD and earlier_same_line_write:
            return False
        if earlier_same_scope_order == "fence":
            # A queued scope-fence orders same-scope accesses under every
            # model -- ordering is its entire purpose.
            return False
        if (earlier_same_scope_order == "pim"
                and self.model is not ConsistencyModel.SCOPE_RELAXED):
            # Only the scope-relaxed model lets same-scope accesses
            # reorder around a (queued) PIM op; everyone else, including
            # the baselines, keeps write-buffer order here -- the
            # baselines' brokenness lives in the missing flush atomicity,
            # not in out-of-order write buffers.
            return False
        if mtype is not MessageType.PIM_OP and msg.scope in fenced_scopes:
            # Scope-fence ordering: same-scope ops wait for its ACK.  PIM
            # ops are ordered behind the fence by the request path itself
            # (they follow it through every cache level), so they need
            # not wait here.
            return False

        holds = self.props.entry_point_holds
        if holds == "none":
            return True
        if holds == "all":
            # Atomic: the core already serializes around PIM ops; the
            # entry point never holds anything extra.
            return True
        any_pending = bool(pending_pim_scopes)
        if holds == "stores":
            # TSO store semantics: PIM ops order like stores, so stores,
            # flushes, scope fences and further PIM ops wait behind a
            # pending PIM op; loads to *other* scopes may bypass it.
            if not any_pending:
                return True
            if mtype is MessageType.LOAD:
                return msg.scope not in pending_pim_scopes
            return False
        if holds == "same-scope":
            return msg.scope not in pending_pim_scopes
        raise ValueError(f"unknown hold class {holds!r}")  # pragma: no cover

    def mem_fence_waits_for_pim(self) -> bool:
        """Does a MemFence order outstanding PIM ops?

        Under atomic/store models PIM ops are ordinary (atomic/store-like)
        memory operations, so a fence waits for their ACKs.  Under the
        scope and scope-relaxed models only the dedicated fences order
        PIM ops (Section III).
        """
        return self.model in (ConsistencyModel.ATOMIC, ConsistencyModel.STORE)
