"""The memory-subsystem entry point (the write buffer of Fig. 6b).

Every memory operation a core commits enters the memory subsystem here.
The entry point enforces the per-model ordering rules on PIM ops: it
withholds the operations its :class:`~repro.host.policies.IssuePolicy`
says must wait for a pending PIM-op ACK (store model: everything but
other-scope loads; scope model: only same-scope operations -- a non-FIFO
write buffer; scope-relaxed and the baselines: nothing), and it tracks
scope-fence ACKs for the scope-relaxed model.

Routing: loads/stores/flushes go to the core's L1 (or, uncacheable,
straight onto the request network); PIM ops bypass the L1 except under
scope-relaxed, where they traverse it (Fig. 6c); scope fences always
traverse the L1 (they must scan it, Fig. 6d).

Under the open-loop traffic model a second, *logical* queue sits ahead
of this one: the per-core bounded admission queue
(:class:`repro.traffic.AdmissionQueue`).  Requests arrive on a
precomputed seeded schedule, are shed past the configured depth, and
their latency is measured from arrival to settle -- the entry point
itself is unchanged; it just sees each admitted request's operations
when the core starts serving it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.core.models import ConsistencyModel
from repro.host.policies import IssuePolicy
from repro.sim.component import Component
from repro.sim.kernel import Simulator, WHEEL_MASK
from repro.sim.messages import Message, MessageType
from repro.sim.stats import StatGroup

#: Module-level aliases: the serve loop tests message kinds per queue
#: entry, and a global load is cheaper than the enum attribute lookup.
_LOAD = MessageType.LOAD
_STORE = MessageType.STORE
_FLUSH = MessageType.FLUSH
_PIM_OP = MessageType.PIM_OP
_SCOPE_FENCE = MessageType.SCOPE_FENCE


class EntryPoint(Component):
    """Per-core entry point enforcing PIM-op ordering (Section V)."""

    __slots__ = ("core_id", "policy", "l1", "req_net", "depth", "_queue",
                 "_core", "_serving", "pending_pim_scopes",
                 "pending_pim_acks", "fenced_scopes", "pending_scope_fences",
                 "stats", "_forwarded", "_holds_free", "_holds_stores",
                 "_pim_reorders", "_serve_bound", "_l1_offer", "_req_offer")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        core_id: int,
        policy: IssuePolicy,
        l1: Component,
        req_net: Component,
        depth: int = 16,
    ) -> None:
        super().__init__(sim, name)
        self.core_id = core_id
        self.policy = policy
        self.l1 = l1
        self.req_net = req_net
        self.depth = depth
        self._queue: deque = deque()
        self._core = None  # set by the system builder (wake callback)
        self._serving = False
        #: scope -> count of forwarded, un-ACKed PIM ops.
        self.pending_pim_scopes: Dict[int, int] = {}
        #: PIM ops forwarded and not yet ACKed (all scopes).
        self.pending_pim_acks = 0
        #: scopes with an outstanding (un-ACKed) scope-fence.
        self.fenced_scopes: Set[int] = set()
        self.pending_scope_fences = 0
        self.stats = StatGroup(name)
        # Batched as a plain int (one attribute bump per forward) and
        # synced into the StatGroup only when a snapshot is taken.
        self._forwarded = 0
        self.stats.register_flush(self._flush_stats)
        # Policy traits predigested for the per-cycle serve loop (the
        # loop inlines IssuePolicy.may_forward; these avoid re-deriving
        # the per-model facts on every queue scan).
        # Pre-bound callables for the per-forward hot path.
        self._serve_bound = self._serve
        self._l1_offer = l1.offer
        self._req_offer = req_net.offer
        props_holds = policy.props.entry_point_holds
        self._holds_free = props_holds in ("none", "all")
        self._holds_stores = props_holds == "stores"
        self._pim_reorders = policy.model is ConsistencyModel.SCOPE_RELAXED

    def attach_core(self, core) -> None:
        self._core = core

    def _flush_stats(self) -> None:
        self.stats.counter("ops_forwarded").value = self._forwarded

    # ------------------------------------------------------------------ #
    # core side
    # ------------------------------------------------------------------ #

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.depth

    @property
    def drained(self) -> bool:
        return not self._queue

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        queue = self._queue
        if len(queue) >= self.depth:
            return False
        queue.append(msg)
        if not self._serving:
            self._serving = True
            # Inlined Simulator.schedule (wheel tier, delay 1): the entry
            # point forwards at most one message per cycle.
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._wheel[(sim.now + 1) & WHEEL_MASK].append(
                (seq, self._serve_bound, ()))
            sim._wheel_count += 1
        return True

    # ------------------------------------------------------------------ #
    # service: forward the first permitted message
    # ------------------------------------------------------------------ #

    def _schedule_serve(self) -> None:
        if not self._serving:
            self._serving = True
            # Inlined Simulator.schedule (wheel tier, delay 1).
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._wheel[(sim.now + 1) & WHEEL_MASK].append(
                (seq, self._serve_bound, ()))
            sim._wheel_count += 1

    def _serve(self) -> None:
        self._serving = False
        # One forward per cycle; scan for the first permitted message.
        # This loop inlines :meth:`IssuePolicy.may_forward` (it runs for
        # every entry-point cycle), and the ordering context each
        # candidate sees -- "an older store/flush to my line sits
        # ahead", "an older PIM op / scope-fence to my scope sits ahead"
        # -- accumulates incrementally in one queue walk instead of
        # re-scanning the prefix per candidate (the old O(n^2) shape).
        queue = self._queue
        if not queue:
            return
        pending = self.pending_pim_scopes
        fenced = self.fenced_scopes
        # Head fast path: the queue head sees no older-message ordering
        # context, so in-order traffic (the overwhelmingly common case)
        # skips the scanning loop entirely.  A blocked head falls
        # through to the full scan, which re-derives the same verdict.
        msg = queue[0]
        mtype = msg.mtype
        scope = msg.scope
        allowed = True
        if (scope is not None and mtype is not _PIM_OP
                and scope in fenced):
            allowed = False
        if allowed and not self._holds_free:
            if self._holds_stores:
                if pending:
                    if mtype is _LOAD:
                        allowed = scope not in pending
                    else:
                        allowed = False
            else:
                allowed = scope not in pending
        if allowed:
            if mtype is _PIM_OP or mtype is _SCOPE_FENCE:
                accepted = self._forward(msg)
            elif msg.uncacheable:
                accepted = self._req_offer(msg, self)
            else:
                accepted = self._l1_offer(msg, self)
            if accepted:
                queue.popleft()
                self._forwarded += 1
                trace = self._trace
                if trace is not None:
                    trace.record(self.sim.now, self.name, mtype.name,
                                 msg.op_id)
                if self._core is not None:
                    self._core.on_entry_point_progress()
                if queue and not self._serving:
                    self._serving = True
                    # Inlined Simulator.schedule (wheel tier, delay 1).
                    sim = self.sim
                    sim._seq = seq = sim._seq + 1
                    sim._wheel[(sim.now + 1) & WHEEL_MASK].append(
                        (seq, self._serve_bound, ()))
                    sim._wheel_count += 1
            return
        store_lines = None  # lines of earlier stores/flushes (lazy)
        pim_scopes = None  # scopes of earlier queued PIM ops (lazy)
        fence_scopes = None  # scopes of earlier queued scope-fences
        forwarded = False
        pim_op = _PIM_OP
        holds_free = self._holds_free
        holds_stores = self._holds_stores
        pim_reorders = self._pim_reorders
        for i, msg in enumerate(self._queue):
            mtype = msg.mtype
            scope = msg.scope
            allowed = True
            if (mtype is _LOAD and store_lines is not None
                    and (msg.addr & ~63) in store_lines):
                # Store-to-load order: an older store/flush to the same
                # line sits in the entry point.
                allowed = False
            elif scope is not None and mtype is not pim_op:
                # A held PIM op behaves like an un-ACKed one for
                # ordering: a younger same-scope access jumping over it
                # would read pre-PIM data (the Fig. 1 race, reproduced
                # inside the write buffer).  Whether the PIM op blocks
                # the younger access is the policy's call (scope-relaxed
                # permits the reorder); a queued or un-ACKed scope-fence
                # blocks same-scope accesses under every model --
                # ordering is its entire purpose.
                if fence_scopes is not None and scope in fence_scopes:
                    allowed = False
                elif (not pim_reorders and pim_scopes is not None
                        and scope in pim_scopes):
                    allowed = False
                elif scope in fenced:
                    allowed = False
            if allowed and not holds_free:
                # Pending-ACK holds (store model: everything but
                # other-scope loads; scope model: same-scope only).
                if holds_stores:
                    if pending:
                        if mtype is _LOAD:
                            allowed = scope not in pending
                        else:
                            allowed = False
                else:
                    allowed = scope not in pending
            if allowed:
                # Plain loads/stores/flushes route straight to the L1
                # (or, uncacheable, the request network); PIM ops and
                # scope fences take the bookkeeping path in _forward().
                if mtype is pim_op or mtype is _SCOPE_FENCE:
                    accepted = self._forward(msg)
                elif msg.uncacheable:
                    accepted = self._req_offer(msg, self)
                else:
                    accepted = self._l1_offer(msg, self)
                if accepted:
                    if i:
                        del self._queue[i]
                    else:
                        self._queue.popleft()
                    forwarded = True
                    trace = self._trace
                    if trace is not None:
                        trace.record(self.sim.now, self.name, mtype.name,
                                     msg.op_id)
                break
            # Not forwardable: record the ordering constraints this
            # message imposes on everything younger.
            if mtype is _STORE or mtype is _FLUSH:
                if store_lines is None:
                    store_lines = {msg.addr & ~63}
                else:
                    store_lines.add(msg.addr & ~63)
            elif mtype is _SCOPE_FENCE:
                if fence_scopes is None:
                    fence_scopes = {scope}
                else:
                    fence_scopes.add(scope)
            elif mtype is pim_op:
                if pim_scopes is None:
                    pim_scopes = {scope}
                else:
                    pim_scopes.add(scope)
        if forwarded:
            self._forwarded += 1
            if self._core is not None:
                self._core.on_entry_point_progress()
            if self._queue:
                self._schedule_serve()

    def _forward(self, msg: Message) -> bool:
        mtype = msg.mtype
        if mtype is _PIM_OP:
            msg.direct = self.policy.pim_is_direct
            target = self.l1 if self.policy.routes_pim_through_l1 else self.req_net
            if not target.offer(msg, self):
                return False
            if not self.policy.blocks_commit:
                # The MC ACKs every PIM op; when the core is not itself
                # waiting (every model but atomic), the ACK lands here.
                # ``pending_pim_acks`` backs the dedicated PIM fence;
                # ``pending_pim_scopes`` additionally drives the store/
                # scope models' holds.
                self.pending_pim_acks += 1
                if self.policy.props.entry_point_holds in ("stores", "same-scope"):
                    scope_count = self.pending_pim_scopes.get(msg.scope, 0)
                    self.pending_pim_scopes[msg.scope] = scope_count + 1
            return True
        if mtype is _SCOPE_FENCE:
            if not self.l1.offer(msg, self):
                return False
            self.fenced_scopes.add(msg.scope)
            self.pending_scope_fences += 1
            return True
        target = self.req_net if msg.uncacheable else self.l1
        return target.offer(msg, self)

    def unblock(self) -> None:
        self._schedule_serve()

    # ------------------------------------------------------------------ #
    # ACKs from the memory subsystem
    # ------------------------------------------------------------------ #

    def receive_response(self, resp: Message) -> None:
        if resp.mtype is MessageType.PIM_ACK:
            self.pending_pim_acks -= 1
            if resp.scope in self.pending_pim_scopes:
                count = self.pending_pim_scopes[resp.scope] - 1
                if count <= 0:
                    del self.pending_pim_scopes[resp.scope]
                else:
                    self.pending_pim_scopes[resp.scope] = count
            # The ACKed PIM op itself is still in flight toward the
            # module; only the ACK is recyclable (released below).
        elif resp.mtype is MessageType.SCOPE_FENCE_ACK:
            self.pending_scope_fences -= 1
            self.fenced_scopes.discard(resp.scope)
        else:  # pragma: no cover - defensive
            raise ValueError(f"entry point got {resp.mtype}")
        self._schedule_serve()
        if self._core is not None:
            self._core.on_subsystem_ack(resp)
        resp.release()
