"""The memory-subsystem entry point (the write buffer of Fig. 6b).

Every memory operation a core commits enters the memory subsystem here.
The entry point enforces the per-model ordering rules on PIM ops: it
withholds the operations its :class:`~repro.host.policies.IssuePolicy`
says must wait for a pending PIM-op ACK (store model: everything but
other-scope loads; scope model: only same-scope operations -- a non-FIFO
write buffer; scope-relaxed and the baselines: nothing), and it tracks
scope-fence ACKs for the scope-relaxed model.

Routing: loads/stores/flushes go to the core's L1 (or, uncacheable,
straight onto the request network); PIM ops bypass the L1 except under
scope-relaxed, where they traverse it (Fig. 6c); scope fences always
traverse the L1 (they must scan it, Fig. 6d).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.host.policies import IssuePolicy
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.messages import Message, MessageType
from repro.sim.stats import StatGroup


class EntryPoint(Component):
    """Per-core entry point enforcing PIM-op ordering (Section V)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        core_id: int,
        policy: IssuePolicy,
        l1: Component,
        req_net: Component,
        depth: int = 16,
    ) -> None:
        super().__init__(sim, name)
        self.core_id = core_id
        self.policy = policy
        self.l1 = l1
        self.req_net = req_net
        self.depth = depth
        self._queue: deque = deque()
        self._core = None  # set by the system builder (wake callback)
        self._serving = False
        #: scope -> count of forwarded, un-ACKed PIM ops.
        self.pending_pim_scopes: Dict[int, int] = {}
        #: PIM ops forwarded and not yet ACKed (all scopes).
        self.pending_pim_acks = 0
        #: scopes with an outstanding (un-ACKed) scope-fence.
        self.fenced_scopes: Set[int] = set()
        self.pending_scope_fences = 0
        self.stats = StatGroup(name)
        self._forwarded = self.stats.counter("ops_forwarded")

    def attach_core(self, core) -> None:
        self._core = core

    # ------------------------------------------------------------------ #
    # core side
    # ------------------------------------------------------------------ #

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.depth

    @property
    def drained(self) -> bool:
        return not self._queue

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        if self.is_full:
            return False
        self._queue.append(msg)
        self._schedule_serve()
        return True

    # ------------------------------------------------------------------ #
    # service: forward the first permitted message
    # ------------------------------------------------------------------ #

    def _schedule_serve(self) -> None:
        if not self._serving:
            self._serving = True
            self.sim.schedule(1, self._serve)

    def _serve(self) -> None:
        self._serving = False
        progress = False
        # One forward per cycle; scan for the first permitted message.
        for i, msg in enumerate(self._queue):
            if not self.policy.may_forward(
                msg,
                self.pending_pim_scopes,
                self.fenced_scopes,
                self._earlier_same_line_write(i, msg),
                self._earlier_same_scope_order(i, msg),
            ):
                continue
            if self._forward(msg):
                del self._queue[i]
                progress = True
            break
        if progress:
            self._forwarded.add()
            if self._core is not None:
                self._core.on_entry_point_progress()
            if self._queue:
                self._schedule_serve()

    def _earlier_same_line_write(self, index: int, msg: Message) -> bool:
        if msg.mtype is not MessageType.LOAD:
            return False
        line = msg.addr & ~63
        for i, earlier in enumerate(self._queue):
            if i >= index:
                return False
            if (earlier.mtype in (MessageType.STORE, MessageType.FLUSH)
                    and (earlier.addr & ~63) == line):
                return True
        return False

    def _earlier_same_scope_order(self, index: int, msg: Message) -> str:
        """Oldest still-queued same-scope orderer ahead of ``msg``.

        Returns ``"pim"`` or ``"fence"`` when an older, not-yet-forwarded
        PIM op / scope-fence to ``msg``'s scope sits ahead of it, else
        ``""``.  A held PIM op behaves like an un-ACKed one for ordering:
        a younger same-scope access jumping over it would read pre-PIM
        data (the Fig. 1 race, reproduced inside the write buffer).
        Whether the *PIM op* blocks the younger access is the policy's
        call (scope-relaxed permits the reorder); a queued scope-fence
        blocks same-scope accesses under every model -- ordering is its
        entire purpose.
        """
        if msg.scope is None or msg.mtype is MessageType.PIM_OP:
            return ""
        found = ""
        for i, earlier in enumerate(self._queue):
            if i >= index:
                break
            if earlier.scope != msg.scope:
                continue
            if earlier.mtype is MessageType.SCOPE_FENCE:
                return "fence"
            if earlier.mtype is MessageType.PIM_OP and not found:
                found = "pim"
        return found

    def _forward(self, msg: Message) -> bool:
        mtype = msg.mtype
        if mtype is MessageType.PIM_OP:
            msg.direct = self.policy.pim_is_direct
            target = self.l1 if self.policy.routes_pim_through_l1 else self.req_net
            if not target.offer(msg, self):
                return False
            if not self.policy.blocks_commit:
                # The MC ACKs every PIM op; when the core is not itself
                # waiting (every model but atomic), the ACK lands here.
                # ``pending_pim_acks`` backs the dedicated PIM fence;
                # ``pending_pim_scopes`` additionally drives the store/
                # scope models' holds.
                self.pending_pim_acks += 1
                if self.policy.props.entry_point_holds in ("stores", "same-scope"):
                    scope_count = self.pending_pim_scopes.get(msg.scope, 0)
                    self.pending_pim_scopes[msg.scope] = scope_count + 1
            return True
        if mtype is MessageType.SCOPE_FENCE:
            if not self.l1.offer(msg, self):
                return False
            self.fenced_scopes.add(msg.scope)
            self.pending_scope_fences += 1
            return True
        target = self.req_net if msg.uncacheable else self.l1
        return target.offer(msg, self)

    def unblock(self) -> None:
        self._schedule_serve()

    # ------------------------------------------------------------------ #
    # ACKs from the memory subsystem
    # ------------------------------------------------------------------ #

    def receive_response(self, resp: Message) -> None:
        if resp.mtype is MessageType.PIM_ACK:
            self.pending_pim_acks -= 1
            if resp.scope in self.pending_pim_scopes:
                count = self.pending_pim_scopes[resp.scope] - 1
                if count <= 0:
                    del self.pending_pim_scopes[resp.scope]
                else:
                    self.pending_pim_scopes[resp.scope] = count
        elif resp.mtype is MessageType.SCOPE_FENCE_ACK:
            self.pending_scope_fences -= 1
            self.fenced_scopes.discard(resp.scope)
        else:  # pragma: no cover - defensive
            raise ValueError(f"entry point got {resp.mtype}")
        self._schedule_serve()
        if self._core is not None:
            self._core.on_subsystem_ack(resp)
