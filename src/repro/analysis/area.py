"""Analytical area model for the scope buffer and SBV (Section VI).

The paper reports, from a Synopsys 28 nm synthesis, a 0.092% area overhead
for adding a scope buffer + SBV to the L2 (the LLC), and 0.22% total for
the scope-relaxed model (which needs them in every cache).  We reproduce
the arithmetic with a bit-count model: overhead = added SRAM bits /
existing cache SRAM bits (data + tag + state).  Bit counts are a good
proxy because both structures are SRAM-dominated arrays in the same
technology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.config import CacheConfig, ScopeBufferConfig, SystemConfig


def cache_storage_bits(config: CacheConfig, address_bits: int = 48,
                       state_bits: int = 4) -> int:
    """Total SRAM bits of a cache: data + tag + coherence state + LRU."""
    line_bits = config.line_bytes * 8
    offset_bits = (config.line_bytes - 1).bit_length()
    index_bits = (config.num_sets - 1).bit_length() if config.num_sets > 1 else 0
    tag_bits = address_bits - offset_bits - index_bits
    lru_bits = max(1, (config.ways - 1).bit_length())
    per_line = line_bits + tag_bits + state_bits + lru_bits
    return config.num_lines * per_line


def scope_hardware_bits(cache: CacheConfig, scope_buffer: ScopeBufferConfig,
                        scope_tag_bits: int = 48) -> int:
    """Added bits: the scope buffer entries plus one SBV bit per set.

    The per-line PIM-enabled marking is not counted: it travels on
    existing page-attribute metadata (Section IV-B compares it to the
    uncacheable page marking), like the paper's synthesis, which counts
    the two new structures.
    """
    lru_bits = max(1, (scope_buffer.ways - 1).bit_length())
    buffer_bits = scope_buffer.entries * (scope_tag_bits + 1 + lru_bits)
    sbv_bits = cache.num_sets
    return buffer_bits + sbv_bits


@dataclass(frozen=True)
class AreaModel:
    """Computes the Section-VI overhead numbers for a system config."""

    config: SystemConfig

    def llc_overhead(self) -> float:
        """Scope buffer + SBV at the LLC only (atomic/store/scope models).

        The paper reports 0.092% for the 2 MB L2.
        """
        added = scope_hardware_bits(self.config.llc, self.config.llc_scope_buffer)
        return added / cache_storage_bits(self.config.llc)

    def all_caches_overhead(self) -> float:
        """Scope buffer + SBV in every cache (scope-relaxed model).

        The paper reports 0.22% total.  Total added bits across the LLC
        and every private L1, over the total cache SRAM.
        """
        added = scope_hardware_bits(self.config.llc, self.config.llc_scope_buffer)
        base = cache_storage_bits(self.config.llc)
        for _ in range(self.config.cores.num_cores):
            added += scope_hardware_bits(self.config.l1, self.config.l1_scope_buffer)
            base += cache_storage_bits(self.config.l1)
        return added / base

    def summary(self) -> Dict[str, float]:
        return {
            "llc_overhead": self.llc_overhead(),
            "all_caches_overhead": self.all_caches_overhead(),
        }
