"""Reporting and hardware-cost analysis.

* :mod:`repro.analysis.area` -- the scope-buffer/SBV area-overhead model
  behind Section VI's 0.092% / 0.22% claims.
* :mod:`repro.analysis.report` -- table/series formatting for the
  benchmark harness (prints the rows the paper's figures plot).
"""

from repro.analysis.area import AreaModel, cache_storage_bits
from repro.analysis.report import format_series, format_table

__all__ = ["AreaModel", "cache_storage_bits", "format_series", "format_table"]
