"""Plain-text table and series formatting for the benchmark harness.

The benches print the same rows/series the paper's figures plot; these
helpers keep the output uniform and diff-able (EXPERIMENTS.md embeds it).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Number = Union[int, float]


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """A fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_name: str, xs: Sequence[Number],
                  series: Dict[str, Sequence[Number]], title: str = "") -> str:
    """A figure's data as a table: one x column, one column per curve."""
    headers = [x_name] + list(series)
    rows: List[List[Number]] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
