"""Plain-text table and series formatting for the benchmark harness.

The benches print the same rows/series the paper's figures plot; these
helpers keep the output uniform and diff-able.  Campaign results render
through :func:`campaign_markdown` into the checked-in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Number = Union[int, float]


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """A fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_name: str, xs: Sequence[Number],
                  series: Dict[str, Sequence[Number]], title: str = "") -> str:
    """A figure's data as a table: one x column, one column per curve."""
    headers = [x_name] + list(series)
    rows: List[List[Number]] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _fmt(cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def latency_table(result):
    """``(headers, rows)`` of open-loop latency stats, or ``None``.

    One row per campaign point that carries a merged ``traffic`` stats
    group (open-loop runs only): arrival-to-settle percentiles, the
    extremes, and the admission accounting.  ``None`` when no point ran
    open-loop, so closed-loop reports are unchanged.
    """
    rows = []
    for p in result.ok_points:
        t = p.result.group("traffic")
        if not t:
            continue
        rows.append([
            p.name, int(t.req_offered), int(t.req_admitted),
            int(t.req_dropped), int(t.latency_p50), int(t.latency_p99),
            int(t.latency_p999), int(t.latency_max),
            int(t.queue_depth_max),
        ])
    if not rows:
        return None
    headers = ["point", "offered", "admitted", "dropped", "p50", "p99",
               "p999", "max", "peak_queue"]
    return headers, rows


def stalls_table(result):
    """``(headers, rows)`` of per-point stall attribution, or ``None``.

    One row per campaign point whose result carries an ``obs`` payload
    (traced runs only: ``sweep run --trace``), one column per stall
    reason observed anywhere in the campaign, each cell summing that
    reason across the point's components.  Point names carry the model,
    so the table doubles as the per-model stall breakdown.  ``None``
    when nothing was traced, so untraced reports are unchanged.
    """
    from repro.obs.trace import STALL_REASONS, stall_totals

    per_point = []
    seen = set()
    for p in result.ok_points:
        obs = getattr(p.result, "obs", None)
        if not obs:
            continue
        totals = stall_totals(obs)
        per_point.append((p.name, totals))
        seen.update(totals)
    if not per_point:
        return None
    # Documented taxonomy order first, then anything new alphabetically.
    reasons = [r for r in STALL_REASONS if r in seen] \
        + sorted(seen - set(STALL_REASONS))
    headers = ["point"] + reasons
    rows = [[name] + [totals.get(r, 0) for r in reasons]
            for name, totals in per_point]
    return headers, rows


def campaign_markdown(result) -> str:
    """Render a :class:`~repro.api.sweep.CampaignResult` as Markdown.

    The output is fully determined by the campaign's specs and results
    (no timestamps, no machine state), so regenerating it is diff-able:
    a changed line in ``EXPERIMENTS.md`` means the simulation changed.
    """
    campaign = result.campaign
    lines: List[str] = [f"# {campaign.title}", ""]
    if campaign.description:
        lines += [campaign.description.strip(), ""]
    failed = result.failed_points
    lines += [
        f"Campaign `{campaign.name}`: {len(result.points)} points"
        + (f", **{len(failed)} failed**" if failed else "") + ".",
        "",
        f"Result digest: `{result.digest()}`",
        "",
        "Regenerate with: `repro-bench sweep run "
        f"{campaign.name} --report <file>`",
        "",
    ]
    if campaign.slo is not None:
        headers, rows = result.slo_table(campaign.slo)
        if rows:
            lines += [f"## {campaign.slo.title}", "", "```",
                      format_table(headers, rows), "```", ""]
    for pivot in campaign.pivots:
        xs, series = result.series(pivot)
        if not xs:
            continue
        lines += [f"## {pivot.title}", "", "```",
                  format_series(pivot.x, xs, series), "```", ""]
    latency = latency_table(result)
    if latency is not None:
        lines += ["## Arrival-to-settle latency [cycles] per open-loop "
                  "point", "", "```",
                  format_table(latency[0], latency[1]), "```", ""]
    stalls = stalls_table(result)
    if stalls is not None:
        lines += ["## Stall attribution per traced point (cycles or "
                  "incident counts; see docs/observability.md)", "",
                  "```", format_table(stalls[0], stalls[1]), "```", ""]
    headers, rows = result.table()
    lines += ["## All points", "", "```",
              format_table(headers, rows), "```", ""]
    if failed:
        lines += ["## Failures", ""]
        for point in failed:
            last = (point.error or "").strip().splitlines()
            lines += [f"* `{point.name}`: {last[-1] if last else 'unknown'}"]
        lines += [""]
    return "\n".join(lines)
