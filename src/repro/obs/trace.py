"""The trace recorder: bounded event ring, stalls, flight snapshots.

One :class:`Tracer` instance rides along with one
:class:`~repro.system.builder.System` when its config carries an enabled
:class:`~repro.sim.config.TraceConfig`.  Components record through two
kinds of hook, both dormant behind a ``None`` attribute when tracing is
off:

* **event records** -- ``tracer.record(cycle, component, kind, op_id)``
  appends a 4-tuple to a bounded ring (:class:`collections.deque` with
  ``maxlen``); once full, the oldest records fall off and
  ``events_dropped`` counts them.  ``ring_size=0`` disables event
  recording entirely (stall attribution still runs), which is what
  campaign-level tracing uses to keep store entries small.
* **stall buckets** -- ``tracer.stall_bucket(component)`` hands the
  component a plain dict it increments in place
  (``bucket[reason] = bucket.get(reason, 0) + n``), so the hot path
  pays one dict update and no method call.

The kernel additionally tallies per-tier dispatch counts (ring / wheel /
heap) through :meth:`Tracer.kernel_tally` -- the ground-truth data the
ROADMAP's dispatch-loop batching item needs.

The **flight recorder** (``TraceConfig.flight``) snapshots the ring the
first time an invariant trips mid-run -- today the trigger is a stale
read observed by a core -- so a fuzz violation carries the last N events
leading up to it (:func:`repro.fuzz.harness.fuzz_run` with tracing).

Everything here is observational: a tracer never schedules events and
never touches simulation state, which is why result digests are
byte-identical with tracing on or off.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

#: Schema tag of the obs payload attached to a SimulationResult.
OBS_SCHEMA = "repro-obs/1"

#: The stall taxonomy (see docs/observability.md).  Values are either
#: cycles (waits with a known duration) or incident counts; the unit
#: rides in the reason name so tables stay self-describing.
STALL_REASONS = (
    "mshr_full",          # L1/LLC miss bounced off a full MSHR file
    "admission_wait",     # core arrival delayed by the admission queue
    "admission_shed",     # core arrival dropped (count, not cycles)
    "fence_wait",         # core blocked in a memory/PIM/scope fence
    "pim_busy",           # MC held a PIM op back (module buffer full)
    "crossbar_contention",  # PIM scope throttled at max_concurrent_scopes
)


class Tracer:
    """Per-run trace recorder (see module docstring).

    Args:
        ring_size: event ring capacity; 0 records no events.
        flight: arm the flight recorder (first trigger snapshots the
            ring; later triggers only bump the trigger count).
    """

    __slots__ = ("ring", "ring_size", "appended", "flight_armed",
                 "flight", "flight_triggers", "_stalls",
                 "kernel_cycles", "kernel_ring", "kernel_wheel",
                 "kernel_heap")

    def __init__(self, ring_size: int = 65536, flight: bool = False) -> None:
        self.ring_size = ring_size
        self.ring = deque(maxlen=ring_size) if ring_size > 0 else None
        self.appended = 0
        self.flight_armed = flight
        self.flight: Optional[dict] = None
        self.flight_triggers = 0
        self._stalls: Dict[str, Dict[str, int]] = {}
        self.kernel_cycles = 0
        self.kernel_ring = 0
        self.kernel_wheel = 0
        self.kernel_heap = 0

    # -- event records --------------------------------------------------- #

    @property
    def recording(self) -> bool:
        """Whether event records are kept (components hook only then)."""
        return self.ring is not None

    def record(self, cycle: int, component: str, kind: str,
               op_id: int) -> None:
        """Append one event record to the ring."""
        self.appended += 1
        self.ring.append((cycle, component, kind, op_id))

    @property
    def events_dropped(self) -> int:
        return self.appended - len(self.ring) if self.ring is not None else 0

    # -- stall attribution ----------------------------------------------- #

    def stall_bucket(self, component: str) -> Dict[str, int]:
        """The (shared, mutable) stall dict for one component."""
        bucket = self._stalls.get(component)
        if bucket is None:
            bucket = {}
            self._stalls[component] = bucket
        return bucket

    # -- kernel dispatch accounting -------------------------------------- #

    def kernel_tally(self, ring_n: int, wheel_n: int, heap_n: int) -> None:
        """One simulated cycle's dispatch mix (called by the kernel)."""
        self.kernel_cycles += 1
        self.kernel_ring += ring_n
        self.kernel_wheel += wheel_n
        self.kernel_heap += heap_n

    # -- flight recorder ------------------------------------------------- #

    def flight_trigger(self, reason: str, cycle: int, component: str,
                       op_id: int) -> None:
        """An invariant fired: snapshot the ring (first trigger only)."""
        self.flight_triggers += 1
        if not self.flight_armed or self.flight is not None:
            return
        self.flight = {
            "trigger": reason,
            "cycle": cycle,
            "component": component,
            "op_id": op_id,
            "events": [list(r) for r in self.ring] if self.ring else [],
        }

    # -- export ----------------------------------------------------------- #

    def export(self) -> dict:
        """The obs payload riding on a :class:`SimulationResult`.

        Deterministic for a deterministic simulation: insertion orders
        are execution orders and stall dicts serialize sorted, so two
        runs of one spec -- on any backend -- export byte-identical
        payloads (the property the store's idempotent writes and the
        campaign report gates rely on).
        """
        out: dict = {
            "schema": OBS_SCHEMA,
            "kernel": {
                "cycles": self.kernel_cycles,
                "ring_events": self.kernel_ring,
                "wheel_events": self.kernel_wheel,
                "heap_events": self.kernel_heap,
            },
            "stalls": {name: dict(sorted(bucket.items()))
                       for name, bucket in sorted(self._stalls.items())
                       if bucket},
        }
        if self.ring is not None:
            out["events"] = [list(r) for r in self.ring]
            out["events_recorded"] = self.appended
            out["events_dropped"] = self.events_dropped
        if self.flight_triggers:
            out["flight_triggers"] = self.flight_triggers
        if self.flight is not None:
            out["flight"] = self.flight
        return out


def stall_totals(obs: dict) -> Dict[str, int]:
    """Sum one obs payload's stalls across components, by reason."""
    totals: Dict[str, int] = {}
    for bucket in (obs.get("stalls") or {}).values():
        for reason, amount in bucket.items():
            totals[reason] = totals.get(reason, 0) + amount
    return dict(sorted(totals.items()))
