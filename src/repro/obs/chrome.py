"""Chrome trace-event JSON export of a trace dump.

``repro-bench trace export`` turns the obs payload's event ring into the
`Chrome trace-event format`_ (the JSON flavor Perfetto and
``chrome://tracing`` load):

* every **component** becomes a track (one ``tid`` under ``pid`` 0,
  named by a ``"M"`` metadata event);
* every **request** becomes a chain of ``"X"`` complete slices, one per
  component hop, whose duration runs to the request's next hop (the
  last hop gets a unit slice);
* hops of one request are stitched with ``"s"``/``"t"``/``"f"`` flow
  events keyed by ``op_id``, so Perfetto draws arrows following each
  request through entry point, caches, memory controller and PIM
  module.

Timestamps are simulated cycles passed through as microseconds -- the
viewer's time axis reads directly in cycles.

:func:`validate_chrome_trace` is the schema check CI's trace-smoke job
runs on the exported file; it is deliberately strict about the fields
this exporter promises.

.. _Chrome trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

#: ``ph`` values this exporter emits (and the validator accepts).
_PHASES = frozenset({"M", "X", "s", "t", "f"})


def chrome_trace(obs: dict) -> dict:
    """Convert one obs payload (with an event ring) to a Chrome trace.

    Raises :class:`ValueError` if the payload recorded no events
    (``ring_size=0`` tracing carries stalls only -- nothing to draw).
    """
    events = obs.get("events")
    if not events:
        raise ValueError(
            "trace dump has no event records (ring_size was 0 or nothing "
            "ran); re-run with a positive trace ring")

    components: List[str] = []
    tids: Dict[str, int] = {}
    for _, component, _, _ in events:
        if component not in tids:
            tids[component] = len(components)
            components.append(component)

    out: List[dict] = [{
        "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
        "args": {"name": "repro simulation"},
    }]
    for component, tid in tids.items():
        out.append({"ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
                    "args": {"name": component}})

    by_op: Dict[int, List[tuple]] = {}
    for record in events:
        by_op.setdefault(record[3], []).append(tuple(record))

    for op_id in sorted(by_op):
        hops = by_op[op_id]
        for i, (cycle, component, kind, _) in enumerate(hops):
            if i + 1 < len(hops):
                dur = max(1, hops[i + 1][0] - cycle)
            else:
                dur = 1
            tid = tids[component]
            out.append({
                "ph": "X", "pid": 0, "tid": tid, "ts": cycle, "dur": dur,
                "name": kind, "cat": "sim",
                "args": {"op_id": op_id},
            })
            if len(hops) > 1:
                phase = ("s" if i == 0
                         else "f" if i + 1 == len(hops) else "t")
                flow = {
                    "ph": phase, "pid": 0, "tid": tid, "ts": cycle,
                    "id": op_id, "name": "request", "cat": "req",
                }
                if phase == "f":
                    flow["bp"] = "e"  # bind to the enclosing slice
                out.append(flow)

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": obs.get("schema", "?"),
            "components": components,
            "events_recorded": obs.get("events_recorded", len(events)),
            "events_dropped": obs.get("events_dropped", 0),
        },
    }


def validate_chrome_trace(trace: dict) -> Dict[str, int]:
    """Schema-check one exported trace; returns counters per phase.

    Raises :class:`ValueError` on the first defect.  This is the gate
    CI's trace-smoke job runs on the uploaded artifact.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace is not a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents missing or empty")
    counts: Dict[str, int] = {}
    flow_ids = set()
    slice_keys = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"traceEvents[{i}]: unknown ph {ph!r}")
        counts[ph] = counts.get(ph, 0) + 1
        for key in ("pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"traceEvents[{i}]: missing {key!r}")
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{i}]: missing numeric ts")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)) \
                    or event["dur"] <= 0:
                raise ValueError(f"traceEvents[{i}]: X without positive dur")
            slice_keys.add((event["tid"], event["ts"]))
        else:  # flow event
            if "id" not in event:
                raise ValueError(f"traceEvents[{i}]: flow without id")
            flow_ids.add(event["id"])
    if counts.get("X", 0) < 1:
        raise ValueError("no complete ('X') slices in the trace")
    # Every flow endpoint must sit on a slice (same tid + ts), or the
    # viewer silently drops the arrow.
    for i, event in enumerate(events):
        if event.get("ph") in ("s", "t", "f") \
                and (event["tid"], event["ts"]) not in slice_keys:
            raise ValueError(
                f"traceEvents[{i}]: flow event not anchored to a slice")
    return counts


def validate_file(path: str) -> Dict[str, int]:
    """Validate a trace file on disk; prints a one-line summary."""
    with open(path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    counts = validate_chrome_trace(trace)
    print(f"ok: {path} -- " + ", ".join(
        f"{counts.get(ph, 0)} {ph!r}" for ph in ("M", "X", "s", "t", "f")))
    return counts
