"""The ``repro`` logger hierarchy (``--log-level`` / ``$REPRO_LOG``).

Every subsystem logs under the ``repro`` namespace
(``repro.store``, ``repro.workqueue``, ``repro.obs``, ...).  This module
owns the single handler on the ``repro`` root logger so fleets produce
one parseable line format on stderr::

    2026-08-08T12:00:01 repro.workqueue WARNING lease on shard 0003 ...

Level resolution, weakest to strongest: the default (``WARNING``), the
``$REPRO_LOG`` environment variable, the ``--log-level`` CLI flag.
Distributed entry points (``worker``, ``sweep run --distributed``)
default to ``INFO`` so queue supervision stays visible without a flag.

:func:`configure_logging` is idempotent -- repeated calls retune the
level instead of stacking handlers -- and never touches the *root*
logger, so embedding applications keep their own logging setup.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment variable naming the default log level.
LOG_ENV = "REPRO_LOG"

#: The fleet-parseable line format (ISO-ish timestamp, no milliseconds).
LOG_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
LOG_DATEFMT = "%Y-%m-%dT%H:%M:%S"

_VALID = ("debug", "info", "warning", "error", "critical")


class _StderrHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stderr`` at emit time.

    Binding the stream at construction (what ``StreamHandler()`` does)
    captures whatever ``sys.stderr`` happens to be right then -- a
    redirected or since-closed file under test harnesses and daemon
    re-execs.  Looking it up per record always writes to the live one.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):  # noqa: D102 - StreamHandler protocol
        return sys.stderr


def resolve_level(flag: Optional[str] = None,
                  default: str = "warning") -> int:
    """The effective level: ``--log-level`` beats ``$REPRO_LOG`` beats
    ``default``.  Raises :class:`ValueError` on an unknown name."""
    name = flag or os.environ.get(LOG_ENV) or default
    name = name.strip().lower()
    if name not in _VALID:
        raise ValueError(
            f"unknown log level {name!r}; valid: {', '.join(_VALID)}")
    return getattr(logging, name.upper())


def configure_logging(flag: Optional[str] = None,
                      default: str = "warning") -> logging.Logger:
    """Install (or retune) the handler on the ``repro`` logger.

    Returns the configured logger.  Idempotent: one handler, ever.
    """
    level = resolve_level(flag, default)
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    handler = next(
        (h for h in logger.handlers
         if getattr(h, "_repro_handler", False)), None)
    if handler is None:
        handler = _StderrHandler()
        handler._repro_handler = True
        handler.setFormatter(
            logging.Formatter(LOG_FORMAT, datefmt=LOG_DATEFMT))
        logger.addHandler(handler)
        logger.propagate = False
    handler.setLevel(level)
    return logger
