"""Observability layer: event tracing, stall attribution, telemetry.

The simulator's results describe *what* happened; this package records
*where the cycles went*.  Everything here is opt-in and strictly
observational -- a tracer never schedules events, never mutates
simulation state, and the disabled path is a single ``is not None``
check at each hook site, so result digests are byte-identical with
tracing off or on (``tests/obs/test_neutrality.py`` gates this).

* :mod:`repro.obs.trace` -- the :class:`~repro.obs.trace.Tracer`:
  bounded event ring buffer, per-component stall attribution, kernel
  dispatch-tier accounting, and the flight-recorder snapshot taken when
  a litmus/fuzz invariant fires.
* :mod:`repro.obs.chrome` -- export a trace dump as Chrome trace-event
  JSON (components as tracks, requests as flow events; loads in
  Perfetto or ``chrome://tracing``).
* :mod:`repro.obs.telemetry` -- structured JSONL telemetry from
  distributed workers/coordinators, consumed by ``repro-bench queue
  tail``.
* :mod:`repro.obs.logconf` -- the ``repro`` logger hierarchy behind
  ``--log-level`` / ``$REPRO_LOG``.
"""

from repro.obs.trace import OBS_SCHEMA, Tracer

__all__ = ["OBS_SCHEMA", "Tracer"]
