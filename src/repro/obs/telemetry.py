"""Structured JSONL telemetry from distributed campaign runs.

Workers and coordinators sharing a store append one JSON object per
line to ``<store>/queue/telemetry.jsonl``.  Lines are small (well under
``PIPE_BUF``) and written with ``O_APPEND``, so concurrent writers on
one filesystem interleave whole lines; the tolerant reader skips
anything torn or foreign.  ``repro-bench queue tail`` renders the file
as a live view of the fleet.

Event kinds (the ``event`` field):

=============  =====================================================
``claim``      a worker acquired a shard lease
``start``      a worker began executing a shard's points
``point``      one point finished (``status`` ok/failed/cached)
``heartbeat``  a worker renewed its lease after a point
``finish``     a shard's done report landed
``abandon``    a worker lost its lease mid-shard and stopped
``publish``    a coordinator published a run (shards, points)
``reap``       a coordinator reaped an expired lease
``retry``      a shard was re-offered with backoff
``local``      the coordinator ran a shard itself (graceful
               degradation)
=============  =====================================================

Every record carries ``ts`` (epoch seconds), ``who`` (worker or
coordinator id) and whatever identifies the work (``run``, ``shard``,
``spec``).  Telemetry is observability, not protocol: the queue's
correctness never depends on it, and any I/O failure writing a line is
swallowed.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterator, List, Optional

#: Telemetry file name under the store's ``queue/`` directory.
TELEMETRY_FILE = "telemetry.jsonl"

#: Known event kinds (the tail view validates nothing -- this is for
#: docs and tests).
EVENT_KINDS = ("claim", "start", "point", "heartbeat", "finish",
               "abandon", "publish", "reap", "retry", "local")


def telemetry_path(store_root: str) -> str:
    return os.path.join(os.fspath(store_root), "queue", TELEMETRY_FILE)


class TelemetryWriter:
    """Appends telemetry records for one actor (worker or coordinator).

    Opens lazily, appends line-buffered, never raises on I/O failure:
    a fleet must not die because its telemetry disk filled up.
    """

    def __init__(self, store_root: str, who: str) -> None:
        self.path = telemetry_path(store_root)
        self.who = who
        self._handle = None
        self._dead = False

    def emit(self, event: str, **fields) -> None:
        if self._dead:
            return
        record = {"ts": round(time.time(), 3), "event": event,
                  "who": self.who}
        record.update(fields)
        try:
            if self._handle is None:
                os.makedirs(os.path.dirname(self.path), exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8",
                                    buffering=1)
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            self._dead = True

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


def read_telemetry(store_root: str, last: Optional[int] = None) -> List[dict]:
    """The parsed telemetry records, oldest first (torn lines skipped)."""
    path = telemetry_path(store_root)
    records: List[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "event" in record:
                    records.append(record)
    except OSError:
        return []
    if last is not None and last >= 0:
        records = records[-last:]
    return records


def format_event(record: Dict[str, object]) -> str:
    """One telemetry record as a fixed-layout text line."""
    ts = record.get("ts")
    clock = (time.strftime("%H:%M:%S", time.localtime(ts))
             if isinstance(ts, (int, float)) else "??:??:??")
    event = str(record.get("event", "?"))
    who = str(record.get("who", "?"))
    detail = " ".join(
        f"{key}={record[key]}"
        for key in sorted(record)
        if key not in ("ts", "event", "who"))
    return f"{clock}  {event:<9}  {who:<24}  {detail}".rstrip()


def follow_telemetry(store_root: str, poll_s: float = 0.5,
                     stop_after_s: Optional[float] = None,
                     start_at_end: bool = False) -> Iterator[dict]:
    """Yield records as they are appended (``queue tail --follow``).

    Polls the file for growth; rotating or truncating the file restarts
    the reader from the top.  ``stop_after_s`` bounds the follow (tests
    and sanity; default follows forever).  ``start_at_end`` skips what
    is already in the file and yields only records appended afterwards
    (the tail view prints the backlog itself via :func:`read_telemetry`).
    """
    path = telemetry_path(store_root)
    offset = 0
    if start_at_end:
        try:
            offset = os.path.getsize(path)
        except OSError:
            offset = 0
    deadline = (time.time() + stop_after_s
                if stop_after_s is not None else None)
    while True:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size < offset:
            offset = 0  # truncated/rotated: start over
        if size > offset:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read(size - offset)
            # Only consume whole lines; a torn tail waits for its rest.
            consumed = chunk.rfind(b"\n") + 1
            offset += consumed
            for line in chunk[:consumed].splitlines():
                try:
                    record = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue
                if isinstance(record, dict) and "event" in record:
                    yield record
        if deadline is not None and time.time() >= deadline:
            return
        time.sleep(poll_s)
