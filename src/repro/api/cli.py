"""``repro-bench``: run experiment sweeps from the command line.

Three subcommands::

    repro-bench list
        Show the registered workloads and their parameters.

    repro-bench run WORKLOAD [--models atomic,scope,...] [--num-scopes 4,8]
                    [--param key=value ...] [--preset scaled|paper]
                    [--jobs N] [--max-events N] [--variant TAG]
        Run the named workload under each model x scope-count point and
        print the headline statistics.  ``--jobs N`` fans the sweep over
        N worker processes through the ProcessPoolBackend.

    repro-bench perf [--quick] [--configs a,b] [--repeats N]
                     [--check BENCH_kernel.json] [--tolerance 0.30]
                     [--output out.json] [--update BENCH_kernel.json]
                     [--profile CONFIG]
        Measure event-kernel throughput (events/sec) on the pinned
        benchmark configurations, asserting run-to-run determinism.
        ``--check`` compares against a checked-in baseline and exits
        non-zero on a result-digest mismatch or a throughput regression
        beyond the tolerance; ``--profile`` runs one config under
        cProfile and prints the top cumulative entries instead.

Examples::

    repro-bench run litmus --models naive,atomic --jobs 2
    repro-bench run ycsb --num-scopes 4,8 --param num_ops=30
    repro-bench run tpch --param query=q6 --param scale=0.015625
    repro-bench perf --quick --check BENCH_kernel.json

For YCSB, ``num_records`` defaults to ``2000 * num_scopes`` (the
benchmark harness's scaled sweep density) unless given via ``--param``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Dict, List, Optional, Sequence

from repro.api.backends import backend_for
from repro.api.experiment import Experiment
from repro.api.registry import REGISTRY
from repro.api.results import headline
from repro.api.runner import Runner
from repro.core.models import ConsistencyModel

#: Figure order for --models all (the six models of the evaluation sweeps).
DEFAULT_MODELS = ["naive", "sw-flush", "atomic", "store", "scope",
                  "scope-relaxed"]

#: Records per scope used when the YCSB sweep doesn't pin num_records.
YCSB_RECORDS_PER_SCOPE = 2000


def _parse_value(text: str):
    """Best-effort literal parsing: ints, floats, bools, None, else str."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs: Sequence[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        params[key] = _parse_value(value)
    return params


def _parse_models(text: str) -> List[ConsistencyModel]:
    names = DEFAULT_MODELS if text == "all" else [
        t.strip() for t in text.split(",") if t.strip()
    ]
    try:
        return [ConsistencyModel(name) for name in names]
    except ValueError as exc:
        raise SystemExit(
            f"{exc}; valid models: "
            f"{', '.join(m.value for m in ConsistencyModel)}"
        ) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run PIM consistency-model experiment sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workloads")

    # The perf subcommand owns its own argument set (repro.api.perf);
    # main() dispatches to it before this parser runs.  Registered here
    # so --help lists it.
    sub.add_parser("perf", add_help=False,
                   help="measure event-kernel throughput on the pinned "
                        "benchmark configurations")

    run = sub.add_parser("run", help="run a workload sweep")
    run.add_argument("workload", help="registered workload name")
    run.add_argument("--models", default="all",
                     help="comma-separated consistency models, or 'all'")
    run.add_argument("--num-scopes", default=None,
                     help="comma-separated scope counts to sweep "
                          "(default: 4; for tpch, the query's scaled "
                          "scope count)")
    run.add_argument("--param", action="append", default=[],
                     metavar="KEY=VALUE", help="workload parameter")
    run.add_argument("--preset", default="scaled",
                     choices=("scaled", "paper"),
                     help="base system configuration")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes (>1 uses the process pool)")
    run.add_argument("--max-events", type=int, default=200_000_000)
    run.add_argument("--variant", default="cli")
    return parser


def _cmd_list() -> int:
    descriptions = REGISTRY.describe()
    width = max(len(name) for name in descriptions)
    print("Registered workloads:")
    for name, doc in descriptions.items():
        print(f"  {name:<{width}}  {doc}")
    return 0


def _default_scopes(workload: str, params: Dict[str, object]) -> int:
    """A scope count that actually fits the workload's parameters.

    TPC-H queries pin their own scope need (Table IV x scale), so the
    sweep must start there; everything else defaults to 4.
    """
    if workload == "tpch":
        workload_obj = REGISTRY.create("tpch", params)
        return workload_obj.scaled_scopes()
    return 4


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workload not in REGISTRY.names():
        raise SystemExit(
            f"unknown workload {args.workload!r}; "
            f"registered: {', '.join(REGISTRY.names())}"
        )
    models = _parse_models(args.models)
    base_params = _parse_params(args.param)
    try:
        if args.num_scopes is not None:
            scope_counts = [int(s) for s in args.num_scopes.split(",")
                            if s.strip()]
            if not scope_counts:
                raise ValueError("--num-scopes is empty")
        else:
            scope_counts = [_default_scopes(args.workload, base_params)]

        experiments = []
        for num_scopes in scope_counts:
            params = dict(base_params)
            if args.workload == "ycsb" and "num_records" not in params:
                params["num_records"] = YCSB_RECORDS_PER_SCOPE * num_scopes
            for model in models:
                experiments.append(Experiment.from_dict({
                    "workload": args.workload,
                    "params": params,
                    "config": {"preset": args.preset, "model": model.value,
                               "num_scopes": num_scopes},
                    "variant": args.variant,
                    "max_events": args.max_events,
                }))
        # Fail fast on bad workload parameters, before any simulation.
        experiments[0].build_workload()
    except (TypeError, KeyError, ValueError) as exc:
        raise SystemExit(
            f"invalid parameters for workload {args.workload!r}: {exc}"
        ) from None

    backend = backend_for(args.jobs)
    print(f"{len(experiments)} experiments "
          f"({len(models)} models x {len(scope_counts)} scope counts) "
          f"on the {backend.name} backend")
    results = Runner(backend=backend).run_all(experiments)

    from repro.analysis.report import format_table
    columns = ["workload", "scopes", "model", "run_time", "stale_reads",
               "sb_hit_rate", "scan_latency", "pim_ops"]
    rows = []
    for exp, res in zip(experiments, results):
        h = headline(res)
        rows.append([
            exp.workload, exp.config.num_scopes, h["model"], h["run_time"],
            h["stale_reads"], f"{h['scope_buffer_hit_rate']:.3f}",
            f"{h['llc_scan_latency']:.1f}", h["pim_ops_executed"],
        ])
    print(format_table(columns, rows, title=f"{args.workload} sweep"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arg_list = list(argv) if argv is not None else sys.argv[1:]
    if arg_list and arg_list[0] == "perf":
        from repro.api.perf import main as perf_main
        return perf_main(arg_list[1:])
    args = _build_parser().parse_args(arg_list)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
