"""``repro-bench``: run experiment sweeps from the command line.

The subcommands (``--log-level LEVEL`` before any of them, or
``$REPRO_LOG``, tunes the ``repro`` logger hierarchy)::

    repro-bench list
        Show the registered workloads and their parameters.

    repro-bench sweep list
    repro-bench sweep list-points CAMPAIGN
    repro-bench sweep run CAMPAIGN [--jobs N|auto] [--output FILE]
                          [--report FILE] [--resume FILE] [--store DIR]
                          [--timeout-s N] [--trace] [--no-progress]
                          [--distributed] [--shard-size N]
                          [--lease-s N] [--grace-s N] [--max-attempts N]
        Declarative campaigns: expand a registered campaign (or a JSON
        campaign file) into its experiment grid and execute it with
        per-point failure isolation.  ``--output`` writes the campaign
        JSON artifact (results + digest), ``--report`` renders the
        figure-grade Markdown report (EXPERIMENTS.md), ``--resume``
        pre-seeds the run from an earlier artifact so only missing or
        previously failed points simulate.  ``--store DIR`` (default:
        ``$REPRO_STORE``) attaches the persistent result store: points
        already on disk hydrate without simulating, fresh points persist
        as they finish -- any campaign resumes across sessions without
        an artifact file.  ``--timeout-s`` bounds each point's wall
        clock (a hung point fails settled instead of wedging the shard).
        ``--distributed`` shards the campaign into a lease-protected
        work queue under the store that any fleet of ``repro-bench
        worker`` processes can chew cooperatively; crashed or straggling
        workers are re-dispatched, transient failures retried with
        capped backoff, and the run degrades to local execution when no
        worker joins within the grace period.  ``--trace`` overlays
        stall-attribution tracing on execution (spec hashes, store keys
        and the campaign digest are unchanged; observation never
        perturbs results) so the report gains a per-point stall table;
        a progress line with ETA streams to stderr unless
        ``--no-progress``.

    repro-bench worker --store DIR [--poll-s N] [--max-idle-s N]
                       [--max-tasks N] [--once] [--id NAME]
        Join the fleet: pull queue tasks published under the store,
        execute their points with write-through persistence, heartbeat
        the lease after every point.  Safe to run any number of these
        on any machine sharing the store directory.

    repro-bench queue status [--store DIR] [--json]
    repro-bench queue tail [--store DIR] [--lines N] [--follow]
                           [--poll-s N] [--max-s N]
        ``status`` shows each active queue run: shards, leases
        (active/expired), completed tasks; ``--json`` emits the rows
        machine-readably.  ``tail`` renders the fleet's structured
        telemetry (``<store>/queue/telemetry.jsonl``: claim/start/
        point/heartbeat/finish/retry/... records from every worker and
        coordinator) as a live text view; ``--follow`` keeps polling
        for new records.

    repro-bench trace run WORKLOAD [--model NAME] [--num-scopes N]
                          [--param key=value ...] [--preset scaled|paper]
                          [--ring N] [--flight] [--max-events N]
                          [--output FILE]
    repro-bench trace report DUMP.json
    repro-bench trace export DUMP.json [--output FILE] [--validate]
        Observability (:mod:`repro.obs`): ``run`` executes one
        experiment with the event ring enabled and writes a trace dump
        (spec + obs payload: per-event records, stall attribution,
        kernel dispatch-tier mix); ``report`` summarizes a dump as
        text tables; ``export`` converts a dump to Chrome trace-event
        JSON loadable in Perfetto / ``chrome://tracing``
        (``--validate`` schema-checks the result, as CI does).  See
        ``docs/observability.md``.

    repro-bench fuzz run [--seed N] [--programs N] [--max-ops N]
                         [--rounds N] [--jobs N|auto] [--store DIR]
                         [--artifacts DIR] [--output FILE] [--no-timing]
                         [--no-corpus] [--weaken MODE] [--trace]
    repro-bench fuzz replay [--store DIR] [--artifacts DIR] [--jobs N]
                            [--no-timing]
    repro-bench fuzz corpus [--store DIR] [--artifacts DIR]
        Differential litmus fuzzing (:mod:`repro.fuzz`): ``run``
        generates a seeded scenario batch, checks the strength-lattice,
        happens-before and simulator-agreement invariants, shrinks any
        violation to a minimal JSON repro under ``DIR/fuzz/repros/``
        and banks surviving scenarios with their outcome fingerprints
        into the ``DIR/fuzz/corpus/`` regression corpus; the report is
        byte-identical across backends for a fixed seed.  ``replay``
        re-checks every banked entry and exits nonzero on drift;
        ``corpus`` summarizes what is banked.  ``--weaken`` breaks a
        mechanism on purpose (oracle self-test).  ``--trace`` arms the
        flight recorder: each shrunk timing violation re-runs with the
        event ring on and the snapshot leading up to the firing
        invariant lands under ``DIR/fuzz/flight/``.

    repro-bench store stats|verify [--store DIR]
    repro-bench store prune [--store DIR] [--max-age-days N] [--stale]
                            [--fingerprint FP]
    repro-bench store export CAMPAIGN --output FILE [--store DIR]
        Inspect the persistent store, garbage-collect it by age or by
        code fingerprint, or export a campaign's stored points as a
        ``--resume``-compatible JSON artifact.

    repro-bench run WORKLOAD [--models atomic,scope,...] [--num-scopes 4,8]
                    [--param key=value ...] [--preset scaled|paper]
                    [--jobs N] [--max-events N] [--variant TAG]
        Run the named workload under each model x scope-count point and
        print the headline statistics.  ``--jobs N`` fans the sweep over
        N worker processes through the ProcessPoolBackend.

    repro-bench perf [--quick] [--configs a,b] [--repeats N]
                     [--check BENCH_kernel.json] [--tolerance 0.30]
                     [--output out.json] [--update BENCH_kernel.json]
                     [--profile CONFIG]
        Measure event-kernel throughput (events/sec) on the pinned
        benchmark configurations, asserting run-to-run determinism.
        ``--check`` compares against a checked-in baseline and exits
        non-zero on a result-digest mismatch or a throughput regression
        beyond the tolerance; ``--profile`` runs one config under
        cProfile and prints the top cumulative entries instead.

Examples::

    repro-bench run litmus --models naive,atomic --jobs 2
    repro-bench run ycsb --num-scopes 4,8 --param num_ops=30
    repro-bench run tpch --param query=q6 --param scale=0.015625
    repro-bench perf --quick --check BENCH_kernel.json
    repro-bench sweep run smoke --jobs 2 --output smoke.json
    repro-bench sweep run paper-grid --jobs auto --report EXPERIMENTS.md
    repro-bench sweep run paper-grid --store ~/.cache/repro-store
    repro-bench store stats --store ~/.cache/repro-store

For YCSB, ``num_records`` defaults to ``2000 * num_scopes`` (the
benchmark harness's scaled sweep density) unless given via ``--param``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Dict, List, Optional, Sequence

from repro.api.backends import backend_for
from repro.api.experiment import Experiment
from repro.api.registry import REGISTRY
from repro.api.results import headline
from repro.api.runner import Runner
from repro.core.models import ConsistencyModel

#: Figure order for --models all (the six models of the evaluation sweeps).
DEFAULT_MODELS = ["naive", "sw-flush", "atomic", "store", "scope",
                  "scope-relaxed"]

#: Records per scope used when the YCSB sweep doesn't pin num_records.
YCSB_RECORDS_PER_SCOPE = 2000


def _parse_value(text: str):
    """Best-effort literal parsing: ints, floats, bools, None, else str."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs: Sequence[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        params[key] = _parse_value(value)
    return params


def _parse_models(text: str) -> List[ConsistencyModel]:
    names = DEFAULT_MODELS if text == "all" else [
        t.strip() for t in text.split(",") if t.strip()
    ]
    try:
        return [ConsistencyModel(name) for name in names]
    except ValueError as exc:
        raise SystemExit(
            f"{exc}; valid models: "
            f"{', '.join(m.value for m in ConsistencyModel)}"
        ) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run PIM consistency-model experiment sweeps.",
    )
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        choices=("debug", "info", "warning", "error",
                                 "critical"),
                        help="verbosity of the 'repro' logger hierarchy "
                             "(overrides $REPRO_LOG; default: warning, "
                             "or info for distributed commands)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workloads")

    # The perf subcommand owns its own argument set (repro.api.perf);
    # main() dispatches to it before this parser runs.  Registered here
    # so --help lists it.
    sub.add_parser("perf", add_help=False,
                   help="measure event-kernel throughput on the pinned "
                        "benchmark configurations")

    sweep = sub.add_parser("sweep", help="declarative campaign sweeps")
    ssub = sweep.add_subparsers(dest="sweep_command", required=True)
    ssub.add_parser("list", help="list registered campaigns")
    points = ssub.add_parser("list-points",
                             help="show a campaign's expanded points")
    points.add_argument("campaign",
                        help="registered campaign name or JSON campaign file")
    srun = ssub.add_parser("run", help="execute a campaign")
    srun.add_argument("campaign",
                      help="registered campaign name or JSON campaign file")
    srun.add_argument("--jobs", default="1", metavar="N|auto",
                      help="worker processes; 'auto' uses every core")
    srun.add_argument("--output", default=None, metavar="FILE",
                      help="write the campaign JSON artifact "
                           "(results + digest)")
    srun.add_argument("--report", default=None, metavar="FILE",
                      help="write the Markdown report (EXPERIMENTS.md)")
    srun.add_argument("--append", action="store_true",
                      help="append to --report instead of overwriting "
                           "(stacks several campaigns into one file)")
    srun.add_argument("--resume", default=None, metavar="FILE",
                      help="pre-seed from an earlier --output artifact; "
                           "only missing/failed points simulate")
    srun.add_argument("--store", default=None, metavar="DIR",
                      help="persistent result store directory (default: "
                           "$REPRO_STORE); stored points hydrate without "
                           "simulating, fresh points persist as they "
                           "finish")
    srun.add_argument("--timeout-s", type=float, default=None, metavar="N",
                      help="per-point wall-clock budget; a hung point "
                           "fails settled (and retryable) instead of "
                           "wedging its shard")
    srun.add_argument("--trace", action="store_true",
                      help="overlay stall-attribution tracing on "
                           "execution (no event ring; spec hashes and "
                           "the campaign digest are unchanged) and add "
                           "the stall table to the output and --report")
    srun.add_argument("--no-progress", action="store_true",
                      help="suppress the stderr progress line "
                           "(points done/total with ETA)")
    srun.add_argument("--distributed", action="store_true",
                      help="execute through the lease-protected work "
                           "queue under --store so repro-bench worker "
                           "fleets can share the campaign; requires a "
                           "store")
    srun.add_argument("--shard-size", type=int, default=4, metavar="N",
                      help="points per published work-queue task "
                           "(--distributed)")
    srun.add_argument("--lease-s", type=float, default=60.0, metavar="N",
                      help="worker lease duration; must exceed the "
                           "longest single point (--distributed)")
    srun.add_argument("--grace-s", type=float, default=15.0, metavar="N",
                      help="how long a task may go unclaimed before the "
                           "coordinator runs it locally (--distributed)")
    srun.add_argument("--max-attempts", type=int, default=4, metavar="N",
                      help="tries per task before its points settle as "
                           "lost (--distributed)")

    worker = sub.add_parser("worker",
                            help="pull and execute work-queue tasks from "
                                 "a shared store")
    worker.add_argument("--store", default=None, metavar="DIR",
                        help="store directory (default: $REPRO_STORE)")
    worker.add_argument("--poll-s", type=float, default=0.5, metavar="N",
                        help="idle sleep between queue scans")
    worker.add_argument("--max-idle-s", type=float, default=None,
                        metavar="N",
                        help="exit after the queue stays empty this long "
                             "(default: poll forever)")
    worker.add_argument("--max-tasks", type=int, default=None, metavar="N",
                        help="exit after completing N tasks")
    worker.add_argument("--once", action="store_true",
                        help="drain what is claimable now, then exit")
    worker.add_argument("--id", default=None, metavar="NAME",
                        help="worker identity recorded in leases "
                             "(default: <hostname>-<pid>)")

    queue = sub.add_parser("queue", help="inspect the distributed work "
                                         "queue")
    qsub = queue.add_subparsers(dest="queue_command", required=True)
    qstatus = qsub.add_parser("status", help="show active queue runs")
    qstatus.add_argument("--store", default=None, metavar="DIR",
                         help="store directory (default: $REPRO_STORE)")
    qstatus.add_argument("--json", action="store_true",
                         help="emit the run rows as JSON (machine-"
                              "readable; an empty queue prints [])")
    qtail = qsub.add_parser("tail",
                            help="render the fleet's telemetry "
                                 "(claims, points, heartbeats, "
                                 "retries) as a live text view")
    qtail.add_argument("--store", default=None, metavar="DIR",
                       help="store directory (default: $REPRO_STORE)")
    qtail.add_argument("--lines", type=int, default=20, metavar="N",
                       help="show the last N records of the backlog "
                            "first (0 for none)")
    qtail.add_argument("--follow", action="store_true",
                       help="keep polling for new records "
                            "(Ctrl-C to stop)")
    qtail.add_argument("--poll-s", type=float, default=0.5, metavar="N",
                       help="poll interval while following")
    qtail.add_argument("--max-s", type=float, default=None, metavar="N",
                       help="stop following after N seconds "
                            "(default: follow forever)")

    trace = sub.add_parser("trace",
                           help="record, report and export simulation "
                                "traces (repro.obs)")
    tsub = trace.add_subparsers(dest="trace_command", required=True)
    trun = tsub.add_parser("run",
                           help="run one experiment with tracing on "
                                "and write the trace dump JSON")
    trun.add_argument("workload", help="registered workload name")
    trun.add_argument("--model", default="atomic",
                      help="consistency model for the traced run")
    trun.add_argument("--num-scopes", type=int, default=None, metavar="N",
                      help="scope count (default: 4; for tpch, the "
                           "query's scaled scope count)")
    trun.add_argument("--param", action="append", default=[],
                      metavar="KEY=VALUE", help="workload parameter")
    trun.add_argument("--preset", default="scaled",
                      choices=("scaled", "paper"),
                      help="base system configuration")
    trun.add_argument("--ring", type=int, default=65536, metavar="N",
                      help="event ring capacity (oldest records drop "
                           "when full; 0 keeps stalls only)")
    trun.add_argument("--flight", action="store_true",
                      help="arm the flight recorder: snapshot the ring "
                           "the first time an invariant fires")
    trun.add_argument("--max-events", type=int, default=200_000_000)
    trun.add_argument("--variant", default="cli")
    trun.add_argument("--output", default="trace.json", metavar="FILE",
                      help="trace dump file to write")
    treport = tsub.add_parser("report",
                              help="summarize a trace dump as text "
                                   "tables")
    treport.add_argument("dump", help="trace dump file (from trace run)")
    texport = tsub.add_parser("export",
                              help="convert a trace dump to Chrome "
                                   "trace-event JSON (Perfetto)")
    texport.add_argument("dump", help="trace dump file (from trace run)")
    texport.add_argument("--output", default=None, metavar="FILE",
                         help="Chrome trace file to write (default: "
                              "<dump>.chrome.json)")
    texport.add_argument("--validate", action="store_true",
                         help="schema-check the exported file (the CI "
                              "trace-smoke gate)")

    from repro.fuzz.oracle import WEAKEN_CHOICES

    fuzz = sub.add_parser("fuzz",
                          help="differential litmus fuzzing of the "
                               "consistency models")
    fsub = fuzz.add_subparsers(dest="fuzz_command", required=True)
    frun = fsub.add_parser("run",
                           help="generate scenarios, check invariants, "
                                "shrink violations, bank survivors")
    frun.add_argument("--seed", type=int, default=0, metavar="N",
                      help="root generator seed (the whole run is a "
                           "pure function of it)")
    frun.add_argument("--programs", type=int, default=50, metavar="N",
                      help="scenario batch size")
    frun.add_argument("--max-ops", type=int, default=None, metavar="N",
                      help="cap each scenario's operation count")
    frun.add_argument("--rounds", type=int, default=2, metavar="N",
                      help="timing-workload repetitions per scenario")
    frun.add_argument("--jobs", default="1", metavar="N|auto",
                      help="worker processes for the timing leg")
    frun.add_argument("--store", default=None, metavar="DIR",
                      help="result store directory (default: "
                           "$REPRO_STORE); also the default corpus root")
    frun.add_argument("--artifacts", default=None, metavar="DIR",
                      help="corpus/repro root (default: the store root)")
    frun.add_argument("--output", default=None, metavar="FILE",
                      help="write the deterministic JSON run report")
    frun.add_argument("--no-timing", action="store_true",
                      help="skip the timing-simulator agreement leg")
    frun.add_argument("--no-corpus", action="store_true",
                      help="do not bank survivors or repros on disk")
    frun.add_argument("--weaken", default=None, choices=WEAKEN_CHOICES,
                      help="deliberately break a mechanism (oracle "
                           "self-test; violations are expected and the "
                           "command exits nonzero)")
    frun.add_argument("--trace", action="store_true",
                      help="flight-recorder mode: re-run each shrunk "
                           "timing violation with the event ring armed "
                           "and dump the snapshot under "
                           "<artifacts>/fuzz/flight/")
    freplay = fsub.add_parser("replay",
                              help="re-check every banked corpus entry "
                                   "(regression suite)")
    freplay.add_argument("--store", default=None, metavar="DIR",
                         help="store directory (default: $REPRO_STORE)")
    freplay.add_argument("--artifacts", default=None, metavar="DIR",
                         help="corpus root (default: the store root)")
    freplay.add_argument("--jobs", default="1", metavar="N|auto",
                         help="worker processes for timing re-runs")
    freplay.add_argument("--no-timing", action="store_true",
                         help="skip re-simulating recorded stale counts")
    fcorpus = fsub.add_parser("corpus",
                              help="summarize the banked corpus and "
                                   "minimal repros")
    fcorpus.add_argument("--store", default=None, metavar="DIR",
                         help="store directory (default: $REPRO_STORE)")
    fcorpus.add_argument("--artifacts", default=None, metavar="DIR",
                         help="corpus root (default: the store root)")

    store = sub.add_parser("store",
                           help="inspect and maintain the persistent "
                                "result store")
    stsub = store.add_subparsers(dest="store_command", required=True)
    for name, doc in (("stats", "entry counts, size, fingerprints"),
                      ("verify", "check every entry's integrity"),
                      ("prune", "garbage-collect entries"),
                      ("export", "write a campaign's stored points as a "
                                 "--resume artifact")):
        sp = stsub.add_parser(name, help=doc)
        sp.add_argument("--store", default=None, metavar="DIR",
                        help="store directory (default: $REPRO_STORE)")
        if name == "prune":
            sp.add_argument("--max-age-days", type=float, default=None,
                            metavar="N",
                            help="remove entries older than N days")
            sp.add_argument("--stale", action="store_true",
                            help="remove entries written by other code "
                                 "fingerprints (results the current "
                                 "simulator can never serve)")
            sp.add_argument("--fingerprint", default=None, metavar="FP",
                            help="remove entries written under exactly "
                                 "this code fingerprint")
            sp.add_argument("--dry-run", action="store_true",
                            help="list what would be pruned without "
                                 "removing anything")
        if name == "export":
            sp.add_argument("campaign",
                            help="registered campaign name or JSON "
                                 "campaign file")
            sp.add_argument("--output", required=True, metavar="FILE",
                            help="artifact file to write")

    run = sub.add_parser("run", help="run a workload sweep")
    run.add_argument("workload", help="registered workload name")
    run.add_argument("--models", default="all",
                     help="comma-separated consistency models, or 'all'")
    run.add_argument("--num-scopes", default=None,
                     help="comma-separated scope counts to sweep "
                          "(default: 4; for tpch, the query's scaled "
                          "scope count)")
    run.add_argument("--param", action="append", default=[],
                     metavar="KEY=VALUE", help="workload parameter")
    run.add_argument("--preset", default="scaled",
                     choices=("scaled", "paper"),
                     help="base system configuration")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes (>1 uses the process pool)")
    run.add_argument("--max-events", type=int, default=200_000_000)
    run.add_argument("--variant", default="cli")
    return parser


def help_snapshot() -> str:
    """Every ``repro-bench`` help screen as one Markdown document.

    Rendered at a pinned 80-column width (argparse wraps at the terminal
    width, which ``COLUMNS`` overrides) so the output is byte-stable
    across machines.  ``docs/cli.md`` is this snapshot checked in;
    ``tests/docs`` regenerates it in memory and fails on drift, so a
    flag change cannot land without its documentation.
    """
    import os

    from repro.api.perf import build_perf_parser

    saved = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "80"
    try:
        lines: List[str] = [
            "# `repro-bench` command reference",
            "",
            "Generated from the argparse definitions -- do not edit by",
            "hand.  Regenerate (under Python 3.11) with:",
            "",
            "```",
            "PYTHONPATH=src python -c \"from repro.api.cli import "
            "write_help_snapshot; write_help_snapshot('docs/cli.md')\"",
            "```",
            "",
        ]

        def emit(parser: argparse.ArgumentParser) -> None:
            lines.extend([f"## `{parser.prog}`", "", "```",
                          parser.format_help().rstrip("\n"), "```", ""])
            seen = set()
            for action in parser._actions:
                if not isinstance(action, argparse._SubParsersAction):
                    continue
                for sub in action.choices.values():
                    if id(sub) in seen or not sub.add_help:
                        # the perf stub (add_help=False) is documented
                        # from its real parser below
                        continue
                    seen.add(id(sub))
                    emit(sub)

        emit(_build_parser())
        emit(build_perf_parser())
        return "\n".join(lines)
    finally:
        if saved is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = saved


def write_help_snapshot(path: str) -> None:
    """Write :func:`help_snapshot` to ``path`` (see ``docs/cli.md``)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(help_snapshot())


def _cmd_list() -> int:
    descriptions = REGISTRY.describe()
    width = max(len(name) for name in descriptions)
    print("Registered workloads:")
    for name, doc in descriptions.items():
        print(f"  {name:<{width}}  {doc}")
    return 0


def _default_scopes(workload: str, params: Dict[str, object]) -> int:
    """A scope count that actually fits the workload's parameters.

    TPC-H queries pin their own scope need (Table IV x scale), so the
    sweep must start there; everything else defaults to 4.
    """
    if workload == "tpch":
        workload_obj = REGISTRY.create("tpch", params)
        return workload_obj.scaled_scopes()
    return 4


def _load_campaign(name: str):
    """A campaign by registered name, or from a JSON campaign file."""
    import json
    import os

    from repro.api.sweep import Campaign, campaign_names, get_campaign

    if os.path.exists(name) or name.endswith(".json"):
        try:
            with open(name, "r", encoding="utf-8") as handle:
                return Campaign.from_dict(json.load(handle))
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"cannot load campaign file {name!r}: {exc}") \
                from None
    try:
        return get_campaign(name)
    except ValueError:
        raise SystemExit(
            f"unknown campaign {name!r}; registered: "
            f"{', '.join(campaign_names())} (or pass a JSON campaign file)"
        ) from None


def _parse_jobs(text: str) -> int:
    import os

    if text == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(text)
    except ValueError:
        raise SystemExit(f"--jobs expects an integer or 'auto', got {text!r}")
    if jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    return jobs


def _cmd_sweep_list() -> int:
    from repro.api.sweep import campaign_names, get_campaign

    print("Registered campaigns:")
    width = max(len(name) for name in campaign_names())
    for name in campaign_names():
        campaign = get_campaign(name)
        print(f"  {name:<{width}}  {len(campaign.points())} points -- "
              f"{campaign.title}")
    return 0


def _cmd_sweep_list_points(args: argparse.Namespace) -> int:
    campaign = _load_campaign(args.campaign)
    points = campaign.points()
    seen: Dict[str, str] = {}
    print(f"{campaign.name}: {len(points)} points")
    for point in points:
        spec = point.experiment.spec_hash()
        dup = f"  (= {seen[spec]})" if spec in seen else ""
        seen.setdefault(spec, point.name)
        print(f"  {spec}  {point.name}{dup}")
    return 0


def _store_from_args(args: argparse.Namespace):
    """The ResultStore selected by --store or $REPRO_STORE, or None."""
    from repro.api.store import ResultStore

    if getattr(args, "store", None):
        return ResultStore(args.store)
    return ResultStore.from_env()


def _require_store(args: argparse.Namespace):
    store = _store_from_args(args)
    if store is None:
        raise SystemExit(
            "no store selected: pass --store DIR or set $REPRO_STORE")
    return store


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import (campaign_markdown, format_table,
                                       latency_table, stalls_table)
    from repro.api.backends import WorkQueueBackend, backend_for
    from repro.api.runner import Runner
    from repro.api.sweep import load_results, run_campaign
    from repro.sim.config import TraceConfig

    campaign = _load_campaign(args.campaign)
    jobs = _parse_jobs(args.jobs)
    resume = None
    if args.resume is not None:
        try:
            with open(args.resume, "r", encoding="utf-8") as handle:
                resume = load_results(json.load(handle))
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"cannot resume from {args.resume!r}: {exc}") from None

    points = campaign.points()
    hashes = {p.experiment.spec_hash() for p in points}
    cached = len(hashes & set(resume)) if resume else 0
    store = _store_from_args(args)
    if args.distributed:
        if store is None:
            raise SystemExit(
                "--distributed needs a store (the queue lives under it): "
                "pass --store DIR or set $REPRO_STORE")
        backend = WorkQueueBackend(
            store, shard_size=args.shard_size, lease_s=args.lease_s,
            grace_s=args.grace_s, max_attempts=args.max_attempts,
            fallback=backend_for(jobs, timeout_s=args.timeout_s))
    else:
        backend = backend_for(jobs, timeout_s=args.timeout_s)
    print(f"campaign {campaign.name}: {len(points)} points "
          f"({len(hashes)} unique, {cached} from cache) "
          f"on the {backend.name} backend"
          + (f", store {store.root}" if store is not None else ""))

    # Stall attribution only: no event ring, so traced store entries
    # stay small.  Execution-side overlay -- spec hashes, store keys
    # and the campaign digest are identical traced or not.
    trace = TraceConfig(enabled=True, ring_size=0) if args.trace else None
    progress = None if args.no_progress else _sweep_progress(len(points))

    runner = Runner(backend=backend, store=store)
    result = run_campaign(campaign, runner=runner, resume=resume,
                          trace=trace, progress=progress)
    headers, rows = result.table()
    print(format_table(headers, rows, title=f"{campaign.name} campaign"))
    latency = latency_table(result)
    if latency is not None:
        print(format_table(latency[0], latency[1],
                           title="arrival-to-settle latency [cycles]"))
    stalls = stalls_table(result)
    if stalls is not None:
        print(format_table(stalls[0], stalls[1],
                           title="stall attribution per traced point"))
    if campaign.slo is not None:
        slo_headers, slo_rows = result.slo_table(campaign.slo)
        if slo_rows:
            print(format_table(slo_headers, slo_rows,
                               title=campaign.slo.title))
    print(f"digest: {result.digest()}")
    if store is not None:
        print(f"store: {runner.store_hits} points hydrated from "
              f"{store.root}")
        if runner.reconciled:
            print(f"store: {runner.reconciled} failed points reconciled "
                  f"from concurrent writers")
    if args.distributed and getattr(backend, "last_stats", None):
        s = backend.last_stats
        print(f"queue: {s['shards']} shards "
              f"({s['worker_shards']} by workers, {s['local_shards']} "
              f"local), {s['expired_leases']} leases re-dispatched, "
              f"{s['retries']} retries, {s['lost_points']} lost")
    print(f"backend dispatches: {runner.dispatch_count}")

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_json_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote artifact {args.output}")
    if args.report is not None:
        mode = "a" if args.append else "w"
        with open(args.report, mode, encoding="utf-8") as handle:
            handle.write(campaign_markdown(result))
        verb = "appended" if args.append else "wrote"
        print(f"{verb} report {args.report}")

    for point in result.failed_points:
        last = (point.error or "").strip().splitlines()
        print(f"FAILED {point.name}: {last[-1] if last else 'unknown'}")
    return 1 if result.failed_points else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.sweep_command == "list":
        return _cmd_sweep_list()
    if args.sweep_command == "list-points":
        return _cmd_sweep_list_points(args)
    return _cmd_sweep_run(args)


def _configure_logging(flag: Optional[str], default: str = "warning") -> None:
    """Tune the ``repro`` logger hierarchy (idempotent, never the root).

    Precedence: ``--log-level`` beats ``$REPRO_LOG`` beats ``default``.
    The distributed machinery (worker, ``sweep run --distributed``)
    defaults to info so fleet activity narrates itself.
    """
    from repro.obs.logconf import configure_logging

    try:
        configure_logging(flag, default=default)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _log_default(args: argparse.Namespace) -> str:
    if args.command == "worker":
        return "info"
    if (args.command == "sweep"
            and getattr(args, "sweep_command", None) == "run"
            and args.distributed):
        return "info"
    return "warning"


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def _sweep_progress(total: int, stream=None):
    """A ``progress(n)`` callback printing done/total + ETA to stderr.

    ETA comes from a moving average over the most recent settled points
    (the first batch is usually an instant flood of cache hits, which
    the window ages out).  On a terminal the line redraws in place;
    otherwise it prints at most every couple of seconds so CI logs stay
    readable.
    """
    import collections
    import time

    stream = stream if stream is not None else sys.stderr
    live = stream.isatty()
    window = collections.deque(maxlen=32)  # (monotonic ts, points)
    state = {"done": 0, "printed": -1e9, "width": 0}

    def tick(n: int) -> None:
        now = time.monotonic()
        state["done"] += n
        done = state["done"]
        window.append((now, n))
        final = done >= total
        if not live and not final and now - state["printed"] < 2.0:
            return
        state["printed"] = now
        eta = ""
        if not final and len(window) >= 2:
            span = now - window[0][0]
            recent = sum(c for _, c in list(window)[1:])
            if span > 0 and recent > 0:
                eta = f", eta {_fmt_eta((total - done) * span / recent)}"
        line = f"sweep: {done}/{total} points{eta}"
        if live:
            state["width"] = max(state["width"], len(line))
            stream.write("\r" + line.ljust(state["width"]))
            if final:
                stream.write("\n")
        else:
            stream.write(line + "\n")
        stream.flush()

    return tick


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.api.workqueue import run_worker

    store = _require_store(args)
    completed = run_worker(
        store, worker_id=args.id, poll_s=args.poll_s, once=args.once,
        max_idle_s=args.max_idle_s, max_tasks=args.max_tasks)
    print(f"worker exiting: {completed} tasks completed")
    return 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import format_table
    from repro.api.workqueue import queue_status

    runs = queue_status(_require_store(args))
    if args.json:
        print(json.dumps(runs, indent=2, sort_keys=True))
        return 0
    if not runs:
        print("no active queue runs")
        return 0
    headers = ["run", "points", "shards", "done", "active leases",
               "expired leases", "fingerprint"]
    rows = [[r["run"], r["points"], r["shards"], r["done"],
             r["active_leases"], r["expired_leases"], r["fingerprint"]]
            for r in runs]
    print(format_table(headers, rows, title="work queue"))
    return 0


def _cmd_queue_tail(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import (follow_telemetry, format_event,
                                     read_telemetry, telemetry_path)

    store = _require_store(args)
    backlog = read_telemetry(store.root, last=args.lines)
    if not backlog and not args.follow:
        print(f"no telemetry at {telemetry_path(store.root)}")
        return 0
    for record in backlog:
        print(format_event(record))
    if not args.follow:
        return 0
    try:
        for record in follow_telemetry(store.root, poll_s=args.poll_s,
                                       stop_after_s=args.max_s,
                                       start_at_end=True):
            print(format_event(record), flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    return {
        "status": _cmd_queue_status,
        "tail": _cmd_queue_tail,
    }[args.queue_command](args)


#: Schema tag of the JSON file ``trace run`` writes.
TRACE_DUMP_SCHEMA = "repro-trace-dump/1"


def _cmd_trace_run(args: argparse.Namespace) -> int:
    import json

    from repro.api.backends import execute_experiment
    from repro.obs.trace import stall_totals
    from repro.sim.config import TraceConfig

    if args.workload not in REGISTRY.names():
        raise SystemExit(
            f"unknown workload {args.workload!r}; "
            f"registered: {', '.join(REGISTRY.names())}")
    models = _parse_models(args.model)
    if len(models) != 1:
        raise SystemExit("trace run traces exactly one model; pass "
                         "--model NAME (got {})".format(args.model))
    model = models[0]
    params = _parse_params(args.param)
    num_scopes = (args.num_scopes if args.num_scopes is not None
                  else _default_scopes(args.workload, params))
    if args.workload == "ycsb" and "num_records" not in params:
        params["num_records"] = YCSB_RECORDS_PER_SCOPE * num_scopes
    try:
        experiment = Experiment.from_dict({
            "workload": args.workload,
            "params": params,
            "config": {"preset": args.preset, "model": model.value,
                       "num_scopes": num_scopes},
            "variant": args.variant,
            "max_events": args.max_events,
        })
        experiment.build_workload()
    except (TypeError, KeyError, ValueError) as exc:
        raise SystemExit(
            f"invalid parameters for workload {args.workload!r}: {exc}"
        ) from None

    # Tracing rides as an execution overlay: the spec (and its hash)
    # stays exactly what an untraced run would use.
    trace = TraceConfig(enabled=True, ring_size=args.ring,
                        flight=args.flight)
    result = execute_experiment(experiment, trace=trace)
    obs = result.obs or {}
    dump = {
        "schema": TRACE_DUMP_SCHEMA,
        "spec": experiment.to_dict(),
        "spec_hash": experiment.spec_hash(),
        "result": {"run_time": result.run_time, "events": result.events,
                   "stale_reads": result.stale_reads},
        "obs": obs,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(dump, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"traced {args.workload} [{model.value}, {num_scopes} scopes]: "
          f"run_time {result.run_time}, {result.events} events, "
          f"{result.stale_reads} stale reads")
    if "events_recorded" in obs:
        print(f"ring: {len(obs.get('events', []))} records kept of "
              f"{obs['events_recorded']} recorded "
              f"({obs.get('events_dropped', 0)} dropped)")
    totals = stall_totals(obs)
    if totals:
        print("stalls: " + ", ".join(f"{r}={n}" for r, n in totals.items()))
    if obs.get("flight_triggers"):
        flight = obs.get("flight") or {}
        where = (f", snapshot at cycle {flight.get('cycle')} "
                 f"({flight.get('trigger')} in {flight.get('component')})"
                 if flight else "")
        print(f"flight recorder: {obs['flight_triggers']} trigger(s)"
              + where)
    print(f"wrote trace dump {args.output}")
    return 0


def _load_trace_dump(path: str) -> dict:
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            dump = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load trace dump {path!r}: {exc}") \
            from None
    if not isinstance(dump, dict) or dump.get("schema") != TRACE_DUMP_SCHEMA:
        raise SystemExit(
            f"{path!r} is not a trace dump (expected schema "
            f"{TRACE_DUMP_SCHEMA!r}; write one with: repro-bench trace "
            f"run WORKLOAD --output {path})")
    return dump


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.obs.trace import STALL_REASONS

    dump = _load_trace_dump(args.dump)
    spec = dump.get("spec", {})
    config = spec.get("config", {})
    result = dump.get("result", {})
    obs = dump.get("obs", {})
    print(f"trace dump {args.dump}: {spec.get('workload', '?')} "
          f"[{config.get('model', '?')}, "
          f"{config.get('num_scopes', '?')} scopes], "
          f"spec {str(dump.get('spec_hash', '?'))[:12]}")
    print(f"result: run_time {result.get('run_time', '?')}, "
          f"{result.get('events', '?')} events, "
          f"{result.get('stale_reads', '?')} stale reads")

    kernel = obs.get("kernel")
    if kernel:
        total = max(1, kernel.get("ring_events", 0)
                    + kernel.get("wheel_events", 0)
                    + kernel.get("heap_events", 0))
        rows = [[tier, kernel.get(f"{tier}_events", 0),
                 f"{100.0 * kernel.get(f'{tier}_events', 0) / total:.1f}%"]
                for tier in ("ring", "wheel", "heap")]
        print(format_table(["tier", "events", "share"], rows,
                           title=f"kernel dispatch mix "
                                 f"({kernel.get('cycles', '?')} cycles)"))
    if "events_recorded" in obs:
        print(f"ring: {len(obs.get('events', []))} records kept of "
              f"{obs['events_recorded']} recorded "
              f"({obs.get('events_dropped', 0)} dropped)")

    stalls = obs.get("stalls") or {}
    if stalls:
        reasons = sorted(
            {r for bucket in stalls.values() for r in bucket},
            key=lambda r: (STALL_REASONS.index(r)
                           if r in STALL_REASONS else len(STALL_REASONS),
                           r))
        rows = [[component] + [bucket.get(r, 0) for r in reasons]
                for component, bucket in sorted(stalls.items())]
        print(format_table(
            ["component"] + list(reasons), rows,
            title="stall attribution (cycles or incident counts; "
                  "see docs/observability.md)"))
    else:
        print("no stalls recorded")

    if obs.get("flight_triggers"):
        print(f"flight triggers: {obs['flight_triggers']}")
    flight = obs.get("flight")
    if flight:
        print(f"flight snapshot: {flight.get('trigger')} at cycle "
              f"{flight.get('cycle')} in {flight.get('component')} "
              f"(op {flight.get('op_id')}, "
              f"{len(flight.get('events', []))} ring records)")
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    import json

    from repro.obs.chrome import chrome_trace, validate_file

    dump = _load_trace_dump(args.dump)
    try:
        trace = chrome_trace(dump.get("obs") or {})
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    output = args.output
    if output is None:
        base = args.dump[:-5] if args.dump.endswith(".json") else args.dump
        output = base + ".chrome.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    print(f"wrote Chrome trace {output} "
          f"({len(trace['traceEvents'])} trace events; load it in "
          f"https://ui.perfetto.dev or chrome://tracing)")
    if args.validate:
        try:
            validate_file(output)
        except ValueError as exc:
            print(f"INVALID: {exc}")
            return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    return {
        "run": _cmd_trace_run,
        "report": _cmd_trace_report,
        "export": _cmd_trace_export,
    }[args.trace_command](args)


def _cmd_store_stats(args: argparse.Namespace) -> int:
    stats = _require_store(args).stats()
    print(f"store {stats['root']}")
    print(f"  code fingerprint : {stats['fingerprint']}")
    print(f"  entries          : {stats['entries']} "
          f"({stats['current_entries']} current, "
          f"{stats['stale_entries']} stale)")
    print(f"  size             : {stats['size_bytes']:,} bytes")
    for fingerprint, count in stats["by_fingerprint"].items():
        marker = "  (current)" if fingerprint == stats["fingerprint"] else ""
        print(f"  {fingerprint} : {count} entries{marker}")
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    import os

    store = _require_store(args)
    problems = store.verify()
    quarantined = store.quarantined()
    total = sum(1 for _ in store.paths())
    if not problems and not quarantined:
        print(f"ok: {total} entries verified in {store.root}")
        return 0
    for path, problem in problems:
        print(f"BAD {path}: {problem}")
    for name in quarantined:
        print(f"QUARANTINED {name}")
    if problems:
        print(f"{len(problems)} of {total} entries failed verification")
    if quarantined:
        print(f"{len(quarantined)} corrupt entries were quarantined into "
              f"{os.path.join(store.root, 'quarantine')}; inspect them, "
              f"then remove that directory to clear this report")
    return 1


def _cmd_store_prune(args: argparse.Namespace) -> int:
    if (args.max_age_days is None and not args.stale
            and args.fingerprint is None):
        raise SystemExit(
            "nothing to prune: pass --max-age-days N, --stale "
            "and/or --fingerprint FP")
    store = _require_store(args)
    if args.dry_run:
        candidates = store.prune_candidates(
            max_age_days=args.max_age_days, stale=args.stale,
            fingerprint=args.fingerprint)
        for entry in candidates:
            print(f"would prune {entry.path}")
        print(f"would prune {len(candidates)} entries from {store.root}")
        return 0
    removed = store.prune(max_age_days=args.max_age_days, stale=args.stale,
                          fingerprint=args.fingerprint)
    print(f"pruned {removed} entries from {store.root}")
    return 0


def _cmd_store_export(args: argparse.Namespace) -> int:
    import json

    from repro.api.sweep import CampaignResult, PointResult

    store = _require_store(args)
    campaign = _load_campaign(args.campaign)
    points = campaign.points()
    hydrated = store.get_many({p.experiment.spec_hash() for p in points})
    result = CampaignResult(campaign, [
        PointResult(
            name=p.name, sweep=p.sweep, coords=p.coords,
            experiment=p.experiment,
            result=hydrated.get(p.experiment.spec_hash()),
            error=(None if p.experiment.spec_hash() in hydrated
                   else "not in store"),
        )
        for p in points
    ])
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"exported {len(result.ok_points)} of {len(points)} points "
          f"to {args.output}"
          + (f" ({len(result.failed_points)} not in store)"
             if result.failed_points else ""))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    return {
        "stats": _cmd_store_stats,
        "verify": _cmd_store_verify,
        "prune": _cmd_store_prune,
        "export": _cmd_store_export,
    }[args.store_command](args)


def _fuzz_root(args: argparse.Namespace, store) -> Optional[str]:
    """Where fuzz artifacts live: --artifacts beats the store root."""
    if getattr(args, "artifacts", None):
        return args.artifacts
    return store.root if store is not None else None


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz.harness import fuzz_run

    store = _store_from_args(args)
    corpus_root = None if args.no_corpus else _fuzz_root(args, store)
    report = fuzz_run(
        seed=args.seed, programs=args.programs, max_ops=args.max_ops,
        jobs=_parse_jobs(args.jobs), store=store, corpus_root=corpus_root,
        timing=not args.no_timing, rounds=args.rounds, weaken=args.weaken,
        flight=args.trace)
    print(f"fuzz run: seed {report['seed']}, "
          f"{report['programs']} scenarios "
          f"({report['distinct_programs']} distinct, "
          f"{report['ops_total']} ops)"
          + (f", weakened: {args.weaken}" if args.weaken else ""))
    controls = report["controls_cyclic"]
    print(f"controls (expected-violating): "
          + ", ".join(f"{m} cyclic on {n}" for m, n in controls.items()))
    if report["timing"] is not None:
        stale = report["timing"]["stale_reads"] or {}
        print("timing stale reads: "
              + ", ".join(f"{m}={stale[m]}" for m in stale))
    print(f"{report['clean_programs']} scenarios clean, "
          f"{report['corpus_added']} banked to corpus, "
          f"{len(report['violations'])} violations")
    for violation in report["violations"]:
        print(f"VIOLATION {violation['invariant']} under "
              f"{violation['model']}: shrunk to {violation['op_count']} "
              f"ops ({violation['shrink_checks']} checks), program "
              f"{json.dumps(violation['program']['threads'])}")
    if corpus_root is not None and report["violations"]:
        print(f"minimal repros under {corpus_root}/fuzz/repros/")
    if report.get("flight_dumps"):
        print(f"{len(report['flight_dumps'])} flight-recorder dumps "
              f"under {corpus_root}/fuzz/flight/")
    print(f"report digest: {report['digest']}")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report {args.output}")
    return 1 if report["violations"] else 0


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzz.harness import replay_corpus

    store = _store_from_args(args)
    root = _fuzz_root(args, store)
    if root is None:
        raise SystemExit("no corpus selected: pass --store DIR, "
                         "--artifacts DIR or set $REPRO_STORE")
    report = replay_corpus(root, jobs=_parse_jobs(args.jobs), store=store,
                           timing=not args.no_timing)
    if not report["entries"]:
        print(f"corpus under {root}/fuzz/corpus is empty")
        return 0
    mismatches = report["mismatches"]
    for digest, lines in mismatches.items():
        for line in lines:
            print(f"MISMATCH {digest}: {line}")
    print(f"replayed {report['entries']} corpus entries: "
          f"{len(mismatches)} mismatched")
    return 1 if mismatches else 0


def _cmd_fuzz_corpus(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.fuzz.corpus import FuzzCorpus
    from repro.fuzz.program import FuzzProgram

    store = _store_from_args(args)
    root = _fuzz_root(args, store)
    if root is None:
        raise SystemExit("no corpus selected: pass --store DIR, "
                         "--artifacts DIR or set $REPRO_STORE")
    corpus = FuzzCorpus(root)
    rows = []
    for entry in corpus.entries():
        program = FuzzProgram.from_dict(entry["program"])
        timing = entry.get("timing_stale_reads")
        rows.append([
            entry["digest"], entry.get("seed", "?"),
            len(program.threads), len(program.slots), program.op_count,
            len(entry.get("fingerprints") or {}),
            "yes" if timing is not None else "no",
        ])
    if rows:
        print(format_table(
            ["digest", "seed", "threads", "scopes", "ops", "legs",
             "timing"],
            rows, title=f"fuzz corpus ({corpus.corpus_dir})"))
    else:
        print(f"corpus under {corpus.corpus_dir} is empty")
    repros = list(corpus.repros())
    for repro in repros:
        print(f"repro {repro['digest']}: {repro['invariant']} under "
              f"{repro['model']}, {repro['op_count']} ops "
              f"(seed {repro.get('seed', '?')})")
    flights = list(corpus.flights())
    for dump in flights:
        snapshot = dump.get("flight") or {}
        print(f"flight {dump['digest']}: {dump.get('invariant', '?')} "
              f"under {dump.get('model', '?')}, "
              f"{len(snapshot.get('events', []))} ring records")
    print(f"{len(rows)} corpus entries, {len(repros)} minimal repros, "
          f"{len(flights)} flight dumps")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    return {
        "run": _cmd_fuzz_run,
        "replay": _cmd_fuzz_replay,
        "corpus": _cmd_fuzz_corpus,
    }[args.fuzz_command](args)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workload not in REGISTRY.names():
        raise SystemExit(
            f"unknown workload {args.workload!r}; "
            f"registered: {', '.join(REGISTRY.names())}"
        )
    models = _parse_models(args.models)
    base_params = _parse_params(args.param)
    try:
        if args.num_scopes is not None:
            scope_counts = [int(s) for s in args.num_scopes.split(",")
                            if s.strip()]
            if not scope_counts:
                raise ValueError("--num-scopes is empty")
        else:
            scope_counts = [_default_scopes(args.workload, base_params)]

        experiments = []
        for num_scopes in scope_counts:
            params = dict(base_params)
            if args.workload == "ycsb" and "num_records" not in params:
                params["num_records"] = YCSB_RECORDS_PER_SCOPE * num_scopes
            for model in models:
                experiments.append(Experiment.from_dict({
                    "workload": args.workload,
                    "params": params,
                    "config": {"preset": args.preset, "model": model.value,
                               "num_scopes": num_scopes},
                    "variant": args.variant,
                    "max_events": args.max_events,
                }))
        # Fail fast on bad workload parameters, before any simulation.
        experiments[0].build_workload()
    except (TypeError, KeyError, ValueError) as exc:
        raise SystemExit(
            f"invalid parameters for workload {args.workload!r}: {exc}"
        ) from None

    backend = backend_for(args.jobs)
    print(f"{len(experiments)} experiments "
          f"({len(models)} models x {len(scope_counts)} scope counts) "
          f"on the {backend.name} backend")
    results = Runner(backend=backend).run_all(experiments)

    from repro.analysis.report import format_table
    columns = ["workload", "scopes", "model", "run_time", "stale_reads",
               "sb_hit_rate", "scan_latency", "pim_ops"]
    rows = []
    for exp, res in zip(experiments, results):
        h = headline(res)
        rows.append([
            exp.workload, exp.config.num_scopes, h["model"], h["run_time"],
            h["stale_reads"], f"{h['scope_buffer_hit_rate']:.3f}",
            f"{h['llc_scan_latency']:.1f}", h["pim_ops_executed"],
        ])
    print(format_table(columns, rows, title=f"{args.workload} sweep"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arg_list = list(argv) if argv is not None else sys.argv[1:]
    if arg_list and arg_list[0] == "perf":
        from repro.api.perf import main as perf_main
        return perf_main(arg_list[1:])
    args = _build_parser().parse_args(arg_list)
    _configure_logging(args.log_level, default=_log_default(args))
    if args.command == "list":
        return _cmd_list()
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "queue":
        return _cmd_queue(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
