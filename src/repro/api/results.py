"""Typed result access for the experiment API.

:class:`~repro.sim.stats.StatsView` (re-exported here) is the attribute
namespace over one component's statistics snapshot --
``result.llc.hit_rate``, ``result.pim.ops_executed``,
``result.core(0).pim_ops`` -- replacing the old string-keyed
``stats["llc"]["hit_rate"]`` plumbing.  The views live on
:class:`~repro.system.simulation.SimulationResult`, whose legacy
``stats`` dict and headline properties remain as thin shims.

:func:`headline` flattens one result into the figure-ready scalars the
CLI and reports print.

Results also carry a versioned stdlib-JSON round trip
(:meth:`SimulationResult.to_dict` / :meth:`~SimulationResult.from_dict`,
tagged :data:`RESULT_SCHEMA`, digestable via :func:`result_digest`) --
the serialization campaign artifacts and the persistent
:class:`~repro.api.store.ResultStore` share.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.stats import StatsView
from repro.system.simulation import (
    RESULT_SCHEMA,
    SimulationResult,
    result_digest,
)

__all__ = ["RESULT_SCHEMA", "StatsView", "SimulationResult", "headline",
           "result_digest"]


def headline(result: SimulationResult) -> Dict[str, object]:
    """The paper's headline scalars for one run, as a flat dict."""
    return {
        "model": result.model_name,
        "run_time": result.run_time,
        "stale_reads": result.stale_reads,
        "pim_ops_executed": result.pim_ops_executed,
        "scope_buffer_hit_rate": result.llc.hit_rate,
        "llc_scan_latency": result.llc.scan_latency,
        "sbv_skip_ratio": result.llc.skipped_set_ratio,
        "pim_buffer_mean_len": result.pim.buffer_len_at_arrival,
        "events": result.events,
    }
