"""The Runner: cached, backend-pluggable experiment execution.

``Runner(backend=ProcessPoolBackend()).run_all(experiments)`` is the
canonical way to run a sweep.  The Runner keys completed results on each
experiment's :meth:`~repro.api.experiment.Experiment.spec_hash`, so

* repeated points inside one sweep run once (several figures share the
  same YCSB sweep);
* repeated sweeps across a session hit the cache (this replaces the
  benchmark harness's old hand-rolled memo dict);
* the backend only ever sees the cache misses, in input order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.api.backends import (
    ExecutionBackend,
    ExperimentFailure,
    SerialBackend,
)
from repro.api.experiment import Experiment
from repro.system.simulation import SimulationResult

#: One point of a settled batch: ``(result, None)`` or ``(None, error)``.
Outcome = Tuple[Optional[SimulationResult], Optional[str]]


class Runner:
    """Execute experiment specs through a backend, caching by spec hash.

    Args:
        backend: execution strategy; defaults to :class:`SerialBackend`.
        cache: keep completed results keyed by spec hash.  Disable for
            memory-constrained bulk sweeps whose results are consumed
            immediately.
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 cache: bool = True) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self._cache: Optional[Dict[str, SimulationResult]] = {} if cache else None

    # ------------------------------------------------------------------ #

    def run(self, experiment: Experiment) -> SimulationResult:
        """Run (or fetch from cache) a single experiment."""
        return self.run_all([experiment])[0]

    def run_all(self, experiments: Iterable[Experiment]) -> List[SimulationResult]:
        """Run a sweep; results align with the input order.

        Cache hits are served without touching the backend; duplicate
        specs within the sweep execute once.  A batch mixing cached and
        uncached points still makes exactly one backend dispatch, of the
        misses only, so resumed campaigns keep their sharding.
        """
        hashes, memo, missing = self._partition(experiments)
        if missing:
            results = self.backend.run_all(list(missing.values()))
            memo.update(zip(missing.keys(), results))
        return [memo[h] for h in hashes]

    def run_settled(self, experiments: Iterable[Experiment]) -> List[Outcome]:
        """Run a sweep with per-point failure isolation.

        Same batch path as :meth:`run_all` -- one dispatch of the cache
        misses -- but a point that fails reports ``(None, traceback)``
        instead of aborting the batch.  Only successes enter the cache,
        so a resumed campaign retries exactly its failures.
        """
        hashes, memo, missing = self._partition(experiments)
        failed: Dict[str, str] = {}
        if missing:
            outcomes = self.backend.run_all_settled(list(missing.values()))
            for h, outcome in zip(missing.keys(), outcomes):
                if isinstance(outcome, ExperimentFailure):
                    failed[h] = outcome.error
                else:
                    memo[h] = outcome
        return [(memo.get(h), failed.get(h)) for h in hashes]

    def _partition(self, experiments: Iterable[Experiment]):
        """Hash the batch and split it into (hashes, memo, misses).

        ``memo`` is the live cache (or a throwaway dict with caching off:
        the batch still dedupes, but nothing persists across calls);
        ``misses`` maps spec hash -> experiment for the points the
        backend must actually run, in input order, each unique spec once.
        """
        experiments = list(experiments)
        hashes = [e.spec_hash() for e in experiments]
        memo = self._cache if self._cache is not None else {}
        missing: Dict[str, Experiment] = {}
        for h, e in zip(hashes, experiments):
            if h not in memo:
                missing.setdefault(h, e)
        return hashes, memo, missing

    # ------------------------------------------------------------------ #

    @property
    def cache_size(self) -> int:
        return len(self._cache) if self._cache is not None else 0

    def preload(self, results: Mapping[str, SimulationResult]) -> int:
        """Seed the cache with spec-hash-keyed results (campaign resume).

        Returns how many entries were installed; a no-op (returning 0)
        when caching is disabled.
        """
        if self._cache is None:
            return 0
        self._cache.update(results)
        return len(results)

    def cached(self, experiment: Experiment) -> Optional[SimulationResult]:
        """The cached result for a spec, or ``None``."""
        if self._cache is None:
            return None
        return self._cache.get(experiment.spec_hash())

    def clear_cache(self) -> None:
        if self._cache is not None:
            self._cache.clear()
