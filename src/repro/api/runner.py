"""The Runner: cached, backend-pluggable experiment execution.

``Runner(backend=ProcessPoolBackend()).run_all(experiments)`` is the
canonical way to run a sweep.  The Runner keys completed results on each
experiment's :meth:`~repro.api.experiment.Experiment.spec_hash`, so

* repeated points inside one sweep run once (several figures share the
  same YCSB sweep);
* repeated sweeps across a session hit the cache (this replaces the
  benchmark harness's old hand-rolled memo dict);
* the backend only ever sees the cache misses, in input order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.api.backends import ExecutionBackend, SerialBackend
from repro.api.experiment import Experiment
from repro.system.simulation import SimulationResult


class Runner:
    """Execute experiment specs through a backend, caching by spec hash.

    Args:
        backend: execution strategy; defaults to :class:`SerialBackend`.
        cache: keep completed results keyed by spec hash.  Disable for
            memory-constrained bulk sweeps whose results are consumed
            immediately.
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 cache: bool = True) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self._cache: Optional[Dict[str, SimulationResult]] = {} if cache else None

    # ------------------------------------------------------------------ #

    def run(self, experiment: Experiment) -> SimulationResult:
        """Run (or fetch from cache) a single experiment."""
        return self.run_all([experiment])[0]

    def run_all(self, experiments: Iterable[Experiment]) -> List[SimulationResult]:
        """Run a sweep; results align with the input order.

        Cache hits are served without touching the backend; duplicate
        specs within the sweep execute once.
        """
        experiments = list(experiments)
        hashes = [e.spec_hash() for e in experiments]
        # With caching off, memoize into a throwaway dict: the batch still
        # dedupes, but nothing persists across calls.
        memo = self._cache if self._cache is not None else {}
        missing: Dict[str, Experiment] = {}
        for h, e in zip(hashes, experiments):
            if h not in memo:
                missing.setdefault(h, e)
        if missing:
            results = self.backend.run_all(list(missing.values()))
            memo.update(zip(missing.keys(), results))
        return [memo[h] for h in hashes]

    # ------------------------------------------------------------------ #

    @property
    def cache_size(self) -> int:
        return len(self._cache) if self._cache is not None else 0

    def cached(self, experiment: Experiment) -> Optional[SimulationResult]:
        """The cached result for a spec, or ``None``."""
        if self._cache is None:
            return None
        return self._cache.get(experiment.spec_hash())

    def clear_cache(self) -> None:
        if self._cache is not None:
            self._cache.clear()
