"""The Runner: tiered-cache, backend-pluggable experiment execution.

``Runner(backend=ProcessPoolBackend()).run_all(experiments)`` is the
canonical way to run a sweep.  The Runner keys completed results on each
experiment's :meth:`~repro.api.experiment.Experiment.spec_hash` and
serves them through a two-tier cache:

* a **memory dict** in front -- repeated points inside one sweep run
  once, repeated sweeps across a session hit the cache;
* an optional **persistent store** behind it
  (:class:`~repro.api.store.ResultStore`) -- results survive the
  process, so sessions, CI jobs and concurrent shards pointing at the
  same directory share one cache.

Either way the backend only ever sees the remaining misses, in input
order, as exactly one dispatch per batch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.api.backends import (
    ExecutionBackend,
    ExperimentFailure,
    SerialBackend,
)
from repro.api.experiment import Experiment
from repro.api.store import ResultStore
from repro.system.simulation import SimulationResult

#: One point of a settled batch: ``(result, None)`` or ``(None, error)``.
Outcome = Tuple[Optional[SimulationResult], Optional[str]]


class Runner:
    """Execute experiment specs through a backend, caching by spec hash.

    Args:
        backend: execution strategy; defaults to :class:`SerialBackend`.
        cache: keep completed results in memory keyed by spec hash.
            Disable for memory-constrained bulk sweeps whose results are
            consumed immediately (the persistent store, if any, still
            serves and collects results).
        store: persistent result store behind the memory cache -- a
            :class:`~repro.api.store.ResultStore` or a directory path.
            Batch execution consults it for every memory miss before
            dispatching, and writes every fresh success back.
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 cache: bool = True,
                 store: Union[ResultStore, str, None] = None) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self._cache: Optional[Dict[str, SimulationResult]] = {} if cache else None
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        #: Specs handed to the backend since construction (cache misses
        #: that actually simulated); the warm-store CI gate asserts this
        #: stays 0 on a fully cached campaign.
        self.dispatch_count = 0
        #: Misses served by the persistent store since construction.
        self.store_hits = 0
        #: Failed settled points later found completed in the store (a
        #: concurrent worker or session finished them after our batch
        #: gave up on them).
        self.reconciled = 0

    # ------------------------------------------------------------------ #

    def run(self, experiment: Experiment) -> SimulationResult:
        """Run (or fetch from cache) a single experiment."""
        return self.run_all([experiment])[0]

    def run_all(self, experiments: Iterable[Experiment]) -> List[SimulationResult]:
        """Run a sweep; results align with the input order.

        Cache hits (memory first, then the store) are served without
        touching the backend; duplicate specs within the sweep execute
        once.  A batch mixing cached and uncached points still makes
        exactly one backend dispatch, of the misses only, so resumed
        campaigns keep their sharding.
        """
        hashes, memo, missing = self._partition(experiments)
        if missing:
            self.dispatch_count += len(missing)
            results = self.backend.run_all(list(missing.values()))
            memo.update(zip(missing.keys(), results))
            if self.store is not None:
                for h, result in zip(missing.keys(), results):
                    try:
                        self.store.put(h, result, missing[h])
                    except OSError:
                        # Store I/O never fails the batch: the results
                        # are already computed and the memory tier
                        # serves them for this session.
                        pass
        return [memo[h] for h in hashes]

    def run_settled(self, experiments: Iterable[Experiment],
                    trace=None, progress=None) -> List[Outcome]:
        """Run a sweep with per-point failure isolation.

        Same batch path as :meth:`run_all` -- one dispatch of the cache
        misses -- but a point that fails reports ``(None, traceback)``
        instead of aborting the batch.  Only successes enter the caches,
        so a resumed campaign retries exactly its failures.  With a
        store attached, successes are written through by the executing
        worker itself, so a campaign killed mid-batch keeps every point
        that finished.

        ``trace`` (a :class:`~repro.sim.config.TraceConfig`) overlays
        observability on execution without changing spec hashes -- cache
        and store keys are identical traced or not.  ``progress`` is
        called with point counts as they settle; cache and store hits
        are reported upfront, and duplicate specs count as many points
        as they serve.
        """
        hashes, memo, missing = self._partition(experiments)
        backend_progress = None
        if progress is not None:
            # Per-unique-spec dup weights, consumed in dispatch order so
            # a spec appearing N times in the batch advances N points.
            weights = {h: 0 for h in missing}
            cached = 0
            for h in hashes:
                if h in weights:
                    weights[h] += 1
                else:
                    cached += 1
            if cached:
                progress(cached)
            queue = [weights[h] for h in missing]
            it = iter(queue)

            def backend_progress(n: int) -> None:
                progress(sum(next(it, 1) for _ in range(n)))

        failed: Dict[str, str] = {}
        if missing:
            self.dispatch_count += len(missing)
            specs = list(missing.values())
            if self.store is not None:
                outcomes = self.backend.run_all_settled(
                    specs, store=self.store, trace=trace,
                    progress=backend_progress)
            else:
                outcomes = self.backend.run_all_settled(
                    specs, trace=trace, progress=backend_progress)
            for h, outcome in zip(missing.keys(), outcomes):
                if isinstance(outcome, ExperimentFailure):
                    failed[h] = outcome.error
                else:
                    memo[h] = outcome
            if failed and self.store is not None:
                # Reconcile against the store before reporting failure:
                # with several coordinators/workers chewing overlapping
                # campaigns, a point that was lost or timed out *here*
                # may have been completed (and persisted) by someone
                # else in the meantime.  Deterministic failures are
                # never in the store, so this only rescues transients.
                rescued = self.store.get_many(list(failed))
                for h, result in rescued.items():
                    memo[h] = result
                    del failed[h]
                self.reconciled += len(rescued)
        return [(memo.get(h), failed.get(h)) for h in hashes]

    def _partition(self, experiments: Iterable[Experiment]):
        """Hash the batch and split it into (hashes, memo, misses).

        ``memo`` is the live memory cache (or a throwaway dict with
        caching off: the batch still dedupes, but nothing persists
        across calls); ``misses`` maps spec hash -> experiment for the
        points the backend must actually run, in input order, each
        unique spec once.  Memory misses consult the persistent store
        before landing in ``misses``.
        """
        experiments = list(experiments)
        hashes = [e.spec_hash() for e in experiments]
        memo = self._cache if self._cache is not None else {}
        missing: Dict[str, Experiment] = {}
        for h, e in zip(hashes, experiments):
            if h not in memo:
                missing.setdefault(h, e)
        if missing and self.store is not None:
            hydrated = self.store.get_many(missing.keys())
            if hydrated:
                self.store_hits += len(hydrated)
                memo.update(hydrated)
                for h in hydrated:
                    del missing[h]
        return hashes, memo, missing

    # ------------------------------------------------------------------ #

    @property
    def cache_size(self) -> int:
        return len(self._cache) if self._cache is not None else 0

    def preload(self, results: Mapping[str, SimulationResult]) -> int:
        """Seed the memory cache with spec-hash-keyed results (campaign
        resume).  Returns how many entries were installed.

        Raises with caching disabled: a silently dropped preload would
        make campaign resume re-simulate everything it was handed.
        """
        if self._cache is None:
            if self.store is not None:
                where = (f"store at {self.store.root!r} (fingerprint "
                         f"{self.store.fingerprint}) still serves misses, but")
            else:
                where = "no store is attached, so"
            raise RuntimeError(
                "Runner.preload() needs the memory cache: this Runner was "
                f"built with cache=False, so {where} the preloaded results "
                "would be dropped and every point would silently re-simulate")
        self._cache.update(results)
        return len(results)

    def cached(self, experiment: Experiment) -> Optional[SimulationResult]:
        """The memory-cached result for a spec, or ``None``."""
        if self._cache is None:
            return None
        return self._cache.get(experiment.spec_hash())

    def clear_cache(self) -> None:
        """Drop the memory tier (the persistent store is untouched)."""
        if self._cache is not None:
            self._cache.clear()
