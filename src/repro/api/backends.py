"""Pluggable execution backends for experiment sweeps.

A backend turns a list of :class:`~repro.api.experiment.Experiment`
specs into a list of :class:`~repro.system.simulation.SimulationResult`,
**in order**.  Two implementations ship:

* :class:`SerialBackend` -- run in-process, one after another;
* :class:`ProcessPoolBackend` -- fan the sweep across worker processes
  with :mod:`multiprocessing`.  Simulations are deterministic and share
  nothing, so results are identical to the serial backend's -- only the
  wall clock changes (roughly divided by the core count).

Backends execute *specs*, not workload objects: the worker rebuilds the
workload from the registry inside the child process, so only plain data
crosses the process boundary.
"""

from __future__ import annotations

import abc
import functools
import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.api.experiment import Experiment
from repro.system.simulation import SimulationResult, run_workload


def execute_experiment(experiment: Experiment) -> SimulationResult:
    """Run one experiment spec to completion (the single-run engine)."""
    workload = experiment.build_workload()
    return run_workload(
        experiment.config, workload, max_events=experiment.max_events
    )


@dataclass
class ExperimentFailure:
    """One failed point of a settled batch.

    Plain data (a traceback string), so it crosses the process-pool
    boundary exactly like a result does.
    """

    error: str


#: What one point of a settled batch yields.
Settled = Union[SimulationResult, ExperimentFailure]


def execute_experiment_settled(experiment: Experiment) -> Settled:
    """Run one spec, converting any failure into :class:`ExperimentFailure`.

    This is the per-point isolation primitive of campaign execution: a
    workload that cannot even be built (bad parameters) or a simulation
    that dies mid-run reports as data instead of aborting the batch.
    """
    try:
        return execute_experiment(experiment)
    except Exception:  # noqa: BLE001 - the point is to report, not crash
        return ExperimentFailure(traceback.format_exc())


def execute_experiment_settled_store(store, experiment: Experiment) -> Settled:
    """Settled execution with write-through to a persistent store.

    The *executing worker* persists its own success, so a campaign
    killed mid-batch keeps every point that finished -- the next run
    resumes from the store instead of starting over.  Store I/O failure
    never fails the point: the result still returns and the Runner-side
    caches serve it for this session.  The store pickles as plain data
    (a root path and a fingerprint string), so the same function drives
    the serial path and the process pool.
    """
    outcome = execute_experiment_settled(experiment)
    if not isinstance(outcome, ExperimentFailure):
        try:
            store.put(experiment.spec_hash(), outcome, experiment)
        except OSError:
            pass
    return outcome


def _settled_fn(store):
    """The per-point settled executor, write-through when a store rides."""
    if store is None:
        return execute_experiment_settled
    return functools.partial(execute_experiment_settled_store, store)


class ExecutionBackend(abc.ABC):
    """How a Runner turns experiment specs into results."""

    name = "abstract"

    @abc.abstractmethod
    def run_all(self, experiments: Sequence[Experiment]) -> List[SimulationResult]:
        """Execute every experiment; results align with the input order."""

    def run_all_settled(self, experiments: Sequence[Experiment],
                        store=None) -> List[Settled]:
        """Like :meth:`run_all`, but failures isolate to their point.

        ``store`` (a :class:`~repro.api.store.ResultStore`) turns on
        per-point write-through: each success is persisted by the worker
        that computed it, as it finishes.
        """
        fn = _settled_fn(store)
        return [fn(e) for e in experiments]

    def run(self, experiment: Experiment) -> SimulationResult:
        return self.run_all([experiment])[0]


class SerialBackend(ExecutionBackend):
    """Run experiments one by one in the calling process."""

    name = "serial"

    def run_all(self, experiments: Sequence[Experiment]) -> List[SimulationResult]:
        return [execute_experiment(e) for e in experiments]


def backend_for(jobs: int) -> ExecutionBackend:
    """The natural backend for a worker count: a pool above one job."""
    return ProcessPoolBackend(jobs=jobs) if jobs > 1 else SerialBackend()


class ProcessPoolBackend(ExecutionBackend):
    """Fan experiments across a :mod:`multiprocessing` worker pool.

    Args:
        jobs: worker count; defaults to the machine's CPU count.
        chunksize: experiments handed to a worker at a time.  1 balances
            best when run times differ wildly across a sweep (strict
            models at high scope counts run much longer than Naive at
            low ones).
    """

    name = "process-pool"

    def __init__(self, jobs: Optional[int] = None, chunksize: int = 1) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.chunksize = chunksize

    def run_all(self, experiments: Sequence[Experiment]) -> List[SimulationResult]:
        return self._map(execute_experiment, experiments)

    def run_all_settled(self, experiments: Sequence[Experiment],
                        store=None) -> List[Settled]:
        return self._map(_settled_fn(store), experiments)

    def _map(self, fn, experiments: Sequence[Experiment]) -> List:
        experiments = list(experiments)
        workers = min(self.jobs, len(experiments))
        if workers <= 1:
            return [fn(e) for e in experiments]
        ctx = self._context()
        with ctx.Pool(processes=workers) as pool:
            return pool.map(fn, experiments, chunksize=self.chunksize)

    @staticmethod
    def _context():
        # Prefer fork: workers inherit the imported simulator for free and
        # no __main__ re-import is needed (spawn breaks under pytest).
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
