"""Pluggable execution backends for experiment sweeps.

A backend turns a list of :class:`~repro.api.experiment.Experiment`
specs into a list of :class:`~repro.system.simulation.SimulationResult`,
**in order**.  Two implementations ship:

* :class:`SerialBackend` -- run in-process, one after another;
* :class:`ProcessPoolBackend` -- fan the sweep across worker processes
  with :mod:`multiprocessing`.  Simulations are deterministic and share
  nothing, so results are identical to the serial backend's -- only the
  wall clock changes (roughly divided by the core count).

Backends execute *specs*, not workload objects: the worker rebuilds the
workload from the registry inside the child process, so only plain data
crosses the process boundary.
"""

from __future__ import annotations

import abc
import dataclasses
import functools
import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.api.experiment import Experiment
from repro.sim.config import TraceConfig
from repro.system.simulation import SimulationResult, run_workload

#: Progress callback for settled batches: called with the number of
#: points that just finished (usually 1; a distributed shard at once).
ProgressFn = Callable[[int], None]


def execute_experiment(experiment: Experiment,
                       trace: Optional[TraceConfig] = None) -> SimulationResult:
    """Run one experiment spec to completion (the single-run engine).

    ``trace`` is an *execution-side* observability overlay: the spec --
    and therefore its hash, the store key and every pinned digest -- is
    untouched; only the built system gets the tracing config.  Tracing
    never perturbs simulation state, so the result differs from an
    untraced run only by the extra ``obs`` payload.
    """
    config = experiment.config
    if trace is not None:
        config = dataclasses.replace(config, trace=trace)
    workload = experiment.build_workload()
    return run_workload(
        config, workload, max_events=experiment.max_events
    )


@dataclass
class ExperimentFailure:
    """One failed point of a settled batch.

    Plain data (a traceback string), so it crosses the process-pool
    boundary exactly like a result does.  ``retryable`` separates the
    failure taxonomy the work queue acts on: ``False`` means the *spec*
    failed (a deterministic error that would fail identically on any
    retry -- never retried, isolated per point), ``True`` means the
    *environment* failed (a hung point hitting the pool timeout, a point
    lost to worker crashes) and re-running it may well succeed.
    """

    error: str
    retryable: bool = False


#: What one point of a settled batch yields.
Settled = Union[SimulationResult, ExperimentFailure]


def execute_experiment_settled(experiment: Experiment,
                               trace: Optional[TraceConfig] = None) -> Settled:
    """Run one spec, converting any failure into :class:`ExperimentFailure`.

    This is the per-point isolation primitive of campaign execution: a
    workload that cannot even be built (bad parameters) or a simulation
    that dies mid-run reports as data instead of aborting the batch.
    """
    try:
        return execute_experiment(experiment, trace=trace)
    except Exception:  # noqa: BLE001 - the point is to report, not crash
        return ExperimentFailure(traceback.format_exc())


def execute_experiment_settled_store(
        store, experiment: Experiment,
        trace: Optional[TraceConfig] = None) -> Settled:
    """Settled execution with write-through to a persistent store.

    The *executing worker* persists its own success, so a campaign
    killed mid-batch keeps every point that finished -- the next run
    resumes from the store instead of starting over.  Store I/O failure
    never fails the point: the result still returns and the Runner-side
    caches serve it for this session.  The store pickles as plain data
    (a root path and a fingerprint string), so the same function drives
    the serial path and the process pool.
    """
    outcome = execute_experiment_settled(experiment, trace=trace)
    if not isinstance(outcome, ExperimentFailure):
        try:
            store.put(experiment.spec_hash(), outcome, experiment)
        except OSError:
            pass
    return outcome


def _settled_fn(store, trace: Optional[TraceConfig] = None):
    """The per-point settled executor, write-through when a store rides.

    Both the store and the trace overlay are bound with
    :func:`functools.partial` over plain data (the store pickles as a
    root path + fingerprint, :class:`TraceConfig` is a frozen
    dataclass), so the same callable drives the serial path and the
    process pool.
    """
    if store is None:
        if trace is None:
            return execute_experiment_settled
        return functools.partial(execute_experiment_settled, trace=trace)
    return functools.partial(execute_experiment_settled_store, store,
                             trace=trace)


class ExecutionBackend(abc.ABC):
    """How a Runner turns experiment specs into results."""

    name = "abstract"

    @abc.abstractmethod
    def run_all(self, experiments: Sequence[Experiment]) -> List[SimulationResult]:
        """Execute every experiment; results align with the input order."""

    def run_all_settled(self, experiments: Sequence[Experiment],
                        store=None,
                        trace: Optional[TraceConfig] = None,
                        progress: Optional[ProgressFn] = None) -> List[Settled]:
        """Like :meth:`run_all`, but failures isolate to their point.

        ``store`` (a :class:`~repro.api.store.ResultStore`) turns on
        per-point write-through: each success is persisted by the worker
        that computed it, as it finishes.  ``trace`` overlays an
        observability config on execution without touching the specs (see
        :func:`execute_experiment`).  ``progress`` is called with the
        number of points that just settled, as they settle.
        """
        fn = _settled_fn(store, trace)
        if progress is None:
            return [fn(e) for e in experiments]
        settled: List[Settled] = []
        for experiment in experiments:
            settled.append(fn(experiment))
            progress(1)
        return settled

    def run(self, experiment: Experiment) -> SimulationResult:
        return self.run_all([experiment])[0]


class SerialBackend(ExecutionBackend):
    """Run experiments one by one in the calling process."""

    name = "serial"

    def run_all(self, experiments: Sequence[Experiment]) -> List[SimulationResult]:
        return [execute_experiment(e) for e in experiments]


def backend_for(jobs: int,
                timeout_s: Optional[float] = None) -> ExecutionBackend:
    """The natural backend for a worker count: a pool above one job.

    A per-point ``timeout_s`` forces the pool even at one job -- a
    timeout is only enforceable on work running in a child process the
    parent can abandon.
    """
    if jobs > 1 or timeout_s is not None:
        return ProcessPoolBackend(jobs=jobs, timeout_s=timeout_s)
    return SerialBackend()


class ProcessPoolBackend(ExecutionBackend):
    """Fan experiments across a :mod:`multiprocessing` worker pool.

    Args:
        jobs: worker count; defaults to the machine's CPU count.
        chunksize: experiments handed to a worker at a time.  1 balances
            best when run times differ wildly across a sweep (strict
            models at high scope counts run much longer than Naive at
            low ones).
        timeout_s: per-point wall-clock budget for *settled* batches.  A
            point that exceeds it settles as a retryable
            :class:`ExperimentFailure` instead of wedging the whole
            shard; the hung child is killed when the pool closes.  The
            budget is measured from when the batch starts waiting on
            that point, so it bounds wait-per-point, not total wall.
    """

    name = "process-pool"

    def __init__(self, jobs: Optional[int] = None, chunksize: int = 1,
                 timeout_s: Optional[float] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.chunksize = chunksize
        self.timeout_s = timeout_s

    def run_all(self, experiments: Sequence[Experiment]) -> List[SimulationResult]:
        return self._map(execute_experiment, experiments)

    def run_all_settled(self, experiments: Sequence[Experiment],
                        store=None,
                        trace: Optional[TraceConfig] = None,
                        progress: Optional[ProgressFn] = None) -> List[Settled]:
        fn = _settled_fn(store, trace)
        if self.timeout_s is None and progress is None:
            return self._map(fn, experiments)
        experiments = list(experiments)
        if not experiments:
            return []
        workers = max(1, min(self.jobs, len(experiments)))
        ctx = self._context()
        # Exiting the `with` terminates the pool, killing any child
        # still stuck on a timed-out point.  Progress reporting rides
        # the same per-point apply_async path as the timeout: points
        # are collected (and reported) in input order as they finish.
        with ctx.Pool(processes=workers) as pool:
            pending = [pool.apply_async(fn, (e,)) for e in experiments]
            settled: List[Settled] = []
            for experiment, result in zip(experiments, pending):
                try:
                    settled.append(result.get(self.timeout_s))
                except multiprocessing.TimeoutError:
                    settled.append(ExperimentFailure(
                        f"point {experiment.spec_hash()} exceeded the "
                        f"{self.timeout_s}s per-point timeout (hung "
                        f"simulation or starved worker); killed with the "
                        f"pool", retryable=True))
                if progress is not None:
                    progress(1)
            return settled

    def _map(self, fn, experiments: Sequence[Experiment]) -> List:
        experiments = list(experiments)
        workers = min(self.jobs, len(experiments))
        if workers <= 1:
            return [fn(e) for e in experiments]
        ctx = self._context()
        with ctx.Pool(processes=workers) as pool:
            return pool.map(fn, experiments, chunksize=self.chunksize)

    @staticmethod
    def _context():
        # Prefer fork: workers inherit the imported simulator for free and
        # no __main__ re-import is needed (spawn breaks under pytest).
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )


class WorkQueueBackend(ExecutionBackend):
    """Distribute a settled batch across ``repro-bench worker`` fleets.

    The batch is sharded into lease-protected task files under the
    store's ``queue/`` tree (see :mod:`repro.api.workqueue`); any worker
    pointed at the same store pulls shards and persists results
    write-through.  The coordinator embedded in this backend re-leases
    expired shards, retries transient failures with capped backoff, and
    degrades to local execution through ``fallback`` when no workers
    pick tasks up within the grace period -- so ``--distributed`` never
    needs a fleet to make progress, it only goes faster with one.

    Only :meth:`run_all_settled` is distributed; :meth:`run_all` runs
    the same path and raises on the first failure (matching the strict
    contract of the other backends).  Keyword arguments mirror
    :class:`~repro.api.workqueue.Coordinator`.
    """

    name = "work-queue"

    def __init__(self, store, **coordinator_kwargs) -> None:
        from repro.api.store import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self._kwargs = coordinator_kwargs
        #: The last run's supervision counters (set by run_all_settled).
        self.last_stats: Optional[dict] = None

    def _coordinator(self):
        from repro.api.workqueue import Coordinator

        return Coordinator(self.store, **self._kwargs)

    def run_all(self, experiments: Sequence[Experiment]) -> List[SimulationResult]:
        results = []
        for outcome in self.run_all_settled(experiments):
            if isinstance(outcome, ExperimentFailure):
                raise RuntimeError(
                    f"distributed point failed:\n{outcome.error}")
            results.append(outcome)
        return results

    def run_all_settled(self, experiments: Sequence[Experiment],
                        store=None,
                        trace: Optional[TraceConfig] = None,
                        progress: Optional[ProgressFn] = None) -> List[Settled]:
        if store is not None and os.fspath(store.root) != self.store.root:
            raise ValueError(
                f"WorkQueueBackend is bound to store {self.store.root!r} "
                f"but the batch was dispatched with store {store.root!r}; "
                f"the queue and the results must share one store")
        coordinator = self._coordinator()
        settled = coordinator.run(experiments, trace=trace,
                                  progress=progress)
        self.last_stats = dict(coordinator.stats)
        return settled
