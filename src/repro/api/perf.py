"""Tracked kernel-throughput benchmarks (``repro-bench perf``).

The simulator's performance trajectory is measured on a small set of
*pinned* configurations -- YCSB-C (read-only scans, the paper's hottest
sweep point shape), the default YCSB mix, one TPC-H query and the litmus
workload -- chosen to exercise every consistency-model code path at a
size that finishes in well under a second.

For each configuration the harness:

* builds the system and compiles the workload *outside* the timed
  region, then times :meth:`System.run` only -- events/sec measures the
  event kernel, not workload generation;
* runs the simulation ``repeats`` times and asserts **determinism**:
  every repeat must produce byte-identical statistics (``stats`` dict,
  ``run_time``, ``events``, ``stale_reads``);
* records a canonical SHA-256 digest of the results.  The digest is
  machine-independent, so a checked-in baseline (``BENCH_kernel.json``)
  pins the *simulation results* as well as the throughput: any change
  that alters what the simulator computes -- not just how fast -- trips
  the digest comparison.

``BENCH_kernel.json`` at the repo root stores the numbers for the
current kernel next to the pre-optimization baseline, so future PRs can
tell whether they moved the needle (and in which direction).
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.api.experiment import Experiment

#: Schema tag stored in benchmark JSON files.
SCHEMA = "repro-bench-perf/v1"

#: The tracked benchmark file at the repo root; ``repro-bench perf``
#: reads it for the trajectory columns when no ``--check`` is given.
TRACKED_FILE = "BENCH_kernel.json"

#: The pinned benchmark points.  Do not retune these casually: the
#: checked-in baseline numbers (and result digests) are tied to them.
PERF_CONFIGS: Dict[str, dict] = {
    "ycsb-c": {
        "workload": "ycsb",
        "params": {"num_ops": 60, "num_records": 8000, "scan_fraction": 1.0,
                   "seed": 7},
        "config": {"preset": "scaled", "model": "scope", "num_scopes": 4},
        "variant": "perf",
    },
    "ycsb-mix": {
        "workload": "ycsb",
        "params": {"num_ops": 40, "num_records": 4000, "seed": 7},
        "config": {"preset": "scaled", "model": "scope-relaxed",
                   "num_scopes": 8},
        "variant": "perf",
    },
    "tpch-q6": {
        "workload": "tpch",
        "params": {"query": "q6", "scale": 0.015625},
        "config": {"preset": "scaled", "model": "scope", "num_scopes": 32},
        "variant": "perf",
    },
    "litmus": {
        "workload": "litmus",
        "params": {"rounds": 50, "threads": 4},
        "config": {"preset": "scaled", "model": "atomic", "num_scopes": 4},
        "variant": "perf",
    },
    # Scaled-up points: the seed-sized configs above stay pinned for
    # trajectory continuity; these two track the kernel at higher core
    # counts and bigger working sets, where queue depths, MSHR pressure
    # and the wheel/heap mix differ from the small configs.
    "ycsb-c-8core": {
        "workload": "ycsb",
        "params": {"num_ops": 64, "num_records": 16000,
                   "scan_fraction": 1.0, "threads": 8, "seed": 7},
        "config": {"preset": "scaled", "model": "scope", "num_scopes": 8,
                   "cores": {"num_cores": 8}},
        "variant": "perf",
    },
    "tpch-q6-sf2": {
        "workload": "tpch",
        "params": {"query": "q6", "scale": 0.03125, "threads": 6},
        "config": {"preset": "scaled", "model": "scope", "num_scopes": 64},
        "variant": "perf",
    },
    # ycsb-c with the MSHR knobs explicitly on (same size/seed as the
    # pinned ycsb-c): gates the hit-path overhead of the MshrFile
    # bookkeeping + mshr_* stats against the silent-default twin.
    "ycsb-c-mshr8": {
        "workload": "ycsb",
        "params": {"num_ops": 60, "num_records": 8000, "scan_fraction": 1.0,
                   "seed": 7},
        "config": {"preset": "scaled", "model": "scope", "num_scopes": 4,
                   "l1": {"mshr_entries": 8},
                   "llc": {"mshr_entries": 64}},
        "variant": "perf",
    },
    # ycsb-c driven open-loop near its saturation knee: gates the
    # admission-queue + latency-histogram path (ARRIVE markers, arrival
    # catch-up, per-request settle) and pins the traffic stats digest.
    "ycsb-c-openloop": {
        "workload": "ycsb",
        "params": {"num_ops": 60, "num_records": 8000, "scan_fraction": 1.0,
                   "seed": 7},
        "config": {"preset": "scaled", "model": "scope", "num_scopes": 4,
                   "traffic": {"arrival": "poisson", "offered_load": 0.3,
                               "queue_depth": 16}},
        "variant": "perf",
    },
}

#: Configurations the ``--quick`` smoke run measures.
QUICK_CONFIGS = ("ycsb-c", "litmus")


class PerfDivergence(AssertionError):
    """Raised when repeated runs of one pinned config disagree."""


def _result_fingerprint(result) -> dict:
    """Everything that must be byte-identical between repeats."""
    return {
        "run_time": result.run_time,
        "events": result.events,
        "stale_reads": result.stale_reads,
        "stats": result.stats,
    }


def _digest(fingerprint: dict) -> str:
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_config(name: str, repeats: int = 3) -> dict:
    """Measure one pinned configuration.

    Returns a record with throughput (best of ``repeats``) and the
    result digest.  Raises :class:`PerfDivergence` if any repeat's
    results differ from the first run's -- the determinism guarantee the
    kernel optimizations must preserve.
    """
    from repro.system.builder import System
    from repro.system.simulation import collect_result

    spec = PERF_CONFIGS[name]
    experiment = Experiment.from_dict(spec)
    fingerprint = None
    best_wall = None
    for _ in range(max(1, repeats)):
        workload = experiment.build_workload()
        system = System(experiment.config)
        programs = workload.compile(system)
        system.load_programs(programs)
        start = time.perf_counter()
        run_time = system.run(max_events=experiment.max_events)
        wall = time.perf_counter() - start
        result = collect_result(system, run_time)
        current = _result_fingerprint(result)
        if fingerprint is None:
            fingerprint = current
        elif current != fingerprint:
            raise PerfDivergence(
                f"perf config {name!r}: repeated runs diverged "
                f"(run_time {current['run_time']} vs "
                f"{fingerprint['run_time']}, events {current['events']} vs "
                f"{fingerprint['events']})"
            )
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "events": fingerprint["events"],
        "run_time": fingerprint["run_time"],
        "stale_reads": fingerprint["stale_reads"],
        "stats_sha256": _digest(fingerprint),
        "wall_s": round(best_wall, 6),
        "events_per_sec": round(fingerprint["events"] / best_wall),
    }


def profile_config(name: str, top: int = 25, sort: str = "cumulative",
                   stream=None) -> None:
    """Run one pinned configuration under :mod:`cProfile`.

    Prints the ``top`` entries by the given sort key (build and compile
    happen outside the profiled region, like the timed runs), so perf
    work starts from measured hot spots instead of guesses::

        repro-bench perf --profile ycsb-c
    """
    import cProfile
    import pstats

    from repro.system.builder import System

    spec = PERF_CONFIGS[name]
    experiment = Experiment.from_dict(spec)
    workload = experiment.build_workload()
    system = System(experiment.config)
    programs = workload.compile(system)
    system.load_programs(programs)
    profiler = cProfile.Profile()
    profiler.enable()
    system.run(max_events=experiment.max_events)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top)


def measure_store_lookup(config: str = "litmus", lookups: int = 200,
                         repeats: int = 5) -> dict:
    """Measure the persistent store's hit path on one pinned config.

    Simulates the config once, persists it into a throwaway
    :class:`~repro.api.store.ResultStore`, then times ``lookups`` warm
    ``get`` calls (full read: open, JSON parse, digest verification,
    result rebuild), best of ``repeats`` passes.  This is the per-point
    overhead a fully warm campaign pays instead of a simulation, tracked
    in ``BENCH_kernel.json``'s ``store`` section so cache-path
    regressions are visible next to kernel throughput.
    """
    import os
    import tempfile

    from repro.api.backends import execute_experiment
    from repro.api.store import ResultStore

    experiment = Experiment.from_dict(PERF_CONFIGS[config])
    result = execute_experiment(experiment)
    spec_hash = experiment.spec_hash()
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        path = store.put(spec_hash, result, experiment)
        entry_bytes = os.path.getsize(path)
        best = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for _ in range(lookups):
                hit = store.get(spec_hash)
            elapsed = time.perf_counter() - start
            if hit is None:
                raise AssertionError("store lookup missed its own entry")
            if best is None or elapsed < best:
                best = elapsed
    return {
        "config": config,
        "entry_bytes": entry_bytes,
        "lookups": lookups,
        "lookup_us": round(best / lookups * 1e6, 1),
        "lookups_per_sec": round(lookups / best),
    }


def run_suite(names: Optional[Iterable[str]] = None,
              repeats: int = 3) -> dict:
    """Measure a set of pinned configurations (all of them by default)."""
    names = list(names) if names is not None else list(PERF_CONFIGS)
    unknown = [n for n in names if n not in PERF_CONFIGS]
    if unknown:
        raise KeyError(
            f"unknown perf configs {unknown}; "
            f"pinned: {', '.join(PERF_CONFIGS)}"
        )
    return {
        "schema": SCHEMA,
        "configs": {name: run_config(name, repeats=repeats)
                    for name in names},
    }


def check_against_baseline(current: dict, baseline: dict,
                           tolerance: float = 0.30) -> List[str]:
    """Compare a fresh measurement against a checked-in baseline.

    Returns a list of human-readable failures:

    * a config's result digest changed (the simulation now computes
      different results -- machine-independent, always an error);
    * a config's events/sec dropped more than ``tolerance`` below the
      baseline (machine-dependent; gate CI runners accordingly).
    """
    failures = []
    for name, cur in current["configs"].items():
        base = baseline.get("configs", {}).get(name)
        if base is None:
            continue
        if cur["stats_sha256"] != base.get("stats_sha256"):
            failures.append(
                f"{name}: simulation results changed "
                f"(digest {cur['stats_sha256'][:12]} != "
                f"baseline {base.get('stats_sha256', '?')[:12]})"
            )
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if cur["events_per_sec"] < floor:
            failures.append(
                f"{name}: events/sec regressed to {cur['events_per_sec']:,} "
                f"(baseline {base['events_per_sec']:,}, floor {floor:,.0f})"
            )
    return failures


def _speedup_sections(baseline: Optional[dict]) -> List:
    """The (label, configs) speedup columns a baseline record provides.

    A tracked file (``BENCH_kernel.json``) carries the seed measurement
    in ``baseline`` and one snapshot per past optimization PR in
    ``history``; each becomes a column, plus the file's current
    ``configs`` as ``vs-last`` -- the per-config trajectory.  A plain
    measurement record (``--output`` of an earlier run) yields the
    single classic ``speedup`` column.
    """
    if baseline is None:
        return []
    sections = []
    base_configs = baseline.get("baseline", {}).get("configs")
    history = baseline.get("history", {})
    if base_configs or history:
        if base_configs:
            sections.append(("vs-seed", base_configs))
        for key in sorted(history):
            configs = history[key].get("configs")
            if configs:
                sections.append((f"vs-{key}", configs))
        if baseline.get("configs"):
            sections.append(("vs-last", baseline["configs"]))
    elif baseline.get("configs"):
        sections.append(("speedup", baseline["configs"]))
    return sections


def format_report(record: dict, baseline: Optional[dict] = None) -> str:
    """A fixed-width table of one measurement (vs. a baseline if given).

    With a tracked baseline file the table grows one speedup column per
    stored section (seed baseline, each ``history`` snapshot, the last
    recorded measurement), so ``repro-bench perf`` shows where each
    config's throughput stands in the kernel's PR-by-PR trajectory.
    Ratios against checked-in numbers are machine-dependent; they are
    only exact when the sections were measured on this machine.
    """
    sections = _speedup_sections(baseline)
    lines = [f"{'config':<16} {'events':>10} {'run_time':>10} "
             f"{'wall (s)':>9} {'events/sec':>12}"
             + "".join(f"  {label:>8}" for label, _ in sections)]
    for name, cur in record["configs"].items():
        cells = ""
        for _, configs in sections:
            base = configs.get(name)
            if base and base.get("events_per_sec"):
                ratio = cur["events_per_sec"] / base["events_per_sec"]
                cells += f"  {ratio:>7.2f}x"
            else:
                cells += f"  {'-':>8}"
        lines.append(
            f"{name:<16} {cur['events']:>10,} {cur['run_time']:>10,} "
            f"{cur['wall_s']:>9.3f} {cur['events_per_sec']:>12,}{cells}"
        )
    return "\n".join(lines)


def load_baseline(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def write_record(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")


def update_tracked_file(path: str, record: dict) -> dict:
    """Refresh the tracked benchmark file (``BENCH_kernel.json``) in place.

    Preserves the file's ``description`` and ``baseline`` section,
    merges the new measurements over any configs not re-measured, and
    recomputes ``speedup_vs_baseline`` -- so the checked-in schema that
    ``benchmarks/perf/test_perf.py`` requires can be regenerated with
    ``repro-bench perf --update BENCH_kernel.json``.
    """
    try:
        existing = load_baseline(path)
    except FileNotFoundError:
        existing = {}
    merged = dict(existing.get("configs", {}))
    merged.update(record["configs"])
    out = {"schema": SCHEMA, "configs": merged}
    # Preserve every hand-maintained section (description, baseline,
    # history, ...); only the fresh measurements are regenerated.
    for key, value in existing.items():
        if key not in ("schema", "configs"):
            out[key] = value
    base_configs = out.get("baseline", {}).get("configs", {})
    for name, cur in merged.items():
        base = base_configs.get(name)
        if base and base.get("events_per_sec"):
            cur["speedup_vs_baseline"] = round(
                cur["events_per_sec"] / base["events_per_sec"], 2)
    write_record(path, out)
    return out


def build_perf_parser():
    """The ``repro-bench perf`` argument parser (shared with the CLI's
    help snapshot, see :func:`repro.api.cli.help_snapshot`)."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro-bench perf")
    parser.add_argument("--quick", action="store_true",
                        help="measure only the smoke configs "
                             f"({', '.join(QUICK_CONFIGS)})")
    parser.add_argument("--configs", default=None,
                        help="comma-separated pinned config names")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--check", metavar="BASELINE_JSON", default=None,
                        help="fail if results diverge from, or events/sec "
                             "regresses more than --tolerance below, this "
                             "baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional events/sec regression "
                             "for --check (default 0.30)")
    parser.add_argument("--output", metavar="JSON", default=None,
                        help="write the raw measurement record to this file")
    parser.add_argument("--update", metavar="TRACKED_JSON", default=None,
                        help="refresh a tracked benchmark file in place, "
                             "preserving its baseline section and "
                             "recomputing speedups (use for "
                             "BENCH_kernel.json)")
    parser.add_argument("--profile", metavar="CONFIG", default=None,
                        help="run one pinned config under cProfile and "
                             "print the top --profile-top entries by "
                             "cumulative time, then exit")
    parser.add_argument("--profile-top", type=int, default=25,
                        help="entries to print with --profile (default 25)")
    parser.add_argument("--store-bench", action="store_true",
                        help="measure the persistent store's hit-path "
                             "lookup latency instead of kernel "
                             "throughput; with --update, refreshes only "
                             "the tracked file's 'store' section")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-bench perf`` subcommand."""
    parser = build_perf_parser()
    args = parser.parse_args(argv)

    if args.store_bench:
        bench = measure_store_lookup(repeats=max(1, args.repeats))
        print(f"store-hit lookup ({bench['config']} entry, "
              f"{bench['entry_bytes']:,} bytes): "
              f"{bench['lookup_us']} us/lookup, "
              f"{bench['lookups_per_sec']:,} lookups/sec")
        if args.output:
            write_record(args.output, {"schema": SCHEMA, "store": bench})
            print(f"wrote {args.output}")
        if args.update:
            try:
                tracked = load_baseline(args.update)
            except FileNotFoundError:
                tracked = {"schema": SCHEMA, "configs": {}}
            tracked["store"] = bench
            write_record(args.update, tracked)
            print(f"updated {args.update} (store section only)")
        return 0

    if args.profile:
        if args.profile not in PERF_CONFIGS:
            parser.error(f"unknown perf config {args.profile!r}; "
                         f"pinned: {', '.join(PERF_CONFIGS)}")
        profile_config(args.profile, top=args.profile_top)
        return 0

    if args.configs:
        names = [n.strip() for n in args.configs.split(",") if n.strip()]
    elif args.quick:
        names = list(QUICK_CONFIGS)
    else:
        names = list(PERF_CONFIGS)

    record = run_suite(names, repeats=args.repeats)
    baseline = load_baseline(args.check) if args.check else None
    display = baseline
    if display is None:
        # Default trajectory view: the tracked file's baseline/history
        # sections, when it is present where the command runs.
        try:
            display = load_baseline(TRACKED_FILE)
        except (FileNotFoundError, ValueError):
            display = None
    print(format_report(record, display))
    if display is not None and display is not baseline \
            and _speedup_sections(display):
        print(f"(speedup columns from {TRACKED_FILE} sections; ratios "
              f"are machine-dependent)")
    if args.output:
        write_record(args.output, record)
        print(f"wrote {args.output}")
    if args.update:
        update_tracked_file(args.update, record)
        print(f"updated {args.update}")
        print("note: speedup_vs_baseline compares against the stored "
              "baseline measurements; ratios are only meaningful when "
              "the baseline was measured on this machine (ideally "
              "interleaved in the same session).")
    if baseline is not None:
        failures = check_against_baseline(record, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(f"ok: within {args.tolerance:.0%} of {args.check}")
    return 0
