"""Workload registry: instantiate workloads by name.

Workload classes (subclasses of :class:`repro.workloads.base.Workload`)
register themselves with :func:`register_workload`; an
:class:`~repro.api.experiment.Experiment` then names its workload as a
plain string and the registry builds the instance from the experiment's
parameter dict -- so sweeps, caches and worker processes only ever carry
declarative data, never live workload objects.

The built-in workloads (``ycsb``, ``tpch``, ``litmus``) live in
:mod:`repro.workloads` and are imported lazily on first lookup, keeping
``import repro.api`` cheap and cycle-free.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, TypeVar

F = TypeVar("F", bound=type)


class UnknownWorkloadError(KeyError):
    """Raised when an experiment names a workload nobody registered."""

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (f"unknown workload {self.name!r}; "
                f"registered: {', '.join(self.known) or '(none)'}")


class WorkloadRegistry:
    """Name -> workload-class mapping with lazy built-in loading."""

    def __init__(self) -> None:
        self._factories: Dict[str, type] = {}
        self._builtins_loaded = False

    def register(self, name: str, factory: type) -> None:
        existing = self._factories.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(
                f"workload {name!r} already registered to {existing!r}"
            )
        self._factories[name] = factory

    def _ensure_builtins(self) -> None:
        if not self._builtins_loaded:
            self._builtins_loaded = True
            # Importing the package runs the @register_workload decorators.
            import repro.workloads  # noqa: F401

    def get(self, name: str) -> type:
        self._ensure_builtins()
        try:
            return self._factories[name]
        except KeyError:
            raise UnknownWorkloadError(name, self.names()) from None

    def create(self, name: str, params: Optional[Mapping[str, object]] = None):
        """Instantiate the named workload from a plain parameter dict."""
        factory = self.get(name)
        kwargs = dict(params or {})
        builder: Callable = getattr(factory, "from_params", factory)
        return builder(**kwargs)

    def names(self) -> List[str]:
        self._ensure_builtins()
        return sorted(self._factories)

    def describe(self) -> Dict[str, str]:
        """Name -> first docstring line, for ``repro-bench list``."""
        self._ensure_builtins()
        return {
            name: (cls.__doc__ or "").strip().splitlines()[0]
            if cls.__doc__ else ""
            for name, cls in sorted(self._factories.items())
        }


#: The process-wide registry every Experiment resolves against.
REGISTRY = WorkloadRegistry()


def register_workload(cls: F) -> F:
    """Class decorator: register a Workload under its ``name`` attribute."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise TypeError(
            f"@register_workload needs a non-empty class attribute 'name' "
            f"on {cls!r}"
        )
    REGISTRY.register(name, cls)
    return cls
