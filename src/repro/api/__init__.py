"""The canonical front door for running simulations.

One run is an :class:`Experiment` -- a frozen spec of system config,
workload name, workload params and variant tag.  A :class:`Runner`
executes specs through a pluggable backend (:class:`SerialBackend` or
:class:`ProcessPoolBackend`) and caches results by spec hash::

    from repro.api import Experiment, ProcessPoolBackend, Runner

    exps = [
        Experiment.from_dict({
            "workload": "ycsb",
            "params": {"num_records": 8000, "num_ops": 30},
            "config": {"preset": "scaled", "model": model, "num_scopes": 4},
        })
        for model in ("naive", "atomic", "scope")
    ]
    results = Runner(backend=ProcessPoolBackend(jobs=4)).run_all(exps)
    print(results[1].llc.hit_rate, results[1].pim.ops_executed)

Workloads are resolved by name through the registry
(:func:`register_workload`); results come back as
:class:`~repro.system.simulation.SimulationResult` with typed
:class:`StatsView` access.

Whole evaluation grids are declared as :class:`Sweep`/:class:`Campaign`
specs (:mod:`repro.api.sweep`) and executed with :func:`run_campaign`:
spec-hash deduplication, process-pool sharding, per-point failure
isolation, and figure-grade aggregation into ``EXPERIMENTS.md``.

Results outlive the process through the persistent
:class:`ResultStore` (:mod:`repro.api.store`): an on-disk,
content-addressed cache keyed by spec hash plus a code/format
fingerprint, shared by concurrent shards and sessions --
``Runner(store=...)`` consults it before dispatching and writes every
fresh success back.
"""

from repro.api.backends import (
    ExecutionBackend,
    ExperimentFailure,
    ProcessPoolBackend,
    SerialBackend,
    WorkQueueBackend,
    backend_for,
    execute_experiment,
)
from repro.api.experiment import (
    Experiment,
    config_from_dict,
    config_to_dict,
    freeze_params,
)
from repro.api.registry import (
    REGISTRY,
    UnknownWorkloadError,
    WorkloadRegistry,
    register_workload,
)
from repro.api.results import (
    RESULT_SCHEMA,
    SimulationResult,
    StatsView,
    headline,
    result_digest,
)
from repro.api.runner import Runner
from repro.api.store import ResultStore, code_fingerprint
from repro.api.sweep import (
    Axis,
    Campaign,
    CampaignResult,
    CAMPAIGNS,
    Pivot,
    Sweep,
    get_campaign,
    run_campaign,
)

__all__ = [
    "Axis",
    "CAMPAIGNS",
    "Campaign",
    "CampaignResult",
    "Experiment",
    "ExecutionBackend",
    "ExperimentFailure",
    "Pivot",
    "ProcessPoolBackend",
    "REGISTRY",
    "RESULT_SCHEMA",
    "ResultStore",
    "Runner",
    "SerialBackend",
    "SimulationResult",
    "StatsView",
    "Sweep",
    "WorkQueueBackend",
    "UnknownWorkloadError",
    "WorkloadRegistry",
    "backend_for",
    "code_fingerprint",
    "config_from_dict",
    "config_to_dict",
    "execute_experiment",
    "freeze_params",
    "get_campaign",
    "headline",
    "register_workload",
    "result_digest",
    "run_campaign",
]
