"""Persistent result store: an on-disk, content-addressed cache of
:class:`~repro.system.simulation.SimulationResult` snapshots.

The Runner's in-memory spec-hash cache dies with the process; this store
is the tier behind it, shared by every session, CI job and worker
process that points at the same directory.  A warm store turns the
paper-grid campaign from minutes of simulation into milliseconds of
lookup (``repro-bench sweep run paper-grid --store DIR`` twice: the
second run makes zero backend dispatches).

Key schema
----------

One entry caches one experiment's result.  The entry key is::

    key = sha256("<spec_hash>:<fingerprint>")[:40]

where

* ``spec_hash`` is :meth:`repro.api.experiment.Experiment.spec_hash` --
  a digest of the *full* declarative spec (system config, workload name,
  workload params, variant, event budget), so two experiments collide
  only if they describe the same simulation;
* ``fingerprint`` is :func:`code_fingerprint` -- a digest of the result
  format version (:data:`~repro.system.simulation.RESULT_SCHEMA`) and of
  every Python source file of the simulation engine (``repro.core``,
  ``repro.host``, ``repro.memory``, ``repro.pim``, ``repro.sim``,
  ``repro.system``, ``repro.workloads``).  Any change to the kernels
  changes the fingerprint, so results computed by an older simulator are
  never served -- they simply stop being addressable and become garbage
  for ``prune``.

File layout
-----------

Entries shard on the first two hex digits of the key::

    <root>/<key[:2]>/<key>.json

Each file is a standalone JSON document (no pickle anywhere)::

    {
      "schema":        "repro-store-entry/1",
      "spec_hash":     "...",              # the experiment's spec hash
      "fingerprint":   "...",              # code/format fingerprint
      "experiment":    {...} | null,       # spec dict, for inspection/export
      "result":        {...},              # SimulationResult.to_dict()
      "result_sha256": "..."               # digest of "result", verified on read
    }

Concurrency
-----------

Writes are atomic: the entry is written to a unique temporary file in
the same shard directory and ``os.replace``d into place, so concurrent
writers (process-pool shards, parallel CI jobs) can share one store
without locks -- the worst case is two processes computing the same
deterministic result and one rename winning.  Reads are lock-free; a
torn, corrupt or foreign file reads as a miss (and is reported by
:meth:`ResultStore.verify`).

Set the ``REPRO_STORE`` environment variable to give every CLI
invocation a default store directory.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.system.simulation import (
    RESULT_SCHEMA,
    SimulationResult,
    result_digest,
)

__all__ = [
    "STORE_SCHEMA",
    "QUARANTINE_DIR",
    "ResultStore",
    "StoreEntry",
    "atomic_write_json",
    "code_fingerprint",
    "read_json",
    "try_create_json",
]

logger = logging.getLogger("repro.store")

#: Schema tag of one store entry file.
STORE_SCHEMA = "repro-store-entry/1"

#: Environment variable naming the default store directory for the CLI.
STORE_ENV = "REPRO_STORE"

#: Directory (under the store root) corrupt entries self-heal into.
QUARANTINE_DIR = "quarantine"

#: Subpackages whose sources define what a simulation computes.  The API
#: layer (specs, sweeps, CLI) and analysis/report formatting are
#: deliberately excluded: they decide *which* experiments run and how
#: results print, never what a run computes.
_ENGINE_PACKAGES = ("core", "host", "memory", "obs", "pim", "sim",
                    "system", "workloads")

_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the result format plus the simulation engine's sources.

    Computed once per process (the sources cannot change under a running
    interpreter in any way that matters to already-imported kernels).
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        hasher = hashlib.sha256(RESULT_SCHEMA.encode("utf-8"))
        for package in _ENGINE_PACKAGES:
            base = os.path.join(package_root, package)
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__")
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    rel = os.path.relpath(path, package_root)
                    with open(path, "rb") as handle:
                        file_digest = hashlib.sha256(handle.read())
                    hasher.update(rel.encode("utf-8"))
                    hasher.update(file_digest.digest())
        _fingerprint_cache = hasher.hexdigest()[:16]
    return _fingerprint_cache


# ---------------------------------------------------------------------- #
# lock-free filesystem primitives
#
# The store and the distributed work queue (repro.api.workqueue) share
# one concurrency discipline: JSON documents published by atomic rename,
# claims taken by atomic exclusive create, tolerant reads that treat any
# defect as absence.  No locks, no fsync ordering assumptions beyond
# same-directory rename atomicity.
# ---------------------------------------------------------------------- #


def read_json(path: str) -> Optional[dict]:
    """The JSON object at ``path``, or ``None`` on any defect.

    Missing, torn, unparseable and non-object files all read as absent;
    writers using :func:`atomic_write_json` guarantee a reader never
    sees a half-written document at a published path.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def atomic_write_json(path: str, data: dict) -> str:
    """Publish a JSON document atomically (tmp file + ``os.replace``).

    Concurrent writers race benignly: the last rename wins whole, so a
    reader sees one complete document or the other, never a mixture.
    Returns ``path``.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def try_create_json(path: str, data: dict) -> bool:
    """Atomically create ``path`` with ``data`` iff it does not exist.

    This is the claim primitive of the work queue's leases: exactly one
    of N racing processes wins the ``O_CREAT | O_EXCL`` create; the rest
    see ``False`` and move on.  The payload is small enough that the
    single write is effectively atomic for our tolerant readers.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return True


class StoreEntry(NamedTuple):
    """Metadata of one on-disk entry (``stats``/``prune``/``verify``)."""

    path: str
    key: str
    spec_hash: str
    fingerprint: str
    size_bytes: int
    mtime: float


class ResultStore:
    """A content-addressed, multiprocess-safe result cache on disk.

    Args:
        root: store directory; created on first write.
        fingerprint: code/format fingerprint of the entries this store
            serves and writes.  Defaults to :func:`code_fingerprint`;
            tests override it to simulate a kernel change.
    """

    def __init__(self, root: str, fingerprint: Optional[str] = None) -> None:
        self.root = os.fspath(root)
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())

    @classmethod
    def from_env(cls) -> Optional["ResultStore"]:
        """The store named by ``$REPRO_STORE``, or ``None``."""
        root = os.environ.get(STORE_ENV)
        return cls(root) if root else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultStore(root={self.root!r}, "
                f"fingerprint={self.fingerprint!r})")

    # -- addressing ------------------------------------------------------ #

    def key(self, spec_hash: str) -> str:
        """The content address of one spec under this fingerprint."""
        material = f"{spec_hash}:{self.fingerprint}".encode("utf-8")
        return hashlib.sha256(material).hexdigest()[:40]

    def path(self, spec_hash: str) -> str:
        key = self.key(spec_hash)
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- reads ----------------------------------------------------------- #

    def get(self, spec_hash: str) -> Optional[SimulationResult]:
        """The stored result for a spec, or ``None``.

        A missing, torn, corrupt, digest-mismatched or wrong-fingerprint
        entry all read as a plain miss: the caller re-simulates and the
        write-back repairs the store.
        """
        data = self._load(self.path(spec_hash))
        if data is None or data.get("spec_hash") != spec_hash:
            return None
        try:
            return SimulationResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def get_many(self, spec_hashes: Iterable[str]) -> Dict[str, SimulationResult]:
        """Spec hash -> result for every hit among ``spec_hashes``."""
        out: Dict[str, SimulationResult] = {}
        for spec_hash in spec_hashes:
            result = self.get(spec_hash)
            if result is not None:
                out[spec_hash] = result
        return out

    def __contains__(self, spec_hash: str) -> bool:
        return self.get(spec_hash) is not None

    def _load(self, path: str) -> Optional[dict]:
        """One verified entry payload, or ``None`` on any defect.

        A well-formed entry whose result payload fails its recorded
        sha256 is *corrupt* (bit rot, a crashed writer that somehow
        published, a fault-injected worker): the read self-heals by
        moving the file to ``<root>/quarantine/`` so the next write-back
        repairs the address, and returns a miss.
        """
        data = read_json(path)
        if data is None or data.get("schema") != STORE_SCHEMA:
            return None
        payload = data.get("result")
        if not isinstance(payload, dict) \
                or data.get("result_sha256") != result_digest(payload):
            self._quarantine(path, data)
            return None
        if data.get("fingerprint") != self.fingerprint:
            return None
        return data

    def _quarantine(self, path: str, data: dict) -> None:
        """Move one corrupt entry out of the addressable tree."""
        target = os.path.join(self.root, QUARANTINE_DIR,
                              os.path.basename(path))
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(path, target)
        except OSError:
            return
        logger.warning(
            "store: quarantined corrupt entry %s (spec %s, fingerprint %s)",
            os.path.basename(path), data.get("spec_hash", "?"),
            data.get("fingerprint", "?"))

    # -- writes ---------------------------------------------------------- #

    def put(self, spec_hash: str, result: SimulationResult,
            experiment=None) -> str:
        """Persist one result; returns the entry path.

        Atomic (tmp file + ``os.replace``) and idempotent: simulations
        are deterministic, so concurrent writers racing on one key
        produce byte-equivalent entries and any rename order is correct.
        """
        payload = result.to_dict()
        entry = {
            "schema": STORE_SCHEMA,
            "spec_hash": spec_hash,
            "fingerprint": self.fingerprint,
            "experiment": (experiment.to_dict()
                           if experiment is not None else None),
            "result": payload,
            "result_sha256": result_digest(payload),
        }
        return atomic_write_json(self.path(spec_hash), entry)

    def put_many(self, results: Dict[str, SimulationResult],
                 experiments: Optional[Dict[str, object]] = None) -> int:
        for spec_hash, result in results.items():
            experiment = (experiments or {}).get(spec_hash)
            self.put(spec_hash, result, experiment)
        return len(results)

    # -- maintenance ----------------------------------------------------- #

    def paths(self) -> Iterator[str]:
        """Every entry file path on disk (cheap: no parsing).

        Only the two-hex-digit shard directories are entry shards; the
        ``quarantine/`` tree and any work-queue state living under the
        same root (``queue/``) are not addressable entries.
        """
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for filename in sorted(os.listdir(shard_dir)):
                if filename.endswith(".json") \
                        and not filename.startswith(".tmp-"):
                    yield os.path.join(shard_dir, filename)

    def entries(self) -> Iterator[StoreEntry]:
        """Every entry file on disk, any fingerprint, defects included."""
        for path in self.paths():
            try:
                stat = os.stat(path)
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, ValueError):
                data, stat = {}, None
            if not isinstance(data, dict):
                data = {}
            yield StoreEntry(
                path=path,
                key=os.path.basename(path)[:-len(".json")],
                spec_hash=str(data.get("spec_hash", "")),
                fingerprint=str(data.get("fingerprint", "")),
                size_bytes=stat.st_size if stat else 0,
                mtime=stat.st_mtime if stat else 0.0,
            )

    def stats(self) -> Dict[str, object]:
        """Aggregate inventory (``repro-bench store stats``)."""
        total = current = size = 0
        by_fingerprint: Dict[str, int] = {}
        for entry in self.entries():
            total += 1
            size += entry.size_bytes
            by_fingerprint[entry.fingerprint] = \
                by_fingerprint.get(entry.fingerprint, 0) + 1
            if entry.fingerprint == self.fingerprint:
                current += 1
        quarantine = os.path.join(self.root, QUARANTINE_DIR)
        quarantined = (len([f for f in os.listdir(quarantine)
                            if f.endswith(".json")])
                       if os.path.isdir(quarantine) else 0)
        return {
            "root": self.root,
            "fingerprint": self.fingerprint,
            "entries": total,
            "current_entries": current,
            "stale_entries": total - current,
            "quarantined": quarantined,
            "size_bytes": size,
            "by_fingerprint": dict(sorted(by_fingerprint.items())),
        }

    def verify(self) -> List[Tuple[str, str]]:
        """``(path, problem)`` for every defective entry of any age.

        Checks JSON well-formedness, the schema tag, the result-payload
        digest, and that the file sits at the address its content hashes
        to under its *recorded* fingerprint (stale-but-intact entries of
        older kernels verify clean; they are ``prune``'s business).
        """
        problems: List[Tuple[str, str]] = []
        for path in self.paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, ValueError) as exc:
                problems.append((path, f"unreadable: {exc}"))
                continue
            if not isinstance(data, dict) \
                    or data.get("schema") != STORE_SCHEMA:
                problems.append((path, "not a store entry"))
                continue
            payload = data.get("result")
            if not isinstance(payload, dict) \
                    or data.get("result_sha256") != result_digest(payload):
                problems.append((path, "result digest mismatch"))
                continue
            recorded = ResultStore(self.root,
                                   fingerprint=str(data.get("fingerprint")))
            expected = recorded.key(str(data.get("spec_hash")))
            if os.path.basename(path) != f"{expected}.json":
                problems.append((path, "entry at wrong address"))
        return problems

    def quarantined(self) -> List[str]:
        """Filenames sitting in ``<root>/quarantine/``, sorted.

        Reads self-heal corrupt entries by moving them here (so the
        address repairs on the next write-back), which is deliberately
        quiet at read time; ``repro-bench store verify`` surfaces the
        backlog loudly and exits nonzero until an operator inspects and
        clears the directory.
        """
        quarantine = os.path.join(self.root, QUARANTINE_DIR)
        if not os.path.isdir(quarantine):
            return []
        return sorted(f for f in os.listdir(quarantine)
                      if f.endswith(".json"))

    def prune_candidates(self, max_age_days: Optional[float] = None,
                         stale: bool = False,
                         now: Optional[float] = None,
                         fingerprint: Optional[str] = None) -> List[StoreEntry]:
        """The entries :meth:`prune` would remove, without removing them.

        ``max_age_days`` selects entries whose file mtime is older;
        ``stale`` selects every entry whose fingerprint is not this
        store's (results no older kernel can ever serve again);
        ``fingerprint`` selects every entry recorded under that exact
        fingerprint (the targeted form ``sweep run --resume`` suggests
        when an artifact's engine no longer matches).  With no selector
        set, nothing is selected.
        """
        if max_age_days is None and not stale and fingerprint is None:
            return []
        now = time.time() if now is None else now
        candidates: List[StoreEntry] = []
        for entry in self.entries():
            if stale and entry.fingerprint != self.fingerprint:
                candidates.append(entry)
            elif fingerprint is not None \
                    and entry.fingerprint == fingerprint:
                candidates.append(entry)
            elif max_age_days is not None \
                    and now - entry.mtime > max_age_days * 86400.0:
                candidates.append(entry)
        return candidates

    def prune(self, max_age_days: Optional[float] = None,
              stale: bool = False, now: Optional[float] = None,
              fingerprint: Optional[str] = None) -> int:
        """Garbage-collect entries; returns how many files were removed.

        Selector semantics are :meth:`prune_candidates`'s.
        """
        removed = 0
        for entry in self.prune_candidates(max_age_days, stale, now,
                                           fingerprint):
            try:
                os.unlink(entry.path)
                removed += 1
            except OSError:
                pass
        return removed
