"""Declarative experiment specs.

An :class:`Experiment` is a frozen, hashable description of one
simulation run: the system configuration, a workload *name* (resolved
through the :mod:`repro.api.registry`), the workload's parameters, and a
free-form variant tag.  Because the spec is plain data it can be

* hashed (:meth:`Experiment.spec_hash`) -- the Runner's result cache and
  the benchmark harness key on it;
* pickled -- the process-pool backend ships specs, not live objects;
* round-tripped through dicts (:meth:`from_dict` / :meth:`to_dict`) --
  the CLI and future sweep files construct experiments declaratively.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.core.models import ConsistencyModel
# Re-exported here for compatibility: the dict round trip lives next to
# SystemConfig itself (the system layer serializes results without
# reaching back up into the API package).
from repro.sim.config import (  # noqa: F401
    SystemConfig,
    config_from_dict,
    config_to_dict,
)
from repro.api.registry import REGISTRY

#: Frozen parameter payload: sorted ``(key, value)`` pairs, nested
#: mappings/sequences frozen recursively the same way.  Sequences
#: canonicalize to tuples (thawing back to lists); mappings are tagged
#: with :data:`_MAP` so a dict and a list of pairs stay distinguishable.
FrozenParams = Tuple[Tuple[str, object], ...]

_MAP = "__map__"


def freeze_params(params: Optional[Mapping[str, object]]) -> FrozenParams:
    """Canonicalize a parameter mapping into a hashable tuple form."""
    if params is None:
        return ()
    return tuple(sorted((str(k), _freeze_value(v)) for k, v in params.items()))


def _freeze_value(value):
    if isinstance(value, Mapping):
        return (_MAP, tuple(sorted(
            (str(k), _freeze_value(v)) for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    return value


def _thaw_value(value):
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == _MAP and isinstance(value[1], tuple):
            return {k: _thaw_value(v) for k, v in value[1]}
        return [_thaw_value(v) for v in value]
    return value


@dataclass(frozen=True)
class Experiment:
    """One simulation run, described declaratively.

    ``params`` may be passed as a plain dict; it is canonicalized into a
    frozen tuple form so experiments are hashable and order-insensitive
    in their parameters.
    """

    workload: str
    config: SystemConfig
    params: FrozenParams = field(default=())
    variant: str = "base"
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", freeze_params(self.params))

    # -- derived views --------------------------------------------------- #

    @property
    def params_dict(self) -> Dict[str, object]:
        """The workload parameters as a plain (mutable) dict."""
        return {k: _thaw_value(v) for k, v in self.params}

    @property
    def model(self) -> ConsistencyModel:
        return self.config.model

    def build_workload(self):
        """Instantiate this spec's workload through the registry."""
        return REGISTRY.create(self.workload, self.params_dict)

    # -- identity --------------------------------------------------------- #

    def spec_hash(self) -> str:
        """A stable digest of the full spec (config + workload + params).

        Equal experiments hash equally across processes and sessions, so
        the digest keys the Runner's result cache and any on-disk cache a
        later PR adds.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    # -- dict round trip -------------------------------------------------- #

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "config": config_to_dict(self.config),
            "params": self.params_dict,
            "variant": self.variant,
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Experiment":
        data = dict(data)
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ValueError(f"unknown experiment keys: {sorted(unknown)}")
        return cls(
            workload=data["workload"],
            config=config_from_dict(data.get("config", {"preset": "scaled"})),
            params=freeze_params(data.get("params")),
            variant=data.get("variant", "base"),
            max_events=data.get("max_events"),
        )

    def with_model(self, model: ConsistencyModel) -> "Experiment":
        """The same experiment under another consistency model."""
        return replace(self, config=self.config.with_model(model))
