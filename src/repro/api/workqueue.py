"""Fault-tolerant distributed work queue over the persistent store.

One campaign, N machines: the coordinator shards a batch of experiment
specs into point-range *tasks* published as atomic files under the
store's ``queue/`` tree; any number of ``repro-bench worker --store DIR``
processes -- on this host, a CI matrix, or a fleet sharing a filesystem
-- pull tasks by atomically acquiring time-limited *leases*, execute the
points with write-through persistence into the content-addressed store,
and heartbeat their lease after every point.  The coordinator reaps
expired leases (crash/straggler recovery), re-offers the work with
capped exponential backoff plus jitter, runs any task no worker touches
itself (graceful degradation to local execution), and assembles the
final settled outcomes by hydrating the store.

The whole protocol reuses the store's lock-free discipline
(:func:`~repro.api.store.atomic_write_json` publication,
:func:`~repro.api.store.try_create_json` claims, tolerant reads) and
leans on one property for correctness: **simulations are deterministic
and results are content-addressed**, so duplicate execution -- a
straggler finishing after its lease was reaped, two workers racing one
task file -- is always benign.  Leases only bound wasted work; they are
never load-bearing for correctness, which is why an N-worker campaign
with injected faults still produces a campaign digest byte-identical to
a serial run (the CI chaos gate).

Failure taxonomy
----------------

===============  ==============================================  ========
kind             detected by                                     handling
===============  ==============================================  ========
deterministic    worker reports ``ExperimentFailure`` (the spec  never retried;
                 itself cannot build or the simulation raises)   isolated per point
transient        lease expires (worker killed/hung), or an       re-offered with
                 "ok" point is missing/corrupt in the store      capped backoff
straggler        lease expires while the worker still runs       re-offered; the
                                                                 late result is
                                                                 idempotent
lost             transient retries exhausted ``max_attempts``    settled failure,
                                                                 marked retryable
===============  ==============================================  ========

Fault injection
---------------

Set ``REPRO_CHAOS`` in a worker's environment to inject faults (used by
the tests and the CI chaos job):

* ``kill-after=N`` -- hard-exit (``os._exit``) after N executed points,
  lease still held: a crash.
* ``hang-after=N[:S]`` -- sleep S seconds (default 3600) after N
  executed points, then exit without reporting: a straggler that blows
  through its lease.
* ``corrupt-after=N`` -- corrupt the Nth store write (payload tampered,
  recorded sha256 left stale): a partial/torn write the store's
  read-path quarantine must catch.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import random
import shutil
import socket
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.backends import (
    ExecutionBackend,
    ExperimentFailure,
    SerialBackend,
    Settled,
    execute_experiment_settled_store,
)
from repro.api.experiment import Experiment
from repro.api.store import (
    ResultStore,
    atomic_write_json,
    read_json,
    try_create_json,
)
from repro.obs.telemetry import TelemetryWriter
from repro.sim.config import TraceConfig

__all__ = [
    "CHAOS_ENV",
    "ChaosPlan",
    "Coordinator",
    "QueueWorker",
    "backoff_delay",
    "queue_status",
    "run_worker",
]

logger = logging.getLogger("repro.workqueue")

#: Schema tags of the three queue file kinds.
TASK_SCHEMA = "repro-queue-task/1"
LEASE_SCHEMA = "repro-queue-lease/1"
DONE_SCHEMA = "repro-queue-done/1"
MANIFEST_SCHEMA = "repro-queue-manifest/1"

#: Directory under the store root holding all queue state.
QUEUE_DIR = "queue"

#: Environment variable carrying a worker fault-injection directive.
CHAOS_ENV = "REPRO_CHAOS"


def _queue_root(store: ResultStore) -> str:
    return os.path.join(store.root, QUEUE_DIR)


def backoff_delay(attempt: int, base_s: float, cap_s: float,
                  rng: Optional[random.Random] = None) -> float:
    """Capped exponential backoff with up to +25% jitter.

    ``attempt`` counts completed failures (1 for the first retry).  The
    jitter decorrelates coordinators re-offering many shards at once so
    a recovering fleet is not hit by a synchronized thundering herd.
    """
    if attempt < 1:
        return 0.0
    delay = min(cap_s, base_s * (2.0 ** (attempt - 1)))
    jitter = (rng.random() if rng is not None else random.random())
    return delay * (1.0 + 0.25 * jitter)


# ---------------------------------------------------------------------- #
# fault injection
# ---------------------------------------------------------------------- #


class ChaosPlan:
    """A parsed ``REPRO_CHAOS`` directive driving one worker's faults."""

    def __init__(self, kind: Optional[str] = None, after: int = 0,
                 hang_s: float = 3600.0) -> None:
        self.kind = kind
        self.after = after
        self.hang_s = hang_s
        self.points_executed = 0
        self.writes = 0

    @classmethod
    def from_env(cls) -> "ChaosPlan":
        text = os.environ.get(CHAOS_ENV, "").strip()
        if not text:
            return cls()
        key, sep, value = text.partition("=")
        if not sep:
            raise ValueError(f"bad {CHAOS_ENV} directive {text!r}: "
                             f"expected kind=N")
        kind = key.strip()
        if kind not in ("kill-after", "hang-after", "corrupt-after"):
            raise ValueError(f"unknown {CHAOS_ENV} kind {kind!r}")
        count, _, hang = value.partition(":")
        return cls(kind=kind, after=int(count),
                   hang_s=float(hang) if hang else 3600.0)

    @property
    def active(self) -> bool:
        return self.kind is not None

    def on_store_write(self, store: ResultStore, spec_hash: str) -> None:
        """Chaos hook after one write-through: maybe corrupt it."""
        if self.kind != "corrupt-after":
            return
        self.writes += 1
        if self.writes != self.after:
            return
        path = store.path(spec_hash)
        entry = read_json(path)
        if entry is None or "result" not in entry:
            return
        entry["result"]["run_time"] = entry["result"].get("run_time", 0) + 1
        atomic_write_json(path, entry)  # sha256 left stale: now corrupt
        logger.warning("chaos: corrupted store entry for spec %s", spec_hash)

    def on_point_executed(self) -> None:
        """Chaos hook after one point: maybe crash or start straggling."""
        if self.kind not in ("kill-after", "hang-after"):
            return
        self.points_executed += 1
        if self.points_executed < self.after:
            return
        if self.kind == "kill-after":
            logger.warning("chaos: hard-exiting after %d points", self.after)
            os._exit(137)
        logger.warning("chaos: hanging %.0fs after %d points",
                       self.hang_s, self.after)
        time.sleep(self.hang_s)
        os._exit(0)


# ---------------------------------------------------------------------- #
# run publication (coordinator side)
# ---------------------------------------------------------------------- #


def _publish_run(store: ResultStore, experiments: Sequence[Experiment],
                 shard_size: int, lease_s: float,
                 trace: Optional[TraceConfig] = None,
                 ) -> Tuple[str, List[str]]:
    """Shard ``experiments`` into task files; returns (run_dir, shards).

    Every task file is complete and self-describing -- a worker needs no
    other state to execute it -- and published atomically, so a worker
    scanning mid-publication sees only whole tasks.  The manifest is
    written last and marks the run fully published.

    A ``trace`` overlay rides in the task file (never in the specs), so
    workers trace their points without the spec hashes -- the store keys
    and campaign digests -- changing.
    """
    from repro.api.sweep import shard_slices

    run_id = f"{int(time.time()):010d}-{os.urandom(4).hex()}"
    run_dir = os.path.join(_queue_root(store), run_id)
    shards: List[str] = []
    slices = shard_slices(len(experiments), shard_size)
    for index, sl in enumerate(slices):
        shard = f"{index:04d}"
        shards.append(shard)
        task = {
            "schema": TASK_SCHEMA,
            "run": run_id,
            "shard": shard,
            "attempt": 0,
            "not_before": 0.0,
            "lease_s": lease_s,
            "fingerprint": store.fingerprint,
            "points": [
                {"spec_hash": e.spec_hash(), "experiment": e.to_dict()}
                for e in experiments[sl]
            ],
        }
        if trace is not None:
            task["trace"] = dataclasses.asdict(trace)
        atomic_write_json(os.path.join(run_dir, "tasks", f"{shard}.json"),
                          task)
    atomic_write_json(os.path.join(run_dir, "manifest.json"), {
        "schema": MANIFEST_SCHEMA,
        "run": run_id,
        "created": time.time(),
        "shards": len(shards),
        "points": len(experiments),
        "fingerprint": store.fingerprint,
    })
    return run_dir, shards


def _shard_paths(run_dir: str, shard: str) -> Tuple[str, str, str]:
    return (os.path.join(run_dir, "tasks", f"{shard}.json"),
            os.path.join(run_dir, "leases", f"{shard}.json"),
            os.path.join(run_dir, "done", f"{shard}.json"))


# ---------------------------------------------------------------------- #
# worker
# ---------------------------------------------------------------------- #


class QueueWorker:
    """Pulls queue tasks from a store and executes them write-through.

    Args:
        store: the shared store (tasks live under ``<root>/queue/``).
        worker_id: stable identity recorded in leases and done reports;
            defaults to ``<hostname>-<pid>``.
        poll_s: idle sleep between queue scans.
        chaos: fault-injection plan; defaults to ``$REPRO_CHAOS``.

    The lease duration is dictated by each task file (the coordinator
    owns the expiry policy); a worker heartbeats after every point and
    abandons the task the moment it no longer owns the lease -- its
    partial progress survives in the store either way.
    """

    def __init__(self, store: ResultStore, worker_id: Optional[str] = None,
                 poll_s: float = 0.5,
                 chaos: Optional[ChaosPlan] = None) -> None:
        self.store = store
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_s = poll_s
        self.chaos = chaos if chaos is not None else ChaosPlan.from_env()
        self.tasks_done = 0
        self.points_run = 0
        #: Structured JSONL telemetry (``repro-bench queue tail``);
        #: observability only, never load-bearing for the protocol.
        self.telemetry = TelemetryWriter(store.root, self.worker_id)

    # -- queue scan ------------------------------------------------------ #

    def _claimable_tasks(self) -> List[Tuple[str, dict]]:
        """Every (run_dir, task) currently claimable, publication order."""
        root = _queue_root(self.store)
        if not os.path.isdir(root):
            return []
        now = time.time()
        out: List[Tuple[str, dict]] = []
        for run_id in sorted(os.listdir(root)):
            run_dir = os.path.join(root, run_id)
            tasks_dir = os.path.join(run_dir, "tasks")
            if not os.path.isdir(tasks_dir):
                continue
            for filename in sorted(os.listdir(tasks_dir)):
                if not filename.endswith(".json") \
                        or filename.startswith(".tmp-"):
                    continue
                task = read_json(os.path.join(tasks_dir, filename))
                if task is None or task.get("schema") != TASK_SCHEMA:
                    continue
                shard = task.get("shard", "")
                _, lease_path, done_path = _shard_paths(run_dir, shard)
                if os.path.exists(done_path) or os.path.exists(lease_path):
                    continue  # finished, or someone else's; never steal
                if float(task.get("not_before", 0.0)) > now:
                    continue  # backing off after a transient failure
                if task.get("fingerprint") != self.store.fingerprint:
                    logger.warning(
                        "worker %s: skipping shard %s/%s built for engine "
                        "fingerprint %s (mine is %s)", self.worker_id,
                        task.get("run"), shard, task.get("fingerprint"),
                        self.store.fingerprint)
                    continue
                out.append((run_dir, task))
        return out

    # -- lease lifecycle ------------------------------------------------- #

    def _acquire(self, run_dir: str, task: dict) -> Optional[dict]:
        """Try to claim one task; returns the held lease or ``None``."""
        _, lease_path, _ = _shard_paths(run_dir, task["shard"])
        lease_s = float(task.get("lease_s", 30.0))
        lease = {
            "schema": LEASE_SCHEMA,
            "shard": task["shard"],
            "worker": self.worker_id,
            "nonce": os.urandom(8).hex(),
            "acquired": time.time(),
            "lease_s": lease_s,
            "deadline": time.time() + lease_s,
        }
        return lease if try_create_json(lease_path, lease) else None

    def _heartbeat(self, run_dir: str, lease: dict) -> bool:
        """Renew the lease; ``False`` if ownership was lost (reaped)."""
        _, lease_path, _ = _shard_paths(run_dir, lease["shard"])
        current = read_json(lease_path)
        if current is None or current.get("nonce") != lease["nonce"]:
            return False
        lease["deadline"] = time.time() + float(lease["lease_s"])
        atomic_write_json(lease_path, lease)
        return True

    # -- execution ------------------------------------------------------- #

    def process_task(self, run_dir: str, task: dict, lease: dict) -> bool:
        """Execute one claimed task; ``True`` if the done report landed."""
        run_id, shard = task.get("run"), task["shard"]
        trace_dict = task.get("trace")
        trace = TraceConfig(**trace_dict) if trace_dict else None
        self.telemetry.emit("start", run=run_id, shard=shard,
                            points=len(task["points"]),
                            attempt=task.get("attempt", 0))
        outcomes: Dict[str, dict] = {}
        for point in task["points"]:
            spec_hash = point["spec_hash"]
            if self.store.get(spec_hash) is not None:
                outcomes[spec_hash] = {"status": "ok"}  # idempotent skip
                self.telemetry.emit("point", run=run_id, shard=shard,
                                    spec=spec_hash[:12], status="cached")
                continue
            experiment = Experiment.from_dict(point["experiment"])
            outcome = execute_experiment_settled_store(self.store, experiment,
                                                       trace=trace)
            self.points_run += 1
            if isinstance(outcome, ExperimentFailure):
                # Deterministic: the spec itself fails; report as data.
                outcomes[spec_hash] = {"status": "failed",
                                       "error": outcome.error}
                status = "failed"
            else:
                outcomes[spec_hash] = {"status": "ok"}
                self.chaos.on_store_write(self.store, spec_hash)
                status = "ok"
            self.telemetry.emit("point", run=run_id, shard=shard,
                                spec=spec_hash[:12], status=status)
            self.chaos.on_point_executed()
            if not self._heartbeat(run_dir, lease):
                logger.warning(
                    "worker %s: lost lease on shard %s/%s, abandoning "
                    "(%d/%d points done; progress is in the store)",
                    self.worker_id, run_id, shard,
                    len(outcomes), len(task["points"]))
                self.telemetry.emit("abandon", run=run_id, shard=shard,
                                    done=len(outcomes),
                                    points=len(task["points"]))
                return False
            self.telemetry.emit("heartbeat", run=run_id, shard=shard,
                                done=len(outcomes),
                                points=len(task["points"]))
        _, lease_path, done_path = _shard_paths(run_dir, task["shard"])
        atomic_write_json(done_path, {
            "schema": DONE_SCHEMA,
            "shard": task["shard"],
            "worker": self.worker_id,
            "attempt": task.get("attempt", 0),
            "outcomes": outcomes,
        })
        try:
            os.unlink(lease_path)
        except OSError:
            pass
        self.tasks_done += 1
        self.telemetry.emit("finish", run=run_id, shard=shard,
                            points=len(task["points"]))
        logger.info("worker %s: completed shard %s/%s (%d points)",
                    self.worker_id, run_id, shard,
                    len(task["points"]))
        return True

    def _sweep(self) -> int:
        """One pass over the queue; returns how many tasks were run."""
        processed = 0
        for run_dir, task in self._claimable_tasks():
            lease = self._acquire(run_dir, task)
            if lease is None:
                continue  # lost the claim race
            self.telemetry.emit("claim", run=task.get("run"),
                                shard=task["shard"],
                                points=len(task["points"]),
                                attempt=task.get("attempt", 0))
            logger.info("worker %s: claimed shard %s/%s (%d points)",
                        self.worker_id, task.get("run"), task["shard"],
                        len(task["points"]))
            self.process_task(run_dir, task, lease)
            processed += 1
        return processed

    def run(self, once: bool = False, max_idle_s: Optional[float] = None,
            max_tasks: Optional[int] = None) -> int:
        """The worker loop; returns the number of tasks completed.

        ``once`` drains what is claimable right now and returns;
        ``max_idle_s`` bounds how long the worker polls an empty queue
        before exiting; ``max_tasks`` caps the work taken.
        """
        idle_since = time.time()
        while True:
            processed = self._sweep()
            if processed:
                idle_since = time.time()
            if max_tasks is not None and self.tasks_done >= max_tasks:
                return self.tasks_done
            if once and not processed:
                return self.tasks_done
            if max_idle_s is not None \
                    and time.time() - idle_since >= max_idle_s:
                return self.tasks_done
            if not processed:
                time.sleep(self.poll_s)


def run_worker(store: ResultStore, **kwargs) -> int:
    """Convenience wrapper: build a :class:`QueueWorker` and run it."""
    run_opts = {k: kwargs.pop(k) for k in ("once", "max_idle_s", "max_tasks")
                if k in kwargs}
    return QueueWorker(store, **kwargs).run(**run_opts)


# ---------------------------------------------------------------------- #
# coordinator
# ---------------------------------------------------------------------- #


class _ShardState:
    """Coordinator-side bookkeeping for one published task."""

    __slots__ = ("shard", "spec_hashes", "attempt", "claimable_since",
                 "finished", "outcomes")

    def __init__(self, shard: str, spec_hashes: List[str],
                 now: float) -> None:
        self.shard = shard
        self.spec_hashes = spec_hashes
        self.attempt = 0
        self.claimable_since = now
        self.finished = False
        self.outcomes: Dict[str, dict] = {}


class Coordinator:
    """Drives one distributed batch: publish, supervise, assemble.

    Args:
        store: the shared store the queue and the results live in.
        shard_size: points per published task.
        lease_s: lease duration workers are granted (must exceed the
            longest single point; workers heartbeat per point).
        poll_s: supervision loop cadence.
        grace_s: how long a claimable task may sit untouched before the
            coordinator executes it locally.  This single knob covers
            both degradation (no workers ever join -> after ``grace_s``
            the whole batch runs locally) and recovery (a re-offered
            task no worker picks up ends up executed by the
            coordinator).
        max_attempts: total tries per task before its unfinished points
            settle as lost.
        backoff_base_s / backoff_cap_s: retry backoff envelope.
        fallback: backend for local execution of unclaimed tasks
            (default :class:`~repro.api.backends.SerialBackend`; a
            process pool with ``timeout_s`` adds hung-point protection).
        rng: jitter source (tests pin it).
    """

    def __init__(self, store: ResultStore, shard_size: int = 4,
                 lease_s: float = 30.0, poll_s: float = 0.25,
                 grace_s: float = 10.0, max_attempts: int = 4,
                 backoff_base_s: float = 0.5, backoff_cap_s: float = 30.0,
                 fallback: Optional[ExecutionBackend] = None,
                 rng: Optional[random.Random] = None) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.store = store
        self.shard_size = shard_size
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.grace_s = grace_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.rng = rng if rng is not None else random.Random()
        self.telemetry = TelemetryWriter(store.root, "coordinator")
        #: Per-run execution-side state (set by :meth:`run`).
        self._trace: Optional[TraceConfig] = None
        self._progress: Optional[Callable[[int], None]] = None
        #: Supervision counters (tests and ``--distributed`` reporting).
        self.stats = {
            "shards": 0,
            "worker_shards": 0,
            "local_shards": 0,
            "expired_leases": 0,
            "retries": 0,
            "deterministic_failures": 0,
            "lost_points": 0,
        }

    # -- supervision steps ----------------------------------------------- #

    def _reap_expired_lease(self, run_dir: str, state: _ShardState,
                            now: float) -> bool:
        """Reap an expired lease; ``True`` if the shard was re-offered.

        The lease file is removed (the straggler, if it still runs,
        notices at its next heartbeat and abandons) and the task is
        re-published with a bumped attempt and a jittered
        ``not_before`` so the retry backs off instead of thrashing.
        """
        task_path, lease_path, _ = _shard_paths(run_dir, state.shard)
        lease = read_json(lease_path)
        if lease is None or float(lease.get("deadline", 0.0)) > now:
            return False
        try:
            os.unlink(lease_path)
        except OSError:
            return False  # the worker finished or another reap won
        self.stats["expired_leases"] += 1
        self.telemetry.emit("reap", shard=state.shard,
                            worker=lease.get("worker", "?"))
        logger.warning(
            "coordinator: lease on shard %s by worker %s expired; "
            "re-dispatching", state.shard, lease.get("worker", "?"))
        self._schedule_retry(task_path, state, now)
        return True

    def _schedule_retry(self, task_path: str, state: _ShardState,
                        now: float) -> None:
        state.attempt += 1
        self.stats["retries"] += 1
        delay = backoff_delay(state.attempt, self.backoff_base_s,
                              self.backoff_cap_s, self.rng)
        self.telemetry.emit("retry", shard=state.shard,
                            attempt=state.attempt, delay=round(delay, 3))
        state.claimable_since = now + delay
        task = read_json(task_path)
        if task is None:
            return
        task["attempt"] = state.attempt
        task["not_before"] = now + delay
        atomic_write_json(task_path, task)

    def _collect_done(self, run_dir: str, state: _ShardState,
                      now: float) -> None:
        """Validate a done report against the store; settle or retry.

        A point the report marks failed is a deterministic failure --
        final.  A point marked ok must actually be hydratable from the
        store; if it is not (a corrupt write was quarantined, a file was
        lost), the report is discarded and the shard re-offered, because
        the failure is environmental, not the spec's.
        """
        task_path, _, done_path = _shard_paths(run_dir, state.shard)
        done = read_json(done_path)
        if done is None or done.get("schema") != DONE_SCHEMA:
            return
        outcomes = done.get("outcomes", {})
        missing = [
            h for h in state.spec_hashes
            if outcomes.get(h, {}).get("status") == "ok"
            and self.store.get(h) is None
        ]
        incomplete = [h for h in state.spec_hashes if h not in outcomes]
        if missing or incomplete:
            logger.warning(
                "coordinator: shard %s report by %s is unusable (%d ok "
                "points missing from the store, %d unreported); "
                "re-dispatching", state.shard, done.get("worker", "?"),
                len(missing), len(incomplete))
            try:
                os.unlink(done_path)
            except OSError:
                pass
            self._schedule_retry(task_path, state, now)
            return
        state.finished = True
        state.outcomes = {h: outcomes[h] for h in state.spec_hashes}
        if done.get("worker") != "coordinator":
            self.stats["worker_shards"] += 1
        if self._progress is not None:
            self._progress(len(state.spec_hashes))

    def _run_locally(self, run_dir: str, task: dict,
                     state: _ShardState) -> None:
        """Execute one unclaimed task through the fallback backend."""
        _, lease_path, done_path = _shard_paths(run_dir, state.shard)
        lease = {
            "schema": LEASE_SCHEMA,
            "shard": state.shard,
            "worker": "coordinator",
            "nonce": os.urandom(8).hex(),
            "acquired": time.time(),
            # Only this coordinator reaps leases, so its own cannot be
            # stolen; the nominal deadline just keeps the file honest.
            "deadline": time.time() + max(self.lease_s, 3600.0),
        }
        if not try_create_json(lease_path, lease):
            return  # a worker claimed it between the scan and now
        self.stats["local_shards"] += 1
        self.telemetry.emit("local", shard=state.shard,
                            points=len(task["points"]))
        logger.info("coordinator: running shard %s locally (%d points)",
                    state.shard, len(task["points"]))
        experiments = [Experiment.from_dict(p["experiment"])
                       for p in task["points"]]
        settled = self.fallback.run_all_settled(experiments,
                                                store=self.store,
                                                trace=self._trace)
        outcomes = {}
        for point, outcome in zip(task["points"], settled):
            if isinstance(outcome, ExperimentFailure):
                status = {"status": "failed", "error": outcome.error}
                if outcome.retryable:
                    # e.g. a pool timeout: environmental, so leave the
                    # point unreported and let the retry path decide.
                    status = {"status": "timeout", "error": outcome.error}
                outcomes[point["spec_hash"]] = status
            else:
                outcomes[point["spec_hash"]] = {"status": "ok"}
        atomic_write_json(done_path, {
            "schema": DONE_SCHEMA,
            "shard": state.shard,
            "worker": "coordinator",
            "attempt": task.get("attempt", 0),
            "outcomes": {h: s for h, s in outcomes.items()
                         if s["status"] != "timeout"},
        })
        try:
            os.unlink(lease_path)
        except OSError:
            pass

    # -- the supervision loop -------------------------------------------- #

    def run(self, experiments: Sequence[Experiment],
            trace: Optional[TraceConfig] = None,
            progress: Optional[Callable[[int], None]] = None,
            ) -> List[Settled]:
        """Execute a batch through the queue; settled, input order.

        ``trace`` rides in the published task files so every executor --
        remote worker or local fallback -- applies the same
        observability overlay; ``progress`` is called with a point count
        each time a shard settles.
        """
        experiments = list(experiments)
        if not experiments:
            return []
        self._trace = trace
        self._progress = progress
        run_dir, shards = _publish_run(self.store, experiments,
                                       self.shard_size, self.lease_s,
                                       trace=trace)
        from repro.api.sweep import shard_slices

        now = time.time()
        states: List[_ShardState] = [
            _ShardState(shard,
                        [e.spec_hash() for e in experiments[sl]], now)
            for shard, sl in zip(
                shards, shard_slices(len(experiments), self.shard_size))
        ]
        self.stats["shards"] = len(states)
        self.telemetry.emit("publish", run=os.path.basename(run_dir),
                            shards=len(states), points=len(experiments))
        logger.info(
            "coordinator: published run %s (%d points in %d shards) under "
            "%s", os.path.basename(run_dir), len(experiments), len(states),
            _queue_root(self.store))
        try:
            self._supervise(run_dir, states)
            return self._assemble(experiments, states)
        finally:
            self._trace = None
            self._progress = None
            shutil.rmtree(run_dir, ignore_errors=True)

    def _supervise(self, run_dir: str, states: List[_ShardState]) -> None:
        while True:
            now = time.time()
            pending = False
            for state in states:
                if state.finished:
                    continue
                task_path, lease_path, done_path = _shard_paths(
                    run_dir, state.shard)
                if os.path.exists(done_path):
                    self._collect_done(run_dir, state, now)
                    if state.finished:
                        continue
                if state.attempt >= self.max_attempts:
                    # Retries exhausted: settle what the store has, mark
                    # the rest lost.
                    state.finished = True
                    state.outcomes = {}
                    if self._progress is not None:
                        self._progress(len(state.spec_hashes))
                    continue
                pending = True
                if os.path.exists(lease_path):
                    self._reap_expired_lease(run_dir, state, now)
                elif now >= state.claimable_since + self.grace_s:
                    task = read_json(task_path)
                    if task is not None:
                        self._run_locally(run_dir, task, state)
            if not pending and all(s.finished for s in states):
                return
            if pending:
                time.sleep(self.poll_s)

    def _assemble(self, experiments: Sequence[Experiment],
                  states: List[_ShardState]) -> List[Settled]:
        """Hydrate the final outcome of every input point, in order."""
        failures: Dict[str, ExperimentFailure] = {}
        for state in states:
            for spec_hash, outcome in state.outcomes.items():
                if outcome.get("status") == "failed":
                    failures[spec_hash] = ExperimentFailure(
                        outcome.get("error", "unknown failure"))
        out: List[Settled] = []
        hydrated = self.store.get_many(
            {e.spec_hash() for e in experiments})
        for experiment in experiments:
            spec_hash = experiment.spec_hash()
            if spec_hash in hydrated:
                out.append(hydrated[spec_hash])
            elif spec_hash in failures:
                self.stats["deterministic_failures"] += 1
                out.append(failures[spec_hash])
            else:
                self.stats["lost_points"] += 1
                out.append(ExperimentFailure(
                    f"point {spec_hash} lost after {self.max_attempts} "
                    f"attempts (workers kept crashing, hanging or "
                    f"corrupting the write); transient, safe to retry",
                    retryable=True))
        return out


# ---------------------------------------------------------------------- #
# inspection (repro-bench queue status)
# ---------------------------------------------------------------------- #


def queue_status(store: ResultStore) -> List[Dict[str, object]]:
    """Per-run shard/lease/done inventory of the queue under a store."""
    root = _queue_root(store)
    if not os.path.isdir(root):
        return []
    now = time.time()
    out: List[Dict[str, object]] = []
    for run_id in sorted(os.listdir(root)):
        run_dir = os.path.join(root, run_id)
        if not os.path.isdir(run_dir):
            continue
        manifest = read_json(os.path.join(run_dir, "manifest.json")) or {}

        def _count(sub: str, suffix: str = ".json") -> int:
            directory = os.path.join(run_dir, sub)
            if not os.path.isdir(directory):
                return 0
            return len([f for f in os.listdir(directory)
                        if f.endswith(suffix)
                        and not f.startswith(".tmp-")])

        leases_dir = os.path.join(run_dir, "leases")
        active = expired = 0
        if os.path.isdir(leases_dir):
            for filename in os.listdir(leases_dir):
                if not filename.endswith(".json") \
                        or filename.startswith(".tmp-"):
                    continue
                lease = read_json(os.path.join(leases_dir, filename))
                if lease is None:
                    continue
                if float(lease.get("deadline", 0.0)) > now:
                    active += 1
                else:
                    expired += 1
        out.append({
            "run": run_id,
            "points": manifest.get("points", "?"),
            "shards": _count("tasks"),
            "done": _count("done"),
            "active_leases": active,
            "expired_leases": expired,
            "fingerprint": manifest.get("fingerprint", "?"),
            "created": manifest.get("created"),
        })
    return out
