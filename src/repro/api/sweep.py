"""Declarative parameter sweeps and evaluation campaigns.

The paper's evaluation is not single runs but *grids*: every figure
sweeps the six consistency models across workloads, scope counts and
access skews.  This module turns those grids into data:

* an :class:`Axis` names one swept dimension and the experiment field it
  drives (``model``, ``scopes``, ``params.zipf_theta``, ...);
* a :class:`Sweep` combines a base experiment template with axes --
  grid products by default, :attr:`~Sweep.zip_groups` for axes that
  advance together (e.g. scope count and the record count derived from
  it) -- plus optional point filters, and expands into frozen
  :class:`~repro.api.experiment.Experiment` specs with stable per-point
  names;
* a :class:`Campaign` is a named set of sweeps with :class:`Pivot`
  declarations describing the series/tables its figures plot;
* :func:`run_campaign` executes a campaign through a
  :class:`~repro.api.runner.Runner` on any backend -- identical points
  dedupe via the spec-hash cache, batches shard across process-pool
  workers, and one failed point reports instead of aborting the run;
* a :class:`CampaignResult` aggregates the outcomes: headline tables,
  pivoted series, a machine-independent result digest, and a JSON round
  trip that later runs resume from (``--resume``).

Campaigns used by CI and the checked-in ``EXPERIMENTS.md`` are
registered in :data:`CAMPAIGNS`; ``repro-bench sweep`` is the CLI.
"""

from __future__ import annotations

import copy
import enum
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.experiment import Experiment
from repro.api.runner import Runner
from repro.api.backends import backend_for
from repro.system.simulation import SimulationResult

#: Schema tag of the campaign-result JSON artifact.
SCHEMA = "repro-campaign-result/1"

#: Axis shorthands: name -> dotted path into the experiment dict.  An
#: axis whose name is none of these and carries no explicit path drives
#: the workload parameter of the same name (``params.<name>``).
WELL_KNOWN_PATHS = {
    "workload": "workload",
    "variant": "variant",
    "max_events": "max_events",
    "model": "config.model",
    "scopes": "config.num_scopes",
    "cores": "config.cores.num_cores",
    "arrival": "config.traffic.arrival",
    "load": "config.traffic.offered_load",
    "queue_depth": "config.traffic.queue_depth",
}


def _token(value) -> str:
    """The stable display form of one axis value (point names, series)."""
    if isinstance(value, enum.Enum):
        return str(value.value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _spec_value(value):
    """The dict-form (JSON-safe) encoding of one axis value."""
    if isinstance(value, enum.Enum):
        return value.value
    return value


def _set_path(data: Dict, path: str, value) -> None:
    """Set a dotted path inside a nested dict, creating empty levels."""
    parts = path.split(".")
    node = data
    for part in parts[:-1]:
        node = node.setdefault(part, {})
    node[parts[-1]] = value


def _check_keys(kind: str, data: Mapping[str, object],
                known: Tuple[str, ...]) -> None:
    """Reject unknown keys so a typo in a campaign file fails loudly
    instead of silently changing the expansion."""
    unknown = set(data) - set(known)
    if unknown:
        raise ValueError(
            f"unknown {kind} keys: {sorted(unknown)}; expected a subset "
            f"of {sorted(known)}")


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a name, its values, and the field it drives.

    ``path`` resolution: explicit beats :data:`WELL_KNOWN_PATHS` beats
    ``params.<name>``.  ``hidden`` axes (derived values zipped to a
    visible axis, like the record count derived from the scope count)
    stay out of point names.
    """

    name: str
    values: Tuple
    path: str = ""
    hidden: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis needs a name")
        object.__setattr__(self, "values", tuple(self.values))

    def resolved_path(self) -> str:
        if self.path:
            return self.path
        return WELL_KNOWN_PATHS.get(self.name, f"params.{self.name}")

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "values": list(self.values),
                "path": self.path, "hidden": self.hidden}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Axis":
        _check_keys("axis", data, ("name", "values", "path", "hidden"))
        return cls(name=data["name"], values=tuple(data["values"]),
                   path=data.get("path", ""),
                   hidden=bool(data.get("hidden", False)))


class SweepPoint(NamedTuple):
    """One expanded point: stable name, axis coordinates, frozen spec."""

    name: str
    sweep: str
    coords: Dict[str, object]
    experiment: Experiment


class Sweep:
    """A base experiment template crossed with named axes.

    Args:
        name: prefix of every point name (``ycsb/model=atomic,scopes=8``).
        base: experiment template in the
            :meth:`~repro.api.experiment.Experiment.from_dict` dict form;
            axes write into a deep copy of it.
        axes: the swept dimensions, grid-crossed in declaration order.
        zip_groups: tuples of axis names that advance together instead of
            crossing (all axes of a group need equally many values).
        filters: predicates over the ``{axis name: value}`` coordinate
            dict; a point every filter accepts survives expansion.
        transform: in-process hook ``(experiment, coords) -> experiment``
            applied after expansion, for overrides (such as the benchmark
            harness's config functions) that plain data cannot express.
            Sweeps carrying filters or a transform are not serializable.
    """

    def __init__(
        self,
        name: str,
        base: Mapping[str, object],
        axes: Sequence[Axis] = (),
        zip_groups: Sequence[Sequence[str]] = (),
        filters: Sequence[Callable[[Dict[str, object]], bool]] = (),
        transform: Optional[Callable[[Experiment, Dict[str, object]], Experiment]] = None,
    ) -> None:
        self.name = name
        self.base = dict(base)
        self.axes = tuple(axes)
        self.zip_groups = tuple(tuple(g) for g in zip_groups)
        self.filters = tuple(filters)
        self.transform = transform
        self._validate()

    def _validate(self) -> None:
        by_name: Dict[str, Axis] = {}
        for axis in self.axes:
            if axis.name in by_name:
                raise ValueError(f"duplicate axis {axis.name!r}")
            by_name[axis.name] = axis
        seen: Dict[str, Tuple[str, ...]] = {}
        for group in self.zip_groups:
            if len(group) < 2:
                raise ValueError("a zip group needs at least two axes")
            lengths = set()
            for axis_name in group:
                if axis_name not in by_name:
                    raise ValueError(
                        f"zip group names unknown axis {axis_name!r}")
                if axis_name in seen:
                    raise ValueError(
                        f"axis {axis_name!r} is in more than one zip group")
                seen[axis_name] = group
                lengths.add(len(by_name[axis_name].values))
            if len(lengths) > 1:
                raise ValueError(
                    f"zipped axes {group} have mismatched lengths "
                    f"{sorted(lengths)}")
            if all(by_name[n].hidden for n in group):
                raise ValueError(
                    f"zip group {group} is entirely hidden; point names "
                    f"would collide")
        self._group_of = seen
        # A hidden axis outside a zip group expands distinct experiments
        # under identical point names; only derived-value axes riding a
        # visible zip partner may hide.
        for axis in self.axes:
            if axis.hidden and len(axis.values) > 1 \
                    and axis.name not in seen:
                raise ValueError(
                    f"hidden axis {axis.name!r} must be zipped to a "
                    f"visible axis; point names would collide")

    # ------------------------------------------------------------------ #

    def points(self) -> List[SweepPoint]:
        """Expand into named points, grid x zip, filters applied."""
        by_name = {a.name: a for a in self.axes}
        dims: List[List[Tuple[Tuple[Axis, object], ...]]] = []
        emitted_groups = set()
        for axis in self.axes:
            group = self._group_of.get(axis.name)
            if group is None:
                dims.append([((axis, v),) for v in axis.values])
            elif group not in emitted_groups:
                emitted_groups.add(group)
                grouped = [by_name[n] for n in group]
                dims.append([
                    tuple((a, a.values[i]) for a in grouped)
                    for i in range(len(grouped[0].values))
                ])
        out: List[SweepPoint] = []
        for combo in itertools.product(*dims):
            assignments = [pair for cell in combo for pair in cell]
            coords = {axis.name: value for axis, value in assignments}
            if not all(accept(coords) for accept in self.filters):
                continue
            data = copy.deepcopy(self.base)
            for axis, value in assignments:
                _set_path(data, axis.resolved_path(), _spec_value(value))
            experiment = Experiment.from_dict(data)
            if self.transform is not None:
                experiment = self.transform(experiment, dict(coords))
            label = ",".join(
                f"{axis.name}={_token(value)}"
                for axis, value in assignments if not axis.hidden
            )
            out.append(SweepPoint(
                name=f"{self.name}/{label}" if label else self.name,
                sweep=self.name,
                coords=coords,
                experiment=experiment,
            ))
        return out

    def experiments(self) -> List[Experiment]:
        """The expanded specs alone, in point order."""
        return [p.experiment for p in self.points()]

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        if self.filters or self.transform is not None:
            raise ValueError(
                f"sweep {self.name!r} carries filters/transform and is "
                f"not serializable")
        return {
            "name": self.name,
            "base": copy.deepcopy(self.base),
            "axes": [a.to_dict() for a in self.axes],
            "zip": [list(g) for g in self.zip_groups],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Sweep":
        _check_keys("sweep", data, ("name", "base", "axes", "zip"))
        return cls(
            name=data["name"],
            base=data.get("base", {}),
            axes=tuple(Axis.from_dict(a) for a in data.get("axes", ())),
            zip_groups=tuple(tuple(g) for g in data.get("zip", ())),
        )


def shard_slices(count: int, shard_size: int) -> List[slice]:
    """Contiguous point-range shards covering ``count`` points in order.

    The distributed work queue publishes one task per slice; contiguity
    keeps a shard's points adjacent in campaign order, so a re-dispatch
    re-offers an intact range, never a scatter.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    return [slice(start, min(start + shard_size, count))
            for start in range(0, count, shard_size)]


@dataclass(frozen=True)
class Pivot:
    """One figure's shape: a value pivoted over an x axis, split into
    one series per value of another axis.

    ``normalize_to`` names the split value used as the per-x baseline
    (the paper's "normalized to Naive" y-axes).  ``sweep`` restricts the
    pivot to one sweep's points when several sweeps share axis names.
    """

    title: str
    x: str
    split_by: str
    value: str = "run_time"
    normalize_to: Optional[str] = None
    sweep: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"title": self.title, "x": self.x, "split_by": self.split_by,
                "value": self.value, "normalize_to": self.normalize_to,
                "sweep": self.sweep}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Pivot":
        _check_keys("pivot", data, ("title", "x", "split_by", "value",
                                    "normalize_to", "sweep"))
        return cls(title=data["title"], x=data["x"],
                   split_by=data["split_by"],
                   value=data.get("value", "run_time"),
                   normalize_to=data.get("normalize_to"),
                   sweep=data.get("sweep", ""))


@dataclass(frozen=True)
class Slo:
    """A headline "max x meeting a target" declaration.

    The open-loop campaigns' flagship table: for each ``split_by`` value
    (a consistency model), the largest ``x`` (offered load) whose
    ``metric`` (a pivot-style value spec like ``traffic.latency_p99``)
    stays at or under ``threshold``.  ``sweep`` restricts the scan to
    one sweep's points, like a pivot.
    """

    title: str
    metric: str = "traffic.latency_p99"
    threshold: float = 0.0
    x: str = "load"
    split_by: str = "model"
    sweep: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"title": self.title, "metric": self.metric,
                "threshold": self.threshold, "x": self.x,
                "split_by": self.split_by, "sweep": self.sweep}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Slo":
        _check_keys("slo", data, ("title", "metric", "threshold", "x",
                                  "split_by", "sweep"))
        return cls(title=data["title"], metric=data.get(
                       "metric", "traffic.latency_p99"),
                   threshold=data.get("threshold", 0.0),
                   x=data.get("x", "load"),
                   split_by=data.get("split_by", "model"),
                   sweep=data.get("sweep", ""))


class Campaign:
    """A named set of sweeps plus the pivots its report renders."""

    def __init__(self, name: str, sweeps: Sequence[Sweep],
                 title: str = "", description: str = "",
                 pivots: Sequence[Pivot] = (),
                 slo: Optional[Slo] = None) -> None:
        self.name = name
        self.sweeps = tuple(sweeps)
        self.title = title or name
        self.description = description
        self.pivots = tuple(pivots)
        self.slo = slo

    def points(self) -> List[SweepPoint]:
        """Every sweep's points, in declaration order; names are unique."""
        out: List[SweepPoint] = []
        names = set()
        for sweep in self.sweeps:
            for point in sweep.points():
                if point.name in names:
                    raise ValueError(
                        f"campaign {self.name!r} has duplicate point name "
                        f"{point.name!r}")
                names.add(point.name)
                out.append(point)
        return out

    def experiments(self) -> List[Experiment]:
        return [p.experiment for p in self.points()]

    def to_dict(self) -> Dict[str, object]:
        out = {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "sweeps": [s.to_dict() for s in self.sweeps],
            "pivots": [p.to_dict() for p in self.pivots],
        }
        if self.slo is not None:
            out["slo"] = self.slo.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Campaign":
        _check_keys("campaign", data, ("name", "title", "description",
                                       "sweeps", "pivots", "slo"))
        slo = data.get("slo")
        return cls(
            name=data["name"],
            sweeps=tuple(Sweep.from_dict(s) for s in data.get("sweeps", ())),
            title=data.get("title", ""),
            description=data.get("description", ""),
            pivots=tuple(Pivot.from_dict(p) for p in data.get("pivots", ())),
            slo=None if slo is None else Slo.from_dict(slo),
        )


# ---------------------------------------------------------------------- #
# execution and aggregation
# ---------------------------------------------------------------------- #


@dataclass
class PointResult:
    """One campaign point's outcome: a result or an error, never both."""

    name: str
    sweep: str
    coords: Dict[str, object]
    experiment: Experiment
    result: Optional[SimulationResult] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None


def _result_value(result: SimulationResult, key: str):
    """Resolve a pivot value spec against one result.

    ``run_time`` / ``stale_reads`` / ``events`` read the result itself;
    a dotted ``group.stat`` key (``llc.hit_rate``, ``pim.ops_executed``)
    reads the typed stat views.
    """
    if "." in key:
        group, stat = key.split(".", 1)
        return getattr(result.group(group), stat)
    return getattr(result, key)


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """A JSON round-trippable snapshot of one simulation result.

    Thin alias of :meth:`SimulationResult.to_dict` -- the versioned
    serialization the persistent store shares.
    """
    return result.to_dict()


def result_from_dict(data: Mapping[str, object]) -> SimulationResult:
    return SimulationResult.from_dict(data)


class CampaignResult:
    """Aggregated campaign outcomes: tables, pivoted series, digest."""

    def __init__(self, campaign: Campaign,
                 points: Sequence[PointResult]) -> None:
        self.campaign = campaign
        self.points = list(points)

    @property
    def ok_points(self) -> List[PointResult]:
        return [p for p in self.points if p.ok]

    @property
    def failed_points(self) -> List[PointResult]:
        return [p for p in self.points if not p.ok]

    def results(self) -> List[SimulationResult]:
        """Every point's result, in point order; raises on any failure.

        The strict accessor for callers (examples, scripts) that want
        the old fail-fast behaviour back instead of inspecting
        per-point errors.
        """
        failed = self.failed_points
        if failed:
            first = failed[0]
            raise RuntimeError(
                f"{len(failed)} of {len(self.points)} campaign points "
                f"failed; first: {first.name}\n{first.error}")
        return [p.result for p in self.points]

    # -- identity -------------------------------------------------------- #

    def digest(self) -> str:
        """A machine-independent digest of every point's full outcome.

        Equal digests between two runs (Serial vs ProcessPool, today vs
        a cached resume) prove they computed identical statistics on
        identical specs -- CI's backend-equivalence gate compares these.
        """
        payload = [
            {
                "name": p.name,
                "spec": p.experiment.spec_hash(),
                "result": None if p.result is None else {
                    "run_time": p.result.run_time,
                    "stale_reads": p.result.stale_reads,
                    "events": p.result.events,
                    "stats": p.result.stats,
                },
                "failed": p.error is not None,
            }
            for p in self.points
        ]
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- figure-grade aggregation ---------------------------------------- #

    def series(self, pivot: Pivot):
        """Pivot into ``(xs, {series name: [values]})`` for one figure.

        Points missing from the grid (failed or filtered) yield ``None``
        holes; with ``normalize_to`` set, every series divides by the
        baseline series point-for-point.
        """
        points = [
            p for p in self.ok_points
            if (not pivot.sweep or p.sweep == pivot.sweep)
            and pivot.x in p.coords and pivot.split_by in p.coords
        ]
        xs: List[object] = []
        for p in points:
            if p.coords[pivot.x] not in xs:
                xs.append(p.coords[pivot.x])
        cells: Dict[Tuple[str, object], object] = {}
        order: List[str] = []
        for p in points:
            split = _token(p.coords[pivot.split_by])
            if split not in order:
                order.append(split)
            cells[(split, p.coords[pivot.x])] = _result_value(
                p.result, pivot.value)
        series = {
            split: [cells.get((split, x)) for x in xs]
            for split in order
        }
        if pivot.normalize_to is not None:
            base = series.get(pivot.normalize_to)
            if base is None:
                raise ValueError(
                    f"pivot {pivot.title!r} normalizes to missing series "
                    f"{pivot.normalize_to!r}")
            series = {
                split: [
                    v / b if v is not None and b else None
                    for v, b in zip(values, base)
                ]
                for split, values in series.items()
            }
        return [_token(x) for x in xs], series

    def slo_table(self, slo: Slo):
        """``(headers, rows)`` of the "max x meeting the SLO" headline.

        One row per ``split_by`` value, scanning that series' points in
        ascending ``x`` order: the largest x whose metric stays at or
        under the threshold, with the metric's value there -- plus the
        metric at the series' highest x, showing how far past the knee
        the sweep pushed.  A series that never meets the SLO reports
        ``-``.
        """
        points = [
            p for p in self.ok_points
            if (not slo.sweep or p.sweep == slo.sweep)
            and slo.x in p.coords and slo.split_by in p.coords
        ]
        order: List[str] = []
        by_split: Dict[str, List] = {}
        for p in points:
            split = _token(p.coords[slo.split_by])
            if split not in order:
                order.append(split)
                by_split[split] = []
            by_split[split].append(
                (p.coords[slo.x], _result_value(p.result, slo.metric)))
        headers = [slo.split_by, f"max {slo.x}",
                   f"{slo.metric} there", f"{slo.metric} at peak {slo.x}"]
        rows = []
        for split in order:
            series = sorted(by_split[split], key=lambda xv: xv[0])
            best = None
            for x, value in series:
                if value <= slo.threshold:
                    best = (x, value)
            peak_x, peak_value = series[-1]
            rows.append([
                split,
                "-" if best is None else _token(best[0]),
                "-" if best is None else best[1],
                peak_value,
            ])
        return headers, rows

    def table(self):
        """``(headers, rows)`` of the headline stats, one row per point."""
        from repro.api.results import headline

        headers = ["point", "run_time", "stale_reads", "sb_hit_rate",
                   "scan_latency", "pim_ops", "events"]
        rows = []
        for p in self.points:
            if p.result is None:
                rows.append([p.name, "FAILED", "-", "-", "-", "-", "-"])
                continue
            h = headline(p.result)
            rows.append([
                p.name, h["run_time"], h["stale_reads"],
                f"{h['scope_buffer_hit_rate']:.3f}",
                f"{h['llc_scan_latency']:.1f}",
                h["pim_ops_executed"], h["events"],
            ])
        return headers, rows

    # -- JSON artifact / resume ------------------------------------------ #

    def to_json_dict(self) -> Dict[str, object]:
        from repro.api.store import code_fingerprint

        return {
            "schema": SCHEMA,
            "campaign": self.campaign.name,
            "digest": self.digest(),
            "fingerprint": code_fingerprint(),
            "points": [
                {
                    "name": p.name,
                    "sweep": p.sweep,
                    "spec_hash": p.experiment.spec_hash(),
                    "coords": {k: _spec_value(v)
                               for k, v in p.coords.items()},
                    "experiment": p.experiment.to_dict(),
                    "result": None if p.result is None
                    else result_to_dict(p.result),
                    "error": p.error,
                }
                for p in self.points
            ],
        }


def load_results(data: Mapping[str, object]) -> Dict[str, SimulationResult]:
    """Spec-hash -> result mapping from a campaign JSON artifact.

    Failed points carry no result and are skipped, so resuming retries
    exactly them.  An artifact recorded under a different engine
    fingerprint is refused outright: preloading it would silently serve
    an older simulator's numbers as if the current one computed them.
    (Artifacts predating the fingerprint field load unchecked.)
    """
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"not a campaign result artifact (schema {data.get('schema')!r},"
            f" expected {SCHEMA!r})")
    recorded = data.get("fingerprint")
    if recorded is not None:
        from repro.api.store import code_fingerprint

        current = code_fingerprint()
        if recorded != current:
            raise ValueError(
                f"artifact was computed by engine fingerprint {recorded} "
                f"but the current engine is {current}: the simulator "
                f"changed since this artifact was written, so its results "
                f"cannot seed a resume.  Re-run the campaign (a --store "
                f"hydrates everything still valid), and garbage-collect "
                f"the old results with `repro-bench store prune "
                f"--fingerprint {recorded}`")
    out: Dict[str, SimulationResult] = {}
    for point in data.get("points", ()):
        if point.get("result") is not None:
            out[point["spec_hash"]] = result_from_dict(point["result"])
    return out


def run_campaign(
    campaign: Campaign,
    runner: Optional[Runner] = None,
    jobs: Optional[int] = None,
    resume: Optional[Mapping[str, SimulationResult]] = None,
    store=None,
    trace=None,
    progress=None,
) -> CampaignResult:
    """Execute a campaign and aggregate its outcomes.

    Identical points dedupe through the Runner's spec-hash cache; the
    batch shards across the backend's workers (``jobs`` > 1 selects the
    process pool); ``resume`` pre-seeds the cache from an earlier run's
    artifact so only the misses dispatch; one failed point reports in
    its :class:`PointResult` while the rest of the campaign completes.

    ``store`` (a :class:`~repro.api.store.ResultStore` or directory
    path) makes the run resumable across sessions: previously computed
    points hydrate from disk before any dispatch, fresh points persist
    as they finish.  It generalizes the ``resume`` artifact path -- no
    artifact file to thread through, any campaign sharing specs shares
    the cache.  Pass it here or build the Runner yourself, not both.

    ``trace`` (a :class:`~repro.sim.config.TraceConfig`) overlays
    observability on execution: results gain an ``obs`` payload (stall
    attribution, kernel tier counts) while the specs, their hashes and
    the campaign digest stay untouched -- :meth:`CampaignResult.digest`
    hashes only the simulation outcome.  ``progress`` is called with
    point counts as they settle (``sweep run``'s progress line).
    """
    if runner is None:
        runner = Runner(backend=backend_for(jobs if jobs else 1),
                        store=store)
    elif store is not None:
        raise ValueError(
            "pass the store to the Runner (Runner(store=...)) when "
            "supplying a runner; run_campaign(store=...) only applies to "
            "the runner it builds itself")
    if resume:
        runner.preload(resume)
    points = campaign.points()
    outcomes = runner.run_settled([p.experiment for p in points],
                                  trace=trace, progress=progress)
    return CampaignResult(campaign, [
        PointResult(name=p.name, sweep=p.sweep, coords=p.coords,
                    experiment=p.experiment, result=result, error=error)
        for p, (result, error) in zip(points, outcomes)
    ])


# ---------------------------------------------------------------------- #
# the registered campaigns (CI, EXPERIMENTS.md, the weekly full sweep)
# ---------------------------------------------------------------------- #
#
# These constants are the single source of truth for the scaled
# evaluation grids; benchmarks/harness.py imports them, which is what
# keeps the figure benchmarks' specs hash-identical to the campaign's
# (benchmarks/test_campaign_parity.py gates the equality).

#: The figure order of the six evaluated consistency models.
SIX_MODELS = ("naive", "sw-flush", "atomic", "store", "scope",
              "scope-relaxed")

#: Scaled stand-ins for the paper's 4..977 scope counts (EXPERIMENTS.md).
SCOPE_SWEEP = (4, 8, 16, 32, 48)

#: Records per scope in the scaled YCSB sweeps.
RECORDS_PER_SCOPE = 2000

#: Operations per YCSB run (the paper uses 1000; scaled for wall-clock).
YCSB_OPS = 30

#: Event budget per simulation point.
MAX_EVENTS = 200_000_000


def _ycsb_base(variant: str = "base", **params) -> Dict[str, object]:
    from dataclasses import asdict

    from repro.workloads.ycsb import YcsbParams

    defaults = dict(num_records=0, num_ops=YCSB_OPS, threads=4, seed=7)
    defaults.update(params)
    base = {
        "workload": "ycsb",
        "params": asdict(YcsbParams(**defaults)),
        "config": {"preset": "scaled"},
        "max_events": MAX_EVENTS,
    }
    if variant != "base":
        base["variant"] = variant
    return base


def _smoke_campaign() -> Campaign:
    models = ("naive", "atomic")
    ycsb = Sweep(
        name="ycsb",
        base={
            "workload": "ycsb",
            "params": {"num_records": 8000, "num_ops": 10, "threads": 4,
                       "seed": 11},
            "config": {"preset": "scaled", "num_scopes": 4},
            "variant": "smoke",
            "max_events": 50_000_000,
        },
        axes=(Axis("model", models),),
    )
    litmus = Sweep(
        name="litmus",
        base={
            "workload": "litmus",
            "params": {"rounds": 3, "threads": 2},
            "config": {"preset": "scaled", "num_scopes": 2},
            "variant": "smoke",
            "max_events": 50_000_000,
        },
        axes=(Axis("model", models),),
    )
    return Campaign(
        name="smoke",
        title="CI smoke campaign",
        description=(
            "Two models x two workloads at smoke size.  CI runs this "
            "campaign on the Serial and ProcessPool backends and fails "
            "if the result digests differ."
        ),
        sweeps=(ycsb, litmus),
    )


def _paper_grid_campaign() -> Campaign:
    from repro.workloads.tpch import TpchWorkload

    ycsb = Sweep(
        name="ycsb",
        base=_ycsb_base(),
        axes=(
            Axis("model", SIX_MODELS),
            Axis("scopes", SCOPE_SWEEP),
            Axis("records",
                 tuple(RECORDS_PER_SCOPE * n for n in SCOPE_SWEEP),
                 path="params.num_records", hidden=True),
        ),
        zip_groups=(("scopes", "records"),),
    )
    queries = ("q1", "q6", "q11", "q22")
    scale = 1 / 64
    tpch = Sweep(
        name="tpch",
        base={
            "workload": "tpch",
            "params": {"query": "", "scale": scale, "runs": 2},
            "config": {"preset": "scaled"},
            "max_events": MAX_EVENTS,
        },
        axes=(
            Axis("model", SIX_MODELS),
            Axis("query", queries, path="params.query"),
            Axis("scopes",
                 tuple(TpchWorkload(q, scale=scale).scaled_scopes()
                       for q in queries),
                 hidden=True),
        ),
        zip_groups=(("query", "scopes"),),
    )
    skew = Sweep(
        name="ycsb-skew",
        base=dict(_ycsb_base(variant="skew",
                             num_records=8 * RECORDS_PER_SCOPE),
                  config={"preset": "scaled", "num_scopes": 8}),
        axes=(
            Axis("model", SIX_MODELS),
            Axis("theta", (0.2, 0.6, 0.99), path="params.zipf_theta"),
        ),
    )
    return Campaign(
        name="paper-grid",
        title="Scaled evaluation grid (Figs. 7-10 flavour)",
        description=(
            "The six consistency models swept over the scaled YCSB "
            "scope-count grid, four representative TPC-H queries "
            "(Table IV at 1/64 scale), and the YCSB Zipf access-skew "
            "axis.  Workload sizes are the benchmark harness's scaled "
            "configuration: capacities shrink together so set counts, "
            "lines-per-scope and the PIM buffer back-pressure keep the "
            "paper's proportions while event counts stay tractable.  "
            "Every point is cacheable in the persistent result store: "
            "`repro-bench sweep run paper-grid --store DIR` resumes "
            "this grid across sessions (a warm store makes zero "
            "backend dispatches and reproduces this report "
            "byte-for-byte); the `geometry-ablation` campaign extends "
            "the same workflow to the Figs. 11-13 LLC-size and PIM-"
            "geometry axes.  The weekly full-sweep CI job runs this "
            "grid through the fault-tolerant work queue (`repro-bench "
            "worker --store DIR` fleets plus `sweep run paper-grid "
            "--distributed --store DIR`): leased point-range tasks, "
            "straggler re-dispatch and retry with backoff make the "
            "digest independent of worker crashes, and a lone "
            "coordinator degrades to local execution, so this report "
            "is reproducible on one machine or forty."
        ),
        sweeps=(ycsb, tpch, skew),
        pivots=(
            Pivot(title="YCSB run time [cycles] vs scope count (Fig. 7a)",
                  sweep="ycsb", x="scopes", split_by="model"),
            Pivot(title="YCSB run time normalized to Naive (Fig. 7b)",
                  sweep="ycsb", x="scopes", split_by="model",
                  normalize_to="naive"),
            Pivot(title="LLC scope-buffer hit rate (Fig. 9)",
                  sweep="ycsb", x="scopes", split_by="model",
                  value="llc.hit_rate"),
            Pivot(title="Stale PIM-result reads (correctness)",
                  sweep="ycsb", x="scopes", split_by="model",
                  value="stale_reads"),
            Pivot(title="TPC-H run time normalized to Naive (Fig. 8)",
                  sweep="tpch", x="query", split_by="model",
                  normalize_to="naive"),
            Pivot(title="YCSB run time vs Zipf skew theta",
                  sweep="ycsb-skew", x="theta", split_by="model"),
        ),
    )


def _ycsb_grid_campaign() -> Campaign:
    grid = _paper_grid_campaign()
    return Campaign(
        name="ycsb-grid",
        title="YCSB model x scope-count grid",
        description="The YCSB sweep of the paper grid, on its own.",
        sweeps=(grid.sweeps[0],),
        pivots=tuple(p for p in grid.pivots if p.sweep == "ycsb"),
    )


#: Scope count the geometry ablations hold fixed (high enough that the
#: Figs. 11-12 effects -- scan cost, SBV skipping, buffer back-pressure
#: -- are actually visible).
GEOMETRY_SCOPES = 32


def _geometry_ablation_campaign() -> Campaign:
    """LLC-size and PIM crossbar/scope-geometry ablations (Figs. 11-13).

    Every sweep fixes the YCSB point at :data:`GEOMETRY_SCOPES` scopes
    and varies one hardware dimension across the six models: the LLC
    capacity (Fig. 12), the PIM op-buffer depth and zero-logic switch
    (Fig. 11), the crossbar's concurrent-scope limit, and the worker
    thread count with its derived core count (Fig. 13).
    """
    base = dict(
        _ycsb_base(variant="geometry",
                   num_records=RECORDS_PER_SCOPE * GEOMETRY_SCOPES),
        config={"preset": "scaled", "num_scopes": GEOMETRY_SCOPES},
    )
    llc = Sweep(
        name="llc-size",
        base=base,
        axes=(
            Axis("model", SIX_MODELS),
            Axis("llc_bytes", (128 << 10, 512 << 10),
                 path="config.llc.size_bytes"),
        ),
    )
    pim_buffer = Sweep(
        name="pim-buffer",
        base=base,
        axes=(
            Axis("model", SIX_MODELS),
            Axis("buffer", (8, 16, None),
                 path="config.pim.buffer_capacity"),
        ),
    )
    pim_logic = Sweep(
        name="pim-logic",
        base=base,
        axes=(
            Axis("model", SIX_MODELS),
            Axis("zero_logic", (False, True),
                 path="config.pim.zero_logic"),
        ),
    )
    crossbar = Sweep(
        name="crossbar",
        base=base,
        axes=(
            Axis("model", SIX_MODELS),
            Axis("concurrency", (None, 2),
                 path="config.pim.max_concurrent_scopes"),
        ),
    )
    threads = Sweep(
        name="threads",
        base=base,
        axes=(
            Axis("model", SIX_MODELS),
            Axis("threads", (4, 8), path="params.threads"),
            Axis("cores", (8, 16), path="config.cores.num_cores",
                 hidden=True),
        ),
        zip_groups=(("threads", "cores"),),
    )
    return Campaign(
        name="geometry-ablation",
        title="LLC size and PIM geometry ablations (Figs. 11-13 flavour)",
        description=(
            f"The six consistency models at a fixed {GEOMETRY_SCOPES}-"
            "scope YCSB point, ablating one hardware dimension per "
            "sweep: LLC capacity (Fig. 12), PIM op-buffer depth and "
            "zero-logic execution (Fig. 11), the crossbar's concurrent-"
            "scope limit, and the worker thread count on a doubled-core "
            "host (Fig. 13).  This is also the persistent store's cross-"
            "session resume demo: run it twice with `--store DIR` (or "
            "`REPRO_STORE` set) and the second session hydrates every "
            "point from disk -- zero backend dispatches, byte-identical "
            "digest."
        ),
        sweeps=(llc, pim_buffer, pim_logic, crossbar, threads),
        pivots=(
            Pivot(title="YCSB run time vs LLC capacity (Fig. 12a)",
                  sweep="llc-size", x="llc_bytes", split_by="model"),
            Pivot(title="Mean LLC scan latency vs LLC capacity (Fig. 12b)",
                  sweep="llc-size", x="llc_bytes", split_by="model",
                  value="llc.scan_latency"),
            Pivot(title="Run time vs PIM op-buffer depth (Fig. 11a)",
                  sweep="pim-buffer", x="buffer", split_by="model"),
            Pivot(title="Zero PIM logic, normalized to Naive (Fig. 11b)",
                  sweep="pim-logic", x="zero_logic", split_by="model",
                  normalize_to="naive"),
            Pivot(title="Run time vs concurrent crossbar scopes",
                  sweep="crossbar", x="concurrency", split_by="model"),
            Pivot(title="Run time vs worker threads (Fig. 13)",
                  sweep="threads", x="threads", split_by="model"),
        ),
    )


def _mlp_ablation_campaign() -> Campaign:
    """Memory-level-parallelism ablations: MSHRs and DRAM bursts.

    Holds the YCSB point at :data:`GEOMETRY_SCOPES` scopes (like the
    geometry ablations) and sweeps the memory hierarchy's concurrency
    knobs across the six models: the MSHR file size with coalescing
    on/off (``mshr=1, coalescing=off`` is the fully blocking-cache
    baseline; the LLC file scales along as a hidden zipped axis), and
    the memory controller's DRAM burst-fusion window.
    """
    base = dict(
        _ycsb_base(variant="mlp",
                   num_records=RECORDS_PER_SCOPE * GEOMETRY_SCOPES),
        config={"preset": "scaled", "num_scopes": GEOMETRY_SCOPES},
    )
    mshr = Sweep(
        name="mshr",
        base=base,
        axes=(
            Axis("model", SIX_MODELS),
            Axis("mshr", (1, 4, 8), path="config.l1.mshr_entries"),
            Axis("llc_mshr", (8, 32, 64), path="config.llc.mshr_entries",
                 hidden=True),
            Axis("coalescing", (True, False), path="config.l1.coalescing"),
        ),
        zip_groups=(("mshr", "llc_mshr"),),
    )
    burst = Sweep(
        name="burst",
        base=base,
        axes=(
            Axis("model", SIX_MODELS),
            Axis("burst", (1, 4, 8), path="config.memory.dram_burst_len"),
        ),
    )
    return Campaign(
        name="mlp-ablation",
        title="Memory-level parallelism ablations (MSHRs, DRAM bursts)",
        description=(
            f"The six consistency models at a fixed {GEOMETRY_SCOPES}-"
            "scope YCSB point, ablating the memory hierarchy's "
            "concurrency: the L1 MSHR file size (the LLC file scales "
            "along, 8/32/64 entries) with same-line miss coalescing on "
            "or off -- `mshr=1, coalescing=off` is the fully blocking "
            "cache -- and the memory controller's DRAM burst-fusion "
            "window.  Non-default points export the `mshr_*`, "
            "`hit_under_miss` and burst statistics; the default-config "
            "digest gate is unaffected because these sweeps always set "
            "the knobs explicitly.  The burst axis is a measured null "
            "at the paper's operating points: every access these "
            "workloads generate addresses PIM-scope-resident data, "
            "which the Section V-A ordering rules exclude from fusion, "
            "so the plain-DRAM burst path never engages (flat run "
            "times, zero burst occupancy below).  The mechanism itself "
            "is exercised at the unit level in "
            "tests/memory/test_memory_controller.py."
        ),
        sweeps=(mshr, burst),
        pivots=(
            # Duplicate pivot cells resolve to the last point in sweep
            # order, so with `coalescing` as the fastest axis these two
            # figures show the coalescing=off slice, and the coalescing
            # figure shows the largest MSHR file.
            Pivot(title="YCSB run time vs L1 MSHR entries (no coalescing)",
                  sweep="mshr", x="mshr", split_by="model"),
            Pivot(title="LLC hit-under-miss events vs L1 MSHR entries "
                        "(no coalescing)",
                  sweep="mshr", x="mshr", split_by="model",
                  value="llc.hit_under_miss"),
            Pivot(title="Run time vs coalescing (8-entry MSHR file)",
                  sweep="mshr", x="coalescing", split_by="model"),
            Pivot(title="Run time vs DRAM burst length (null at paper "
                        "points)",
                  sweep="burst", x="burst", split_by="model"),
            Pivot(title="Mean DRAM burst occupancy vs burst length "
                        "(null at paper points)",
                  sweep="burst", x="burst", split_by="model",
                  value="mc.burst_length"),
        ),
    )


#: Offered loads (requests per 1000 cycles per core) of the registered
#: ``offered-load`` campaign.  Calibrated around the scaled 8-scope YCSB
#: point's closed-loop service rate (~0.3 requests/kcycle): the low end
#: is an idle system, the top is ~3x saturation.
OFFERED_LOADS = (0.1, 0.2, 0.3, 0.45, 0.7, 1.0)

#: The p99 arrival-to-settle SLO (host cycles) of the headline
#: "max load meeting the SLO" table -- roughly 3x the unloaded p50 of
#: the correctness-guaranteeing models at this operating point.
P99_SLO_CYCLES = 10_000

#: Mid-grid load the arrival-process comparison sweep holds fixed.
COMPARE_LOAD = 0.3

#: Overload the queue-depth shedding sweep holds fixed (~3x capacity).
SHED_LOAD = 1.0


def _offered_load_campaign() -> Campaign:
    """Open-loop latency study: saturation knees and SLO headroom."""
    base = dict(
        _ycsb_base(variant="openloop", num_records=RECORDS_PER_SCOPE * 8),
        config={"preset": "scaled", "num_scopes": 8,
                "traffic": {"arrival": "poisson", "offered_load": 0.1,
                            "queue_depth": 16}},
    )
    load = Sweep(
        name="load",
        base=base,
        axes=(
            Axis("model", SIX_MODELS),
            Axis("load", OFFERED_LOADS),
        ),
    )
    arrival = Sweep(
        name="arrival",
        base=dict(base, config={
            "preset": "scaled", "num_scopes": 8,
            "traffic": {"arrival": "poisson", "offered_load": COMPARE_LOAD,
                        "queue_depth": 16}}),
        axes=(
            Axis("model", SIX_MODELS),
            Axis("arrival", ("poisson", "burst", "ramp")),
        ),
    )
    shed = Sweep(
        name="shed",
        base=dict(base, config={
            "preset": "scaled", "num_scopes": 8,
            "traffic": {"arrival": "poisson", "offered_load": SHED_LOAD,
                        "queue_depth": 16}}),
        axes=(
            Axis("model", SIX_MODELS),
            Axis("queue_depth", (4, 8, 16)),
        ),
    )
    return Campaign(
        name="offered-load",
        title="Open-loop offered-load sweep: latency knees per model",
        description=(
            "The six consistency models under open-loop traffic at the "
            "8-scope scaled YCSB point: seeded Poisson arrivals at "
            f"{OFFERED_LOADS} requests/kcycle feed a bounded (16-deep) "
            "admission queue per core, and every request's latency is "
            "tracked from arrival (not issue) to settle, into mergeable "
            "fixed-bucket histograms (p50/p99/p999 below).  Three "
            "sweeps: the load axis locates each model's saturation "
            "knee and the headline 'max load meeting the "
            f"p99 <= {P99_SLO_CYCLES}-cycle SLO' table; the arrival "
            f"axis compares Poisson, 2-state-MMPP burst and diurnal-"
            f"ramp processes at a fixed {COMPARE_LOAD} requests/kcycle; "
            f"the queue-depth axis overloads the system "
            f"({SHED_LOAD} requests/kcycle, ~3x capacity) and shows the "
            "bounded queue shedding load (req_dropped) to cap the tail. "
            "Naive's low latency is bought with stale reads (it skips "
            "all correctness work -- see the paper-grid stale-read "
            "pivot); among the correctness-guaranteeing models the "
            "knee, not the unloaded mean, is what separates them.  "
            "Arrival schedules are precomputed pure functions of "
            "(process, load, seed), so this report is byte-identical "
            "across Serial and ProcessPool backends and resumes from "
            "the store like every other campaign."
        ),
        sweeps=(load, arrival, shed),
        pivots=(
            Pivot(title="p99 arrival-to-settle latency [cycles] vs "
                        "offered load",
                  sweep="load", x="load", split_by="model",
                  value="traffic.latency_p99"),
            Pivot(title="p50 arrival-to-settle latency [cycles] vs "
                        "offered load",
                  sweep="load", x="load", split_by="model",
                  value="traffic.latency_p50"),
            Pivot(title="p999 arrival-to-settle latency [cycles] vs "
                        "offered load",
                  sweep="load", x="load", split_by="model",
                  value="traffic.latency_p999"),
            Pivot(title="Completion run time [cycles] vs offered load",
                  sweep="load", x="load", split_by="model"),
            Pivot(title="p99 latency [cycles] by arrival process "
                        f"(load {COMPARE_LOAD})",
                  sweep="arrival", x="arrival", split_by="model",
                  value="traffic.latency_p99"),
            Pivot(title="Requests shed vs admission-queue depth "
                        f"(overload, load {SHED_LOAD})",
                  sweep="shed", x="queue_depth", split_by="model",
                  value="traffic.req_dropped"),
            Pivot(title="p99 latency [cycles] vs admission-queue depth "
                        f"(overload, load {SHED_LOAD})",
                  sweep="shed", x="queue_depth", split_by="model",
                  value="traffic.latency_p99"),
        ),
        slo=Slo(
            title=f"Max offered load meeting a p99 <= {P99_SLO_CYCLES}-"
                  "cycle SLO",
            metric="traffic.latency_p99",
            threshold=P99_SLO_CYCLES,
            x="load",
            split_by="model",
            sweep="load",
        ),
    )


#: Root seed of the registered ``litmus-fuzz`` campaign: the generated
#: scenarios are a pure function of this, so the campaign's point set --
#: and therefore its result digests -- are stable across sessions.
FUZZ_CAMPAIGN_SEED = 2023

#: Scenario count of the registered ``litmus-fuzz`` campaign.
FUZZ_CAMPAIGN_PROGRAMS = 4


def _litmus_fuzz_campaign() -> Campaign:
    from repro.fuzz.generate import generate_batch

    batch = generate_batch(seed=FUZZ_CAMPAIGN_SEED,
                           count=FUZZ_CAMPAIGN_PROGRAMS)
    fuzz = Sweep(
        name="fuzz",
        base={
            "workload": "litmus-fuzz",
            "params": {"spec": {}, "rounds": 2},
            "config": {"preset": "scaled", "num_scopes": 2},
            "max_events": 50_000_000,
        },
        axes=(
            Axis("model", SIX_MODELS),
            Axis("scenario", tuple(p.digest()[:8] for p in batch),
                 path="variant"),
            Axis("spec", tuple(p.to_dict() for p in batch),
                 path="params.spec", hidden=True),
        ),
        zip_groups=(("scenario", "spec"),),
    )
    return Campaign(
        name="litmus-fuzz",
        title="Generated litmus scenarios across the six models",
        description=(
            f"{FUZZ_CAMPAIGN_PROGRAMS} generated litmus scenarios "
            f"(fixed seed {FUZZ_CAMPAIGN_SEED}, named by program "
            "digest) swept across the six consistency models on the "
            "timing simulator.  The stale-read pivot is the simulator "
            "half of the differential fuzzing invariant: every "
            "correctness-guaranteeing model must show zero stale "
            "PIM-result reads on every scenario, while the Naive and "
            "SW-Flush baselines are the known-violating controls.  "
            "This campaign is the pinned, report-friendly slice of the "
            "wider loop: `repro-bench fuzz run --store DIR` checks "
            "fresh batches against the abstract model checkers "
            "(strength-lattice monotonicity, happens-before "
            "acyclicity), shrinks any violation to a minimal JSON "
            "repro under DIR/fuzz/repros/, and banks surviving "
            "scenarios with their outcome fingerprints in the "
            "DIR/fuzz/corpus/ regression corpus, which `repro-bench "
            "fuzz replay --store DIR` re-checks -- CI runs the replay "
            "plus a fixed-seed fuzz gate on every push and a long "
            "corpus-growing leg in the weekly full sweep."
        ),
        sweeps=(fuzz,),
        pivots=(
            Pivot(title="Stale PIM-result reads by model (zero expected "
                        "on correct models)",
                  sweep="fuzz", x="scenario", split_by="model",
                  value="stale_reads"),
            Pivot(title="Scenario run time by model",
                  sweep="fuzz", x="scenario", split_by="model"),
        ),
    )


#: Registered campaigns: name -> zero-argument factory.
CAMPAIGNS: Dict[str, Callable[[], Campaign]] = {
    "smoke": _smoke_campaign,
    "ycsb-grid": _ycsb_grid_campaign,
    "paper-grid": _paper_grid_campaign,
    "geometry-ablation": _geometry_ablation_campaign,
    "mlp-ablation": _mlp_ablation_campaign,
    "offered-load": _offered_load_campaign,
    "litmus-fuzz": _litmus_fuzz_campaign,
}


def campaign_names() -> List[str]:
    return sorted(CAMPAIGNS)


def get_campaign(name: str) -> Campaign:
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r}; registered: "
            f"{', '.join(campaign_names())}"
        ) from None
    return factory()
