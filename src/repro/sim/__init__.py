"""Discrete-event simulation kernel.

This package provides the generic machinery that the memory hierarchy, host
cores, and PIM module are built on:

* :mod:`repro.sim.kernel` -- the event queue and simulator loop.
* :mod:`repro.sim.component` -- components with bounded, back-pressured
  input queues (the building block of every pipeline stage).
* :mod:`repro.sim.messages` -- memory-system message types.
* :mod:`repro.sim.stats` -- counters, means, histograms and time-weighted
  statistics used to reproduce the paper's figures.
* :mod:`repro.sim.config` -- configuration dataclasses (Table II defaults).
"""

from repro.sim.kernel import Simulator
from repro.sim.component import Component, QueuedComponent
from repro.sim.messages import Message, MessageType
from repro.sim.stats import Counter, MeanStat, RatioStat, StatGroup
from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    PimModuleConfig,
    ScopeBufferConfig,
    SystemConfig,
)

__all__ = [
    "Simulator",
    "Component",
    "QueuedComponent",
    "Message",
    "MessageType",
    "Counter",
    "MeanStat",
    "RatioStat",
    "StatGroup",
    "CacheConfig",
    "CoreConfig",
    "MemoryConfig",
    "PimModuleConfig",
    "ScopeBufferConfig",
    "SystemConfig",
]
