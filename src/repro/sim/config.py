"""Configuration dataclasses, with Table II of the paper as the defaults.

Two construction helpers are provided:

* :meth:`SystemConfig.paper_default` -- the exact Table II configuration
  (6 cores, 16 KB L1, 2 MB LLC, 2 MB scopes with 32 K records).
* :meth:`SystemConfig.scaled_default` -- a proportionally scaled-down
  configuration used by the benchmark harness so sweeps complete in
  reasonable wall-clock time under a pure-Python simulator.  Scaling
  preserves the ratios the paper's effects depend on (see DESIGN.md).

All latencies are in host clock cycles (3.6 GHz in Table II).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Mapping, Optional

from repro.core.models import ConsistencyModel


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 4
    hit_latency: int = 2
    #: Cycles to check one set during a scope scan (Section IV).
    scan_cycles_per_set: int = 1
    #: Outstanding line fills (MSHR file capacity).  ``None`` keeps the
    #: level's legacy default (8 for the L1, 64 for the LLC) *and*
    #: suppresses the MSHR stat keys, which is what keeps default-config
    #: result digests byte-identical; an explicit count (1 = blocking
    #: cache) also turns the ``mshr_*`` statistics on.
    mshr_entries: Optional[int] = None
    #: Merge secondary misses onto the in-flight MSHR entry.  Off, a
    #: second miss to an in-flight line back-pressures until the refill
    #: lands (the blocking-cache ablation pairs this with
    #: ``mshr_entries=1``).
    coalescing: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError("cache size must be a multiple of line_bytes * ways")
        if self.mshr_entries is not None and self.mshr_entries < 1:
            raise ValueError("mshr_entries must be >= 1 (or None for the "
                             "level default)")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class ScopeBufferConfig:
    """Scope buffer geometry (a small scope-indexed cache, Section IV-A)."""

    sets: int = 64
    ways: int = 4

    @property
    def entries(self) -> int:
        return self.sets * self.ways


@dataclass(frozen=True)
class CoreConfig:
    """Host core parameters."""

    num_cores: int = 6
    freq_ghz: float = 3.6
    #: Maximum outstanding loads (memory-level parallelism window).
    max_outstanding_loads: int = 8
    #: Entry point to the memory subsystem (write buffer) depth.
    entry_point_depth: int = 16
    #: Cycles of non-memory work modelled between memory operations.
    compute_cycles_per_op: int = 4


@dataclass(frozen=True)
class NetworkConfig:
    """The shared reorder network between the L1s and the LLC."""

    latency: int = 12
    #: Inverse bandwidth: cycles per message on the shared request path.
    service_interval: int = 1
    queue_capacity: int = 16


@dataclass(frozen=True)
class MemoryConfig:
    """Memory controller and DRAM timing."""

    dram_latency: int = 200
    #: Inverse bandwidth of the DRAM service stage (bank-level parallelism
    #: folded into one rate).
    dram_service_interval: int = 8
    queue_capacity: int = 32
    #: Maximum lines fused into one DRAM burst (power of two).  1 keeps
    #: the one-access-per-service-interval behaviour bit-for-bit; above 1
    #: the controller sweeps its queue for accesses in the same aligned
    #: ``dram_burst_len``-line window and services them as one burst
    #: occupying a single service interval (and emits burst statistics).
    dram_burst_len: int = 1

    def __post_init__(self) -> None:
        if self.dram_burst_len < 1 or \
                self.dram_burst_len & (self.dram_burst_len - 1):
            raise ValueError("dram_burst_len must be a power of two >= 1")


@dataclass(frozen=True)
class PimModuleConfig:
    """The bulk-bitwise PIM module (PIMDB-style [25])."""

    #: Op buffer depth; ``None`` reproduces the Fig. 11a unbounded buffer.
    buffer_capacity: Optional[int] = 128
    #: Execution cycles of one PIM op on one scope.  Bulk-bitwise ops are
    #: long (microseconds in [25]); 4000 host cycles ~ 1.1 us at 3.6 GHz.
    op_latency: int = 4000
    #: Fig. 11b "zero logic" experiment: PIM ops execute in zero time.
    zero_logic: bool = False
    #: Maximum scopes executing concurrently (the module can operate many
    #: crossbar groups in parallel; ops to the same scope serialize).
    max_concurrent_scopes: Optional[int] = None

    def effective_latency(self) -> int:
        return 0 if self.zero_logic else self.op_latency


#: Arrival processes the open-loop traffic layer understands.
ARRIVAL_KINDS = ("closed", "poisson", "burst", "ramp")


@dataclass(frozen=True)
class TrafficConfig:
    """Open-loop arrival process ahead of the cores (``repro.traffic``).

    The default ``arrival="closed"`` is the legacy closed loop (each
    core issues its next op when the previous settles) and emits no new
    stat keys, which keeps default-config result digests byte-identical
    (gated by ``tests/api/test_default_digests.py``).  Any open kind
    precomputes a seeded arrival-time array per core, feeds a bounded
    admission queue, and tracks per-request latency from *arrival* (not
    issue) to settle.
    """

    #: ``closed`` | ``poisson`` | ``burst`` (2-state MMPP) | ``ramp``
    #: (diurnal linear rate ramp).
    arrival: str = "closed"
    #: Mean offered load, in requests per 1000 cycles per core.
    offered_load: float = 0.0
    #: Admission queue depth per core; arrivals beyond it are shed
    #: (counted as ``req_dropped``).  ``None`` = unbounded.
    queue_depth: Optional[int] = None
    #: ``burst``: high/low phase rates are ``offered_load * burstiness``
    #: and ``offered_load / burstiness``.
    burstiness: float = 4.0
    #: ``burst``: mean arrivals per phase before switching (geometric).
    burst_dwell: int = 16
    #: ``ramp``: rate climbs linearly from ``offered_load / ramp_peak``
    #: to ``offered_load * ramp_peak`` across the request stream.
    ramp_peak: float = 2.0
    #: Arrival-stream RNG seed; same seed => same arrival array.
    seed: int = 1

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"arrival must be one of {ARRIVAL_KINDS}, "
                             f"got {self.arrival!r}")
        if self.arrival != "closed" and self.offered_load <= 0:
            raise ValueError("open-loop traffic requires offered_load > 0")
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1 (or None for "
                             "unbounded)")
        if self.burstiness <= 1.0:
            raise ValueError("burstiness must be > 1")
        if self.burst_dwell < 1:
            raise ValueError("burst_dwell must be >= 1")
        if self.ramp_peak < 1.0:
            raise ValueError("ramp_peak must be >= 1")

    @property
    def open(self) -> bool:
        return self.arrival != "closed"


@dataclass(frozen=True)
class TraceConfig:
    """Opt-in observability knobs (``repro.obs``).

    The default (``enabled=False``) is the zero-cost path: no tracer is
    built, every hook site guards on a ``None`` attribute, and
    :func:`config_to_dict` omits the section entirely so default spec
    hashes (and every pinned campaign digest) are unchanged.  Tracing on
    or off, simulated results are byte-identical -- observation never
    perturbs the simulation (gated by ``tests/obs/test_neutrality.py``).
    """

    #: Build a tracer: event ring (if ``ring_size > 0``), stall
    #: attribution, kernel dispatch-tier accounting.
    enabled: bool = False
    #: Event ring capacity (records kept; oldest dropped when full).
    #: 0 disables event records -- stall attribution still runs, which
    #: is what campaign-level tracing uses to keep store entries small.
    ring_size: int = 65536
    #: Flight recorder: snapshot the ring the first time an invariant
    #: fires mid-run (today: a stale read observed by a core).
    flight: bool = False

    def __post_init__(self) -> None:
        if self.ring_size < 0:
            raise ValueError("ring_size must be >= 0")
        if self.flight and not self.enabled:
            raise ValueError("flight recording requires enabled=True")


@dataclass(frozen=True)
class SystemConfig:
    """Complete system description handed to the builder."""

    model: ConsistencyModel = ConsistencyModel.ATOMIC
    cores: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=16 << 10, ways=4, hit_latency=2))
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=2 << 20, ways=16, hit_latency=20)
    )
    l1_scope_buffer: ScopeBufferConfig = field(
        default_factory=lambda: ScopeBufferConfig(sets=16, ways=1)
    )
    llc_scope_buffer: ScopeBufferConfig = field(
        default_factory=lambda: ScopeBufferConfig(sets=64, ways=4)
    )
    network: NetworkConfig = field(default_factory=NetworkConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    pim: PimModuleConfig = field(default_factory=PimModuleConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)
    #: Scope size: 2 MB huge pages (Table II).
    scope_bytes: int = 2 << 20
    #: Start of PIM memory in the physical address space.
    pim_base: int = 1 << 34
    num_scopes: int = 16
    #: Maximum database records per scope (Table II: 32 K).
    records_per_scope: int = 32 << 10
    #: Ablation switches for the Section IV coherency hardware: with the
    #: scope buffer off every PIM op scans; with the SBV off every scan
    #: visits every set.
    scope_buffer_enabled: bool = True
    sbv_enabled: bool = True

    @classmethod
    def paper_default(cls, model: ConsistencyModel = ConsistencyModel.ATOMIC, num_scopes: int = 16) -> "SystemConfig":
        """The Table II configuration."""
        return cls(model=model, num_scopes=num_scopes)

    @classmethod
    def scaled_default(
        cls, model: ConsistencyModel = ConsistencyModel.ATOMIC, num_scopes: int = 8
    ) -> "SystemConfig":
        """Proportionally scaled configuration for fast Python sweeps.

        Caches, scope size, record counts and queue depths shrink together
        (by 16x for capacities, 8x for the PIM buffer and MC queue) so
        that set counts, lines-per-scope, result-read volumes and the
        ops-in-flight-to-buffer-capacity ratio keep the paper's
        proportions while event counts stay tractable.  The buffer ratio
        matters most: the paper's central effect (strict models
        self-throttling once the PIM module back-pressures, Section VII)
        only appears when a scan's PIM ops can actually fill the buffer.
        """
        return cls(
            model=model,
            l1=CacheConfig(size_bytes=4 << 10, ways=4, hit_latency=2),
            llc=CacheConfig(size_bytes=128 << 10, ways=16, hit_latency=20),
            llc_scope_buffer=ScopeBufferConfig(sets=16, ways=4),
            l1_scope_buffer=ScopeBufferConfig(sets=8, ways=1),
            memory=MemoryConfig(queue_capacity=16),
            pim=PimModuleConfig(buffer_capacity=16),
            scope_bytes=128 << 10,
            num_scopes=num_scopes,
            records_per_scope=2 << 10,
        )

    def with_model(self, model: ConsistencyModel) -> "SystemConfig":
        """A copy of this configuration under another consistency model."""
        return replace(self, model=model)

    def with_pim(self, **kwargs) -> "SystemConfig":
        """A copy with PIM-module fields overridden (Fig. 11 experiments)."""
        return replace(self, pim=replace(self.pim, **kwargs))

    def with_traffic(self, **kwargs) -> "SystemConfig":
        """A copy with traffic fields overridden (open-loop experiments)."""
        return replace(self, traffic=replace(self.traffic, **kwargs))

    def with_trace(self, **kwargs) -> "SystemConfig":
        """A copy with trace fields overridden (observability runs)."""
        return replace(self, trace=replace(self.trace, **kwargs))

    def __post_init__(self) -> None:
        if self.pim_base % self.scope_bytes:
            raise ValueError("pim_base must be scope-aligned")
        if self.scope_bytes % self.llc.line_bytes:
            raise ValueError("scope size must be line-aligned")


# --------------------------------------------------------------------- #
# dict round trip (shared by experiment specs, campaign artifacts and
# the persistent result store)
# --------------------------------------------------------------------- #

_NESTED_CONFIG = {
    "cores": CoreConfig,
    "l1": CacheConfig,
    "llc": CacheConfig,
    "l1_scope_buffer": ScopeBufferConfig,
    "llc_scope_buffer": ScopeBufferConfig,
    "network": NetworkConfig,
    "memory": MemoryConfig,
    "pim": PimModuleConfig,
    "traffic": TrafficConfig,
    "trace": TraceConfig,
}

_CONFIG_PRESETS = {
    "paper": SystemConfig.paper_default,
    "scaled": SystemConfig.scaled_default,
}


def config_to_dict(config: SystemConfig) -> Dict[str, object]:
    """A JSON-safe dict that :func:`config_from_dict` restores exactly.

    A default ``trace`` section is omitted: observability knobs at their
    defaults must not perturb spec hashes, so every experiment hashed
    before the trace layer existed keeps its hash (and its store entry).
    A *non-default* trace section serializes -- a traced experiment spec
    is deliberately a distinct point.
    """
    data = asdict(config)
    data["model"] = config.model.value
    if config.trace == TraceConfig():
        del data["trace"]
    return data


def config_from_dict(data) -> SystemConfig:
    """Build a :class:`SystemConfig` from a dict (or pass one through).

    Two shapes are accepted:

    * the full :func:`config_to_dict` form (every field present, nested
      sections as complete dicts);
    * a preset form, ``{"preset": "scaled"|"paper", ...overrides}``,
      where nested sections may be *partial* dicts applied on top of the
      preset (e.g. ``{"preset": "scaled", "pim": {"zero_logic": True}}``).
    """
    if isinstance(data, SystemConfig):
        return data
    data = dict(data)
    preset = data.pop("preset", None)
    model = data.pop("model", None)
    if isinstance(model, str):
        model = ConsistencyModel(model)

    if preset is not None:
        try:
            factory = _CONFIG_PRESETS[preset]
        except KeyError:
            raise ValueError(
                f"unknown config preset {preset!r}; "
                f"expected one of {sorted(_CONFIG_PRESETS)}"
            ) from None
        base = factory()
        if model is not None:
            base = base.with_model(model)
        for key, value in data.items():
            if key in _NESTED_CONFIG and isinstance(value, Mapping):
                value = replace(getattr(base, key), **value)
            base = replace(base, **{key: value})
        return base

    for key, cls in _NESTED_CONFIG.items():
        if key in data and isinstance(data[key], Mapping):
            data[key] = cls(**data[key])
    if model is not None:
        data["model"] = model
    return SystemConfig(**data)
