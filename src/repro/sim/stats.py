"""Statistics primitives for reproducing the paper's figures.

The paper reports sampled means (e.g. Fig. 10a: mean PIM-module buffer
length *on PIM op arrival*), ratios (Fig. 9 scope-buffer hit rate,
Fig. 10d SBV skipped-set ratio) and plain counters.  These small classes
keep that bookkeeping uniform and cheap.

The open-loop traffic layer adds :class:`HistogramStat`: a fixed-bucket
HDR-style histogram for figure-grade latency percentiles (p50/p99/p999)
and queue-depth extremes.  Buckets are pure-integer counts and
percentile lookups use integer rank arithmetic, so snapshots are
byte-stable across backends and histograms merge exactly across cores
(bucket-count addition) -- the properties the Serial-vs-ProcessPool
digest gates rely on.

Hot-path conventions: callers on simulator fast paths increment
``counter.value`` directly (or keep a plain int and register a
:meth:`StatGroup.register_flush` callback that syncs it at snapshot
time) instead of paying a method call per event, and sample hot means
through :meth:`StatGroup.mean` with ``extremes=False`` so the per-sample
min/max branches disappear when nothing reads them.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing event counter.

    ``add`` is the convenience API; hot paths write ``counter.value``
    directly, and batched producers sync a plain local int into ``value``
    from a flush callback instead of touching the counter per event.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class MeanStat:
    """Mean of sampled values (e.g. buffer occupancy at op arrival)."""

    __slots__ = ("name", "total", "count", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total: float = 0.0
        self.count: int = 0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def sample(self, value: Number) -> None:
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"MeanStat({self.name}: mean={self.mean:.3f} n={self.count})"


class _PlainMeanStat(MeanStat):
    """A mean without per-sample min/max tracking (hot-path variant).

    The reporting layer never exports min/max, so samplers on the
    simulator's hot paths skip the two comparison branches per sample.
    ``min``/``max`` read as the empty-stat sentinels.
    """

    __slots__ = ()

    def sample(self, value: Number) -> None:
        self.total += value
        self.count += 1


class RatioStat:
    """Hits / lookups style ratio (scope buffer hit rate, SBV skip rate).

    Counters stay integers until ``.ratio`` is read, so arbitrarily long
    runs accumulate without floating-point precision loss (an int count
    above 2**53 would silently stop incrementing as a float).
    """

    __slots__ = ("name", "numerator", "denominator")

    def __init__(self, name: str) -> None:
        self.name = name
        self.numerator: int = 0
        self.denominator: int = 0

    def record(self, hit: bool) -> None:
        if hit:
            self.numerator += 1
        self.denominator += 1

    def add(self, numerator: Number, denominator: Number) -> None:
        self.numerator += numerator
        self.denominator += denominator

    @property
    def ratio(self) -> float:
        return self.numerator / self.denominator if self.denominator else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"RatioStat({self.name}={self.ratio:.4f})"


class HistogramStat:
    """Fixed-bucket log-linear histogram (HDR-style) of integer samples.

    Values below 8 get exact unit buckets; above that, each power-of-two
    range splits into 8 sub-buckets, bounding relative error at 12.5%
    while keeping the bucket index a couple of shifts.  Everything the
    snapshot exports is derived from integer bucket counts:

    * percentiles resolve to a bucket's inclusive *upper bound* via
      integer ceiling-rank arithmetic (no interpolation, no floats), so
      two runs that record the same samples -- in any order, split
      across any number of cores -- produce byte-identical snapshots;
    * :meth:`merge` is plain bucket-count addition, which makes per-core
      histograms exactly mergeable into one distribution.

    Used for open-loop request latency (arrival to settle) and admission
    queue depths; see ``repro.traffic``.
    """

    #: Sub-buckets per power-of-two range (3 bits of mantissa kept).
    SUBBUCKETS = 8

    __slots__ = ("name", "count", "total", "max", "min", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: int = 0
        self.max: int = 0
        self.min: int = -1  # -1 = no samples yet
        self._buckets: Dict[int, int] = {}

    @staticmethod
    def _index(value: int) -> int:
        """Bucket index: identity below 8, then ``8*exp + sub``."""
        if value < 8:
            return value
        e = value.bit_length() - 3
        return (e << 3) | ((value >> (e - 1)) & 7)

    @staticmethod
    def _upper_bound(index: int) -> int:
        """Largest value mapping to ``index`` (the reported quantile)."""
        if index < 8:
            return index
        e = index >> 3
        return (((index & 7) + 9) << (e - 1)) - 1

    def record(self, value: int) -> None:
        v = int(value)
        if v < 0:
            v = 0
        self.count += 1
        self.total += v
        if v > self.max:
            self.max = v
        if self.min < 0 or v < self.min:
            self.min = v
        i = self._index(v)
        buckets = self._buckets
        buckets[i] = buckets.get(i, 0) + 1

    def merge(self, other: "HistogramStat") -> None:
        """Fold ``other`` in (exact: bucket counts just add)."""
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max
        if other.min >= 0 and (self.min < 0 or other.min < self.min):
            self.min = other.min
        buckets = self._buckets
        for i, n in other._buckets.items():
            buckets[i] = buckets.get(i, 0) + n

    def percentile(self, numerator: int, denominator: int) -> int:
        """The ``numerator/denominator`` quantile (e.g. ``99, 100``).

        Integer ceiling-rank: the value at rank
        ``ceil(count * numerator / denominator)``, reported as its
        bucket's upper bound.  Deterministic for any sample order.
        """
        if not self.count:
            return 0
        target = -(-self.count * numerator // denominator)
        if target < 1:
            target = 1
        seen = 0
        for i in sorted(self._buckets):
            seen += self._buckets[i]
            if seen >= target:
                # Clamp to the exact observed max so a tail percentile
                # never reports above it (the top bucket's upper bound
                # can overshoot by the 12.5% bucket width).
                bound = self._upper_bound(i)
                return bound if bound < self.max else self.max
        return self.max  # pragma: no cover - unreachable

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self, out: Dict[str, Number]) -> None:
        """Flatten into ``out`` under ``{name}_*`` keys.

        The sparse nonzero buckets ride along (``{name}_bucket_{i}``) so
        a flattened snapshot still merges exactly and round-trips through
        the result store without losing the distribution.
        """
        name = self.name
        out[name + "_p50"] = self.percentile(50, 100)
        out[name + "_p99"] = self.percentile(99, 100)
        out[name + "_p999"] = self.percentile(999, 1000)
        out[name + "_max"] = self.max
        out[name + "_min"] = self.min if self.min >= 0 else 0
        out[name + "_mean"] = self.mean
        out[name + "_count"] = self.count
        for i in sorted(self._buckets):
            out[f"{name}_bucket_{i}"] = self._buckets[i]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"HistogramStat({self.name}: n={self.count} "
                f"p50={self.percentile(50, 100)} "
                f"p99={self.percentile(99, 100)} max={self.max})")


class StatsView:
    """Read-only attribute namespace over one component's stats snapshot.

    ``view.hit_rate`` is ``snapshot["hit_rate"]``; a statistic the run
    never recorded reads as ``0.0`` (a component that never sampled a
    stat and a component whose stat is zero are indistinguishable in
    every figure, so the fallback keeps sweep code branch-free).

    >>> v = StatsView("llc", {"hit_rate": 0.75})
    >>> v.hit_rate
    0.75
    >>> v.scan_latency
    0.0
    """

    __slots__ = ("_name", "_data")

    def __init__(self, name: str, data: Union[Dict[str, Number], None] = None) -> None:
        self._name = name
        self._data = data if data is not None else {}

    def __getattr__(self, key: str) -> Number:
        if key.startswith("_"):
            raise AttributeError(key)
        return self._data.get(key, 0.0)

    def get(self, key: str, default: Number = 0.0) -> Number:
        return self._data.get(key, default)

    def as_dict(self) -> Dict[str, Number]:
        return dict(self._data)

    def keys(self):
        return self._data.keys()

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __bool__(self) -> bool:
        return bool(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsView({self._name}: {len(self._data)} stats)"


class StatGroup:
    """A named bag of statistics, one per component, snapshot-able.

    Components that batch a statistic in a plain local (an int they
    increment inline) register a flush callback; :meth:`as_dict` runs the
    callbacks first, so snapshots are always consistent while the hot
    path never touches a stat object.  Flush callbacks must be
    idempotent (assign, don't accumulate).

    >>> g = StatGroup("llc")
    >>> g.counter("scans").add()
    >>> g.mean("scan_latency").sample(38)
    >>> g.as_dict()["scans"]
    1
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats: Dict[str, object] = {}
        self._flushes: list = []

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def mean(self, name: str, extremes: bool = True) -> MeanStat:
        """A mean stat; ``extremes=False`` skips min/max per sample."""
        stat = self._stats.get(name)
        if stat is None:
            stat = MeanStat(name) if extremes else _PlainMeanStat(name)
            self._stats[name] = stat
        elif not isinstance(stat, MeanStat):
            raise TypeError(f"stat {name!r} already exists with type {type(stat)}")
        return stat

    def ratio(self, name: str) -> RatioStat:
        return self._get(name, RatioStat)

    def histogram(self, name: str) -> HistogramStat:
        return self._get(name, HistogramStat)

    def register_flush(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` before every snapshot (idempotent sync)."""
        self._flushes.append(callback)

    def _get(self, name: str, cls):
        stat = self._stats.get(name)
        if stat is None:
            stat = cls(name)
            self._stats[name] = stat
        elif not isinstance(stat, cls):
            raise TypeError(f"stat {name!r} already exists with type {type(stat)}")
        return stat

    def as_dict(self) -> Dict[str, float]:
        """Flatten to ``{name: value}`` for reporting."""
        for flush in self._flushes:
            flush()
        out: Dict[str, float] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                out[name] = stat.value
            elif isinstance(stat, MeanStat):
                out[name] = stat.mean
                out[name + "_count"] = stat.count
            elif isinstance(stat, RatioStat):
                out[name] = stat.ratio
            elif isinstance(stat, HistogramStat):
                stat.snapshot(out)
        return out
