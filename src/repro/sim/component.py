"""Pipeline components with bounded, back-pressured input queues.

Every stage of the simulated memory system (caches, network links, memory
controller, PIM module) is a :class:`QueuedComponent`: a bounded FIFO input
queue served at a fixed rate.  Back-pressure is explicit -- when a queue is
full the producer's :meth:`~QueuedComponent.offer` fails, the producer
stalls, and it is woken with :meth:`unblock` once space frees up.  This is
the mechanism behind the paper's central observation: when the PIM module's
buffer fills, back-pressure propagates up to the host cores (Section VII).

``handle`` protocol (subclasses implement :meth:`QueuedComponent.handle`):

* return ``True``  -- message consumed; the queue advances.
* return ``False`` -- blocked on a downstream queue; the component stalls
  until some downstream calls :meth:`unblock`.
* return ``int n > 0`` -- busy for ``n`` cycles (e.g. an LLC scan), after
  which ``handle`` is invoked again for the same message.

Hot-path notes: service kick-offs and wake-ups ride the kernel's
immediate-dispatch ring (:meth:`Simulator.call_at_now`), never the heap;
the per-message service and delivery events are unavoidable (they
advance simulated time) but their rescheduling inlines the kernel's
timing-wheel insert (:meth:`Simulator.schedule`, wheel tier) to skip
the call frame; parked senders are kept in an insertion-ordered dict so
the full-queue path is O(1) instead of a list-membership scan.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from repro.sim.kernel import Simulator, WHEEL_MASK, WHEEL_SLOTS
from repro.sim.messages import Message


class Component:
    """Base class: anything that lives in a simulation and has a name.

    The component hierarchy declares ``__slots__``: the hot loops load
    these attributes once per event, and slot descriptors keep that a
    fixed-offset read.  Subclasses that declare their own attributes
    (caches, cores, the MC) simply omit ``__slots__`` and get a dict for
    the extras while the base attributes stay slotted.
    """

    __slots__ = ("sim", "name", "_trace")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        # Observability hook: a Tracer when this run records an event
        # ring, else None.  The builder attaches it; every hot path
        # guards on ``is not None`` so tracing off costs one slot read.
        self._trace = None

    def unblock(self) -> None:
        """Called by a downstream component when its queue has space."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class QueuedComponent(Component):
    """A component with a bounded input queue served at a fixed rate.

    Args:
        capacity: queue depth; ``None`` means unbounded (used for the
            Fig. 11a unbounded-PIM-buffer experiment).
        service_interval: cycles between serving consecutive messages
            (the stage's inverse bandwidth).
    """

    __slots__ = ("capacity", "service_interval", "_interval_on_wheel",
                 "_queue", "_waiting_senders", "_serving", "_stalled",
                 "_notify_enqueue", "_notify_dequeue", "_serve_bound")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: Optional[int] = None,
        service_interval: int = 1,
    ) -> None:
        super().__init__(sim, name)
        self.capacity = capacity
        self.service_interval = service_interval
        # Service rescheduling inlines the kernel's wheel insert; a
        # (config-pathological) interval past the wheel horizon falls
        # back to the generic schedule() call.
        self._interval_on_wheel = 0 < service_interval < WHEEL_SLOTS
        self._queue: deque = deque()
        # Insertion-ordered dedup of parked senders: dict membership is
        # O(1) where the old list scan was O(n), and iteration preserves
        # first-parked-first-woken order.
        self._waiting_senders: dict = {}
        self._serving = False
        self._stalled = False
        # Skip the on_enqueue/on_dequeue hook calls entirely for the
        # (common) subclasses that don't override them.
        self._notify_enqueue = (
            type(self).on_enqueue is not QueuedComponent.on_enqueue
        )
        self._notify_dequeue = (
            type(self).on_dequeue is not QueuedComponent.on_dequeue
        )
        # The service callback is pushed once per message; binding it
        # here (virtual dispatch included) skips the per-push method
        # object creation.
        self._serve_bound = self._serve

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        """Try to enqueue ``msg``; on failure the sender is parked.

        Returns ``True`` if accepted.  When ``False`` is returned the
        sender (if given) will get an :meth:`unblock` call once space
        frees; it must then retry the offer.
        """
        queue = self._queue
        capacity = self.capacity
        if capacity is not None and len(queue) >= capacity:
            if sender is not None:
                self._waiting_senders[sender] = None
            return False
        queue.append(msg)
        if self._notify_enqueue:
            self.on_enqueue(msg)
        if not self._serving and not self._stalled:
            self._serving = True
            # Inlined Simulator.call_at_now: this kick runs once per
            # idle-to-busy transition of every pipeline stage.
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._ring.append((seq, self._serve_bound, ()))
        return True

    def on_enqueue(self, msg: Message) -> None:
        """Hook: called when a message is accepted (stats sampling)."""

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._queue) >= self.capacity

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #

    def handle(self, msg: Message) -> Union[bool, int]:
        """Process the head-of-queue message (see module docstring)."""
        raise NotImplementedError

    def unblock(self) -> None:
        """A downstream queue freed space: resume serving."""
        if self._stalled:
            self._stalled = False
            if not self._serving:
                self._serving = True
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                sim._ring.append((seq, self._serve_bound, ()))

    def _serve(self) -> None:
        queue = self._queue
        trace = self._trace
        # Loop inline over ready work: a zero-interval stage (and the
        # first message after an idle gap) is served without bouncing
        # through the scheduler again.
        while True:
            if not queue:
                self._serving = False
                return
            if trace is not None:
                # Capture before handle(): a consumed message may go
                # back to the pool inside it.
                head = queue[0]
                kind = head.mtype.name
                op_id = head.op_id
            result = self.handle(queue[0])
            if result is True:
                if trace is not None:
                    trace.record(self.sim.now, self.name, kind, op_id)
                queue.popleft()
                if self._notify_dequeue:
                    self.on_dequeue()
                if self._waiting_senders:
                    self._wake_senders()
                if not queue:
                    self._serving = False
                    return
                if self._interval_on_wheel:
                    # Inlined Simulator.schedule (wheel tier): this
                    # reschedule runs once per message of every stage.
                    sim = self.sim
                    sim._seq = seq = sim._seq + 1
                    sim._wheel[
                        (sim.now + self.service_interval) & WHEEL_MASK
                    ].append((seq, self._serve_bound, ()))
                    sim._wheel_count += 1
                    return
                if self.service_interval:
                    self.sim.schedule(self.service_interval, self._serve_bound)
                    return
            elif result is False:
                self._serving = False
                self._stalled = True
                return
            else:
                self.sim.schedule(result, self._serve_bound)
                return

    def on_dequeue(self) -> None:
        """Hook: called after the head message is consumed."""

    def _wake_senders(self) -> None:
        waiters = self._waiting_senders
        self._waiting_senders = {}
        for waiter in waiters:
            waiter.unblock()


class Link(QueuedComponent):
    """A latency + bandwidth pipe between two components.

    Messages are accepted into a bounded input queue, serviced one per
    ``service_interval`` cycles (the link bandwidth), spend ``latency``
    cycles in flight, and are then offered downstream.  If the downstream
    queue is full, delivery stalls in arrival order and back-pressure
    propagates to the input queue.
    """

    __slots__ = ("downstream", "latency", "_latency_on_wheel",
                 "pipe_capacity", "_in_flight", "_delivering",
                 "_dispatch_direct", "_try_deliver_bound")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        downstream: Component,
        latency: int = 1,
        service_interval: int = 1,
        capacity: Optional[int] = 8,
        pipe_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name, capacity=capacity, service_interval=service_interval)
        self.downstream = downstream
        self.latency = latency
        self._latency_on_wheel = 0 < latency < WHEEL_SLOTS
        self.pipe_capacity = pipe_capacity or max(2, latency)
        self._in_flight: deque = deque()
        self._delivering = False
        # Deliveries into a ResponseDispatcher can never be refused, so
        # the delivery loop hands those straight to ``msg.reply_to``
        # without bouncing through offer().
        self._dispatch_direct = isinstance(downstream, ResponseDispatcher)
        self._try_deliver_bound = self._try_deliver

    def _serve(self) -> None:
        # Fuses QueuedComponent._serve with what Link.handle would do
        # (links carry every message in the system, so the service stage
        # skips the generic handle() dispatch): accept the head message
        # into the in-flight pipe unless the pipe is at capacity, in
        # which case stall until a delivery completes.  This override is
        # the Link's only service path -- there is deliberately no
        # separate handle() to keep the logic in one place.
        sim = self.sim
        queue = self._queue
        in_flight = self._in_flight
        pipe_capacity = self.pipe_capacity
        latency = self.latency
        while True:
            if not queue:
                self._serving = False
                return
            if len(in_flight) >= pipe_capacity:
                self._serving = False
                self._stalled = True
                return
            in_flight.append((sim.now + latency, queue.popleft()))
            if not self._delivering:
                self._delivering = True
                if self._latency_on_wheel:
                    # Inlined Simulator.schedule (wheel tier).
                    sim._seq = seq = sim._seq + 1
                    sim._wheel[(sim.now + latency) & WHEEL_MASK].append(
                        (seq, self._try_deliver_bound, ()))
                    sim._wheel_count += 1
                else:
                    sim.schedule(latency, self._try_deliver_bound)
            if self._waiting_senders:
                self._wake_senders()
            if not queue:
                self._serving = False
                return
            if self._interval_on_wheel:
                # Inlined Simulator.schedule (wheel tier).
                sim._seq = seq = sim._seq + 1
                sim._wheel[
                    (sim.now + self.service_interval) & WHEEL_MASK
                ].append((seq, self._serve_bound, ()))
                sim._wheel_count += 1
                return
            if self.service_interval:
                sim.schedule(self.service_interval, self._serve_bound)
                return

    def _try_deliver(self) -> None:
        in_flight = self._in_flight
        sim = self.sim
        now = sim.now
        trace = self._trace
        if self._dispatch_direct:
            # Response-network fast path: the dispatcher always accepts,
            # so deliver straight to each message's reply_to.
            while in_flight:
                arrival, msg = in_flight[0]
                if arrival > now:
                    if self._latency_on_wheel:
                        # Inlined Simulator.schedule (wheel tier): the gap
                        # to the next arrival never exceeds the latency.
                        sim._seq = seq = sim._seq + 1
                        sim._wheel[arrival & WHEEL_MASK].append(
                            (seq, self._try_deliver_bound, ()))
                        sim._wheel_count += 1
                    else:
                        sim.schedule(arrival - now, self._try_deliver_bound)
                    return
                in_flight.popleft()
                if trace is not None:
                    # Record before handing over: the consumer may
                    # release the pooled message.
                    trace.record(now, self.name, msg.mtype.name, msg.op_id)
                msg.reply_to.receive_response(msg)
                if self._stalled:
                    QueuedComponent.unblock(self)
            self._delivering = False
            return
        downstream_offer = self.downstream.offer
        while in_flight:
            head = in_flight[0]
            arrival = head[0]
            if arrival > now:
                if self._latency_on_wheel:
                    sim._seq = seq = sim._seq + 1
                    sim._wheel[arrival & WHEEL_MASK].append(
                        (seq, self._try_deliver_bound, ()))
                    sim._wheel_count += 1
                else:
                    sim.schedule(arrival - now, self._try_deliver_bound)
                return
            if not downstream_offer(head[1], self):
                # Downstream full: it will call our unblock() when space
                # frees; resume delivering then.
                self._delivering = False
                return
            in_flight.popleft()
            if trace is not None:
                msg = head[1]
                trace.record(now, self.name, msg.mtype.name, msg.op_id)
            # Delivering freed pipe space; resume the service stage if it
            # was blocked on pipe capacity.
            if self._stalled:
                QueuedComponent.unblock(self)
        self._delivering = False

    def unblock(self) -> None:
        # Called both by downstream (delivery may resume) and treated as a
        # wake-up for the service stage.
        if self._in_flight and not self._delivering:
            self._delivering = True
            self.sim.call_at_now(self._try_deliver_bound)
        QueuedComponent.unblock(self)


class ResponseDispatcher(Component):
    """Terminal sink for the response network: routes to ``msg.reply_to``.

    Response consumers (cores, entry points) are assumed to always accept;
    they model their own capacity internally (e.g. MLP limits are enforced
    at issue time, not at response delivery).  Each consumer's
    ``receive_response`` owns the message afterwards and releases pooled
    responses back to the free list.
    """

    __slots__ = ()

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        msg.reply_to.receive_response(msg)
        return True
