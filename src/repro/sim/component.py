"""Pipeline components with bounded, back-pressured input queues.

Every stage of the simulated memory system (caches, network links, memory
controller, PIM module) is a :class:`QueuedComponent`: a bounded FIFO input
queue served at a fixed rate.  Back-pressure is explicit -- when a queue is
full the producer's :meth:`~QueuedComponent.offer` fails, the producer
stalls, and it is woken with :meth:`unblock` once space frees up.  This is
the mechanism behind the paper's central observation: when the PIM module's
buffer fills, back-pressure propagates up to the host cores (Section VII).

``handle`` protocol (subclasses implement :meth:`QueuedComponent.handle`):

* return ``True``  -- message consumed; the queue advances.
* return ``False`` -- blocked on a downstream queue; the component stalls
  until some downstream calls :meth:`unblock`.
* return ``int n > 0`` -- busy for ``n`` cycles (e.g. an LLC scan), after
  which ``handle`` is invoked again for the same message.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from repro.sim.kernel import Simulator
from repro.sim.messages import Message


class Component:
    """Base class: anything that lives in a simulation and has a name."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name

    def unblock(self) -> None:
        """Called by a downstream component when its queue has space."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class QueuedComponent(Component):
    """A component with a bounded input queue served at a fixed rate.

    Args:
        capacity: queue depth; ``None`` means unbounded (used for the
            Fig. 11a unbounded-PIM-buffer experiment).
        service_interval: cycles between serving consecutive messages
            (the stage's inverse bandwidth).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: Optional[int] = None,
        service_interval: int = 1,
    ) -> None:
        super().__init__(sim, name)
        self.capacity = capacity
        self.service_interval = service_interval
        self._queue: deque = deque()
        self._waiting_senders: list = []
        self._serving = False
        self._stalled = False

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        """Try to enqueue ``msg``; on failure the sender is parked.

        Returns ``True`` if accepted.  When ``False`` is returned the
        sender (if given) will get an :meth:`unblock` call once space
        frees; it must then retry the offer.
        """
        if self.capacity is not None and len(self._queue) >= self.capacity:
            if sender is not None and sender not in self._waiting_senders:
                self._waiting_senders.append(sender)
            return False
        self._queue.append(msg)
        self.on_enqueue(msg)
        if not self._serving and not self._stalled:
            self._serving = True
            self.sim.schedule(0, self._serve)
        return True

    def on_enqueue(self, msg: Message) -> None:
        """Hook: called when a message is accepted (stats sampling)."""

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._queue) >= self.capacity

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #

    def handle(self, msg: Message) -> Union[bool, int]:
        """Process the head-of-queue message (see module docstring)."""
        raise NotImplementedError

    def unblock(self) -> None:
        """A downstream queue freed space: resume serving."""
        if self._stalled:
            self._stalled = False
            if not self._serving:
                self._serving = True
                self.sim.schedule(0, self._serve)

    def _serve(self) -> None:
        if not self._queue:
            self._serving = False
            return
        result = self.handle(self._queue[0])
        if result is True:
            self._queue.popleft()
            self.on_dequeue()
            self._wake_senders()
            if self._queue:
                self.sim.schedule(self.service_interval, self._serve)
            else:
                self._serving = False
        elif result is False:
            self._serving = False
            self._stalled = True
        else:
            self.sim.schedule(int(result), self._serve)

    def on_dequeue(self) -> None:
        """Hook: called after the head message is consumed."""

    def _wake_senders(self) -> None:
        if self._waiting_senders:
            waiters, self._waiting_senders = self._waiting_senders, []
            for waiter in waiters:
                waiter.unblock()


class Link(QueuedComponent):
    """A latency + bandwidth pipe between two components.

    Messages are accepted into a bounded input queue, serviced one per
    ``service_interval`` cycles (the link bandwidth), spend ``latency``
    cycles in flight, and are then offered downstream.  If the downstream
    queue is full, delivery stalls in arrival order and back-pressure
    propagates to the input queue.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        downstream: Component,
        latency: int = 1,
        service_interval: int = 1,
        capacity: Optional[int] = 8,
        pipe_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name, capacity=capacity, service_interval=service_interval)
        self.downstream = downstream
        self.latency = latency
        self.pipe_capacity = pipe_capacity or max(2, latency)
        self._in_flight: deque = deque()
        self._delivering = False

    def handle(self, msg: Message) -> Union[bool, int]:
        if len(self._in_flight) >= self.pipe_capacity:
            return False  # pipe full; unblocked when a delivery completes
        self._in_flight.append((self.sim.now + self.latency, msg))
        if not self._delivering:
            self._delivering = True
            self.sim.schedule(self.latency, self._try_deliver)
        return True

    def _try_deliver(self) -> None:
        while self._in_flight:
            arrival, msg = self._in_flight[0]
            if arrival > self.sim.now:
                self.sim.schedule_at(arrival, self._try_deliver)
                return
            if not self.downstream.offer(msg, self):
                # Downstream full: it will call our unblock() when space
                # frees; resume delivering then.
                self._delivering = False
                return
            self._in_flight.popleft()
            # Delivering freed pipe space; resume the service stage if it
            # was blocked on pipe capacity.
            super().unblock()
        self._delivering = False

    def unblock(self) -> None:
        # Called both by downstream (delivery may resume) and treated as a
        # wake-up for the service stage.
        if self._in_flight and not self._delivering:
            self._delivering = True
            self.sim.schedule(0, self._try_deliver)
        super().unblock()


class ResponseDispatcher(Component):
    """Terminal sink for the response network: routes to ``msg.reply_to``.

    Response consumers (cores, entry points) are assumed to always accept;
    they model their own capacity internally (e.g. MLP limits are enforced
    at issue time, not at response delivery).
    """

    def offer(self, msg: Message, sender: Optional[Component] = None) -> bool:
        msg.reply_to.receive_response(msg)
        return True
