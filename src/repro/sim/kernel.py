"""Event queue and simulator loop: a three-tier scheduler.

The simulator is a discrete-event kernel; time is measured in *clock
cycles* of the host processor (3.6 GHz in the paper's Table II) and
converting to seconds is the job of the reporting layer.  Pending events
live in one of three tiers, picked by their delay at scheduling time:

* **ring** (delay 0) -- the continuation trampolines that dominate
  pipeline simulations (``offer`` -> ``_serve``, ``unblock`` -> retry)
  go onto an immediate-dispatch FIFO drained at the current cycle;
* **wheel** (delay 1..255) -- a timing wheel of ``WHEEL_SLOTS`` per-cycle
  buckets indexed by ``cycle & WHEEL_MASK``.  Service intervals, link and
  cache latencies and DRAM/PIM access times all land here, so the
  short-delay traffic that used to dominate the heap is O(1) to insert
  and O(1) to drain;
* **heap** (delay >= ``WHEEL_SLOTS``) -- far-future events (PIM op
  execution, long scans) fall back to a classic ``(time, seq, callback,
  args)`` priority queue.

Global event order is byte-identical to a pure-heap kernel: every event
carries the global sequence number, and the run loop merges wheel and
heap entries at the current cycle in sequence order before draining the
ring.  (Ring entries are always youngest -- zero-delay events can only
be scheduled *at* the current cycle, so their sequence numbers exceed
those of any wheel or heap entry landing on it.)

Because a wheel insert never reaches delay ``WHEEL_SLOTS``, a bucket
only ever holds entries for one cycle at a time, and the time-advance
scan visits each passed slot exactly once -- O(total cycles) over a run,
bounded by the heap head when the wheel is sparse.
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Callable, Optional

from repro.sim import messages as _messages

#: Timing-wheel size (power of two).  Delays 1..WHEEL_SLOTS-1 ride the
#: wheel; the bound must stay above the largest common latency in the
#: timing model (DRAM/PIM accesses: 200 cycles).  The hottest schedule
#: sites inline the wheel insert against WHEEL_MASK directly -- change
#: the entry shape or the constants here and there together.
WHEEL_SLOTS = 256
WHEEL_MASK = WHEEL_SLOTS - 1


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


class Simulator:
    """Discrete-event simulator with integer cycle timestamps.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(5, hits.append, "a")
    >>> sim.schedule(3, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    5
    """

    __slots__ = ("now", "_queue", "_ring", "_wheel", "_wheel_count", "_seq",
                 "_events_executed", "_running", "_stop", "_trace")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list = []
        self._ring: deque = deque()
        self._wheel: list = [deque() for _ in range(WHEEL_SLOTS)]
        self._wheel_count: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False
        self._stop = False
        # Observability hook (a Tracer, or None).  The untraced run loop
        # never reads it past the single branch in :meth:`run`, so
        # tracing off costs nothing on the hot path.
        self._trace = None

    @property
    def events_executed(self) -> int:
        """Number of events the kernel has executed so far.

        The run loop batches this counter and syncs it on exit (and
        before every ``stop_when`` call); a component callback reading
        it *mid-run* sees the value as of the start of the run.
        """
        return self._events_executed

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        Events scheduled at the same cycle run in scheduling order (the
        sequence number breaks ties), which keeps runs deterministic.
        The delay picks the tier: 0 -> ring, 1..WHEEL_SLOTS-1 -> wheel,
        anything further -> heap.
        """
        if delay <= 0:
            # Debug-only guard (compiled out under ``python -O``, like an
            # assert): a negative delay is always a component bug, and
            # the optimized run loop should not pay for the check.
            if __debug__ and delay < 0:
                raise SimulationError(f"negative delay {delay!r}")
            self._seq = seq = self._seq + 1
            self._ring.append((seq, callback, args))
            return
        self._seq = seq = self._seq + 1
        if delay < WHEEL_SLOTS:
            self._wheel[(self.now + delay) & WHEEL_MASK].append(
                (seq, callback, args))
            self._wheel_count += 1
        else:
            heapq.heappush(self._queue, (self.now + delay, seq, callback, args))

    def call_at_now(self, callback: Callable, *args: Any) -> None:
        """Fast path for ``schedule(0, ...)``: no delay validation at all.

        NOTE: the hottest kick sites (QueuedComponent.offer/unblock,
        Core._schedule_step, MemoryController.offer) inline this body to
        skip the call frame -- change the ring-entry shape here and
        there together.  (The hottest small-delay sites likewise inline
        the wheel insert from :meth:`schedule`.)
        """
        self._seq = seq = self._seq + 1
        self._ring.append((seq, callback, args))

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        self.schedule(time - self.now, callback, *args)

    def stop(self) -> None:
        """Stop the run loop after the event currently executing.

        Cheaper than a ``stop_when`` predicate: callers that know the
        stopping condition flipped (e.g. the last core finished) set the
        flag from inside their event instead of the kernel polling a
        Python callable after every event.
        """
        self._stop = True

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run events until the queues drain or a bound is hit.

        Args:
            until: stop once the next event would be later than this cycle.
            max_events: safety valve against runaway simulations.
            stop_when: predicate checked after every event; ``True`` stops.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if self._trace is not None:
            # The traced loop is a byte-identical twin of the one below
            # plus per-cycle tier tallies; keeping it separate keeps the
            # disabled path free of any per-event tracing cost.
            return self._run_traced(until, max_events, stop_when)
        self._running = True
        try:
            # Local aliases: this loop is the hottest code in the package.
            queue = self._queue
            ring = self._ring
            wheel = self._wheel
            mask = WHEEL_MASK
            pop = heapq.heappop
            ring_popleft = ring.popleft
            events = self._events_executed
            now = self.now
            limit = sys.maxsize if max_events is None else max_events
            # Within one cycle the three tiers drain in global sequence
            # order: the current wheel bucket merged with heap entries at
            # `now` (both scheduled in earlier cycles), then the ring
            # (whose entries are created at `now` and therefore youngest).
            # `heap_at_now` turns False the moment the heap head moves
            # past `now` -- callbacks can never push a heap (or wheel)
            # entry at the *current* cycle, so the flag only flips back
            # when time advances and the common ring-only stretch runs
            # with no heap peeking at all.  For the same reason the
            # current bucket's size is fixed once its cycle starts, so
            # `_wheel_count` is deducted once per cycle (and leftover
            # entries are restored on an early exit) instead of per pop.
            bucket = wheel[now & mask]
            self._wheel_count -= len(bucket)
            heap_at_now = True
            if until is not None and now > until:
                return
            while True:
                # -- select exactly one event ------------------------- #
                if bucket:
                    if heap_at_now and queue:
                        head = queue[0]
                        if head[0] != now:
                            heap_at_now = False
                            _, cb, args = bucket.popleft()
                        elif head[1] < bucket[0][0]:
                            pop(queue)
                            cb = head[2]
                            args = head[3]
                        else:
                            _, cb, args = bucket.popleft()
                    else:
                        heap_at_now = False
                        _, cb, args = bucket.popleft()
                elif heap_at_now:
                    if queue and queue[0][0] == now:
                        head = pop(queue)
                        cb = head[2]
                        args = head[3]
                    else:
                        heap_at_now = False
                        continue
                elif ring:
                    _, cb, args = ring_popleft()
                else:
                    # -- advance time (or finish) --------------------- #
                    # (`bucket` itself is only reassigned past the
                    # `until` check: the early return must leave the
                    # drained current bucket for the exit bookkeeping.)
                    if self._wheel_count:
                        # The next nonempty bucket is at most
                        # WHEEL_SLOTS-1 slots ahead; stop early at the
                        # heap head so a sparse wheel never over-scans.
                        t = now + 1
                        nxt = wheel[t & mask]
                        if queue:
                            heap_time = queue[0][0]
                            while not nxt and t != heap_time:
                                t += 1
                                nxt = wheel[t & mask]
                        else:
                            while not nxt:
                                t += 1
                                nxt = wheel[t & mask]
                    elif queue:
                        t = queue[0][0]
                        nxt = wheel[t & mask]
                    else:
                        return
                    if until is not None and t > until:
                        self.now = until
                        return
                    self.now = now = t
                    bucket = nxt
                    self._wheel_count -= len(bucket)
                    heap_at_now = True
                    continue
                # -- dispatch + the one shared post-event epilogue ---- #
                # (Most callbacks are zero-arg service/step trampolines;
                # the plain call skips the *-unpack calling convention.)
                if args:
                    cb(*args)
                else:
                    cb()
                events += 1
                if events >= limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self.now}"
                    )
                if self._stop:
                    self._stop = False
                    return
                if stop_when is not None:
                    # The predicate may read events_executed: sync the
                    # deferred counter before calling it (costs nothing
                    # on runs without a predicate).
                    self._events_executed = events
                    if stop_when():
                        return
        finally:
            # Synced once on exit (normal, stop, or an exception out of a
            # callback): nothing in the timing model reads these mid-run,
            # and the per-event attribute stores are measurable at this
            # loop's temperature.  Un-executed entries of the current
            # bucket (early stop) are re-counted.
            self._events_executed = events
            self._wheel_count += len(bucket)
            self._running = False

    def _run_traced(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """The :meth:`run` loop plus per-cycle dispatch-tier tallies.

        Selection, ordering, stop handling and bookkeeping are copied
        verbatim from :meth:`run`; the only additions are the three tier
        counters flushed to ``Tracer.kernel_tally`` once per simulated
        cycle that dispatched anything.  Event order (and therefore
        every result digest) is identical to the untraced loop.
        """
        self._running = True
        trace = self._trace
        tally = trace.kernel_tally
        c_ring = c_wheel = c_heap = 0
        try:
            queue = self._queue
            ring = self._ring
            wheel = self._wheel
            mask = WHEEL_MASK
            pop = heapq.heappop
            ring_popleft = ring.popleft
            events = self._events_executed
            now = self.now
            limit = sys.maxsize if max_events is None else max_events
            bucket = wheel[now & mask]
            self._wheel_count -= len(bucket)
            heap_at_now = True
            if until is not None and now > until:
                return
            while True:
                # -- select exactly one event ------------------------- #
                if bucket:
                    if heap_at_now and queue:
                        head = queue[0]
                        if head[0] != now:
                            heap_at_now = False
                            _, cb, args = bucket.popleft()
                            c_wheel += 1
                        elif head[1] < bucket[0][0]:
                            pop(queue)
                            cb = head[2]
                            args = head[3]
                            c_heap += 1
                        else:
                            _, cb, args = bucket.popleft()
                            c_wheel += 1
                    else:
                        heap_at_now = False
                        _, cb, args = bucket.popleft()
                        c_wheel += 1
                elif heap_at_now:
                    if queue and queue[0][0] == now:
                        head = pop(queue)
                        cb = head[2]
                        args = head[3]
                        c_heap += 1
                    else:
                        heap_at_now = False
                        continue
                elif ring:
                    _, cb, args = ring_popleft()
                    c_ring += 1
                else:
                    # -- advance time (or finish) --------------------- #
                    if c_ring or c_wheel or c_heap:
                        tally(c_ring, c_wheel, c_heap)
                        c_ring = c_wheel = c_heap = 0
                    if self._wheel_count:
                        t = now + 1
                        nxt = wheel[t & mask]
                        if queue:
                            heap_time = queue[0][0]
                            while not nxt and t != heap_time:
                                t += 1
                                nxt = wheel[t & mask]
                        else:
                            while not nxt:
                                t += 1
                                nxt = wheel[t & mask]
                    elif queue:
                        t = queue[0][0]
                        nxt = wheel[t & mask]
                    else:
                        return
                    if until is not None and t > until:
                        self.now = until
                        return
                    self.now = now = t
                    bucket = nxt
                    self._wheel_count -= len(bucket)
                    heap_at_now = True
                    continue
                # -- dispatch + the one shared post-event epilogue ---- #
                if args:
                    cb(*args)
                else:
                    cb()
                events += 1
                if events >= limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self.now}"
                    )
                if self._stop:
                    self._stop = False
                    return
                if stop_when is not None:
                    self._events_executed = events
                    if stop_when():
                        return
        finally:
            if c_ring or c_wheel or c_heap:
                tally(c_ring, c_wheel, c_heap)
            self._events_executed = events
            self._wheel_count += len(bucket)
            self._running = False

    def pending_events(self) -> int:
        """Number of events waiting (dispatch ring + wheel + heap)."""
        count = len(self._queue) + len(self._ring) + self._wheel_count
        if self._running:
            # The run loop pre-deducts the current cycle's bucket from
            # the wheel count; its un-executed entries are still queued.
            count += len(self._wheel[self.now & WHEEL_MASK])
        return count

    def reset_ids(self) -> None:
        """Reset the process-global message id counter and free-list pool.

        Call between experiments in one process so ``op_id`` sequences
        (and pooled-message identity) are reproducible per run; this is
        what keeps the Serial and ProcessPool backends byte-identical.
        """
        _messages.reset_ids()
