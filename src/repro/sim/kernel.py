"""Event queue and simulator loop.

The simulator is a classic discrete-event kernel: a priority queue of
``(time, sequence, callback, args)`` entries.  Components schedule callbacks
at relative delays; the loop pops events in time order and runs them.  Time
is measured in *clock cycles* of the host processor (3.6 GHz in the paper's
Table II); converting to seconds is the job of the reporting layer.

Hot-path design: zero-delay events -- the continuation trampolines that
dominate pipeline simulations (``offer`` -> ``_serve``, ``unblock`` ->
retry) -- never touch the heap.  They go onto an *immediate-dispatch ring*
(a FIFO) that the run loop drains at the current cycle.  Global event
order is nevertheless byte-identical to a pure-heap kernel: every event
still carries the global sequence number, and the loop interleaves ring
and heap entries at the same cycle in sequence order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.sim import messages as _messages


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


class Simulator:
    """Discrete-event simulator with integer cycle timestamps.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(5, hits.append, "a")
    >>> sim.schedule(3, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    5
    """

    __slots__ = ("now", "_queue", "_ring", "_seq", "_events_executed",
                 "_running", "_stop")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list = []
        self._ring: deque = deque()
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False
        self._stop = False

    @property
    def events_executed(self) -> int:
        """Number of events the kernel has executed so far."""
        return self._events_executed

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        Events scheduled at the same cycle run in scheduling order (the
        sequence number breaks ties), which keeps runs deterministic.
        Zero-delay events go onto the immediate-dispatch ring and never
        touch the heap.
        """
        if delay <= 0:
            if delay < 0:
                raise SimulationError(f"negative delay {delay!r}")
            self._seq = seq = self._seq + 1
            self._ring.append((seq, callback, args))
            return
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self.now + delay, seq, callback, args))

    def call_at_now(self, callback: Callable, *args: Any) -> None:
        """Fast path for ``schedule(0, ...)``: no delay validation at all.

        NOTE: the hottest kick sites (QueuedComponent.offer/unblock,
        Core._schedule_step, MemoryController.offer) inline this body to
        skip the call frame -- change the ring-entry shape here and
        there together.
        """
        self._seq = seq = self._seq + 1
        self._ring.append((seq, callback, args))

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        self.schedule(time - self.now, callback, *args)

    def stop(self) -> None:
        """Stop the run loop after the event currently executing.

        Cheaper than a ``stop_when`` predicate: callers that know the
        stopping condition flipped (e.g. the last core finished) set the
        flag from inside their event instead of the kernel polling a
        Python callable after every event.
        """
        self._stop = True

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run events until the queue drains or a bound is hit.

        Args:
            until: stop once the next event would be later than this cycle.
            max_events: safety valve against runaway simulations.
            stop_when: predicate checked after every event; ``True`` stops.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            # Local aliases: this loop is the hottest code in the package.
            queue = self._queue
            ring = self._ring
            pop = heapq.heappop
            popleft = ring.popleft
            events = self._events_executed
            if until is not None and self.now > until:
                return
            # True while the heap may still hold events at the current
            # cycle.  It can only flip False->True when time advances:
            # zero-delay work goes to the ring, so callbacks can never
            # push a heap entry at the *current* cycle.  Once the heap
            # head moves past `now`, ring entries dispatch with no heap
            # peeking at all -- the common case.
            heap_at_now = True
            while True:
                if ring:
                    if heap_at_now:
                        # Heap events at the current cycle that were
                        # scheduled before the ring head keep their
                        # place in line.
                        seq = ring[0][0]
                        now = self.now
                        while queue:
                            head = queue[0]
                            if head[0] != now:
                                heap_at_now = False
                                break
                            if head[1] > seq:
                                break
                            pop(queue)
                            head[2](*head[3])
                            self._events_executed = events = events + 1
                            if max_events is not None and events >= max_events:
                                raise SimulationError(
                                    f"exceeded max_events={max_events} "
                                    f"at cycle {self.now}"
                                )
                            if self._stop:
                                self._stop = False
                                return
                            if stop_when is not None and stop_when():
                                return
                        else:
                            heap_at_now = False
                    entry = popleft()
                    entry[1](*entry[2])
                elif queue:
                    head = queue[0]
                    time = head[0]
                    if until is not None and time > until:
                        self.now = until
                        return
                    pop(queue)
                    self.now = time
                    heap_at_now = True
                    head[2](*head[3])
                else:
                    return
                self._events_executed = events = events + 1
                if max_events is not None and events >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self.now}"
                    )
                if self._stop:
                    self._stop = False
                    return
                if stop_when is not None and stop_when():
                    return
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of events waiting (dispatch ring + heap)."""
        return len(self._queue) + len(self._ring)

    def reset_ids(self) -> None:
        """Reset the process-global message id counter and free-list pool.

        Call between experiments in one process so ``op_id`` sequences
        (and pooled-message identity) are reproducible per run; this is
        what keeps the Serial and ProcessPool backends byte-identical.
        """
        _messages.reset_ids()
