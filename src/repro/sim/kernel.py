"""Event queue and simulator loop.

The simulator is a classic discrete-event kernel: a priority queue of
``(time, sequence, callback, args)`` entries.  Components schedule callbacks
at relative delays; the loop pops events in time order and runs them.  Time
is measured in *clock cycles* of the host processor (3.6 GHz in the paper's
Table II); converting to seconds is the job of the reporting layer.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


class Simulator:
    """Discrete-event simulator with integer cycle timestamps.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(5, hits.append, "a")
    >>> sim.schedule(3, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    5
    """

    __slots__ = ("now", "_queue", "_seq", "_events_executed", "_running")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list = []
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False

    @property
    def events_executed(self) -> int:
        """Number of events the kernel has executed so far."""
        return self._events_executed

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        Events scheduled at the same cycle run in scheduling order (the
        sequence number breaks ties), which keeps runs deterministic.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback, args))

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        self.schedule(time - self.now, callback, *args)

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run events until the queue drains or a bound is hit.

        Args:
            until: stop once the next event would be later than this cycle.
            max_events: safety valve against runaway simulations.
            stop_when: predicate checked after every event; ``True`` stops.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            queue = self._queue
            while queue:
                time, _seq, callback, args = queue[0]
                if until is not None and time > until:
                    self.now = until
                    return
                heapq.heappop(queue)
                self.now = time
                callback(*args)
                self._events_executed += 1
                if max_events is not None and self._events_executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self.now}"
                    )
                if stop_when is not None and stop_when():
                    return
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)
