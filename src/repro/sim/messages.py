"""Memory-system messages exchanged by timing-model components.

A single :class:`Message` class (with ``__slots__`` -- these are the hottest
allocations in the simulator) covers requests travelling core -> memory and
responses travelling back.  ``reply_to`` carries the object that receives
the response (the issuing core's load/store unit or entry point), so the
response path needs no address-based routing tables.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional


class MessageType(enum.Enum):
    """Request and response message kinds."""

    LOAD = enum.auto()
    STORE = enum.auto()
    #: Explicit cache-line flush (clflush), used by the SW-Flush baseline.
    FLUSH = enum.auto()
    PIM_OP = enum.auto()
    #: Scope-fence of the scope-relaxed model; scans/flushes every cache
    #: level on its path and terminates at the LLC.
    SCOPE_FENCE = enum.auto()
    #: Dirty-line writeback (L1 -> LLC, or LLC -> memory controller).
    WRITEBACK = enum.auto()
    # --- responses ---
    LOAD_RESP = enum.auto()
    STORE_ACK = enum.auto()
    FLUSH_ACK = enum.auto()
    #: Memory controller acknowledging that a PIM op has been ordered.
    PIM_ACK = enum.auto()
    SCOPE_FENCE_ACK = enum.auto()

    @property
    def is_response(self) -> bool:
        return self in _RESPONSES


_RESPONSES = frozenset(
    {
        MessageType.LOAD_RESP,
        MessageType.STORE_ACK,
        MessageType.FLUSH_ACK,
        MessageType.PIM_ACK,
        MessageType.SCOPE_FENCE_ACK,
    }
)

_ids = itertools.count()


class Message:
    """One request or response in flight through the memory system.

    Attributes:
        mtype: message kind.
        addr: line-aligned byte address (loads/stores/flushes/writebacks);
            for PIM ops and scope fences, the scope's base address.
        scope: scope id for PIM-enabled addresses, else ``None``.
        core: id of the originating core (responses keep the requester's).
        reply_to: object offered the response (must have ``receive_response``).
        exclusive: request needs write permission (store miss / upgrade).
        uncacheable: bypass the caches (uncacheable baseline).
        direct: PIM op that skips LLC scan/flush (naive & SW-flush
            baselines forward PIM ops untouched).
        version: version tag of the data returned by a load response, used
            by the stale-read detector.
        op_id: unique id (debugging, dependency tracking at the MC).
        req: for responses, the request message being answered.
    """

    __slots__ = (
        "mtype",
        "addr",
        "scope",
        "core",
        "reply_to",
        "exclusive",
        "uncacheable",
        "direct",
        "version",
        "op_id",
        "req",
        "issue_time",
    )

    def __init__(
        self,
        mtype: MessageType,
        addr: int = 0,
        scope: Optional[int] = None,
        core: int = 0,
        reply_to: Any = None,
        exclusive: bool = False,
        uncacheable: bool = False,
        direct: bool = False,
        version: int = 0,
    ) -> None:
        self.mtype = mtype
        self.addr = addr
        self.scope = scope
        self.core = core
        self.reply_to = reply_to
        self.exclusive = exclusive
        self.uncacheable = uncacheable
        self.direct = direct
        self.version = version
        self.op_id = next(_ids)
        self.req: Optional[Message] = None
        self.issue_time: int = 0

    def make_response(self, mtype: MessageType, version: int = 0) -> "Message":
        """Build the response message answering this request."""
        resp = Message(
            mtype,
            addr=self.addr,
            scope=self.scope,
            core=self.core,
            reply_to=self.reply_to,
            version=version,
        )
        resp.req = self
        return resp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.mtype.name} id={self.op_id} core={self.core} "
            f"addr={self.addr:#x} scope={self.scope}>"
        )
