"""Memory-system messages exchanged by timing-model components.

A single :class:`Message` class (with ``__slots__`` -- these are the hottest
allocations in the simulator) covers requests travelling core -> memory and
responses travelling back.  ``reply_to`` carries the object that receives
the response (the issuing core's load/store unit or entry point), so the
response path needs no address-based routing tables.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional


class MessageType(enum.Enum):
    """Request and response message kinds."""

    LOAD = enum.auto()
    STORE = enum.auto()
    #: Explicit cache-line flush (clflush), used by the SW-Flush baseline.
    FLUSH = enum.auto()
    PIM_OP = enum.auto()
    #: Scope-fence of the scope-relaxed model; scans/flushes every cache
    #: level on its path and terminates at the LLC.
    SCOPE_FENCE = enum.auto()
    #: Dirty-line writeback (L1 -> LLC, or LLC -> memory controller).
    WRITEBACK = enum.auto()
    # --- responses ---
    LOAD_RESP = enum.auto()
    STORE_ACK = enum.auto()
    FLUSH_ACK = enum.auto()
    #: Memory controller acknowledging that a PIM op has been ordered.
    PIM_ACK = enum.auto()
    SCOPE_FENCE_ACK = enum.auto()

    @property
    def is_response(self) -> bool:
        return self in _RESPONSES


_RESPONSES = frozenset(
    {
        MessageType.LOAD_RESP,
        MessageType.STORE_ACK,
        MessageType.FLUSH_ACK,
        MessageType.PIM_ACK,
        MessageType.SCOPE_FENCE_ACK,
    }
)

_ids = itertools.count()

#: Free list of released :class:`Message` instances (the *message pool*).
#: Steady-state simulation reuses these instead of allocating: every
#: response (and the request it answers, once the response kind proves the
#: request finished) is released back here on delivery.
_pool: list = []


def reset_ids() -> None:
    """Reset the ``op_id`` counter and drop the message pool.

    Run engines call this at the start of every experiment so that op-id
    sequences don't leak monotonically across experiments in one process
    -- the Serial and ProcessPool backends must produce byte-identical
    runs, and a forked worker would otherwise inherit whatever counter
    state the parent had reached.
    """
    global _ids
    _ids = itertools.count()
    _pool.clear()


class Message:
    """One request or response in flight through the memory system.

    Attributes:
        mtype: message kind.
        addr: line-aligned byte address (loads/stores/flushes/writebacks);
            for PIM ops and scope fences, the scope's base address.
        scope: scope id for PIM-enabled addresses, else ``None``.
        core: id of the originating core (responses keep the requester's).
        reply_to: object offered the response (must have ``receive_response``).
        exclusive: request needs write permission (store miss / upgrade).
        uncacheable: bypass the caches (uncacheable baseline).
        direct: PIM op that skips LLC scan/flush (naive & SW-flush
            baselines forward PIM ops untouched).
        version: version tag of the data returned by a load response, used
            by the stale-read detector.
        op_id: unique id (debugging, dependency tracking at the MC).
        req: for responses, the request message being answered.
    """

    __slots__ = (
        "mtype",
        "addr",
        "scope",
        "core",
        "reply_to",
        "exclusive",
        "uncacheable",
        "direct",
        "version",
        "op_id",
        "req",
        "_pooled",
    )

    def __init__(
        self,
        mtype: MessageType,
        addr: int = 0,
        scope: Optional[int] = None,
        core: int = 0,
        reply_to: Any = None,
        exclusive: bool = False,
        uncacheable: bool = False,
        direct: bool = False,
        version: int = 0,
    ) -> None:
        self.mtype = mtype
        self.addr = addr
        self.scope = scope
        self.core = core
        self.reply_to = reply_to
        self.exclusive = exclusive
        self.uncacheable = uncacheable
        self.direct = direct
        self.version = version
        self.op_id = next(_ids)
        self.req: Optional[Message] = None
        #: Only messages acquired from the pool may return to it; this
        #: keeps externally constructed messages (tests, workload code)
        #: out of the recycling loop, so holding one across a run can
        #: never observe it being reused.
        self._pooled = False

    @classmethod
    def acquire(
        cls,
        mtype: MessageType,
        addr: int = 0,
        scope: Optional[int] = None,
        core: int = 0,
        reply_to: Any = None,
        exclusive: bool = False,
        uncacheable: bool = False,
        direct: bool = False,
        version: int = 0,
    ) -> "Message":
        """A message from the free-list pool (allocating on a pool miss).

        Identical to the constructor -- including drawing a fresh
        ``op_id`` -- except the instance may be recycled, so callers must
        drop every reference once :meth:`release` has been called.
        """
        if _pool:
            msg = _pool.pop()
            msg.mtype = mtype
            msg.addr = addr
            msg.scope = scope
            msg.core = core
            msg.reply_to = reply_to
            msg.exclusive = exclusive
            msg.uncacheable = uncacheable
            msg.direct = direct
            msg.version = version
            msg.op_id = next(_ids)
            msg.req = None
            msg._pooled = True
            return msg
        msg = cls(mtype, addr, scope, core, reply_to, exclusive,
                  uncacheable, direct, version)
        msg._pooled = True
        return msg

    def release(self) -> None:
        """Return a pooled message to the free list (no-op otherwise).

        Idempotent: releasing twice, or releasing a message built with
        the plain constructor, does nothing.

        Pool invariant: every message that reaches the free list -- a
        response or a terminal writeback -- carries ``exclusive ==
        uncacheable == direct == False``, so :meth:`make_response` skips
        resetting those flags.  A caller that acquires a flagged message
        must clear the flags before releasing it.
        """
        if self._pooled:
            self._pooled = False
            self.reply_to = None
            self.req = None
            _pool.append(self)

    def make_response(self, mtype: MessageType, version: int = 0) -> "Message":
        """Build the response message answering this request.

        Responses come from the free-list pool (this is the hottest
        allocation site in the simulator) and are released back to it by
        the consumer's ``receive_response``.
        """
        if _pool:
            resp = _pool.pop()
            resp.mtype = mtype
            resp.addr = self.addr
            resp.scope = self.scope
            resp.core = self.core
            resp.reply_to = self.reply_to
            # exclusive/uncacheable/direct stay False: see the pool
            # invariant in release().
            resp.version = version
            resp.op_id = next(_ids)
            resp._pooled = True
        else:
            resp = Message(mtype, self.addr, self.scope, self.core,
                           self.reply_to, version=version)
            resp._pooled = True
        resp.req = self
        return resp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.mtype.name} id={self.op_id} core={self.core} "
            f"addr={self.addr:#x} scope={self.scope}>"
        )
