"""PIMDB-style database layout on bulk-bitwise PIM scopes.

Records live one per crossbar row; fields are bit-sliced across columns
(so a filter is a column-parallel comparison over all records at once,
writing a one-bit-per-record *result bitmap* into a result column).  A
database spans multiple scopes -- each scope holds up to
``records_per_scope`` records (Table II: 32 K) and PIM ops to different
scopes are independent, so the same filter instruction is issued once per
scope (Section III).

Byte-address layout of a scope (what host loads/stores see):

* ``[0, records * record_stride)`` -- record data, row-major, so reading a
  record's field is a couple of loads with ordinary spatial locality.
* the top of the scope holds the result bitmaps, one compact region per
  result slot.  This mirrors the paper's observation (Section IV-B) that
  PIM results occupy a *regular, non-contiguous* (across scopes) address
  range that clusters in a small subset of cache sets -- all scopes place
  their bitmaps at the same scope-relative offsets, and scope size is a
  multiple of the LLC's set stride.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.scope import Scope
from repro.pim.crossbar import Crossbar
from repro.pim.isa import PimInstruction, ScopeLayout
from repro.pim.logic import MicroProgram


@dataclass(frozen=True)
class FieldSpec:
    """One record field: a name and a bit width."""

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("field width must be positive")


class RecordSchema:
    """Key field plus data fields (YCSB: 5 fields x 10 B, Table III)."""

    KEY = "key"

    def __init__(self, key_bits: int = 32, fields: Optional[Sequence[FieldSpec]] = None) -> None:
        self.key = FieldSpec(self.KEY, key_bits)
        self.fields: Tuple[FieldSpec, ...] = tuple(fields or ())
        names = [self.KEY] + [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")

    @classmethod
    def ycsb(cls, num_fields: int = 5, field_bytes: int = 10, key_bits: int = 32) -> "RecordSchema":
        """The Table III YCSB schema: 5 fields of 10 bytes each."""
        fields = [FieldSpec(f"field{i}", field_bytes * 8) for i in range(num_fields)]
        return cls(key_bits=key_bits, fields=fields)

    def all_fields(self) -> Iterable[FieldSpec]:
        yield self.key
        yield from self.fields

    def field(self, name: str) -> FieldSpec:
        for spec in self.all_fields():
            if spec.name == name:
                return spec
        raise KeyError(f"no field {name!r}")

    @property
    def record_bits(self) -> int:
        return sum(f.bits for f in self.all_fields())

    @property
    def record_bytes(self) -> int:
        return (self.record_bits + 7) // 8

    def record_stride(self) -> int:
        """Byte stride between records (padded to 8-byte alignment)."""
        return (self.record_bytes + 7) & ~7

    def field_byte_offset(self, name: str) -> int:
        """Byte offset of a field within the record's address image."""
        off_bits = 0
        for spec in self.all_fields():
            if spec.name == name:
                return off_bits // 8
            off_bits += spec.bits
        raise KeyError(f"no field {name!r}")

    def max_field_bits(self) -> int:
        return max(f.bits for f in self.all_fields())


class ScopeDatabase:
    """The records of one scope, stored on its crossbar group.

    Functionally, the whole scope is modelled as a single logical crossbar
    (the physical scope is many arrays operating in lock-step under shared
    control logic -- Section II-A -- so one array image with one cycle
    count is faithful).
    """

    def __init__(self, scope: Scope, schema: RecordSchema, capacity: int,
                 result_slots: int = 4) -> None:
        self.scope = scope
        self.schema = schema
        self.capacity = capacity
        self.layout = ScopeLayout(schema, result_slots=result_slots)
        self.xbar = Crossbar(rows=capacity, cols=self.layout.total_cols)
        self.count = 0
        self._program_cache: Dict[PimInstruction, MicroProgram] = {}

    # ---------------------------------------------------------------- #
    # record access (host loads/stores)
    # ---------------------------------------------------------------- #

    def insert(self, key: int, values: Dict[str, int]) -> int:
        """Insert a record; returns its row index."""
        if self.count >= self.capacity:
            raise RuntimeError(f"scope {self.scope.scope_id} is full")
        row = self.count
        self.write_record(row, key, values)
        self.count = row + 1
        return row

    def write_record(self, row: int, key: int, values: Dict[str, int]) -> None:
        self.xbar.write_row_bits(row, self.layout.field_cols(RecordSchema.KEY), key)
        for spec in self.schema.fields:
            value = values.get(spec.name, 0)
            self.xbar.write_row_bits(row, self.layout.field_cols(spec.name), value)
        self.xbar.write_bit(row, self.layout.valid_col, True)

    def read_field(self, row: int, name: str) -> int:
        return self.xbar.read_row_bits(row, self.layout.field_cols(name))

    def is_valid(self, row: int) -> bool:
        return self.xbar.read_bit(row, self.layout.valid_col)

    # ---------------------------------------------------------------- #
    # PIM execution
    # ---------------------------------------------------------------- #

    def execute(self, instr: PimInstruction) -> Tuple[np.ndarray, int]:
        """Run one PIM op on this scope.

        Returns ``(result_bitmap, array_cycles)``.  Compiled microcode is
        cached per instruction -- the shared control logic stores the
        sequence once and replays it (Section II-A).
        """
        program = self._program_cache.get(instr)
        if program is None:
            program = instr.compile(self.layout)
            self._program_cache[instr] = program
        bitmap = program.run(self.xbar)
        return bitmap, program.cycles

    def result_bitmap(self, slot: int) -> np.ndarray:
        return self.xbar.read_column(self.layout.result_col(slot))

    # ---------------------------------------------------------------- #
    # byte-address layout (used by the timing workloads)
    # ---------------------------------------------------------------- #

    def record_address(self, row: int, field: Optional[str] = None) -> int:
        """Host byte address of a record (or one of its fields)."""
        addr = self.scope.base + row * self.schema.record_stride()
        if field is not None:
            addr += self.schema.field_byte_offset(field)
        return addr

    def bitmap_region(self, slot: int) -> Tuple[int, int]:
        """``(base, size_bytes)`` of a result slot's bitmap in the scope."""
        bitmap_bytes = (self.capacity + 7) // 8
        region = self.scope.limit - (slot + 1) * _round_up(bitmap_bytes, 64)
        if region < self.scope.base:
            raise ValueError("scope too small for result bitmaps")
        return region, bitmap_bytes

    def bitmap_line_addresses(self, slot: int, line_bytes: int = 64) -> List[int]:
        """Cache-line addresses covering a result bitmap (the host's reads)."""
        base, size = self.bitmap_region(slot)
        return [base + off for off in range(0, _round_up(size, line_bytes), line_bytes)]


def _round_up(value: int, quantum: int) -> int:
    return (value + quantum - 1) // quantum * quantum


class PimDatabase:
    """A relation spread over many scopes (records round-robin by row).

    Round-robin placement means any key range's matches spread evenly
    across scopes, matching the paper's "records are randomly distributed
    in the database, making the scan result evenly distributed across the
    scopes" (Section VI-B).
    """

    def __init__(self, scopes: Sequence[Scope], schema: RecordSchema,
                 records_per_scope: int) -> None:
        if not scopes:
            raise ValueError("need at least one scope")
        self.schema = schema
        self.records_per_scope = records_per_scope
        self.shards: List[ScopeDatabase] = [
            ScopeDatabase(s, schema, records_per_scope) for s in scopes
        ]

    @property
    def num_scopes(self) -> int:
        return len(self.shards)

    @property
    def capacity(self) -> int:
        return self.num_scopes * self.records_per_scope

    @property
    def count(self) -> int:
        return sum(s.count for s in self.shards)

    def shard_of(self, global_row: int) -> Tuple[ScopeDatabase, int]:
        """Map a global row id to ``(shard, local_row)`` (round-robin)."""
        return self.shards[global_row % self.num_scopes], global_row // self.num_scopes

    def insert(self, key: int, values: Dict[str, int]) -> int:
        """Insert at the next global row; returns the global row id."""
        row = self.count
        shard, local = self.shard_of(row)
        if local != shard.count:
            raise RuntimeError("round-robin insert order violated")
        shard.insert(key, values)
        return row

    def scan(self, instr: PimInstruction) -> Tuple[List[np.ndarray], int]:
        """Issue the same PIM op to every scope (Section III).

        Returns per-scope bitmaps and the *per-scope* array cycle count
        (scopes execute in parallel in the timing model; functionally we
        run them in sequence).
        """
        bitmaps = []
        cycles = 0
        for shard in self.shards:
            bitmap, cycles = shard.execute(instr)
            bitmaps.append(bitmap)
        return bitmaps, cycles

    def matching_rows(self, bitmaps: Sequence[np.ndarray]) -> List[int]:
        """Global row ids set in the per-scope bitmaps."""
        rows = []
        for sid, bitmap in enumerate(bitmaps):
            for local in np.flatnonzero(bitmap):
                rows.append(int(local) * self.num_scopes + sid)
        return sorted(rows)
