"""PIM op latency model.

The timing layer and the functional layer share one source of truth for
how long a PIM op takes: the length of its compiled MAGIC micro-program
(:mod:`repro.pim.logic`).  Memristive array operations take on the order
of 10 ns each [4, 16]; a compiled range scan (~550 array cycles for a
32-bit key) therefore costs ~5.5 us -- "numerous cycles" at the host's
3.6 GHz, exactly the regime the paper describes for bulk-bitwise PIM
(Section VII: PIM execution latency is one of the inherent bottlenecks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.isa import PimInstruction, ScopeLayout


@dataclass(frozen=True)
class PimLatencyModel:
    """Converts array cycles to host clock cycles.

    Attributes:
        ns_per_array_cycle: memristive switching + peripheral time for one
            array-level INIT/NOR step.
        host_freq_ghz: host clock (Table II: 3.6 GHz).
    """

    ns_per_array_cycle: float = 10.0
    host_freq_ghz: float = 3.6

    def host_cycles(self, array_cycles: int) -> int:
        """Host cycles consumed by ``array_cycles`` array operations."""
        return max(1, round(array_cycles * self.ns_per_array_cycle * self.host_freq_ghz))

    def instruction_latency(self, instr: PimInstruction, layout: ScopeLayout) -> int:
        """Host-cycle latency of one PIM op, from its compiled microcode."""
        return self.host_cycles(instr.compile(layout).cycles)


def scan_op_latency(schema, latency_model: "PimLatencyModel" = None) -> int:
    """Host-cycle latency of a key-comparison scan op for ``schema``.

    The workload compilers use this so the timing model's PIM op latency
    always comes from real compiled microcode for the workload's schema.
    """
    latency_model = latency_model or PimLatencyModel()
    layout = ScopeLayout(schema)
    instr = PimInstruction.scan_ge(schema.KEY, 1, slot=1)
    return latency_model.instruction_latency(instr, layout)
