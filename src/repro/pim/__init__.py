"""Bulk-bitwise PIM substrate.

Two layers share one instruction set:

* **Functional layer** (:mod:`repro.pim.crossbar`, :mod:`repro.pim.logic`,
  :mod:`repro.pim.isa`, :mod:`repro.pim.database`): memristive crossbar
  arrays executing MAGIC-NOR stateful logic for real, with microcode
  synthesis of comparison/arithmetic from NOR primitives, and a PIMDB-style
  bit-column database engine on top.  Used by examples and unit tests.

* **Timing layer** (:mod:`repro.pim.module`, :mod:`repro.pim.latency`):
  the PIM module as seen by the memory system -- a finite op buffer,
  same-scope serialization, cross-scope parallelism, and per-op latencies
  derived from the functional layer's microcode lengths.
"""

from repro.pim.crossbar import Crossbar
from repro.pim.logic import ColumnAllocator, MicroOp, MicroProgram
from repro.pim.isa import PimInstruction, PimOpcode
from repro.pim.database import FieldSpec, RecordSchema, ScopeDatabase, PimDatabase

__all__ = [
    "Crossbar",
    "ColumnAllocator",
    "MicroOp",
    "MicroProgram",
    "PimInstruction",
    "PimOpcode",
    "FieldSpec",
    "RecordSchema",
    "ScopeDatabase",
    "PimDatabase",
]
