"""Memristive crossbar arrays executing stateful MAGIC logic.

A crossbar is a ``rows x cols`` array of single-bit memristive cells.  The
cells are both the storage and the processing elements (Section II-A of the
paper): a *column* logic operation applies the same gate in every row in
parallel, reading one or more input columns and writing an output column.

We implement MAGIC [16]: the output cell must first be initialized to
logic ``1`` (the ``INIT`` step), after which applying the gate voltage
conditionally switches it to ``0`` -- realizing NOR.  Every complex
operation is synthesized from ``init`` + ``nor`` (see
:mod:`repro.pim.logic`), exactly as in SIMPLER-MAGIC [2].

The crossbar enforces MAGIC's usage discipline: ``nor`` into a column that
was not initialized since it was last written raises, catching microcode
bugs the way real hardware would produce garbage.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class MagicDisciplineError(RuntimeError):
    """A NOR wrote to a column that was not INIT-ed first."""


class Crossbar:
    """One memory array: bit cells addressable by (row, column).

    Args:
        rows: number of word rows (records, for the database layout).
        cols: number of bit columns.

    Cycle accounting: ``cycles`` counts array-level operations executed
    (each ``init_*`` or ``nor_*`` is one array cycle); the timing layer
    multiplies by the device cycle time.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("crossbar dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._cells = np.zeros((rows, cols), dtype=bool)
        self._col_initialized = np.zeros(cols, dtype=bool)
        self.cycles = 0

    # ------------------------------------------------------------------ #
    # plain storage access (what loads/stores see)
    # ------------------------------------------------------------------ #

    def read_column(self, col: int) -> np.ndarray:
        return self._cells[:, col].copy()

    def write_column(self, col: int, values: np.ndarray) -> None:
        self._cells[:, col] = values
        self._col_initialized[col] = False

    def read_bit(self, row: int, col: int) -> bool:
        return bool(self._cells[row, col])

    def write_bit(self, row: int, col: int, value: bool) -> None:
        self._cells[row, col] = value
        self._col_initialized[col] = False

    def read_row_bits(self, row: int, cols: Sequence[int]) -> int:
        """Pack the given columns of ``row`` into an integer (LSB first)."""
        value = 0
        for i, col in enumerate(cols):
            if self._cells[row, col]:
                value |= 1 << i
        return value

    def write_row_bits(self, row: int, cols: Sequence[int], value: int) -> None:
        for i, col in enumerate(cols):
            self._cells[row, col] = bool((value >> i) & 1)
        self._col_initialized[list(cols)] = False

    # ------------------------------------------------------------------ #
    # MAGIC primitives (column-parallel; row ops are symmetric)
    # ------------------------------------------------------------------ #

    def init_column(self, col: int, value: bool = True) -> None:
        """Initialize a whole column to ``value`` (one array cycle).

        MAGIC requires the output cell at logic 1 before a NOR; ``init``
        with ``value=False`` models a bulk reset (used for scratch
        cleanup).
        """
        self._cells[:, col] = value
        self._col_initialized[col] = bool(value)
        self.cycles += 1

    def nor_columns(self, inputs: Iterable[int], out: int) -> None:
        """``out := NOR(inputs...)`` in every row, in parallel (one cycle).

        The output column must have been initialized to 1 beforehand
        (MAGIC discipline).
        """
        if not self._col_initialized[out]:
            raise MagicDisciplineError(
                f"column {out} used as NOR output without INIT"
            )
        cols = list(inputs)
        if not cols:
            raise ValueError("NOR needs at least one input column")
        if out in cols:
            raise ValueError("MAGIC NOR output must differ from its inputs")
        acc = self._cells[:, cols[0]].copy()
        for col in cols[1:]:
            acc |= self._cells[:, col]
        # Initialized-to-1 output conditionally switches to 0.
        self._cells[:, out] = ~acc
        self._col_initialized[out] = False
        self.cycles += 1

    def init_row(self, row: int, value: bool = True) -> None:
        """Row-direction INIT (row ops are the transpose of column ops)."""
        self._cells[row, :] = value
        self.cycles += 1

    def nor_rows(self, inputs: Iterable[int], out: int) -> None:
        """``out-row := NOR(input rows...)`` across all columns (one cycle)."""
        rows = list(inputs)
        if not rows:
            raise ValueError("NOR needs at least one input row")
        if out in rows:
            raise ValueError("MAGIC NOR output must differ from its inputs")
        acc = self._cells[rows[0], :].copy()
        for row in rows[1:]:
            acc |= self._cells[row, :]
        self._cells[out, :] = ~acc
        self._col_initialized[:] = False
        self.cycles += 1

    def snapshot(self) -> np.ndarray:
        """A copy of the full cell array (testing aid)."""
        return self._cells.copy()
